// Long-horizon chaos driver, and the reproduction vehicle for red chaos
// matrix entries: a failing test prints a chaos_soak command line whose
// four coordinates (scheme, shape, plan, seed) replay the exact scenario.
//
//   bench/chaos_soak --scheme=hierarchical --shape=racked --plan=leader-kill --seed=3
//   bench/chaos_soak --plan=all --runs=20        # soak: 20 seeds x all plans
//   bench/chaos_soak --trace=trace.jsonl         # deterministic event trace
//   bench/chaos_soak --metrics=metrics.json      # registry snapshots
//   bench/chaos_soak --jobs=8                    # parallel scenario runner
//
// Output (stdout, trace, metrics) is emitted in sweep order regardless of
// --jobs, and every scenario is a pure function of its spec, so the bytes
// produced at --jobs=1 and --jobs=8 are identical.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/parallel_runner.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace tamp;

  util::FlagSet flags("chaos_soak");
  auto& scheme_flag =
      flags.add_string("scheme", "hierarchical",
                       "all-to-all | gossip | hierarchical | all");
  auto& shape_flag = flags.add_string(
      "shape", "racked", "single-segment | racked | router-chain | all");
  auto& plan_flag = flags.add_string(
      "plan", "all", "fault plan name (see src/sim/fault_plan.h) or 'all'");
  auto& seed_flag = flags.add_int("seed", 1, "first seed");
  auto& runs_flag = flags.add_int("runs", 1, "consecutive seeds to sweep");
  auto& nodes_flag = flags.add_int("nodes", 12, "cluster size");
  auto& anti_entropy_flag = flags.add_string(
      "hier-anti-entropy", "full",
      "full | digest — hier leader anti-entropy mode (ignored by other"
      " schemes)");
  auto& jobs_flag = flags.add_int(
      "jobs", 1, "worker threads (0 = hardware concurrency); output is"
                 " byte-identical for any value");
  auto& verbose_flag =
      flags.add_bool("verbose", false, "log each fault as it fires");
  auto& trace_flag = flags.add_string(
      "trace", "", "append each scenario's structured event trace (JSONL,"
                   " byte-identical per seed) to this file");
  auto& metrics_flag = flags.add_string(
      "metrics", "", "append each scenario's metrics-registry snapshot"
                     " (JSON) to this file");
  auto& slo_flag = flags.add_bool(
      "slo", false, "run the application workload on every scenario and"
                    " print its per-phase SLO report (deterministic JSON)");
  auto& slo_out_flag = flags.add_string(
      "slo-out", "", "with --slo: also append each scenario's SLO report"
                     " (JSONL, byte-identical per seed) to this file");
  flags.parse(argc, argv);

  if (verbose_flag) {
    util::Logger::instance().set_level(util::LogLevel::kDebug);
  }

  std::vector<protocols::Scheme> schemes;
  if (scheme_flag == "all") {
    schemes = {protocols::Scheme::kAllToAll, protocols::Scheme::kGossip,
               protocols::Scheme::kHierarchical};
  } else {
    protocols::Scheme scheme;
    if (!chaos::parse_scheme(scheme_flag, &scheme)) {
      std::fprintf(stderr, "unknown --scheme=%s\n", scheme_flag.c_str());
      return 2;
    }
    schemes = {scheme};
  }

  std::vector<chaos::ShapeKind> shapes;
  if (shape_flag == "all") {
    shapes.assign(std::begin(chaos::kAllShapeKinds),
                  std::end(chaos::kAllShapeKinds));
  } else {
    chaos::ShapeKind shape;
    if (!chaos::parse_shape(shape_flag, &shape)) {
      std::fprintf(stderr, "unknown --shape=%s\n", shape_flag.c_str());
      return 2;
    }
    shapes = {shape};
  }

  std::vector<chaos::PlanKind> plans;
  if (plan_flag == "all") {
    plans.assign(std::begin(chaos::kAllPlanKinds),
                 std::end(chaos::kAllPlanKinds));
  } else {
    chaos::PlanKind plan;
    if (!chaos::parse_plan(plan_flag, &plan)) {
      std::fprintf(stderr, "unknown --plan=%s\n", plan_flag.c_str());
      return 2;
    }
    plans = {plan};
  }

  bool hier_digest = false;
  if (anti_entropy_flag == "digest") {
    hier_digest = true;
  } else if (anti_entropy_flag != "full") {
    std::fprintf(stderr, "unknown --hier-anti-entropy=%s\n",
                 anti_entropy_flag.c_str());
    return 2;
  }

  std::FILE* trace_out = nullptr;
  if (!trace_flag.empty()) {
    trace_out = std::fopen(trace_flag.c_str(), "w");
    if (trace_out == nullptr) {
      std::fprintf(stderr, "cannot open --trace=%s\n", trace_flag.c_str());
      return 2;
    }
  }
  std::FILE* metrics_out = nullptr;
  if (!metrics_flag.empty()) {
    metrics_out = std::fopen(metrics_flag.c_str(), "w");
    if (metrics_out == nullptr) {
      std::fprintf(stderr, "cannot open --metrics=%s\n", metrics_flag.c_str());
      return 2;
    }
  }
  std::FILE* slo_out = nullptr;
  if (!slo_out_flag.empty()) {
    if (!slo_flag) {
      std::fprintf(stderr, "--slo-out requires --slo\n");
      return 2;
    }
    slo_out = std::fopen(slo_out_flag.c_str(), "w");
    if (slo_out == nullptr) {
      std::fprintf(stderr, "cannot open --slo-out=%s\n",
                   slo_out_flag.c_str());
      return 2;
    }
  }

  // Collect the sweep in canonical order first; the runner preserves this
  // order in its output stream no matter how many workers execute it.
  std::vector<chaos::ScenarioSpec> specs;
  int skipped = 0;
  for (int run = 0; run < runs_flag; ++run) {
    for (protocols::Scheme scheme : schemes) {
      for (chaos::ShapeKind shape : shapes) {
        for (chaos::PlanKind plan : plans) {
          if (!chaos::plan_applicable(scheme, plan)) {
            ++skipped;
            continue;
          }
          chaos::ScenarioSpec spec;
          spec.scheme = scheme;
          spec.shape = shape;
          spec.plan = plan;
          spec.seed = static_cast<uint64_t>(seed_flag + run);
          spec.nodes = static_cast<size_t>(nodes_flag);
          spec.trace = trace_out != nullptr;
          spec.metrics = metrics_out != nullptr;
          spec.slo = slo_flag;
          spec.hier_digest =
              hier_digest && scheme == protocols::Scheme::kHierarchical;
          specs.push_back(spec);
        }
      }
    }
  }

  int failed = 0;
  chaos::ParallelRunOptions options;
  options.jobs = static_cast<size_t>(jobs_flag < 0 ? 1 : jobs_flag);
  options.on_result = [&](size_t, const chaos::ScenarioResult& result) {
    if (trace_out != nullptr) {
      std::fprintf(trace_out, "{\"scenario\":\"%s\"}\n", result.name.c_str());
      std::fputs(result.trace_jsonl.c_str(), trace_out);
    }
    if (metrics_out != nullptr) {
      std::fprintf(metrics_out, "{\"scenario\":\"%s\"}\n",
                   result.name.c_str());
      std::fprintf(metrics_out, "%s\n", result.metrics_json.c_str());
    }
    if (slo_out != nullptr) {
      std::fprintf(slo_out, "{\"scenario\":\"%s\",\"slo\":%s}\n",
                   result.name.c_str(), result.slo_json.c_str());
    }
    std::printf("%-4s %-55s horizon=%6.1fs events=%-8llu checks=%-4llu"
                " converged=%zu/%zu\n",
                result.passed ? "ok" : "FAIL", result.name.c_str(),
                sim::to_seconds(result.horizon),
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(result.oracle_checks),
                result.final_converged, result.final_running);
    if (!result.slo_json.empty()) {
      std::printf("     slo %s\n", result.slo_json.c_str());
    }
    if (!result.passed) {
      ++failed;
      std::printf("%s\nreproduce with: %s\n", result.report.c_str(),
                  result.repro.c_str());
    }
  };
  chaos::run_scenarios(specs, options);

  if (trace_out != nullptr) std::fclose(trace_out);
  if (metrics_out != nullptr) std::fclose(metrics_out);
  if (slo_out != nullptr) std::fclose(slo_out);
  std::printf("chaos_soak: %zu scenario(s), %d failed, %d skipped"
              " (inapplicable)\n",
              specs.size(), failed, skipped);
  return failed > 0 ? 1 : 0;
}
