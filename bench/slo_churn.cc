// SLO-during-churn bench: what does each failure mode cost *users*?
//
// Runs the deterministic application workload (src/workload) on top of the
// chaos scenario runner for every membership scheme under a fixed slate of
// fault plans, and reports the user-visible damage per (scheme, plan):
// misroute rate, retry amplification, proxy-fallback rate, success rate,
// and fault/heal-phase tail latency (p99/p999).
//
//   bench/slo_churn --json=BENCH_slo.json            # the committed artifact
//   bench/slo_churn --jobs=8                         # same bytes, faster
//   bench/slo_churn --plans=crash-restart,router-flap --runs=2
//
// Every scenario is a pure function of its (scheme, shape, plan, seed)
// tuple and the workload accounting is integer-valued, so the JSON (and
// stdout) is byte-identical for any --jobs value. Rates are fixed-precision
// renderings of integer ratios, computed once here from the integer counts.
//
// Gossip skips router-flap by plan applicability (no rejoin path across a
// healed symmetric split — a baseline property, not a bug), so its row set
// is one shorter; the remaining plans still cover >= 4 distinct faults.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/parallel_runner.h"
#include "sim/scenario.h"
#include "util/flags.h"

using namespace tamp;

namespace {

// The bench's fault slate: node churn, congestion, control-plane loss,
// membership growth, and network-device churn. router-flap is the headline
// plan — it invalidates directory rows without killing any provider.
const chaos::PlanKind kDefaultPlans[] = {
    chaos::PlanKind::kCrashRestart, chaos::PlanKind::kLossStorm,
    chaos::PlanKind::kLeaderKill, chaos::PlanKind::kJoinStorm,
    chaos::PlanKind::kRouterFlap};

struct Row {
  chaos::ScenarioSpec spec;
  bool passed = false;
  workload::PhaseSlo total;  // phase sums (percentile fields unused)
  std::vector<workload::PhaseSlo> phases;
};

workload::PhaseSlo sum_phases(const std::vector<workload::PhaseSlo>& phases) {
  workload::PhaseSlo total;
  for (const workload::PhaseSlo& p : phases) {
    total.issued += p.issued;
    total.ok += p.ok;
    total.failed += p.failed;
    total.aborted += p.aborted;
    total.unresolved += p.unresolved;
    total.attempts += p.attempts;
    total.misroutes += p.misroutes;
    total.via_proxy += p.via_proxy;
    for (int c = 0; c < service::kFailureCauseCount; ++c) {
      total.failed_by_cause[static_cast<size_t>(c)] +=
          p.failed_by_cause[static_cast<size_t>(c)];
    }
  }
  return total;
}

double ratio(uint64_t num, uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

void write_json(const std::string& path, uint64_t first_seed, int runs,
                size_t nodes, const std::vector<Row>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open --json=%s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"slo_churn\",\n");
  std::fprintf(out, "  \"nodes\": %zu,\n", nodes);
  std::fprintf(out, "  \"first_seed\": %llu,\n",
               static_cast<unsigned long long>(first_seed));
  std::fprintf(out, "  \"runs\": %d,\n", runs);
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const workload::PhaseSlo& t = r.total;
    const uint64_t completed = t.ok + t.failed;
    const workload::PhaseSlo& fault = r.phases[1];
    const workload::PhaseSlo& heal = r.phases[2];
    std::fprintf(
        out,
        "    {\"scheme\": \"%s\", \"plan\": \"%s\", \"seed\": %llu,"
        " \"passed\": %s,"
        " \"issued\": %llu, \"ok\": %llu, \"failed\": %llu,"
        " \"aborted\": %llu, \"unresolved\": %llu,"
        " \"attempts\": %llu, \"misroutes\": %llu, \"via_proxy\": %llu,"
        " \"ok_rate\": %.6f, \"misroute_rate\": %.6f,"
        " \"retry_amplification\": %.6f, \"proxy_rate\": %.6f,"
        " \"pre_p99_ns\": %lld,"
        " \"fault_p99_ns\": %lld, \"fault_p999_ns\": %lld,"
        " \"heal_p99_ns\": %lld, \"heal_p999_ns\": %lld}%s\n",
        protocols::scheme_name(r.spec.scheme), chaos::plan_name(r.spec.plan),
        static_cast<unsigned long long>(r.spec.seed),
        r.passed ? "true" : "false",
        static_cast<unsigned long long>(t.issued),
        static_cast<unsigned long long>(t.ok),
        static_cast<unsigned long long>(t.failed),
        static_cast<unsigned long long>(t.aborted),
        static_cast<unsigned long long>(t.unresolved),
        static_cast<unsigned long long>(t.attempts),
        static_cast<unsigned long long>(t.misroutes),
        static_cast<unsigned long long>(t.via_proxy),
        ratio(t.ok, t.issued), ratio(t.misroutes, t.issued),
        ratio(t.attempts, completed), ratio(t.via_proxy, completed),
        static_cast<long long>(r.phases[0].p99_ns),
        static_cast<long long>(fault.p99_ns),
        static_cast<long long>(fault.p999_ns),
        static_cast<long long>(heal.p99_ns),
        static_cast<long long>(heal.p999_ns),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("slo_churn");
  auto& seed_flag = flags.add_int("seed", 1, "first seed");
  auto& runs_flag = flags.add_int("runs", 1, "consecutive seeds to sweep");
  auto& nodes_flag = flags.add_int("nodes", 12, "cluster size");
  auto& plans_flag = flags.add_string(
      "plans", "", "comma-separated plan names (default: the bench slate)");
  auto& jobs_flag = flags.add_int(
      "jobs", 1, "worker threads (0 = hardware concurrency); output is"
                 " byte-identical for any value");
  auto& json_flag = flags.add_string(
      "json", "", "write machine-readable results to this file");
  flags.parse(argc, argv);

  std::vector<chaos::PlanKind> plans;
  if (plans_flag.empty()) {
    plans.assign(std::begin(kDefaultPlans), std::end(kDefaultPlans));
  } else {
    std::string token;
    for (size_t i = 0; i <= plans_flag.size(); ++i) {
      if (i == plans_flag.size() || plans_flag[i] == ',') {
        chaos::PlanKind plan;
        if (!token.empty() && !chaos::parse_plan(token, &plan)) {
          std::fprintf(stderr, "unknown plan '%s' in --plans\n",
                       token.c_str());
          return 2;
        }
        if (!token.empty()) plans.push_back(plan);
        token.clear();
      } else {
        token.push_back(plans_flag[i]);
      }
    }
  }

  const protocols::Scheme kSchemes[] = {protocols::Scheme::kAllToAll,
                                        protocols::Scheme::kGossip,
                                        protocols::Scheme::kHierarchical};

  std::vector<chaos::ScenarioSpec> specs;
  int skipped = 0;
  for (int run = 0; run < runs_flag; ++run) {
    for (protocols::Scheme scheme : kSchemes) {
      for (chaos::PlanKind plan : plans) {
        if (!chaos::plan_applicable(scheme, plan)) {
          ++skipped;
          continue;
        }
        chaos::ScenarioSpec spec;
        spec.scheme = scheme;
        spec.shape = chaos::ShapeKind::kRacked;
        spec.plan = plan;
        spec.seed = static_cast<uint64_t>(seed_flag + run);
        spec.nodes = static_cast<size_t>(nodes_flag);
        spec.slo = true;
        specs.push_back(spec);
      }
    }
  }

  std::printf("SLO during churn — racked shape, %d node(s), workload on"
              " every node\n\n",
              static_cast<int>(nodes_flag));
  std::printf("%-13s %-14s %5s %8s %9s %8s %7s %7s %10s %10s\n", "scheme",
              "plan", "seed", "issued", "misroute", "retry", "proxy", "ok",
              "fault p99", "heal p99");

  std::vector<Row> rows;
  int failed = 0;
  chaos::ParallelRunOptions options;
  options.jobs = static_cast<size_t>(jobs_flag < 0 ? 1 : jobs_flag);
  options.on_result = [&](size_t index, const chaos::ScenarioResult& result) {
    Row row;
    row.spec = specs[index];
    row.passed = result.passed;
    row.phases = result.slo_phases;
    row.total = sum_phases(result.slo_phases);
    const uint64_t completed = row.total.ok + row.total.failed;
    std::printf(
        "%-13s %-14s %5llu %8llu %9.4f %8.4f %7.4f %7.4f %9.1fms %9.1fms\n",
        protocols::scheme_name(row.spec.scheme),
        chaos::plan_name(row.spec.plan),
        static_cast<unsigned long long>(row.spec.seed),
        static_cast<unsigned long long>(row.total.issued),
        ratio(row.total.misroutes, row.total.issued),
        ratio(row.total.attempts, completed),
        ratio(row.total.via_proxy, completed),
        ratio(row.total.ok, row.total.issued),
        static_cast<double>(row.phases[1].p99_ns) / 1e6,
        static_cast<double>(row.phases[2].p99_ns) / 1e6);
    if (!result.passed) {
      ++failed;
      std::printf("FAIL %s\n%s\nreproduce with: %s\n", result.name.c_str(),
                  result.report.c_str(), result.repro.c_str());
    }
    rows.push_back(std::move(row));
  };
  chaos::run_scenarios(specs, options);

  if (!json_flag.empty()) {
    write_json(json_flag, static_cast<uint64_t>(seed_flag),
               static_cast<int>(runs_flag), static_cast<size_t>(nodes_flag),
               rows);
  }
  std::printf("\nslo_churn: %zu scenario(s), %d failed, %d skipped"
              " (inapplicable)\n",
              specs.size(), failed, skipped);
  return failed > 0 ? 1 : 0;
}
