// Ablation: detection *accuracy* under packet loss. The paper's
// requirements (Sec. 1) ask the membership service to be complete,
// accurate, and responsive; the gossip comparison is motivated partly by
// its probabilistic accuracy ("does not guarantee 100% accuracy"). This
// bench injects uniform packet loss with NO real failures and counts false
// failure declarations per scheme, then kills one node and reports whether
// the real failure was still detected (completeness under loss).
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

namespace {

struct AccuracyResult {
  int false_leaves = 0;        // leaves reported for live nodes
  bool real_failure_detected = false;
  bool converged_after = false;
};

AccuracyResult run(protocols::Scheme scheme, int nodes, double loss,
                   uint64_t seed) {
  ExperimentSettings settings;
  settings.scheme = scheme;
  settings.nodes = nodes;
  settings.seed = seed;
  settings.settle =
      scheme == protocols::Scheme::kGossip ? 40 * sim::kSecond
                                           : 20 * sim::kSecond;
  BuiltCluster built = build_cluster(settings);

  size_t victim_index = static_cast<size_t>(nodes / 2);
  net::HostId victim = built.layout.hosts[victim_index];
  bool victim_killed = false;

  AccuracyResult result;
  built.cluster->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time) {
        if (alive) return;
        if (subject == victim && victim_killed) {
          result.real_failure_detected = true;
        } else {
          ++result.false_leaves;
        }
      });

  built.cluster->start_all();
  built.sim->run_until(settings.settle);
  if (!built.cluster->converged()) return result;

  // Phase 1: 60 s of loss with no failures — anything reported is false.
  built.network->set_extra_loss(loss);
  built.sim->run_until(built.sim->now() + 60 * sim::kSecond);

  // Phase 2: a real failure under the same loss — must still be caught.
  victim_killed = true;
  built.cluster->kill(victim_index);
  built.sim->run_until(built.sim->now() + 60 * sim::kSecond);
  built.network->set_extra_loss(0.0);
  built.sim->run_until(built.sim->now() + 60 * sim::kSecond);
  result.converged_after = built.cluster->converged();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_accuracy");
  auto& nodes = flags.add_int("nodes", 60, "cluster size");
  auto& seed = flags.add_int("seed", 29, "rng seed");
  flags.parse(argc, argv);

  std::printf("Ablation — accuracy & completeness under packet loss"
              " (n=%lld, 60 s loss-only phase, then one real failure)\n\n",
              static_cast<long long>(nodes));
  std::printf("%8s %-14s %14s %16s %12s\n", "loss %", "scheme",
              "false leaves", "real detected", "converged");

  const protocols::Scheme schemes[] = {protocols::Scheme::kAllToAll,
                                       protocols::Scheme::kGossip,
                                       protocols::Scheme::kHierarchical};
  for (double loss : {0.0, 0.05, 0.10}) {
    for (auto scheme : schemes) {
      auto result = run(scheme, static_cast<int>(nodes), loss,
                        static_cast<uint64_t>(seed));
      std::printf("%8.0f %-14s %14d %16s %12s\n", loss * 100,
                  protocols::scheme_name(scheme), result.false_leaves,
                  result.real_failure_detected ? "yes" : "NO",
                  result.converged_after ? "yes" : "NO");
    }
  }
  std::printf(
      "\nshape check: with max_losses=5 the heartbeat schemes stay"
      " accurate through 10%% loss (0.1^5 consecutive-loss odds); all"
      " schemes remain complete (the real failure is always detected)\n");
  return 0;
}
