// Reproduces paper Figure 2: "the all-to-all approach is not scalable" —
// per-node CPU load and received multicast packet rate as the cluster grows
// toward 4000 nodes (1024-byte heartbeats at 1 Hz).
//
// The paper measured a dual 1.4 GHz P-III receiving an emulated heartbeat
// stream. Here, packet rates up to `sim_limit` nodes come from the actual
// simulation; beyond that the (exactly linear) rate is extrapolated, and
// CPU % applies the calibrated per-packet cost model (DESIGN.md, Fig. 2
// substitution). Expected shape: both curves linear; ~4000 pkts/s and
// ~4.5% CPU at 4000 nodes; heartbeat traffic ~32% of Fast Ethernet.
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

int main(int argc, char** argv) {
  util::FlagSet flags("fig2_alltoall_overhead");
  auto& max_nodes = flags.add_int("max_nodes", 4000, "largest cluster");
  auto& step = flags.add_int("step", 500, "cluster size step");
  auto& sim_limit =
      flags.add_int("sim_limit", 500, "largest size simulated directly");
  auto& heartbeat_bytes =
      flags.add_int("heartbeat_bytes", 1024, "heartbeat packet size");
  auto& seed = flags.add_int("seed", 1, "rng seed");
  flags.parse(argc, argv);

  analysis::CpuCostModel cpu;
  analysis::LinkModel link;

  std::printf("Figure 2 — all-to-all overhead vs cluster size\n");
  std::printf("(%lld-byte heartbeats at 1 Hz; direct simulation up to %lld"
              " nodes, linear extrapolation beyond)\n\n",
              static_cast<long long>(heartbeat_bytes),
              static_cast<long long>(sim_limit));
  std::printf("%8s %16s %12s %14s %12s\n", "nodes", "rx pkts/s/node",
              "cpu %", "rx MB/s/node", "link util %");

  for (int nodes = static_cast<int>(step);
       nodes <= static_cast<int>(max_nodes);
       nodes += static_cast<int>(step)) {
    double pkts_per_node;
    if (nodes <= static_cast<int>(sim_limit)) {
      ExperimentSettings settings;
      settings.scheme = protocols::Scheme::kAllToAll;
      settings.nodes = nodes;
      settings.nodes_per_network = 50;  // paper testbed: 50 per switch
      settings.heartbeat_pad = static_cast<size_t>(heartbeat_bytes);
      settings.seed = static_cast<uint64_t>(seed);
      BuiltCluster built = build_cluster(settings);
      built.cluster->start_all();
      built.sim->run_until(8 * sim::kSecond);
      built.network->obs().metrics.reset(obs::Protocol::kNet);
      built.sim->run_until(built.sim->now() + 5 * sim::kSecond);
      pkts_per_node =
          static_cast<double>(built.network->obs().metrics.counter_value(
              obs::Protocol::kNet, "rx_multicast_messages")) /
          5.0 / static_cast<double>(nodes);
    } else {
      pkts_per_node = static_cast<double>(nodes - 1);  // exact for all-to-all
    }
    double bytes_per_node =
        pkts_per_node * static_cast<double>(heartbeat_bytes);
    std::printf("%8d %16.1f %12.2f %14.3f %12.1f\n", nodes, pkts_per_node,
                cpu.cpu_percent(pkts_per_node), bytes_per_node / 1e6,
                link.utilization_percent(bytes_per_node));
  }
  std::printf(
      "\nshape check: both curves linear in n; at 4000 nodes ~4000 pkt/s,"
      " ~4.5%% CPU, ~32%% of a Fast Ethernet link (paper Fig. 2)\n");
  return 0;
}
