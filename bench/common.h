// Shared measurement harness for the evaluation benches (paper Section 6).
//
// The measurement methodology mirrors the paper's: every node dumps a
// change record when its view changes; after injecting one failure, the
// earliest record is the failure detection time and the latest is the view
// convergence time. Bandwidth is measured by summing received wire bytes
// over all nodes in a steady-state window.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "net/builders.h"
#include "obs/obs.h"
#include "protocols/cluster.h"
#include "util/stats.h"

namespace tamp::bench {

struct ExperimentSettings {
  protocols::Scheme scheme = protocols::Scheme::kHierarchical;
  int nodes = 100;
  int nodes_per_network = 20;  // the paper's five networks of twenty
  uint64_t seed = 1;
  // Pad per-node membership info to the paper's measured 228 bytes.
  size_t heartbeat_pad = 228;
  sim::Duration settle = 20 * sim::kSecond;
  // Hier-only tuning (anti-entropy mode, refresh cadence); ignored by the
  // other schemes.
  protocols::HierConfig hier;
};

struct BuiltCluster {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<net::Topology> topology;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<protocols::Cluster> cluster;
};

inline BuiltCluster build_cluster(const ExperimentSettings& settings) {
  BuiltCluster built;
  built.sim = std::make_unique<sim::Simulation>(settings.seed);
  built.topology = std::make_unique<net::Topology>();
  net::RackedClusterParams params;
  params.hosts_per_rack = settings.nodes_per_network;
  params.racks =
      (settings.nodes + settings.nodes_per_network - 1) /
      settings.nodes_per_network;
  built.layout = net::build_racked_cluster(*built.topology, params);
  built.layout.hosts.resize(static_cast<size_t>(settings.nodes));
  built.network = std::make_unique<net::Network>(*built.sim, *built.topology);

  protocols::Cluster::Options opts;
  opts.scheme = settings.scheme;
  opts.heartbeat_pad = settings.heartbeat_pad;
  opts.hier = settings.hier;
  // Gossip mistake probability 0.1% -> the calibrated adaptive tfail.
  built.cluster = std::make_unique<protocols::Cluster>(
      *built.sim, *built.network, built.layout.hosts, opts);
  return built;
}

// Aggregated received bandwidth (bytes/second) in steady state, measured
// over `window` after the cluster settles. nullopt if it never converges.
inline std::optional<double> measure_bandwidth(
    const ExperimentSettings& settings,
    sim::Duration window = 10 * sim::kSecond) {
  BuiltCluster built = build_cluster(settings);
  built.cluster->start_all();
  built.sim->run_until(settings.settle);
  if (!built.cluster->converged()) return std::nullopt;
  obs::MetricsRegistry& metrics = built.network->obs().metrics;
  metrics.reset(obs::Protocol::kNet);
  built.sim->run_until(built.sim->now() + window);
  return static_cast<double>(
             metrics.counter_value(obs::Protocol::kNet, "rx_wire_bytes")) /
         sim::to_seconds(window);
}

struct DetectionResult {
  double detection_s = 0;    // earliest observer
  double convergence_s = 0;  // latest observer
  int observers = 0;
};

// Kill one non-leader node and record the earliest/latest time any
// surviving node learns of it (paper Sections 6.4 / 6.5).
inline std::optional<DetectionResult> measure_failure(
    const ExperimentSettings& settings,
    sim::Duration wait = 60 * sim::kSecond) {
  BuiltCluster built = build_cluster(settings);

  // Victim: last node of the first rack — never a leader (the bully elects
  // the lowest id) but an ordinary member, like the paper's killed daemon.
  size_t victim_index =
      static_cast<size_t>(settings.nodes_per_network - 1);
  if (victim_index >= built.layout.hosts.size()) {
    victim_index = built.layout.hosts.size() - 1;
  }
  net::HostId victim = built.layout.hosts[victim_index];

  sim::Time first = -1, last = -1;
  int observers = 0;
  built.cluster->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject != victim || alive) return;
        if (first < 0) first = when;
        last = when;
        ++observers;
      });

  built.cluster->start_all();
  built.sim->run_until(settings.settle);
  if (!built.cluster->converged()) return std::nullopt;

  const sim::Time killed_at = built.sim->now();
  built.cluster->kill(victim_index);
  built.sim->run_until(killed_at + wait);
  if (!built.cluster->converged() || first < 0) return std::nullopt;

  DetectionResult result;
  result.detection_s = sim::to_seconds(first - killed_at);
  result.convergence_s = sim::to_seconds(last - killed_at);
  result.observers = observers;
  return result;
}

// Averages `trials` seeded runs of measure_failure.
inline std::optional<DetectionResult> measure_failure_avg(
    ExperimentSettings settings, int trials,
    sim::Duration wait = 60 * sim::kSecond) {
  util::OnlineStats detection, convergence;
  int observers = 0;
  for (int trial = 0; trial < trials; ++trial) {
    settings.seed = settings.seed * 31 + 17;
    auto result = measure_failure(settings, wait);
    if (!result) return std::nullopt;
    detection.add(result->detection_s);
    convergence.add(result->convergence_s);
    observers = result->observers;
  }
  DetectionResult out;
  out.detection_s = detection.mean();
  out.convergence_s = convergence.mean();
  out.observers = observers;
  return out;
}

inline void print_series_header(const char* title, const char* unit) {
  std::printf("\n%s\n", title);
  std::printf("%8s %14s %14s %14s   (%s)\n", "nodes", "all-to-all", "gossip",
              "hierarchical", unit);
}

}  // namespace tamp::bench
