// Reproduces paper Figure 11: aggregated bandwidth consumption of the three
// membership schemes as the cluster grows from 20 to 100 nodes (networks of
// 20 nodes each, 1 heartbeat/gossip per second, 228-byte per-node info).
//
// Expected shape (paper): all three equal at 20 nodes; hierarchical grows
// ~linearly and lowest; all-to-all and gossip grow quadratically.
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

int main(int argc, char** argv) {
  util::FlagSet flags("fig11_bandwidth");
  auto& min_nodes = flags.add_int("min_nodes", 20, "smallest cluster");
  auto& max_nodes = flags.add_int("max_nodes", 100, "largest cluster");
  auto& step = flags.add_int("step", 20, "cluster size step");
  auto& seed = flags.add_int("seed", 1, "rng seed");
  auto& csv = flags.add_bool("csv", false, "emit CSV instead of a table");
  flags.parse(argc, argv);

  if (csv) {
    std::printf("nodes,alltoall_mbps,gossip_mbps,hier_mbps\n");
  } else {
    std::printf("Figure 11 — aggregated bandwidth consumption\n");
    std::printf("(1 pkt/s/node, 228-byte membership info, %lld-node networks)\n",
                static_cast<long long>(20));
    print_series_header("Communication cost", "MB/s received, cluster-wide");
  }

  for (int nodes = static_cast<int>(min_nodes);
       nodes <= static_cast<int>(max_nodes);
       nodes += static_cast<int>(step)) {
    double mbps[3] = {0, 0, 0};
    const protocols::Scheme schemes[] = {protocols::Scheme::kAllToAll,
                                         protocols::Scheme::kGossip,
                                         protocols::Scheme::kHierarchical};
    for (int s = 0; s < 3; ++s) {
      ExperimentSettings settings;
      settings.scheme = schemes[s];
      settings.nodes = nodes;
      settings.seed = static_cast<uint64_t>(seed);
      settings.settle = schemes[s] == protocols::Scheme::kGossip
                            ? 40 * sim::kSecond
                            : 20 * sim::kSecond;
      auto bytes_per_sec = measure_bandwidth(settings);
      mbps[s] = bytes_per_sec ? *bytes_per_sec / 1e6 : -1.0;
    }
    if (csv) {
      std::printf("%d,%.4f,%.4f,%.4f\n", nodes, mbps[0], mbps[1], mbps[2]);
    } else {
      std::printf("%8d %14.3f %14.3f %14.3f\n", nodes, mbps[0], mbps[1],
                  mbps[2]);
    }
  }
  if (!csv) {
    std::printf(
        "\nshape check: hierarchical lowest & ~linear; all-to-all and gossip"
        " ~quadratic (paper Fig. 11)\n");
  }
  return 0;
}
