// Ablation: topology adaptivity. The same node count is laid out on ever
// deeper router hierarchies; the formation protocol must build a matching
// membership tree (leaders climbing through the levels), keep heartbeat
// traffic local, and pay only a small propagation cost per extra level.
#include <cstdio>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "util/flags.h"
#include "util/stats.h"

using namespace tamp;

namespace {

struct DepthResult {
  int max_ttl_needed = 0;
  int levels_formed = 0;
  double bandwidth_mbps = -1;
  double detection_s = -1;
  double convergence_s = -1;
};

DepthResult run(int branching, int depth, int hosts_per_leaf,
                uint64_t seed) {
  sim::Simulation sim(seed);
  net::Topology topo;
  auto layout =
      net::build_router_tree(topo, branching, depth, hosts_per_leaf);
  net::Network net(sim, topo);

  DepthResult result;
  result.max_ttl_needed = topo.max_ttl();

  protocols::Cluster::Options opts;
  opts.scheme = protocols::Scheme::kHierarchical;
  opts.hier.max_ttl = result.max_ttl_needed;
  opts.heartbeat_pad = 228;
  protocols::Cluster cluster(sim, net, layout.hosts, opts);

  net::HostId victim = layout.racks[0].back();
  size_t victim_index = 0;
  for (size_t i = 0; i < layout.hosts.size(); ++i) {
    if (layout.hosts[i] == victim) victim_index = i;
  }
  sim::Time first = -1, last = -1;
  cluster.set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject != victim || alive) return;
        if (first < 0) first = when;
        last = when;
      });

  cluster.start_all();
  sim.run_until(25 * sim::kSecond);
  if (!cluster.converged()) return result;

  for (size_t i = 0; i < cluster.size(); ++i) {
    auto* daemon = cluster.hier_daemon(i);
    for (int level : daemon->joined_levels()) {
      result.levels_formed = std::max(result.levels_formed, level + 1);
    }
  }

  net.obs().metrics.reset(obs::Protocol::kNet);
  sim.run_until(sim.now() + 10 * sim::kSecond);
  result.bandwidth_mbps =
      static_cast<double>(net.obs().metrics.counter_value(
          obs::Protocol::kNet, "rx_wire_bytes")) /
      10.0 / 1e6;

  const sim::Time killed_at = sim.now();
  cluster.kill(victim_index);
  sim.run_until(killed_at + 40 * sim::kSecond);
  if (cluster.converged() && first >= 0) {
    result.detection_s = sim::to_seconds(first - killed_at);
    result.convergence_s = sim::to_seconds(last - killed_at);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_tree_depth");
  auto& seed = flags.add_int("seed", 17, "rng seed");
  flags.parse(argc, argv);

  std::printf("Ablation — hierarchical formation on deeper router trees\n");
  std::printf("(branching x depth router hierarchy, one leaf segment per"
              " leaf router)\n\n");
  std::printf("%22s %8s %10s %10s %14s %12s %12s\n", "layout", "hosts",
              "max TTL", "levels", "bandwidth MB/s", "detect s",
              "converge s");

  struct Shape {
    int branching;
    int depth;
    int hosts_per_leaf;
  };
  const Shape shapes[] = {
      {1, 0, 48},  // one flat segment
      {2, 1, 12},  // 4 leaf segments, 1 router tier
      {2, 2, 6},   // 8 leaf segments, 2 router tiers
      {2, 3, 3},   // 16 leaf segments, 3 router tiers
  };
  for (const auto& shape : shapes) {
    int leaves = 1;
    for (int d = 0; d < shape.depth; ++d) leaves *= shape.branching;
    int hosts = leaves * shape.hosts_per_leaf;
    auto result = run(shape.branching, shape.depth, shape.hosts_per_leaf,
                      static_cast<uint64_t>(seed));
    std::printf("%14dx%-2d x %-4d %8d %10d %10d %14.3f %12.2f %12.2f\n",
                shape.branching, shape.depth, shape.hosts_per_leaf, hosts,
                result.max_ttl_needed, result.levels_formed,
                result.bandwidth_mbps, result.detection_s,
                result.convergence_s);
  }
  std::printf(
      "\nshape check: the membership tree tracks the router depth (levels"
      " == max TTL); detection stays at ~5 s regardless of depth;"
      " convergence grows only by per-level relay hops (ms)\n");
  return 0;
}
