// Reproduces paper Figure 13: view convergence time vs cluster size — the
// time until the *last* surviving node has recorded the failure.
//
// Expected shape (paper): hierarchical ~= all-to-all (detection plus a few
// tree hops); gossip largest and growing with n.
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

int main(int argc, char** argv) {
  util::FlagSet flags("fig13_convergence_time");
  auto& min_nodes = flags.add_int("min_nodes", 20, "smallest cluster");
  auto& max_nodes = flags.add_int("max_nodes", 100, "largest cluster");
  auto& step = flags.add_int("step", 20, "cluster size step");
  auto& trials = flags.add_int("trials", 3, "kills averaged per point");
  auto& seed = flags.add_int("seed", 1, "rng seed");
  auto& csv = flags.add_bool("csv", false, "emit CSV instead of a table");
  flags.parse(argc, argv);

  if (csv) {
    std::printf("nodes,alltoall_s,gossip_s,hier_s\n");
  } else {
    std::printf("Figure 13 — view convergence time\n");
    print_series_header("View convergence time", "seconds");
  }

  for (int nodes = static_cast<int>(min_nodes);
       nodes <= static_cast<int>(max_nodes);
       nodes += static_cast<int>(step)) {
    double convergence[3] = {0, 0, 0};
    const protocols::Scheme schemes[] = {protocols::Scheme::kAllToAll,
                                         protocols::Scheme::kGossip,
                                         protocols::Scheme::kHierarchical};
    for (int s = 0; s < 3; ++s) {
      ExperimentSettings settings;
      settings.scheme = schemes[s];
      settings.nodes = nodes;
      settings.seed = static_cast<uint64_t>(seed) + 7 + static_cast<uint64_t>(s);
      settings.settle = schemes[s] == protocols::Scheme::kGossip
                            ? 40 * sim::kSecond
                            : 20 * sim::kSecond;
      auto result = measure_failure_avg(settings, static_cast<int>(trials),
                                        90 * sim::kSecond);
      convergence[s] = result ? result->convergence_s : -1.0;
    }
    if (csv) {
      std::printf("%d,%.3f,%.3f,%.3f\n", nodes, convergence[0],
                  convergence[1], convergence[2]);
    } else {
      std::printf("%8d %14.2f %14.2f %14.2f\n", nodes, convergence[0],
                  convergence[1], convergence[2]);
    }
  }
  if (!csv) {
    std::printf(
        "\nshape check: hierarchical ~= all-to-all; gossip largest and"
        " growing with n (paper Fig. 13)\n");
  }
  return 0;
}
