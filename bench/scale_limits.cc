// Incremental scalability (paper requirement, Sec. 1: "incrementally
// scalable from a small cluster to a large-scale cluster with thousands of
// nodes"). Forms hierarchical clusters from 100 to 1000 nodes, reporting
// formation time, steady-state traffic, and single-failure behavior.
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

int main(int argc, char** argv) {
  util::FlagSet flags("scale_limits");
  auto& max_nodes = flags.add_int("max_nodes", 1000, "largest cluster");
  auto& seed = flags.add_int("seed", 7, "rng seed");
  flags.parse(argc, argv);

  std::printf("Scale sweep — hierarchical protocol, networks of 20\n\n");
  std::printf("%8s %12s %16s %16s %12s %12s\n", "nodes", "formed s",
              "per-node pkt/s", "per-node KB/s", "detect s", "converge s");

  for (int nodes : {100, 200, 500, 1000}) {
    if (nodes > static_cast<int>(max_nodes)) break;
    ExperimentSettings settings;
    settings.scheme = protocols::Scheme::kHierarchical;
    settings.nodes = nodes;
    settings.seed = static_cast<uint64_t>(seed);

    BuiltCluster built = build_cluster(settings);
    built.cluster->start_all();
    // Formation time: first moment every node's view is complete.
    double formed_s = -1;
    for (int tick = 1; tick <= 300; ++tick) {
      built.sim->run_until(tick * 100 * sim::kMillisecond);
      if (built.cluster->converged()) {
        formed_s = sim::to_seconds(built.sim->now());
        break;
      }
    }

    built.network->reset_stats();
    built.sim->run_until(built.sim->now() + 10 * sim::kSecond);
    double per_node_pkts =
        static_cast<double>(built.network->total_stats().rx_messages) /
        10.0 / nodes;
    double per_node_kbps =
        static_cast<double>(built.network->total_stats().rx_wire_bytes) /
        10.0 / nodes / 1e3;

    // One failure in the middle of the cluster.
    size_t victim_index = static_cast<size_t>(nodes / 2);
    net::HostId victim = built.layout.hosts[victim_index];
    sim::Time first = -1, last = -1;
    built.cluster->set_change_listener(
        [&](membership::NodeId subject, bool alive, sim::Time when) {
          if (subject != victim || alive) return;
          if (first < 0) first = when;
          last = when;
        });
    const sim::Time killed_at = built.sim->now();
    built.cluster->kill(victim_index);
    built.sim->run_until(killed_at + 30 * sim::kSecond);

    std::printf("%8d %12.1f %16.1f %16.2f %12.2f %12.2f\n", nodes, formed_s,
                per_node_pkts, per_node_kbps,
                first >= 0 ? sim::to_seconds(first - killed_at) : -1.0,
                last >= 0 ? sim::to_seconds(last - killed_at) : -1.0);
  }
  std::printf(
      "\nshape check: per-node traffic stays ~constant (the whole point of"
      " topology-scoped groups); formation, detection, and convergence"
      " times are independent of cluster size\n");
  return 0;
}
