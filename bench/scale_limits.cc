// Incremental scalability (paper requirement, Sec. 1: "incrementally
// scalable from a small cluster to a large-scale cluster with thousands of
// nodes"). Forms hierarchical clusters from 100 to 10,000 nodes in both
// anti-entropy modes, reporting formation time, steady-state traffic,
// per-node anti-entropy bytes, and single-failure behavior.
//
// Anti-entropy bytes are attributed from the per-kind tx byte counters: in
// a churn-free steady-state window the only update-kind traffic is the
// leaders' periodic refresh, so update + refresh_digest + refresh_pull +
// refresh_delta + sync + busy bytes are exactly the anti-entropy spend.
//
//   bench/scale_limits --max-nodes=10000 --json=BENCH_scale.json
//   bench/scale_limits --max-nodes=2000 --full-max-nodes=1000  # CI smoke
//
// Full mode re-announces O(n) rows per leader per round, so beyond
// --full-max-nodes (default 2000) only digest mode is measured — the
// impracticality of the full sweep at 10k is the redesign's motivation.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

namespace {

struct RunResult {
  int nodes = 0;
  const char* mode = "full";
  double formed_s = -1;
  double per_node_pkts = 0;
  double per_node_kbps = 0;
  double ae_bytes_per_node_per_s = 0;
  double ae_bytes_per_node_per_round = 0;
  double detect_s = -1;
  double converge_s = -1;
};

constexpr sim::Duration kRefreshInterval = 10 * sim::kSecond;
constexpr sim::Duration kWindow = 20 * sim::kSecond;

// The wire kinds that carry anti-entropy traffic (full refresh rides the
// update kind; digest mode adds its three kinds; truncation fallbacks ride
// the solicited sync exchange, budget overflow answers with busy).
const char* kAntiEntropyKinds[] = {
    "update",        "refresh_digest", "refresh_pull", "refresh_delta",
    "sync_request",  "sync_response",  "busy"};

uint64_t anti_entropy_tx_bytes(const obs::MetricsRegistry& metrics) {
  uint64_t total = 0;
  for (const char* kind : kAntiEntropyKinds) {
    total += metrics.counter_value(obs::Protocol::kNet,
                                   std::string("tx_bytes_kind_") + kind);
  }
  return total;
}

RunResult run_one(int nodes, bool digest, uint64_t seed) {
  RunResult result;
  result.nodes = nodes;
  result.mode = digest ? "digest" : "full";

  ExperimentSettings settings;
  settings.scheme = protocols::Scheme::kHierarchical;
  settings.nodes = nodes;
  settings.seed = seed;
  settings.hier.refresh_interval = kRefreshInterval;
  if (digest) {
    settings.hier.anti_entropy_mode = protocols::AntiEntropyMode::kDigest;
  }

  BuiltCluster built = build_cluster(settings);
  built.cluster->start_all();

  // Formation: first moment every node's view is complete. converged() is
  // O(n^2), so large clusters poll it on a coarser tick.
  const sim::Duration tick =
      nodes > 2000 ? 2 * sim::kSecond : 500 * sim::kMillisecond;
  const sim::Time formation_horizon = 180 * sim::kSecond;
  while (built.sim->now() < formation_horizon) {
    built.sim->run_until(built.sim->now() + tick);
    if (built.cluster->converged()) {
      result.formed_s = sim::to_seconds(built.sim->now());
      break;
    }
  }
  if (result.formed_s < 0) return result;  // never formed: report and bail

  // Quiescence: view convergence precedes protocol quiet — top-level
  // elections still re-seed full images and the formation sync backlog
  // drains through the busy-deferral budget for tens of seconds. Probe in
  // 10s steps until a whole step is free of elections and solicited image
  // traffic, so the measured window holds only the periodic anti-entropy.
  // (The update kind can't be the signal: in full mode the refresh itself
  // rides it.)
  obs::MetricsRegistry& metrics = built.network->obs().metrics;
  for (int probe = 0; probe < 30; ++probe) {
    metrics.reset(obs::Protocol::kNet);
    built.sim->run_until(built.sim->now() + 10 * sim::kSecond);
    if (metrics.counter_value(obs::Protocol::kNet,
                              "tx_bytes_kind_sync_response") == 0 &&
        metrics.counter_value(obs::Protocol::kNet,
                              "tx_bytes_kind_election") == 0 &&
        metrics.counter_value(obs::Protocol::kNet,
                              "tx_bytes_kind_coordinator") == 0) {
      break;
    }
  }

  metrics.reset(obs::Protocol::kNet);
  built.sim->run_until(built.sim->now() + kWindow);

  const double window_s = sim::to_seconds(kWindow);
  const double rounds = window_s / sim::to_seconds(kRefreshInterval);
  result.per_node_pkts =
      static_cast<double>(
          metrics.counter_value(obs::Protocol::kNet, "rx_messages")) /
      window_s / nodes;
  result.per_node_kbps =
      static_cast<double>(
          metrics.counter_value(obs::Protocol::kNet, "rx_wire_bytes")) /
      window_s / nodes / 1e3;
  if (std::getenv("SCALE_DEBUG_KINDS") != nullptr) {
    for (const char* kind : kAntiEntropyKinds) {
      std::fprintf(stderr, "  [%d %s] %s = %llu\n", nodes, result.mode, kind,
                   static_cast<unsigned long long>(metrics.counter_value(
                       obs::Protocol::kNet,
                       std::string("tx_bytes_kind_") + kind)));
    }
  }
  const double ae_bytes = static_cast<double>(anti_entropy_tx_bytes(metrics));
  result.ae_bytes_per_node_per_s = ae_bytes / window_s / nodes;
  result.ae_bytes_per_node_per_round = ae_bytes / rounds / nodes;

  // One failure in the middle of the cluster.
  size_t victim_index = static_cast<size_t>(nodes / 2);
  net::HostId victim = built.layout.hosts[victim_index];
  sim::Time first = -1, last = -1;
  built.cluster->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject != victim || alive) return;
        if (first < 0) first = when;
        last = when;
      });
  const sim::Time killed_at = built.sim->now();
  built.cluster->kill(victim_index);
  built.sim->run_until(killed_at + 30 * sim::kSecond);
  if (first >= 0) result.detect_s = sim::to_seconds(first - killed_at);
  if (last >= 0) result.converge_s = sim::to_seconds(last - killed_at);
  return result;
}

void write_json(const std::string& path, uint64_t seed,
                const std::vector<RunResult>& results) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open --json=%s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"scale_limits\",\n");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"window_s\": %.1f,\n", sim::to_seconds(kWindow));
  std::fprintf(out, "  \"refresh_interval_s\": %.1f,\n",
               sim::to_seconds(kRefreshInterval));
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        out,
        "    {\"nodes\": %d, \"mode\": \"%s\", \"formed_s\": %.2f,"
        " \"per_node_pkts_per_s\": %.2f, \"per_node_kbps\": %.3f,"
        " \"anti_entropy_bytes_per_node_per_s\": %.2f,"
        " \"anti_entropy_bytes_per_node_per_round\": %.1f,"
        " \"detect_s\": %.2f, \"converge_s\": %.2f}%s\n",
        r.nodes, r.mode, r.formed_s, r.per_node_pkts, r.per_node_kbps,
        r.ae_bytes_per_node_per_s, r.ae_bytes_per_node_per_round, r.detect_s,
        r.converge_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("scale_limits");
  auto& max_nodes = flags.add_int("max-nodes", 10000, "largest cluster");
  auto& full_max_nodes = flags.add_int(
      "full-max-nodes", 2000,
      "largest cluster measured in full anti-entropy mode (its O(n) refresh"
      " makes larger full-mode runs impractical — digest mode has no cap)");
  auto& seed = flags.add_int("seed", 7, "rng seed");
  auto& json_flag = flags.add_string(
      "json", "", "write machine-readable results to this file");
  flags.parse(argc, argv);

  std::printf("Scale sweep — hierarchical protocol, networks of 20\n\n");
  std::printf("%8s %8s %10s %14s %14s %16s %10s %10s\n", "nodes", "mode",
              "formed s", "per-node pkt/s", "per-node KB/s", "AE B/node/round",
              "detect s", "converge s");

  std::vector<RunResult> results;
  for (int nodes : {100, 200, 500, 1000, 2000, 5000, 10000}) {
    if (nodes > static_cast<int>(max_nodes)) break;
    for (bool digest : {false, true}) {
      if (!digest && nodes > static_cast<int>(full_max_nodes)) continue;
      RunResult r = run_one(nodes, digest, static_cast<uint64_t>(seed));
      results.push_back(r);
      std::printf("%8d %8s %10.1f %14.1f %14.2f %16.1f %10.2f %10.2f\n",
                  r.nodes, r.mode, r.formed_s, r.per_node_pkts,
                  r.per_node_kbps, r.ae_bytes_per_node_per_round, r.detect_s,
                  r.converge_s);
      if (r.formed_s < 0) {
        std::fprintf(stderr, "cluster of %d (%s) never converged\n", nodes,
                     r.mode);
        return 1;
      }
    }
  }

  if (!json_flag.empty()) {
    write_json(json_flag, static_cast<uint64_t>(seed), results);
  }
  std::printf(
      "\nshape check: per-node traffic stays ~constant (the whole point of"
      " topology-scoped groups); digest mode keeps anti-entropy bytes"
      " per node ~flat where full mode grows with the view\n");
  return 0;
}
