// Reproduces the paper's Section 4 scalability analysis as a table: the
// closed-form bandwidth, detection time, convergence time, and the
// bandwidth-detection/convergence-time products (BDP / BCP) for the three
// schemes across cluster sizes.
//
// Expected shape: BDP ~ k n^2 m (all-to-all), ~ n^2 m log n (gossip),
// ~ k n m-ish (hierarchical) — "the hierarchical scheme is the most
// scalable approach in terms of the bandwidth detection time product."
#include <cstdio>

#include "analysis/models.h"
#include "util/flags.h"
#include "util/strings.h"

using namespace tamp;

int main(int argc, char** argv) {
  util::FlagSet flags("table_scalability_analysis");
  auto& m = flags.add_double("m", 228, "per-node info bytes");
  auto& k = flags.add_double("k", 5, "missed heartbeats before death");
  auto& g = flags.add_double("g", 20, "hierarchical group size bound");
  auto& budget =
      flags.add_double("budget_mbps", 4.0, "bandwidth budget (MB/s)");
  flags.parse(argc, argv);

  std::printf("Section 4 — scalability analysis (m=%g B, k=%g, g=%g, "
              "B=%.1f MB/s)\n",
              m, k, g, budget);

  const double sizes[] = {20, 100, 500, 1000, 4000, 10000};
  for (double n : sizes) {
    analysis::ModelParams params;
    params.n = n;
    params.m = m;
    params.k = k;
    params.g = g;
    params.bandwidth = budget * 1e6;

    std::printf("\nn = %.0f   (tree height %.0f, ~%.0f groups)\n", n,
                analysis::tree_height(n, g), analysis::group_count(n, g));
    std::printf("  %-14s %14s %12s %12s %14s %14s\n", "scheme", "bandwidth",
                "detect (s)", "converge", "BDP (B)", "BCP (B)");
    for (const auto& row : analysis::compare_schemes(params)) {
      std::printf("  %-14s %14s %12.2f %12.2f %14.3e %14.3e\n",
                  row.scheme.c_str(),
                  util::human_bytes(row.bandwidth_fixed_freq).c_str(),
                  row.detection_fixed_freq, row.convergence_fixed_freq,
                  row.bdp, row.bcp);
    }
  }
  std::printf(
      "\nshape check: hierarchical has the lowest bandwidth, BDP and BCP at"
      " every size; gossip's detection grows with log n (paper Sec. 4)\n");
  return 0;
}
