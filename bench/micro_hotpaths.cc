// Google-benchmark micro-benchmarks for the library's hot paths: wire
// serialization (every heartbeat), membership-table maintenance (every
// received packet), service lookup (every invocation), the event queue
// (everything), and the observability work the transport adds to every
// send. These bound how large a simulated cluster stays tractable; the
// obs pair feeds tools/check_hotpath_overhead.py, which gates CI on the
// instrumentation staying under 5% of a full transport send.
#include <benchmark/benchmark.h>

#include "membership/codec.h"
#include "membership/messages.h"
#include "membership/table.h"
#include "net/topology.h"
#include "net/transport.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace tamp {
namespace {

void BM_EncodeEntry(benchmark::State& state) {
  auto entry = membership::make_representative_entry(42, 3);
  for (auto _ : state) {
    membership::WireWriter writer;
    membership::encode_entry(writer, entry);
    benchmark::DoNotOptimize(writer.size());
  }
}
BENCHMARK(BM_EncodeEntry);

void BM_DecodeEntry(benchmark::State& state) {
  auto entry = membership::make_representative_entry(42, 3);
  membership::WireWriter writer;
  membership::encode_entry(writer, entry);
  auto buffer = writer.take();
  for (auto _ : state) {
    membership::WireReader reader(buffer);
    auto decoded = membership::decode_entry(reader);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeEntry);

void BM_EncodeHeartbeat(benchmark::State& state) {
  membership::HeartbeatMsg heartbeat;
  heartbeat.entry = membership::make_representative_entry(7);
  heartbeat.is_leader = true;
  for (auto _ : state) {
    auto payload = membership::encode_message(
        membership::Message{heartbeat}, 228);
    benchmark::DoNotOptimize(payload->size());
  }
}
BENCHMARK(BM_EncodeHeartbeat);

void BM_DecodeHeartbeat(benchmark::State& state) {
  membership::HeartbeatMsg heartbeat;
  heartbeat.entry = membership::make_representative_entry(7);
  auto payload =
      membership::encode_message(membership::Message{heartbeat}, 228);
  for (auto _ : state) {
    auto decoded =
        membership::decode_message(payload->data(), payload->size());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeHeartbeat);

void BM_TableApplyRefresh(benchmark::State& state) {
  membership::MembershipTable table;
  const int nodes = static_cast<int>(state.range(0));
  std::vector<membership::EntryData> entries;
  for (int n = 0; n < nodes; ++n) {
    entries.push_back(membership::make_representative_entry(
        static_cast<membership::NodeId>(n)));
    table.apply(entries.back(), membership::Liveness::kDirect,
                membership::kInvalidNode, 0);
  }
  sim::Time now = 1;
  size_t i = 0;
  for (auto _ : state) {
    table.apply(entries[i % entries.size()], membership::Liveness::kDirect,
                membership::kInvalidNode, ++now);
    ++i;
  }
}
BENCHMARK(BM_TableApplyRefresh)->Arg(100)->Arg(1000)->Arg(4000);

void BM_TableLookup(benchmark::State& state) {
  membership::MembershipTable table;
  const int nodes = static_cast<int>(state.range(0));
  for (int n = 0; n < nodes; ++n) {
    table.apply(membership::make_representative_entry(
                    static_cast<membership::NodeId>(n)),
                membership::Liveness::kDirect, membership::kInvalidNode, 0);
  }
  for (auto _ : state) {
    auto matches = table.lookup("retriever", "2");
    benchmark::DoNotOptimize(matches.size());
  }
}
BENCHMARK(BM_TableLookup)->Arg(100)->Arg(1000);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  util::Rng rng(7);
  const int depth = static_cast<int>(state.range(0));
  for (int i = 0; i < depth; ++i) {
    queue.push(static_cast<sim::Time>(rng.uniform_u64(1u << 30)), [] {});
  }
  for (auto _ : state) {
    auto fired = queue.pop();
    benchmark::DoNotOptimize(fired.t);
    queue.push(fired.t + static_cast<sim::Time>(rng.uniform_u64(1000)),
               [] {});
  }
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(100000);

void BM_EventQueueCancel(benchmark::State& state) {
  sim::EventQueue queue;
  for (auto _ : state) {
    auto id = queue.push(1000, [] {});
    queue.cancel(id);
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_ObsCounterAdd(benchmark::State& state) {
  // A resolved registry handle: the steady-state cost once a daemon has
  // cached its Counter* at construction.
  obs::Observability obs;
  obs::Counter* counter =
      obs.metrics.counter(obs::Protocol::kNet, "tx_messages", 3);
  for (auto _ : state) {
    counter->add();
    benchmark::DoNotOptimize(counter->value);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsTracerDisabledRecord(benchmark::State& state) {
  // Every instrumented site pays this when tracing is off (the default).
  obs::Observability obs;
  for (auto _ : state) {
    obs.tracer.record(obs::TraceKind::kDeltaEmit, 3, 0, 1, 2, 3);
    benchmark::DoNotOptimize(obs.tracer.recorded());
  }
}
BENCHMARK(BM_ObsTracerDisabledRecord);

// The exact per-send work the observability layer added to the transmit
// path: classify the payload's wire kind, bump the per-host and per-kind
// counters, and offer the (disabled) tracer an event. The CI gate compares
// this against BM_TransportSendUnicast below.
void BM_ObsHotpathAddition(benchmark::State& state) {
  obs::Observability obs;
  obs::Counter* tx =
      obs.metrics.counter(obs::Protocol::kNet, "tx_messages", 3);
  obs::Counter* bytes =
      obs.metrics.counter(obs::Protocol::kNet, "tx_wire_bytes", 3);
  obs::Counter* kind_total =
      obs.metrics.counter(obs::Protocol::kNet, "tx_kind_heartbeat");
  membership::HeartbeatMsg heartbeat;
  heartbeat.entry = membership::make_representative_entry(7);
  auto payload =
      membership::encode_message(membership::Message{heartbeat}, 228);
  for (auto _ : state) {
    uint8_t kind =
        membership::classify_wire_kind(payload->data(), payload->size());
    benchmark::DoNotOptimize(kind);
    tx->add();
    bytes->add(payload->size());
    kind_total->add();
    obs.tracer.record(obs::TraceKind::kEgressDrop, 3, 0, -1, kind);
  }
}
BENCHMARK(BM_ObsHotpathAddition);

// Denominator for the overhead gate: a full instrumented unicast send of a
// representative heartbeat between two switched hosts, drained to delivery.
void BM_TransportSendUnicast(benchmark::State& state) {
  sim::Simulation sim(11);
  net::Topology topo;
  net::DeviceId sw = topo.add_l2_switch("sw");
  net::HostId a = topo.add_host("a");
  net::HostId b = topo.add_host("b");
  topo.connect(a, sw);
  topo.connect(b, sw);
  net::Network net(sim, topo);
  membership::install_wire_classifier(net);
  uint64_t received = 0;
  net.bind(b, 7, [&](const net::Packet&) { ++received; });
  membership::HeartbeatMsg heartbeat;
  heartbeat.entry = membership::make_representative_entry(7);
  auto payload =
      membership::encode_message(membership::Message{heartbeat}, 228);
  for (auto _ : state) {
    net.send_unicast(a, {b, 7}, payload);
    sim.run();
  }
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_TransportSendUnicast);

}  // namespace
}  // namespace tamp

BENCHMARK_MAIN();
