// Ablation: leader failure handling (paper Section 3.1.1). Compares the
// fast path (designated backup takes over) with the slow path (leader and
// backup die together, forcing a bully election), measuring how long the
// group is leaderless and how many spurious view changes the failover
// causes at other nodes.
#include <cstdio>
#include <set>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

namespace {

struct FailoverResult {
  double new_leader_after_s = -1;  // from kill to a new level-0 leader
  int spurious_leaves = 0;         // leaves recorded for nodes still alive
  bool converged = false;
};

FailoverResult run(int nodes, bool kill_backup_too, uint64_t seed) {
  ExperimentSettings settings;
  settings.nodes = nodes;
  settings.seed = seed;
  BuiltCluster built = build_cluster(settings);
  built.cluster->start_all();
  built.sim->run_until(20 * sim::kSecond);

  // Find the first rack's leader and its backup.
  protocols::HierDaemon* leader = nullptr;
  for (size_t i = 0; i < built.cluster->size(); ++i) {
    auto* daemon = built.cluster->hier_daemon(i);
    if (daemon->is_leader(0)) {
      leader = daemon;
      break;
    }
  }
  if (leader == nullptr) return {};
  net::HostId leader_host = leader->self();
  net::HostId backup_host = leader->backup_of(0);

  auto index_of = [&](net::HostId host) {
    for (size_t i = 0; i < built.cluster->size(); ++i) {
      if (built.cluster->hosts()[i] == host) return i;
    }
    return built.cluster->size();
  };

  std::set<net::HostId> killed{leader_host};
  if (kill_backup_too && backup_host != membership::kInvalidNode) {
    killed.insert(backup_host);
  }

  int spurious = 0;
  built.cluster->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time) {
        if (!alive && !killed.contains(subject)) ++spurious;
      });

  const sim::Time killed_at = built.sim->now();
  for (net::HostId host : killed) built.cluster->kill(index_of(host));

  // Watch for a new leader in the victim's rack (hosts sharing its rack).
  FailoverResult result;
  auto check = [&]() -> protocols::HierDaemon* {
    for (size_t i = 0; i < built.cluster->size(); ++i) {
      auto* daemon = built.cluster->hier_daemon(i);
      if (daemon == nullptr || !daemon->running()) continue;
      if (daemon->is_leader(0) &&
          built.topology->ttl_required(daemon->self(), leader_host) == 1) {
        return daemon;
      }
    }
    return nullptr;
  };
  for (int tick = 1; tick <= 300; ++tick) {
    built.sim->run_until(killed_at + tick * 100 * sim::kMillisecond);
    if (check() != nullptr) {
      result.new_leader_after_s =
          sim::to_seconds(built.sim->now() - killed_at);
      break;
    }
  }
  built.sim->run_until(killed_at + 45 * sim::kSecond);
  result.converged = built.cluster->converged();
  result.spurious_leaves = spurious;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_leader_failover");
  auto& nodes = flags.add_int("nodes", 100, "cluster size");
  auto& trials = flags.add_int("trials", 3, "trials per configuration");
  auto& seed = flags.add_int("seed", 21, "rng seed");
  flags.parse(argc, argv);

  std::printf("Ablation — level-0 leader failover (n=%lld)\n\n",
              static_cast<long long>(nodes));
  std::printf("%-26s %16s %18s %12s\n", "scenario", "new leader (s)",
              "spurious leaves", "converged");

  for (bool kill_backup : {false, true}) {
    util::OnlineStats takeover;
    int spurious = 0;
    bool all_converged = true;
    for (int trial = 0; trial < static_cast<int>(trials); ++trial) {
      auto result = run(static_cast<int>(nodes), kill_backup,
                        static_cast<uint64_t>(seed) + trial * 13);
      if (result.new_leader_after_s >= 0) {
        takeover.add(result.new_leader_after_s);
      }
      spurious += result.spurious_leaves;
      all_converged = all_converged && result.converged;
    }
    std::printf("%-26s %16.2f %18d %12s\n",
                kill_backup ? "leader + backup die" : "leader dies (backup up)",
                takeover.mean(), spurious, all_converged ? "yes" : "NO");
  }
  std::printf(
      "\nshape check: backup takeover recovers right at the detection"
      " timeout; losing leader+backup adds the bully election delay; view"
      " flapping stays zero in both cases\n");
  return 0;
}
