// Reproduces paper Figure 12: failure detection time vs cluster size.
//
// A node's daemon is killed; the earliest time any surviving node records
// the failure is the detection time. Expected shape (paper): all-to-all and
// hierarchical constant at ~max_losses x period (5 s); gossip largest and
// growing ~logarithmically (13-20 s over this range at Pmistake = 0.1%).
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

int main(int argc, char** argv) {
  util::FlagSet flags("fig12_detection_time");
  auto& min_nodes = flags.add_int("min_nodes", 20, "smallest cluster");
  auto& max_nodes = flags.add_int("max_nodes", 100, "largest cluster");
  auto& step = flags.add_int("step", 20, "cluster size step");
  auto& trials = flags.add_int("trials", 3, "kills averaged per point");
  auto& seed = flags.add_int("seed", 1, "rng seed");
  auto& csv = flags.add_bool("csv", false, "emit CSV instead of a table");
  flags.parse(argc, argv);

  if (csv) {
    std::printf("nodes,alltoall_s,gossip_s,hier_s\n");
  } else {
    std::printf("Figure 12 — failure detection time\n");
    std::printf("(max packet losses 5, 1 Hz heartbeats, mean of %lld kills)\n",
                static_cast<long long>(trials));
    print_series_header("Failure detection time", "seconds");
  }

  for (int nodes = static_cast<int>(min_nodes);
       nodes <= static_cast<int>(max_nodes);
       nodes += static_cast<int>(step)) {
    double detection[3] = {0, 0, 0};
    const protocols::Scheme schemes[] = {protocols::Scheme::kAllToAll,
                                         protocols::Scheme::kGossip,
                                         protocols::Scheme::kHierarchical};
    for (int s = 0; s < 3; ++s) {
      ExperimentSettings settings;
      settings.scheme = schemes[s];
      settings.nodes = nodes;
      settings.seed = static_cast<uint64_t>(seed) + static_cast<uint64_t>(s);
      settings.settle = schemes[s] == protocols::Scheme::kGossip
                            ? 40 * sim::kSecond
                            : 20 * sim::kSecond;
      auto result = measure_failure_avg(settings, static_cast<int>(trials),
                                        90 * sim::kSecond);
      detection[s] = result ? result->detection_s : -1.0;
    }
    if (csv) {
      std::printf("%d,%.3f,%.3f,%.3f\n", nodes, detection[0], detection[1],
                  detection[2]);
    } else {
      std::printf("%8d %14.2f %14.2f %14.2f\n", nodes, detection[0],
                  detection[1], detection[2]);
    }
  }
  if (!csv) {
    std::printf(
        "\nshape check: all-to-all == hierarchical == ~5 s constant; gossip"
        " largest, growing with log(n) (paper Fig. 12)\n");
  }
  return 0;
}
