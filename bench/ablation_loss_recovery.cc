// Ablation: the paper's message-loss machinery (Section 3.1.2). Sweeps the
// injected packet-loss rate against the piggyback depth and reports how
// often gaps were healed by piggybacked records vs. full synchronization
// polls, and whether the cluster still converges through churn.
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

namespace {

struct LossResult {
  bool converged = false;
  uint64_t piggyback_recoveries = 0;
  uint64_t syncs = 0;
};

LossResult run(int nodes, double loss, int piggyback, uint64_t seed) {
  ExperimentSettings settings;
  settings.nodes = nodes;
  settings.seed = seed;
  BuiltCluster built = build_cluster(settings);
  // Rebuild with the requested piggyback depth.
  protocols::Cluster::Options opts;
  opts.scheme = protocols::Scheme::kHierarchical;
  opts.heartbeat_pad = settings.heartbeat_pad;
  opts.hier.piggyback = piggyback;
  built.cluster = std::make_unique<protocols::Cluster>(
      *built.sim, *built.network, built.layout.hosts, opts);

  built.cluster->start_all();
  built.sim->run_until(20 * sim::kSecond);

  built.network->set_extra_loss(loss);
  // Churn under loss: kill two nodes, restart one.
  built.cluster->kill(3);
  built.cluster->kill(built.cluster->size() / 2);
  built.sim->run_until(built.sim->now() + 15 * sim::kSecond);
  built.cluster->restart(3);
  built.sim->run_until(built.sim->now() + 15 * sim::kSecond);
  built.network->set_extra_loss(0.0);
  // Allow a full anti-entropy cycle plus the orphan-expiry horizon so any
  // entry resurrected by reordered replays under loss is garbage-collected.
  built.sim->run_until(built.sim->now() + 90 * sim::kSecond);

  LossResult result;
  result.converged = built.cluster->converged();
  for (size_t i = 0; i < built.cluster->size(); ++i) {
    auto* daemon = built.cluster->hier_daemon(i);
    if (daemon == nullptr || !daemon->running()) continue;
    const obs::MetricsRegistry& m = built.network->obs().metrics;
    result.piggyback_recoveries += m.counter_value(
        obs::Protocol::kHier, "gaps_recovered_by_piggyback", daemon->self());
    result.syncs +=
        m.counter_value(obs::Protocol::kHier, "syncs_requested",
                        daemon->self());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_loss_recovery");
  auto& nodes = flags.add_int("nodes", 60, "cluster size");
  auto& seed = flags.add_int("seed", 9, "rng seed");
  flags.parse(argc, argv);

  std::printf("Ablation — packet loss vs piggyback depth (n=%lld, churn of"
              " 2 kills + 1 restart under loss)\n\n",
              static_cast<long long>(nodes));
  std::printf("%8s %10s %12s %12s %12s\n", "loss %", "piggyback",
              "converged", "pb-heals", "sync polls");

  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    for (int piggyback : {0, 1, 3, 5}) {
      auto result = run(static_cast<int>(nodes), loss, piggyback,
                        static_cast<uint64_t>(seed));
      std::printf("%8.0f %10d %12s %12llu %12llu\n", loss * 100, piggyback,
                  result.converged ? "yes" : "NO",
                  static_cast<unsigned long long>(result.piggyback_recoveries),
                  static_cast<unsigned long long>(result.syncs));
    }
  }
  std::printf(
      "\nshape check: deeper piggyback heals more gaps in place and needs"
      " fewer sync polls; convergence holds through 20%% loss\n");
  return 0;
}
