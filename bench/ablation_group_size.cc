// Ablation: how the hierarchical protocol's group-size bound (the paper's
// per-network node count) trades bandwidth against convergence at a fixed
// cluster size. Small groups mean less multicast traffic per channel but a
// taller tree (more relay hops and more leaders); large groups approach
// all-to-all within each network.
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_group_size");
  auto& nodes = flags.add_int("nodes", 400, "cluster size");
  auto& trials = flags.add_int("trials", 2, "kills averaged per point");
  auto& seed = flags.add_int("seed", 5, "rng seed");
  flags.parse(argc, argv);

  std::printf("Ablation — hierarchical group size at n=%lld\n\n",
              static_cast<long long>(nodes));
  std::printf("%12s %14s %14s %14s\n", "group size", "bandwidth MB/s",
              "detection s", "convergence s");

  for (int group : {5, 10, 20, 50, 100}) {
    ExperimentSettings settings;
    settings.scheme = protocols::Scheme::kHierarchical;
    settings.nodes = static_cast<int>(nodes);
    settings.nodes_per_network = group;
    settings.seed = static_cast<uint64_t>(seed);

    auto bandwidth = measure_bandwidth(settings);
    auto failure = measure_failure_avg(settings, static_cast<int>(trials));
    std::printf("%12d %14.3f %14.2f %14.2f\n", group,
                bandwidth ? *bandwidth / 1e6 : -1.0,
                failure ? failure->detection_s : -1.0,
                failure ? failure->convergence_s : -1.0);
  }
  std::printf(
      "\nshape check: steady-state bandwidth grows with group size (each"
      " channel carries more heartbeats); very small groups pay instead in"
      " leader count (more anti-entropy refresh traffic, taller tree);"
      " detection stays ~constant — local groups always detect\n");
  return 0;
}
