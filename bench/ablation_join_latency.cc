// Ablation: join responsiveness. The paper's requirements say the
// membership service must detect "node departures and joins" quickly; the
// evaluation only measures departures (Figs. 12-13), so this bench fills in
// the join side: the time from a new node starting its daemon until (a) the
// first other node lists it and (b) every node lists it.
#include <cstdio>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

namespace {

struct JoinResult {
  double first_s = -1;
  double everyone_s = -1;
};

std::optional<JoinResult> measure_join(ExperimentSettings settings) {
  BuiltCluster built = build_cluster(settings);

  // Late joiner: last host of the first rack, down from the start.
  size_t joiner_index =
      static_cast<size_t>(settings.nodes_per_network - 1);
  net::HostId joiner = built.layout.hosts[joiner_index];

  sim::Time first = -1, last = -1;
  int observers = 0;
  built.cluster->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject != joiner || !alive) return;
        if (first < 0) first = when;
        last = when;
        ++observers;
      });

  built.cluster->kill(joiner_index);  // down before any heartbeat escapes
  built.cluster->start_all();
  built.sim->run_until(settings.settle);
  if (!built.cluster->converged()) return std::nullopt;

  first = -1;
  last = -1;
  observers = 0;
  const sim::Time joined_at = built.sim->now();
  built.cluster->restart(joiner_index);
  built.sim->run_until(joined_at + 60 * sim::kSecond);
  if (!built.cluster->converged() ||
      observers < settings.nodes - 1) {
    return std::nullopt;
  }
  JoinResult result;
  result.first_s = sim::to_seconds(first - joined_at);
  result.everyone_s = sim::to_seconds(last - joined_at);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_join_latency");
  auto& nodes = flags.add_int("nodes", 100, "cluster size");
  auto& seed = flags.add_int("seed", 3, "rng seed");
  flags.parse(argc, argv);

  std::printf("Ablation — join visibility latency (n=%lld)\n\n",
              static_cast<long long>(nodes));
  std::printf("%-14s %18s %18s\n", "scheme", "first observer s",
              "cluster-wide s");

  const protocols::Scheme schemes[] = {protocols::Scheme::kAllToAll,
                                       protocols::Scheme::kGossip,
                                       protocols::Scheme::kHierarchical};
  for (auto scheme : schemes) {
    ExperimentSettings settings;
    settings.scheme = scheme;
    settings.nodes = static_cast<int>(nodes);
    settings.seed = static_cast<uint64_t>(seed);
    settings.settle = scheme == protocols::Scheme::kGossip
                          ? 40 * sim::kSecond
                          : 20 * sim::kSecond;
    auto result = measure_join(settings);
    std::printf("%-14s %18.3f %18.3f\n", protocols::scheme_name(scheme),
                result ? result->first_s : -1.0,
                result ? result->everyone_s : -1.0);
  }
  std::printf(
      "\nshape check: heartbeat schemes see a joiner within ~1 period"
      " locally; hierarchical spreads it via leader relays in ~1-3 s"
      " cluster-wide; gossip needs O(log n) rounds\n");
  return 0;
}
