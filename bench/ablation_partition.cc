// Ablation: the Timeout protocol's level-scaled timers (paper Sec. 3.1.2).
// Higher membership levels use larger timeouts so that when a group leader
// dies, the lower level re-elects before the higher level purges the whole
// subtree — but larger factors also delay *real* partition detection.
// This bench sweeps the factor and measures both sides of the trade-off:
//   (a) how fast a genuine switch failure (rack uplink cut) is detected by
//       the rest of the cluster, and
//   (b) whether a mere leader death causes spurious subtree purges.
#include <cstdio>
#include <set>

#include "bench/common.h"
#include "util/flags.h"

using namespace tamp;
using namespace tamp::bench;

namespace {

struct PartitionResult {
  double first_purge_s = -1;   // earliest main-partition observer
  double all_purged_s = -1;    // every main-partition node dropped the rack
  int spurious_leaves = 0;     // (b): leaves of live nodes on leader death
};

PartitionResult run(double factor, uint64_t seed) {
  PartitionResult result;

  // (a) Partition detection.
  {
    sim::Simulation sim(seed);
    net::Topology topo;
    net::RackedClusterParams params;
    params.racks = 3;
    params.hosts_per_rack = 10;
    auto layout = net::build_racked_cluster(topo, params);
    net::Network net(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier.level_timeout_factor = factor;
    protocols::Cluster cluster(sim, net, layout.hosts, opts);

    std::set<net::HostId> lost_rack(layout.racks[2].begin(),
                                    layout.racks[2].end());
    std::set<net::HostId> main_side(layout.racks[0].begin(),
                                    layout.racks[0].end());
    main_side.insert(layout.racks[1].begin(), layout.racks[1].end());

    sim::Time first = -1;
    std::map<net::HostId, std::set<net::HostId>> purged_by;
    for (size_t i = 0; i < cluster.size(); ++i) {
      net::HostId self = cluster.hosts()[i];
      if (!main_side.contains(self)) continue;
      cluster.daemon(i).set_change_listener(
          [&, self](membership::NodeId subject, bool alive, sim::Time when) {
            if (alive || !lost_rack.contains(subject)) return;
            if (first < 0) first = when;
            purged_by[self].insert(subject);
          });
    }

    cluster.start_all();
    sim.run_until(20 * sim::kSecond);
    if (!cluster.converged()) return result;
    const sim::Time cut_at = sim.now();
    topo.set_link_up(layout.rack_uplinks[2], false);

    // Scan forward until every main-side node purged the whole rack.
    for (int tick = 1; tick <= 600; ++tick) {
      sim.run_until(cut_at + tick * 100 * sim::kMillisecond);
      bool done = purged_by.size() == main_side.size();
      for (const auto& [node, purged] : purged_by) {
        done = done && purged.size() == lost_rack.size();
      }
      if (done) {
        result.all_purged_s = sim::to_seconds(sim.now() - cut_at);
        break;
      }
    }
    if (first >= 0) result.first_purge_s = sim::to_seconds(first - cut_at);
  }

  // (b) Leader death must not purge its subtree.
  {
    sim::Simulation sim(seed + 1);
    net::Topology topo;
    net::RackedClusterParams params;
    params.racks = 3;
    params.hosts_per_rack = 10;
    auto layout = net::build_racked_cluster(topo, params);
    net::Network net(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier.level_timeout_factor = factor;
    protocols::Cluster cluster(sim, net, layout.hosts, opts);
    cluster.start_all();
    sim.run_until(20 * sim::kSecond);

    protocols::HierDaemon* leader = nullptr;
    for (net::HostId h : layout.racks[1]) {
      auto* d = static_cast<protocols::HierDaemon*>(cluster.daemon_for(h));
      if (d->is_leader(0)) leader = d;
    }
    if (leader == nullptr) return result;
    net::HostId dead = leader->self();
    cluster.set_change_listener(
        [&](membership::NodeId subject, bool alive, sim::Time) {
          if (!alive && subject != dead) ++result.spurious_leaves;
        });
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.hosts()[i] == dead) cluster.kill(i);
    }
    sim.run_until(sim.now() + 30 * sim::kSecond);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_partition");
  auto& seed = flags.add_int("seed", 33, "rng seed");
  flags.parse(argc, argv);

  std::printf("Ablation — level timeout factor: partition detection vs"
              " leader-death flap (3 racks x 10)\n\n");
  std::printf("%10s %16s %16s %18s\n", "factor", "first purge s",
              "all purged s", "spurious leaves");
  for (double factor : {1.0, 1.25, 1.5, 2.0, 3.0}) {
    auto result = run(factor, static_cast<uint64_t>(seed));
    std::printf("%10.2f %16.2f %16.2f %18d\n", factor,
                result.first_purge_s, result.all_purged_s,
                result.spurious_leaves);
  }
  std::printf(
      "\nshape check: partition detection time scales linearly with the"
      " factor (higher-level timeout = k * period * factor); leader death"
      " never purges its subtree (re-election + refresh always beat the"
      " purge) — the trade-off the paper's level-scaled timeouts manage\n");
  return 0;
}
