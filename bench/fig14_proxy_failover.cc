// Reproduces paper Figure 14: effectiveness of the membership proxy.
//
// A prototype search engine runs in two datacenters (~90 ms RTT apart). At
// t=20 s the document retrieval service in datacenter A fails; at t=40 s it
// recovers. The bench prints the per-second response time and throughput of
// queries entering datacenter A over the 60-second run.
//
// Expected shape (paper): throughput dips slightly during the failure
// detection window, then matches the arrival rate again; response time
// steps from local (~tens of ms) to >200 ms while doc lookups cross the
// WAN through the proxies, and drops back upon recovery.
#include <cstdio>
#include <set>

#include "service/multidc.h"
#include "service/search.h"
#include "util/flags.h"

using namespace tamp;

int main(int argc, char** argv) {
  util::FlagSet flags("fig14_proxy_failover");
  auto& qps = flags.add_double("qps", 40.0, "query arrival rate (per second)");
  auto& fail_at = flags.add_int("fail_at", 20, "failure time (s)");
  auto& recover_at = flags.add_int("recover_at", 40, "recovery time (s)");
  auto& run_for = flags.add_int("run_for", 60, "measured run length (s)");
  auto& seed = flags.add_int("seed", 42, "rng seed");
  auto& csv = flags.add_bool("csv", false, "emit CSV instead of a table");
  flags.parse(argc, argv);

  sim::Simulation sim(static_cast<uint64_t>(seed));
  service::MultiDcParams params = service::default_two_dc_params();
  service::MultiDcHarness harness(sim, params);

  service::SearchParams search;
  search.replicas = 2;
  service::SearchDeployment dc_a(sim, harness.network(), harness.cluster(0),
                                 search);
  service::SearchDeployment dc_b(sim, harness.network(), harness.cluster(1),
                                 search);

  harness.start();
  dc_a.start();
  dc_b.start();

  // Let both clusters and the proxies converge before measuring.
  sim.run_until(20 * sim::kSecond);
  if (!harness.cluster(0).converged() || !harness.cluster(1).converged()) {
    std::printf("clusters failed to converge; aborting\n");
    return 1;
  }
  const sim::Time t0 = sim.now();

  service::SearchWorkload workload(sim, dc_a.gateways(), qps);
  workload.run_for(static_cast<sim::Duration>(run_for) * sim::kSecond);

  std::set<size_t> doc_nodes(dc_a.doc_nodes().begin(),
                             dc_a.doc_nodes().end());
  sim.schedule_at(t0 + static_cast<sim::Duration>(fail_at) * sim::kSecond,
                  [&] {
                    for (size_t node : doc_nodes) {
                      harness.cluster(0).kill(node);
                    }
                  });
  sim.schedule_at(
      t0 + static_cast<sim::Duration>(recover_at) * sim::kSecond, [&] {
        for (size_t node : doc_nodes) {
          harness.cluster(0).restart(node);
          dc_a.restart_providers_on(node);
        }
      });

  sim.run_until(t0 + static_cast<sim::Duration>(run_for + 5) * sim::kSecond);

  if (csv) {
    std::printf("sec,arrived,completed,failed,response_ms\n");
  } else {
    std::printf("Figure 14 — membership proxy failover "
                "(doc service in DC A fails at %llds, recovers at %llds)\n\n",
                static_cast<long long>(fail_at),
                static_cast<long long>(recover_at));
    std::printf("%6s %12s %12s %12s %14s\n", "sec", "arrived", "completed",
                "failed", "response ms");
  }
  const size_t first_bucket = static_cast<size_t>(t0 / sim::kSecond);
  const auto& buckets = workload.buckets();
  for (size_t s = first_bucket;
       s < buckets.size() &&
       s < first_bucket + static_cast<size_t>(run_for);
       ++s) {
    const auto& bucket = buckets[s];
    if (csv) {
      std::printf("%zu,%d,%d,%d,%.2f\n", s - first_bucket, bucket.arrived,
                  bucket.completed, bucket.failed, bucket.mean_latency_ms());
    } else {
      std::printf("%6zu %12d %12d %12d %14.1f\n", s - first_bucket,
                  bucket.arrived, bucket.completed, bucket.failed,
                  bucket.mean_latency_ms());
    }
  }
  if (csv) return 0;

  // Phase summary: before / during / after the failure.
  auto summarize = [&](size_t from, size_t to, const char* label) {
    int completed = 0, failed = 0;
    double latency = 0;
    for (size_t s = first_bucket + from; s < first_bucket + to &&
                                         s < buckets.size();
         ++s) {
      completed += buckets[s].completed;
      failed += buckets[s].failed;
      latency += buckets[s].latency_ms_sum;
    }
    double seconds = static_cast<double>(to - from);
    std::printf("  %-22s %8.1f q/s %8d failed %10.1f ms mean\n", label,
                completed / seconds, failed,
                completed > 0 ? latency / completed : 0.0);
  };
  std::printf("\nphase summary:\n");
  summarize(2, static_cast<size_t>(fail_at), "before failure");
  summarize(static_cast<size_t>(fail_at), static_cast<size_t>(recover_at),
            "during failure");
  summarize(static_cast<size_t>(recover_at) + 3,
            static_cast<size_t>(run_for), "after recovery");
  std::printf(
      "\nshape check: small throughput dip during detection, >200 ms"
      " responses while failed over, fast drop after recovery (paper"
      " Fig. 14)\n");
  return 0;
}
