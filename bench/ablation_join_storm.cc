// Ablation: join-storm recovery under the egress capacity model, with and
// without full-image admission control. J of 128 nodes are down from the
// start; once the survivors converge, all J restart at the same instant —
// the mass-join storm a rolling-restart or healed power rail produces. We
// measure how long the cluster takes to re-converge and the worst per-node
// egress bandwidth seen in any one-second window, which is the quantity
// admission control exists to bound: without it every joiner's bootstrap
// is answered immediately and the serving leaders' NICs become O(joiners)
// bursts; with it the serves drain at `image_serve_budget` per period and
// the overflow is deferred with Busy pushback.
#include <cstdio>
#include <string>
#include <vector>

#include "net/builders.h"
#include "obs/obs.h"
#include "protocols/cluster.h"
#include "util/flags.h"

using namespace tamp;

namespace {

struct StormResult {
  double converge_s = -1;             // restart -> every view correct
  double peak_node_bytes_per_s = 0;   // worst host, worst 1 s window
  uint64_t busy_sent = 0;
  uint64_t busy_deferrals = 0;
  uint64_t exchange_retries = 0;
  uint64_t tx_dropped_egress = 0;
  std::string trace_jsonl;   // filled when tracing is on
  std::string metrics_json;  // filled when a metrics dump was requested
};

StormResult measure_storm(int nodes, int joiners, bool admission,
                          uint64_t seed, bool trace, bool metrics) {
  sim::Simulation sim(seed);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 8;
  params.hosts_per_rack = (nodes + params.racks - 1) / params.racks;
  auto layout = net::build_racked_cluster(topo, params);
  layout.hosts.resize(static_cast<size_t>(nodes));

  // The egress capacity model makes bandwidth a contended resource: a
  // 100 Mbit/s NIC with a 256 KiB queue, the same shape the chaos
  // scenarios run under.
  net::NetworkConfig net_config;
  net_config.egress_bytes_per_sec = 12.5e6;
  net_config.egress_queue_bytes = 256 * 1024;
  net::Network net(sim, topo, net_config);
  if (trace) net.obs().tracer.set_enabled(true);

  protocols::Cluster::Options opts;
  opts.scheme = protocols::Scheme::kHierarchical;
  opts.heartbeat_pad = 228;  // the paper's measured entry size
  opts.hier.image_serve_budget = admission ? 8 : 0;
  protocols::Cluster cluster(sim, net, layout.hosts, opts);

  // Joiners: stride-sampled so the storm hits every rack, skipping node 0
  // (the stable top-level leader) — a rack-local storm would understate
  // the fan-in on the serving leaders.
  std::vector<size_t> down;
  for (int j = 0; j < joiners; ++j) {
    down.push_back(1 + static_cast<size_t>(j) *
                           static_cast<size_t>(nodes - 1) /
                           static_cast<size_t>(joiners));
  }
  for (size_t index : down) cluster.kill(index);

  cluster.start_all();
  sim.run_until(30 * sim::kSecond);
  StormResult result;
  if (!cluster.converged()) return result;  // survivors never settled

  obs::MetricsRegistry& registry = net.obs().metrics;
  registry.reset(obs::Protocol::kNet);
  const sim::Time storm_at = sim.now();
  for (size_t index : down) cluster.restart(index);

  // Sample per-host egress in 1 s windows while the storm plays out.
  std::vector<uint64_t> prev_tx(layout.hosts.size(), 0);
  const sim::Duration window = sim::kSecond;
  const sim::Duration deadline = 180 * sim::kSecond;
  while (sim.now() - storm_at < deadline) {
    sim.run_until(sim.now() + window);
    for (size_t i = 0; i < layout.hosts.size(); ++i) {
      uint64_t tx = registry.counter_value(obs::Protocol::kNet,
                                           "tx_wire_bytes", layout.hosts[i]);
      double rate = static_cast<double>(tx - prev_tx[i]) /
                    sim::to_seconds(window);
      if (rate > result.peak_node_bytes_per_s) {
        result.peak_node_bytes_per_s = rate;
      }
      prev_tx[i] = tx;
    }
    if (result.converge_s < 0 && cluster.converged()) {
      result.converge_s = sim::to_seconds(sim.now() - storm_at);
      // One extra window so the tail of deferred serves is in the peak.
      sim.run_until(sim.now() + window);
      break;
    }
  }

  result.busy_sent =
      registry.counter_sum_over_nodes(obs::Protocol::kHier, "busy_sent");
  result.busy_deferrals =
      registry.counter_sum_over_nodes(obs::Protocol::kHier, "busy_deferrals");
  result.exchange_retries = registry.counter_sum_over_nodes(
      obs::Protocol::kHier, "exchange_retries");
  result.tx_dropped_egress =
      registry.counter_value(obs::Protocol::kNet, "tx_dropped_egress");
  if (trace) result.trace_jsonl = net.obs().tracer.to_jsonl();
  if (metrics) result.metrics_json = registry.to_json();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("ablation_join_storm");
  auto& nodes = flags.add_int("nodes", 128, "cluster size");
  auto& seed = flags.add_int("seed", 5, "rng seed");
  auto& trace_flag = flags.add_string(
      "trace", "", "append each run's structured event trace (JSONL,"
                   " byte-identical per seed) to this file");
  auto& metrics_flag = flags.add_string(
      "metrics", "", "append each run's metrics-registry snapshot (JSON)"
                     " to this file");
  flags.parse(argc, argv);

  std::FILE* trace_out = nullptr;
  if (!trace_flag.empty()) {
    trace_out = std::fopen(trace_flag.c_str(), "w");
    if (trace_out == nullptr) {
      std::fprintf(stderr, "cannot open --trace=%s\n", trace_flag.c_str());
      return 2;
    }
  }
  std::FILE* metrics_out = nullptr;
  if (!metrics_flag.empty()) {
    metrics_out = std::fopen(metrics_flag.c_str(), "w");
    if (metrics_out == nullptr) {
      std::fprintf(stderr, "cannot open --metrics=%s\n", metrics_flag.c_str());
      return 2;
    }
  }

  std::printf(
      "Ablation — join-storm recovery vs. admission control (n=%lld,"
      " 100 Mbit/s NICs)\n\n",
      static_cast<long long>(nodes));
  std::printf("%8s %10s %11s %14s %9s %10s %8s %9s\n", "joiners", "admission",
              "converge s", "peak node MB/s", "busy", "deferrals", "retries",
              "nic-drop");

  const int storm_sizes[] = {10, 50, 100};
  for (int joiners : storm_sizes) {
    for (bool admission : {true, false}) {
      StormResult r = measure_storm(static_cast<int>(nodes), joiners,
                                    admission, static_cast<uint64_t>(seed),
                                    trace_out != nullptr,
                                    metrics_out != nullptr);
      if (trace_out != nullptr) {
        std::fprintf(trace_out,
                     "{\"run\":\"joiners=%d admission=%s\"}\n", joiners,
                     admission ? "on" : "off");
        std::fputs(r.trace_jsonl.c_str(), trace_out);
      }
      if (metrics_out != nullptr) {
        std::fprintf(metrics_out,
                     "{\"run\":\"joiners=%d admission=%s\"}\n", joiners,
                     admission ? "on" : "off");
        std::fprintf(metrics_out, "%s\n", r.metrics_json.c_str());
      }
      std::printf("%8d %10s %11.2f %14.3f %9llu %10llu %8llu %9llu\n",
                  joiners, admission ? "on" : "off", r.converge_s,
                  r.peak_node_bytes_per_s / 1e6,
                  static_cast<unsigned long long>(r.busy_sent),
                  static_cast<unsigned long long>(r.busy_deferrals),
                  static_cast<unsigned long long>(r.exchange_retries),
                  static_cast<unsigned long long>(r.tx_dropped_egress));
      std::printf(
          "{\"bench\":\"join_storm\",\"nodes\":%lld,\"joiners\":%d,"
          "\"admission\":%s,\"converge_s\":%.3f,"
          "\"peak_node_bytes_per_s\":%.0f,\"busy_sent\":%llu,"
          "\"busy_deferrals\":%llu,\"exchange_retries\":%llu,"
          "\"tx_dropped_egress\":%llu}\n",
          static_cast<long long>(nodes), joiners, admission ? "true" : "false",
          r.converge_s, r.peak_node_bytes_per_s,
          static_cast<unsigned long long>(r.busy_sent),
          static_cast<unsigned long long>(r.busy_deferrals),
          static_cast<unsigned long long>(r.exchange_retries),
          static_cast<unsigned long long>(r.tx_dropped_egress));
    }
  }
  if (trace_out != nullptr) std::fclose(trace_out);
  if (metrics_out != nullptr) std::fclose(metrics_out);
  std::printf(
      "\nshape check: with admission on, peak per-node bandwidth stays"
      " near the steady-state envelope as joiners grow (overflow turns"
      " into Busy deferrals); with it off, the serving leaders' peak"
      " scales with the storm size\n");
  return 0;
}
