#!/usr/bin/env python3
"""CI gate for user-visible SLO damage during churn.

Reads the committed ``BENCH_slo.json`` (produced by bench/slo_churn) and
enforces three properties:

1. **Absolute ceilings.** Every row must pass its scenario oracle, balance
   its accounting identity (issued == ok + failed + aborted + unresolved),
   and stay inside the damage ceilings: success-rate floor, misroute-rate
   and retry-amplification ceilings, and tail-latency bounds per phase.
   The ceilings are generous against the committed numbers — they catch a
   directory or consumer regression, not seed noise (there is none: the
   sims are deterministic).

2. **Hierarchy dividend.** On the node-churn plans (crash-restart and
   leader-kill) the hierarchical protocol's misroute rate must not exceed
   the all-to-all baseline's. This is the user-facing form of the paper's
   claim: topology-scoped membership converges the directory fast enough
   that fewer requests chase dead replicas.

3. **Fresh creep.** Given a freshly measured report (``--fresh``), every
   (scheme, plan, seed) row present in both files must keep its success
   rate within ABS_OK_DROP of the committed baseline. Deterministic sims
   reproduce the baseline exactly; the tolerance only absorbs intentional
   protocol changes. Larger drops require regenerating the baseline
   deliberately.

Usage:
  tools/check_slo.py BENCH_slo.json
  tools/check_slo.py --fresh slo-ci.json BENCH_slo.json
  tools/check_slo.py --selftest

Exit codes: 0 ok, 1 gate failure, 2 usage/malformed input.
"""

import json
import sys

OK_RATE_FLOOR = 0.50          # worst committed row: 0.639 (a2a router-flap)
MISROUTE_CEILING = 2.5        # worst committed row: 1.84 (a2a loss-storm)
RETRY_AMP_CEILING = 2.0       # worst committed row: 1.64 (a2a loss-storm)
FAULT_P99_CEILING_NS = int(600e6)  # worst committed row: 482ms (loss-storm)
HEAL_P99_CEILING_NS = int(100e6)   # worst committed row: 24ms
ABS_OK_DROP = 0.05            # fresh ok_rate may trail baseline by <= 5pts

CHURN_PLANS = ("crash-restart", "leader-kill")


def rows_by_key(report):
    """{(scheme, plan, seed): row} from an slo_churn report."""
    out = {}
    for row in report.get("rows", []):
        try:
            key = (row["scheme"], row["plan"], int(row["seed"]))
        except (KeyError, TypeError, ValueError):
            continue
        out[key] = row
    return out


def check_row(key, row):
    scheme, plan, seed = key
    label = f"{scheme}/{plan}/s{seed}"
    problems = []
    if not row.get("passed", False):
        problems.append("scenario oracle failed")
    issued = int(row.get("issued", 0))
    if issued <= 0:
        problems.append("no requests issued")
    else:
        balance = (int(row.get("ok", 0)) + int(row.get("failed", 0)) +
                   int(row.get("aborted", 0)) + int(row.get("unresolved", 0)))
        if balance != issued:
            problems.append(f"accounting broken: {balance} != {issued}")
    if float(row.get("ok_rate", 0.0)) < OK_RATE_FLOOR:
        problems.append(f"ok_rate {row.get('ok_rate')} < {OK_RATE_FLOOR}")
    if float(row.get("misroute_rate", 0.0)) > MISROUTE_CEILING:
        problems.append(
            f"misroute_rate {row.get('misroute_rate')} > {MISROUTE_CEILING}")
    if float(row.get("retry_amplification", 0.0)) > RETRY_AMP_CEILING:
        problems.append(f"retry_amplification "
                        f"{row.get('retry_amplification')} > "
                        f"{RETRY_AMP_CEILING}")
    fault_p99 = int(row.get("fault_p99_ns", -1))
    if fault_p99 > FAULT_P99_CEILING_NS:
        problems.append(f"fault_p99 {fault_p99 / 1e6:.1f}ms > "
                        f"{FAULT_P99_CEILING_NS / 1e6:.0f}ms")
    heal_p99 = int(row.get("heal_p99_ns", -1))
    if heal_p99 > HEAL_P99_CEILING_NS:
        problems.append(f"heal_p99 {heal_p99 / 1e6:.1f}ms > "
                        f"{HEAL_P99_CEILING_NS / 1e6:.0f}ms")
    for problem in problems:
        print(f"check_slo: FAIL — {label}: {problem}")
    return 1 if problems else 0


def check_hierarchy_dividend(rows):
    """Hier misroute rate must not exceed a2a's on the node-churn plans."""
    status = 0
    compared = 0
    for (scheme, plan, seed), row in sorted(rows.items()):
        if scheme != "hierarchical" or plan not in CHURN_PLANS:
            continue
        baseline = rows.get(("all-to-all", plan, seed))
        if baseline is None:
            continue
        compared += 1
        hier = float(row.get("misroute_rate", 0.0))
        a2a = float(baseline.get("misroute_rate", 0.0))
        verdict = "ok" if hier <= a2a else "FAIL"
        print(f"check_slo: {verdict} — {plan}/s{seed} misroute rate: "
              f"hierarchical {hier:.4f} vs all-to-all {a2a:.4f}")
        if hier > a2a:
            status = 1
    if compared == 0:
        print("check_slo: no hierarchical/all-to-all churn-plan pair to "
              "compare", file=sys.stderr)
        return 2
    return status


def check_creep(baseline, fresh):
    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("check_slo: fresh report shares no rows with the baseline",
              file=sys.stderr)
        return 2
    status = 0
    for key in common:
        base_ok = float(baseline[key].get("ok_rate", 0.0))
        new_ok = float(fresh[key].get("ok_rate", 0.0))
        floor = base_ok - ABS_OK_DROP
        verdict = "ok" if new_ok >= floor else "FAIL"
        scheme, plan, seed = key
        print(f"check_slo: {verdict} — {scheme}/{plan}/s{seed} ok_rate "
              f"{new_ok:.4f} vs baseline {base_ok:.4f} (floor {floor:.4f})")
        if new_ok < floor:
            status = 1
    return status


def run(baseline_report, fresh_report):
    baseline = rows_by_key(baseline_report)
    if not baseline:
        print("check_slo: baseline has no rows", file=sys.stderr)
        return 2
    status = 0
    for key, row in sorted(baseline.items()):
        status = max(status, check_row(key, row))
    if status == 0:
        print(f"check_slo: ok — {len(baseline)} row(s) inside all ceilings")
    status = max(status, check_hierarchy_dividend(baseline))
    if fresh_report is not None:
        status = max(status, check_creep(baseline, rows_by_key(fresh_report)))
    return status


def selftest():
    def row(scheme, plan, seed=1, ok_rate=0.95, misroute=0.1, retry=1.1,
            fault_p99=int(30e6), heal_p99=int(20e6), issued=1000,
            passed=True, ok=None):
        ok = int(issued * ok_rate) if ok is None else ok
        return {"scheme": scheme, "plan": plan, "seed": seed,
                "passed": passed, "issued": issued, "ok": ok,
                "failed": issued - ok, "aborted": 0, "unresolved": 0,
                "ok_rate": ok_rate, "misroute_rate": misroute,
                "retry_amplification": retry, "fault_p99_ns": fault_p99,
                "heal_p99_ns": heal_p99}

    good = {"rows": [row("all-to-all", "crash-restart", misroute=0.02),
                     row("hierarchical", "crash-restart", misroute=0.01),
                     row("all-to-all", "leader-kill", misroute=0.05),
                     row("hierarchical", "leader-kill", misroute=0.02)]}
    inverted = {"rows": [row("all-to-all", "crash-restart", misroute=0.01),
                         row("hierarchical", "crash-restart", misroute=0.02),
                         row("all-to-all", "leader-kill", misroute=0.05),
                         row("hierarchical", "leader-kill", misroute=0.02)]}
    slow = {"rows": [r for r in good["rows"]]}
    slow["rows"] = slow["rows"][:1] + [
        row("hierarchical", "crash-restart", misroute=0.01,
            fault_p99=int(700e6))] + slow["rows"][2:]
    unbalanced = {"rows": [dict(good["rows"][0], aborted=7)] +
                          good["rows"][1:]}
    oracle_fail = {"rows": [dict(good["rows"][0], passed=False)] +
                           good["rows"][1:]}
    dropped = {"rows": [dict(r, ok_rate=r["ok_rate"] - 0.10)
                        for r in good["rows"]]}

    cases = [
        (good, None, 0),
        (inverted, None, 1),      # hier misroutes more than a2a
        (slow, None, 1),          # fault p99 over ceiling
        (unbalanced, None, 1),    # accounting identity broken
        (oracle_fail, None, 1),
        (good, good, 0),          # fresh == baseline
        (good, dropped, 1),       # 10pt ok_rate drop > 5pt allowance
        ({"rows": []}, None, 2),
        (good, {"rows": []}, 2),
    ]
    for baseline, fresh, expected in cases:
        got = run(baseline, fresh)
        if got != expected:
            print(f"selftest FAIL: expected exit {expected}, got {got}",
                  file=sys.stderr)
            return 1
    print("check_slo: selftest ok")
    return 0


def main(argv):
    args = argv[1:]
    if args == ["--selftest"]:
        return selftest()
    fresh_path = None
    if len(args) >= 2 and args[0] == "--fresh":
        fresh_path = args[1]
        args = args[2:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0], "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        fresh = None
        if fresh_path is not None:
            with open(fresh_path, "r", encoding="utf-8") as fh:
                fresh = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_slo: {err}", file=sys.stderr)
        return 2
    return run(baseline, fresh)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
