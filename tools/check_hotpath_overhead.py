#!/usr/bin/env python3
"""CI gate for observability overhead on the transport hot path.

Reads a google-benchmark ``--benchmark_format=json`` report from
bench/micro_hotpaths and fails (exit 1) if the per-send observability work
(BM_ObsHotpathAddition: wire-kind classification + counter bumps + disabled
tracer record) costs more than BUDGET of a full instrumented unicast send
(BM_TransportSendUnicast). Keeps "metrics are free enough to leave on"
an enforced property instead of a hope.

Usage:
  bench/micro_hotpaths --benchmark_format=json \
      --benchmark_filter='BM_Obs|BM_TransportSendUnicast' > hotpaths.json
  tools/check_hotpath_overhead.py hotpaths.json
"""

import json
import sys

BUDGET = 0.05  # obs addition may cost at most 5% of a transport send
NUMERATOR = "BM_ObsHotpathAddition"
DENOMINATOR = "BM_TransportSendUnicast"


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as fh:
        report = json.load(fh)

    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = float(bench["cpu_time"])

    missing = [name for name in (NUMERATOR, DENOMINATOR) if name not in times]
    if missing:
        print(f"check_hotpath_overhead: missing benchmark(s) {missing} in "
              f"{argv[1]} (found: {sorted(times)})", file=sys.stderr)
        return 2

    obs_ns = times[NUMERATOR]
    send_ns = times[DENOMINATOR]
    ratio = obs_ns / send_ns
    verdict = "ok" if ratio <= BUDGET else "FAIL"
    print(f"check_hotpath_overhead: {verdict} — obs addition {obs_ns:.1f} ns "
          f"vs transport send {send_ns:.1f} ns = {ratio:.2%} "
          f"(budget {BUDGET:.0%})")
    return 0 if ratio <= BUDGET else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
