#!/usr/bin/env python3
"""CI gate for observability overhead on the transport hot path.

Reads a google-benchmark ``--benchmark_format=json`` report from
bench/micro_hotpaths and fails (exit 1) if the per-send observability work
(BM_ObsHotpathAddition: wire-kind classification + counter bumps + disabled
tracer record) costs more than BUDGET of a full instrumented unicast send
(BM_TransportSendUnicast). Keeps "metrics are free enough to leave on"
an enforced property instead of a hope.

Tolerates multi-job bench output: several JSON reports concatenated into one
file (parallel CI steps appending to a shared artifact), repeated entries
for the same benchmark (repetitions or re-runs — the minimum cpu_time wins,
being the least noise-inflated), and decorated benchmark names such as
``BM_Foo/threads:8``, ``BM_Foo/64`` or ``BM_Foo_mean`` (mapped to their
base name; explicit aggregate rows are still skipped).

Usage:
  bench/micro_hotpaths --benchmark_format=json \
      --benchmark_filter='BM_Obs|BM_TransportSendUnicast' > hotpaths.json
  tools/check_hotpath_overhead.py hotpaths.json
  tools/check_hotpath_overhead.py --selftest
"""

import json
import sys

BUDGET = 0.05  # obs addition may cost at most 5% of a transport send
NUMERATOR = "BM_ObsHotpathAddition"
DENOMINATOR = "BM_TransportSendUnicast"

AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def parse_reports(text):
    """Yield every JSON document in `text` (tolerates concatenation)."""
    decoder = json.JSONDecoder()
    pos = 0
    length = len(text)
    while pos < length:
        while pos < length and text[pos].isspace():
            pos += 1
        if pos >= length:
            break
        report, end = decoder.raw_decode(text, pos)
        yield report
        pos = end


def base_name(name):
    """BM_Foo/threads:8 -> BM_Foo; BM_Foo_mean -> BM_Foo."""
    name = name.split("/")[0]
    for suffix in AGGREGATE_SUFFIXES:
        if name.endswith(suffix):
            name = name[: -len(suffix)]
            break
    return name


def collect_times(reports):
    """Minimum cpu_time per base benchmark name across all reports."""
    times = {}
    for report in reports:
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = base_name(bench["name"])
            cpu = float(bench["cpu_time"])
            if name not in times or cpu < times[name]:
                times[name] = cpu
    return times


def check(times):
    missing = [name for name in (NUMERATOR, DENOMINATOR) if name not in times]
    if missing:
        print(f"check_hotpath_overhead: missing benchmark(s) {missing} "
              f"(found: {sorted(times)})", file=sys.stderr)
        return 2

    obs_ns = times[NUMERATOR]
    send_ns = times[DENOMINATOR]
    ratio = obs_ns / send_ns
    verdict = "ok" if ratio <= BUDGET else "FAIL"
    print(f"check_hotpath_overhead: {verdict} — obs addition {obs_ns:.1f} ns "
          f"vs transport send {send_ns:.1f} ns = {ratio:.2%} "
          f"(budget {BUDGET:.0%})")
    return 0 if ratio <= BUDGET else 1


def selftest():
    def report(entries):
        return json.dumps({"benchmarks": entries})

    ok = report([
        {"name": NUMERATOR, "cpu_time": 1.0},
        {"name": DENOMINATOR, "cpu_time": 100.0},
    ])
    over = report([
        {"name": NUMERATOR, "cpu_time": 50.0},
        {"name": DENOMINATOR, "cpu_time": 100.0},
    ])
    # Two concatenated reports with repeated, decorated entries: min wins,
    # threads suffixes and trailing aggregates fold into the base name.
    multi = report([
        {"name": f"{NUMERATOR}/threads:8", "cpu_time": 9.0},
        {"name": f"{NUMERATOR}_mean", "cpu_time": 2.0,
         "run_type": "aggregate"},
        {"name": DENOMINATOR, "cpu_time": 90.0},
    ]) + "\n" + report([
        {"name": NUMERATOR, "cpu_time": 3.0},
        {"name": f"{DENOMINATOR}/threads:8", "cpu_time": 100.0},
    ])

    cases = [
        (ok, 0),
        (over, 1),
        (multi, 0),          # 3.0 / 100.0 = 3% <= budget
        ("{}", 2),           # no benchmarks at all
    ]
    for text, expected in cases:
        got = check(collect_times(parse_reports(text)))
        if got != expected:
            print(f"selftest FAIL: expected exit {expected}, got {got} "
                  f"for {text[:80]}", file=sys.stderr)
            return 1
    times = collect_times(parse_reports(multi))
    if times[NUMERATOR] != 3.0 or times[DENOMINATOR] != 90.0:
        print(f"selftest FAIL: bad fold {times}", file=sys.stderr)
        return 1
    print("check_hotpath_overhead: selftest ok")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as fh:
        text = fh.read()
    return check(collect_times(parse_reports(text)))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
