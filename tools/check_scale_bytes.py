#!/usr/bin/env python3
"""CI gate for anti-entropy byte cost at scale.

Reads the committed ``BENCH_scale.json`` (produced by bench/scale_limits)
and enforces two properties:

1. **Ratio floor.** At the largest cluster size measured in both modes, the
   full-view refresh must cost at least RATIO_FLOOR times the digest
   exchange in anti-entropy bytes per node per round. This is the headline
   claim of the incremental-digest redesign; if a change erodes it, the
   gate fails rather than the number silently decaying.

2. **Byte creep.** Given a freshly measured report (``--fresh``), every
   digest-mode size present in both files must stay within CREEP_TOLERANCE
   of the committed baseline's bytes/node/round. The sims are
   deterministic, so an unchanged protocol reproduces the baseline exactly;
   the tolerance only absorbs intentional small wire-format shifts. Larger
   regressions require regenerating the baseline deliberately.

Usage:
  tools/check_scale_bytes.py BENCH_scale.json
  tools/check_scale_bytes.py --fresh scale-ci.json BENCH_scale.json
  tools/check_scale_bytes.py --selftest

Exit codes: 0 ok, 1 gate failure, 2 usage/malformed input.
"""

import json
import sys

RATIO_FLOOR = 5.0       # full must cost >= 5x digest, per node per round
CREEP_TOLERANCE = 0.25  # fresh digest bytes may exceed baseline by <= 25%

BYTES_KEY = "anti_entropy_bytes_per_node_per_round"


def rows_by_mode(report):
    """{mode: {nodes: bytes_per_node_per_round}} from a scale report."""
    out = {}
    for row in report.get("results", []):
        try:
            mode = row["mode"]
            nodes = int(row["nodes"])
            cost = float(row[BYTES_KEY])
        except (KeyError, TypeError, ValueError):
            continue
        out.setdefault(mode, {})[nodes] = cost
    return out


def check_ratio(baseline):
    full = baseline.get("full", {})
    digest = baseline.get("digest", {})
    common = sorted(set(full) & set(digest))
    if not common:
        print("check_scale_bytes: no cluster size measured in both modes",
              file=sys.stderr)
        return 2
    nodes = common[-1]
    if digest[nodes] <= 0.0:
        ratio = float("inf")
    else:
        ratio = full[nodes] / digest[nodes]
    verdict = "ok" if ratio >= RATIO_FLOOR else "FAIL"
    print(f"check_scale_bytes: {verdict} — at {nodes} nodes full refresh "
          f"costs {full[nodes]:.1f} B/node/round vs digest "
          f"{digest[nodes]:.1f} = {ratio:.1f}x (floor {RATIO_FLOOR:.0f}x)")
    return 0 if ratio >= RATIO_FLOOR else 1


def check_creep(baseline, fresh):
    base = baseline.get("digest", {})
    new = fresh.get("digest", {})
    common = sorted(set(base) & set(new))
    if not common:
        print("check_scale_bytes: fresh report shares no digest sizes with "
              "the baseline", file=sys.stderr)
        return 2
    status = 0
    for nodes in common:
        allowed = base[nodes] * (1.0 + CREEP_TOLERANCE)
        verdict = "ok" if new[nodes] <= allowed else "FAIL"
        print(f"check_scale_bytes: {verdict} — digest @ {nodes} nodes: "
              f"{new[nodes]:.1f} B/node/round vs baseline {base[nodes]:.1f} "
              f"(allowed {allowed:.1f})")
        if new[nodes] > allowed:
            status = 1
    return status


def run(baseline_report, fresh_report):
    baseline = rows_by_mode(baseline_report)
    status = check_ratio(baseline)
    if fresh_report is not None:
        creep = check_creep(baseline, rows_by_mode(fresh_report))
        status = max(status, creep)
    return status


def selftest():
    def report(rows):
        return {"results": [
            {"nodes": n, "mode": m, BYTES_KEY: b} for n, m, b in rows
        ]}

    good = report([(100, "full", 2400.0), (100, "digest", 30.0),
                   (1000, "full", 9000.0), (1000, "digest", 25.0),
                   (5000, "digest", 25.0)])  # digest-only tail is fine
    weak = report([(1000, "full", 100.0), (1000, "digest", 25.0)])
    crept = report([(100, "digest", 30.0), (1000, "digest", 40.0)])
    flat = report([(100, "digest", 30.0), (1000, "digest", 25.0)])

    cases = [
        (good, None, 0),
        (weak, None, 1),          # 4x < floor
        (good, flat, 0),          # creep within tolerance
        (good, crept, 1),         # 40 > 25 * 1.25 at 1000 nodes
        ({"results": []}, None, 2),
        (good, {"results": []}, 2),
    ]
    for baseline, fresh, expected in cases:
        got = run(baseline, fresh)
        if got != expected:
            print(f"selftest FAIL: expected exit {expected}, got {got}",
                  file=sys.stderr)
            return 1
    print("check_scale_bytes: selftest ok")
    return 0


def main(argv):
    args = argv[1:]
    if args == ["--selftest"]:
        return selftest()
    fresh_path = None
    if len(args) >= 2 and args[0] == "--fresh":
        fresh_path = args[1]
        args = args[2:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0], "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        fresh = None
        if fresh_path is not None:
            with open(fresh_path, "r", encoding="utf-8") as fh:
                fresh = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_scale_bytes: {err}", file=sys.stderr)
        return 2
    return run(baseline, fresh)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
