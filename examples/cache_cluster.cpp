// A partitioned, replicated cache service on the membership layer — the
// "Cache" service from the paper's configuration example (Fig. 7), showing
// how a real component uses partition specs, published key/values, and the
// directory for replica selection.
//
//   ./examples/cache_cluster
#include <cstdio>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "service/consumer.h"
#include "service/provider.h"

using namespace tamp;

int main() {
  sim::Simulation sim(404);
  net::Topology topo;
  net::RackedClusterParams racks;
  racks.racks = 2;
  racks.hosts_per_rack = 8;
  auto layout = net::build_racked_cluster(topo, racks);
  net::Network net(sim, topo);

  protocols::Cluster::Options opts;
  opts.scheme = protocols::Scheme::kHierarchical;
  protocols::Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();

  // 4 cache partitions x 3 replicas on nodes 2..13; nodes 0,1 are clients.
  std::vector<std::unique_ptr<service::ServiceProvider>> caches;
  for (int partition = 0; partition < 4; ++partition) {
    for (int replica = 0; replica < 3; ++replica) {
      size_t host = 2 + static_cast<size_t>(partition * 3 + replica);
      service::ProviderConfig config;
      config.mean_service_time = 2 * sim::kMillisecond;
      caches.push_back(std::make_unique<service::ServiceProvider>(
          sim, net, cluster.daemon(host), config));
      caches.back()->host_service("Cache", {partition});
      // Cache nodes publish their shard size through the membership layer.
      cluster.daemon(host).update_value(
          "shard_mb", std::to_string(128 * (partition + 1)));
    }
  }
  for (auto& cache : caches) cache->start();

  service::ServiceConsumer client(sim, net, cluster.daemon(0));
  client.start();
  sim.run_until(12 * sim::kSecond);
  std::printf("cluster converged: %s\n",
              cluster.converged() ? "yes" : "no");

  // Clients route by key: partition = hash(key) % 4.
  auto get = [&](const std::string& key) {
    int partition = static_cast<int>(std::hash<std::string>{}(key) % 4);
    client.invoke("Cache", partition, 64, 512,
                  [key, partition](const service::InvokeResult& result) {
                    std::printf("GET %-10s -> partition %d via node %-3u"
                                " (%s, %.2f ms)\n",
                                key.c_str(), partition, result.server,
                                result.ok() ? "hit" : "MISS",
                                sim::to_millis(result.latency));
                  });
  };
  for (const char* key :
       {"user:42", "session:9", "doc:7", "query:abc", "user:43"}) {
    get(key);
  }
  sim.run_until(sim.now() + 2 * sim::kSecond);

  // The directory exposes the published shard sizes to any node.
  auto shards = cluster.daemon(1).table().lookup("Cache", "2");
  std::printf("\npartition 2 replicas:");
  for (const auto* entry : shards) {
    std::printf(" node %u (shard %s MB)", entry->data.node,
                entry->data.values.at("shard_mb").c_str());
  }
  std::printf("\n");

  // Kill a replica of partition 0; keys still resolve through the others.
  std::printf("\nkilling one partition-0 replica...\n");
  cluster.kill(2);
  sim.run_until(sim.now() + 8 * sim::kSecond);
  get("user:42");
  sim.run_until(sim.now() + 2 * sim::kSecond);
  return 0;
}
