// Quickstart: the membership service API end to end.
//
// Builds a 2-rack / 8-node simulated cluster, starts an MService daemon on
// every node from a validated MembershipConfig, looks the cluster up
// through MClient, then kills a node and watches the directory converge.
//
//   ./examples/quickstart
#include <cstdio>

#include "api/mclient.h"
#include "api/mservice.h"
#include "net/builders.h"

using namespace tamp;

namespace {

void show_directory(const api::MClient& client, const char* label) {
  api::MachineList machines;
  int count = client.lookup_service(".*", "*", &machines);
  std::printf("%s: %d machines visible\n", label, count);
  for (const auto& machine : machines) {
    std::printf("  ");
    for (const auto& [key, value] : machine) {
      if (key == "node" || key == "hostname" || key == "incarnation") {
        std::printf("%s=%s ", key.c_str(), value.c_str());
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  sim::Simulation sim(2026);
  net::Topology topo;
  net::RackedClusterParams racks;
  racks.racks = 2;
  racks.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, racks);
  net::Network net(sim, topo);
  api::DirectoryStore store;

  // One validated configuration shared by every node (paper Section 5:
  // "all nodes share the same configuration file").
  api::MembershipConfig config;
  api::Status built = api::MembershipConfigBuilder()
                          .shm_key(999)
                          .max_ttl(4)
                          .mcast_addr("239.255.0.2")
                          .mcast_port(10050)
                          .mcast_freq(1.0)
                          .max_loss(5)
                          .add_service("HTTP", "0", {{"Port", "8080"}})
                          .Build(&config);
  if (!built.ok()) {
    std::printf("configuration rejected: %s\n", built.message().c_str());
    return 1;
  }

  std::vector<std::unique_ptr<api::MService>> services;
  for (net::HostId host : layout.hosts) {
    services.push_back(
        std::make_unique<api::MService>(sim, net, store, host, config));
    services.back()->run();
  }

  // A node can also publish extra services and values at runtime.
  services[3]->register_service("Retriever", "1-3");
  services[3]->update_value("version", "2.1");

  std::printf("== letting the cluster form (virtual time) ==\n");
  sim.run_until(10 * sim::kSecond);

  api::MClient client(store, layout.hosts[0], /*shm_key=*/999);
  show_directory(client, "after formation");

  // The typed control API exposes the leadership view: which levels this
  // node joined, who leads them, and at what epoch.
  api::ControlResponse view = services[0]->control(api::LeadershipQuery{});
  std::printf("node %u (incarnation %llu) leadership view:\n",
              layout.hosts[0],
              static_cast<unsigned long long>(view.incarnation));
  for (const auto& info : view.leadership) {
    if (!info.joined) continue;
    std::printf("  level %d: leader=%u epoch=%llu%s\n", info.level,
                info.leader, static_cast<unsigned long long>(info.epoch),
                info.is_leader ? " (this node)" : "");
  }

  api::MachineList retrievers;
  int hits = client.lookup_service("Retriever", "2", &retrievers);
  std::printf("Retriever partition 2 -> %d provider(s)\n", hits);

  std::printf("\n== killing node %u ==\n", layout.hosts[5]);
  services[5]->shutdown();
  net.set_host_up(layout.hosts[5], false);
  sim.run_until(sim.now() + 10 * sim::kSecond);
  show_directory(client, "after failure detection");

  std::printf("\nvirtual time elapsed: %.1f s, events executed: %llu\n",
              sim::to_seconds(sim.now()),
              static_cast<unsigned long long>(sim.events_executed()));
  return 0;
}
