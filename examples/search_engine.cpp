// The prototype search engine of paper Figure 1 on one datacenter.
//
// A 40-node cluster runs the hierarchical membership service; on top of it,
// 3 protocol gateways fan queries out to 2 index partitions and 3 doc
// partitions (3 replicas each), balancing with random polling. A Poisson
// workload drives it while one doc replica is killed and later restarted —
// the membership layer steers traffic around the failure transparently.
//
//   ./examples/search_engine
#include <cstdio>

#include "net/builders.h"
#include "service/search.h"

using namespace tamp;

int main() {
  sim::Simulation sim(7);
  net::Topology topo;
  net::RackedClusterParams racks;
  racks.racks = 2;
  racks.hosts_per_rack = 20;
  auto layout = net::build_racked_cluster(topo, racks);
  net::Network net(sim, topo);

  protocols::Cluster::Options opts;
  opts.scheme = protocols::Scheme::kHierarchical;
  protocols::Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();

  service::SearchParams params;
  service::SearchDeployment search(sim, net, cluster, params);
  search.start();

  sim.run_until(12 * sim::kSecond);
  std::printf("cluster converged: %s\n",
              cluster.converged() ? "yes" : "no");

  service::SearchWorkload workload(sim, search.gateways(), 60.0);
  workload.run_for(30 * sim::kSecond);

  // Fail one doc replica 10 s in, restart it 10 s later.
  size_t victim = search.doc_nodes()[1];
  sim.schedule_after(10 * sim::kSecond, [&] {
    std::printf("t=%.0fs  killing doc replica on node %u\n",
                sim::to_seconds(sim.now()), cluster.hosts()[victim]);
    cluster.kill(victim);
  });
  sim.schedule_after(20 * sim::kSecond, [&] {
    std::printf("t=%.0fs  restarting node %u\n", sim::to_seconds(sim.now()),
                cluster.hosts()[victim]);
    cluster.restart(victim);
    search.restart_providers_on(victim);
  });

  sim.run_until(sim.now() + 35 * sim::kSecond);

  std::printf("\n%6s %10s %10s %12s\n", "sec", "completed", "failed",
              "mean ms");
  size_t start = workload.buckets().size() > 30
                     ? workload.buckets().size() - 30
                     : 0;
  for (size_t s = start; s < workload.buckets().size(); ++s) {
    const auto& bucket = workload.buckets()[s];
    if (bucket.arrived == 0 && bucket.completed == 0) continue;
    std::printf("%6zu %10d %10d %12.2f\n", s, bucket.completed, bucket.failed,
                bucket.mean_latency_ms());
  }
  std::printf("\ntotal: %llu ok, %llu failed, median %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(workload.total_completed()),
              static_cast<unsigned long long>(workload.total_failed()),
              workload.latencies().median(), workload.latencies().p99());
  return 0;
}
