// Two datacenters, membership proxies, and cross-DC failover (paper
// Section 3.2 / Figure 6 in miniature).
//
// East hosts a "report" service that west does not. A west-coast consumer
// invokes it through the membership proxies; then the east proxy leader is
// killed to demonstrate IP failover.
//
//   ./examples/multi_datacenter
#include <cstdio>

#include "service/multidc.h"
#include "service/provider.h"

using namespace tamp;

int main() {
  sim::Simulation sim(99);
  service::MultiDcParams params = service::default_two_dc_params();
  service::MultiDcHarness harness(sim, params);

  // A service hosted only in the east datacenter.
  service::ServiceProvider report(sim, harness.network(),
                                  harness.cluster(0).daemon(3));
  report.host_service("report", {0});
  report.start();

  harness.start();
  sim.run_until(15 * sim::kSecond);

  for (size_t dc = 0; dc < harness.dc_count(); ++dc) {
    auto* leader = harness.proxy_leader(dc);
    std::printf("dc%zu proxy leader: node %u (vip owner: %u)\n", dc,
                leader ? leader->self() : 0,
                harness.network().virtual_ip_owner(harness.vip(dc)));
  }
  auto* west_leader = harness.proxy_leader(1);
  auto remotes = west_leader->lookup_remote("report", 0);
  std::printf("west sees 'report' in %zu remote dc(s)\n", remotes.size());

  // Invoke from the west coast: no local provider, so this goes through the
  // proxy pair over the 90 ms WAN.
  service::ServiceConsumer consumer(sim, harness.network(),
                                    harness.cluster(1).daemon(1));
  consumer.start();
  consumer.invoke("report", 0, 300, 2000,
                  [&](const service::InvokeResult& result) {
                    std::printf(
                        "cross-dc call: %s in %.1f ms (via proxy: %s)\n",
                        result.ok() ? "OK" : "FAILED",
                        sim::to_millis(result.latency),
                        result.via_proxy ? "yes" : "no");
                  });
  sim.run_until(sim.now() + 3 * sim::kSecond);

  // Kill the east proxy leader: the backup proxy must claim the VIP.
  auto* east_leader = harness.proxy_leader(0);
  net::HostId old_leader = east_leader->self();
  std::printf("\nkilling east proxy leader node %u...\n", old_leader);
  for (int p = 0; p < harness.proxies_per_dc(); ++p) {
    if (harness.proxy(0, p).self() == old_leader) harness.proxy(0, p).stop();
  }
  auto& east = harness.cluster(0);
  for (size_t i = 0; i < east.size(); ++i) {
    if (east.hosts()[i] == old_leader) east.kill(i);
  }
  sim.run_until(sim.now() + 15 * sim::kSecond);

  east_leader = harness.proxy_leader(0);
  std::printf("new east proxy leader: node %u (vip owner: %u)\n",
              east_leader ? east_leader->self() : 0,
              harness.network().virtual_ip_owner(harness.vip(0)));

  consumer.invoke("report", 0, 300, 2000,
                  [&](const service::InvokeResult& result) {
                    std::printf(
                        "cross-dc call after failover: %s in %.1f ms\n",
                        result.ok() ? "OK" : "FAILED",
                        sim::to_millis(result.latency));
                  });
  sim.run_until(sim.now() + 3 * sim::kSecond);
  return 0;
}
