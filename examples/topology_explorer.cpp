// Shows the topology-adaptive group formation (paper Section 3.1) on four
// network shapes, including the Figure-4 overlap case where TTL
// transitivity fails.
//
//   ./examples/topology_explorer
#include <cstdio>

#include "net/builders.h"
#include "protocols/cluster.h"

using namespace tamp;

namespace {

void explore(const char* title, net::Topology& topo,
             const std::vector<net::HostId>& hosts, int max_ttl) {
  std::printf("\n=== %s (%zu hosts, MAX_TTL=%d) ===\n", title, hosts.size(),
              max_ttl);
  sim::Simulation sim(13);
  net::Network net(sim, topo);
  protocols::Cluster::Options opts;
  opts.scheme = protocols::Scheme::kHierarchical;
  opts.hier.max_ttl = max_ttl;
  protocols::Cluster cluster(sim, net, hosts, opts);
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);

  std::printf("converged: %zu/%zu\n", cluster.converged_count(),
              cluster.size());
  for (int level = 0; level < max_ttl; ++level) {
    bool any = false;
    for (size_t i = 0; i < cluster.size(); ++i) {
      auto* daemon = cluster.hier_daemon(i);
      if (!daemon->joined(level)) continue;
      if (!any) {
        std::printf("level %d (TTL %d):\n", level, level + 1);
        any = true;
      }
      std::printf("  node %-3u %s hears {", daemon->self(),
                  daemon->is_leader(level) ? "LEADER" : "      ");
      for (auto member : daemon->group_members(level)) {
        std::printf(" %u", member);
      }
      std::printf(" }\n");
    }
  }
}

}  // namespace

int main() {
  {
    net::Topology topo;
    auto layout = net::build_single_segment(topo, 6);
    explore("single L2 segment: one local group", topo, layout.hosts, 1);
  }
  {
    net::Topology topo;
    net::RackedClusterParams params;
    params.racks = 3;
    params.hosts_per_rack = 4;
    auto layout = net::build_racked_cluster(topo, params);
    explore("racked cluster: per-rack groups + a leader group", topo,
            layout.hosts, 4);
  }
  {
    net::Topology topo;
    auto layout = net::build_router_tree(topo, 2, 1, 3);
    explore("router tree: leaders climb through singleton levels", topo,
            layout.hosts, 4);
  }
  {
    net::Topology topo;
    auto layout = net::build_fig4_overlap(topo, 2);
    std::printf("\nFigure-4 distances: ttl(a,b)=%d ttl(a,c)=%d ttl(b,c)=%d\n",
                topo.ttl_required(layout.segment_a[0], layout.segment_b[0]),
                topo.ttl_required(layout.segment_a[0], layout.segment_c[0]),
                topo.ttl_required(layout.segment_b[0], layout.segment_c[0]));
    explore("paper Figure 4: overlapping groups", topo, layout.all, 4);
  }
  return 0;
}
