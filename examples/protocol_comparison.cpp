// Runs the three membership protocols side by side on the same 60-node
// cluster and scenario, printing a compact scorecard: steady-state
// bandwidth, failure detection & convergence, and join visibility — the
// paper's comparison (Sections 4 & 6) in one command.
//
//   ./examples/protocol_comparison
#include <cstdio>

#include "net/builders.h"
#include "protocols/cluster.h"

using namespace tamp;

namespace {

struct Scorecard {
  double bandwidth_kbps = -1;
  double detection_s = -1;
  double convergence_s = -1;
  double join_s = -1;
};

Scorecard evaluate(protocols::Scheme scheme) {
  sim::Simulation sim(2005);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 20;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);

  protocols::Cluster::Options opts;
  opts.scheme = scheme;
  opts.heartbeat_pad = 228;
  protocols::Cluster cluster(sim, net, layout.hosts, opts);

  net::HostId victim = layout.racks[0].back();
  size_t victim_index = 0;
  for (size_t i = 0; i < layout.hosts.size(); ++i) {
    if (layout.hosts[i] == victim) victim_index = i;
  }

  sim::Time first_leave = -1, last_leave = -1, last_join = -1;
  bool watching_join = false;
  cluster.set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject != victim) return;
        if (!alive) {
          if (first_leave < 0) first_leave = when;
          last_leave = when;
        } else if (watching_join) {
          last_join = when;
        }
      });

  cluster.start_all();
  const sim::Duration settle =
      scheme == protocols::Scheme::kGossip ? 40 * sim::kSecond
                                           : 20 * sim::kSecond;
  sim.run_until(settle);
  if (!cluster.converged()) return {};

  Scorecard card;
  net.obs().metrics.reset(obs::Protocol::kNet);
  sim.run_until(sim.now() + 10 * sim::kSecond);
  card.bandwidth_kbps =
      static_cast<double>(net.obs().metrics.counter_value(
          obs::Protocol::kNet, "rx_wire_bytes")) /
      10.0 / 1e3;

  const sim::Time killed_at = sim.now();
  cluster.kill(victim_index);
  sim.run_until(killed_at + 60 * sim::kSecond);
  if (first_leave >= 0) {
    card.detection_s = sim::to_seconds(first_leave - killed_at);
    card.convergence_s = sim::to_seconds(last_leave - killed_at);
  }

  watching_join = true;
  const sim::Time rejoin_at = sim.now();
  cluster.restart(victim_index);
  sim.run_until(rejoin_at + 60 * sim::kSecond);
  if (cluster.converged() && last_join >= 0) {
    card.join_s = sim::to_seconds(last_join - rejoin_at);
  }
  return card;
}

}  // namespace

int main() {
  std::printf("Protocol scorecard — 60 nodes (3 networks of 20), 1 Hz,"
              " 228-byte membership info\n\n");
  std::printf("%-14s %16s %14s %14s %16s\n", "scheme", "bandwidth KB/s",
              "detection s", "converge s", "join (all) s");
  const protocols::Scheme schemes[] = {protocols::Scheme::kAllToAll,
                                       protocols::Scheme::kGossip,
                                       protocols::Scheme::kHierarchical};
  for (auto scheme : schemes) {
    Scorecard card = evaluate(scheme);
    std::printf("%-14s %16.1f %14.2f %14.2f %16.2f\n",
                protocols::scheme_name(scheme), card.bandwidth_kbps,
                card.detection_s, card.convergence_s, card.join_s);
  }
  std::printf(
      "\nThe hierarchical protocol matches all-to-all's detection and"
      " convergence at a fraction of the bandwidth; gossip trades"
      " responsiveness for topology independence (paper Secs. 4 & 6).\n");
  return 0;
}
