# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_topology_test[1]_include.cmake")
include("/root/repo/build/tests/net_transport_test[1]_include.cmake")
include("/root/repo/build/tests/membership_table_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/alltoall_test[1]_include.cmake")
include("/root/repo/build/tests/gossip_test[1]_include.cmake")
include("/root/repo/build/tests/hier_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_property_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/hier_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/multidc_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/wire_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/consumer_edge_test[1]_include.cmake")
include("/root/repo/build/tests/churn_soak_test[1]_include.cmake")
include("/root/repo/build/tests/detection_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/overlap_chain_test[1]_include.cmake")
