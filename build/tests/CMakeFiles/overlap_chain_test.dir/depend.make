# Empty dependencies file for overlap_chain_test.
# This may be replaced when dependencies are built.
