file(REMOVE_RECURSE
  "CMakeFiles/overlap_chain_test.dir/overlap_chain_test.cc.o"
  "CMakeFiles/overlap_chain_test.dir/overlap_chain_test.cc.o.d"
  "overlap_chain_test"
  "overlap_chain_test.pdb"
  "overlap_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
