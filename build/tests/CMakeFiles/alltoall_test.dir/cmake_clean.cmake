file(REMOVE_RECURSE
  "CMakeFiles/alltoall_test.dir/alltoall_test.cc.o"
  "CMakeFiles/alltoall_test.dir/alltoall_test.cc.o.d"
  "alltoall_test"
  "alltoall_test.pdb"
  "alltoall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alltoall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
