file(REMOVE_RECURSE
  "CMakeFiles/consumer_edge_test.dir/consumer_edge_test.cc.o"
  "CMakeFiles/consumer_edge_test.dir/consumer_edge_test.cc.o.d"
  "consumer_edge_test"
  "consumer_edge_test.pdb"
  "consumer_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consumer_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
