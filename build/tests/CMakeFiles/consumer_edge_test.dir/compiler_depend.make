# Empty compiler generated dependencies file for consumer_edge_test.
# This may be replaced when dependencies are built.
