# Empty dependencies file for detection_bounds_test.
# This may be replaced when dependencies are built.
