file(REMOVE_RECURSE
  "CMakeFiles/detection_bounds_test.dir/detection_bounds_test.cc.o"
  "CMakeFiles/detection_bounds_test.dir/detection_bounds_test.cc.o.d"
  "detection_bounds_test"
  "detection_bounds_test.pdb"
  "detection_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
