file(REMOVE_RECURSE
  "CMakeFiles/membership_table_test.dir/membership_table_test.cc.o"
  "CMakeFiles/membership_table_test.dir/membership_table_test.cc.o.d"
  "membership_table_test"
  "membership_table_test.pdb"
  "membership_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
