# Empty dependencies file for hier_robustness_test.
# This may be replaced when dependencies are built.
