file(REMOVE_RECURSE
  "CMakeFiles/hier_robustness_test.dir/hier_robustness_test.cc.o"
  "CMakeFiles/hier_robustness_test.dir/hier_robustness_test.cc.o.d"
  "hier_robustness_test"
  "hier_robustness_test.pdb"
  "hier_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
