# Empty dependencies file for multidc_test.
# This may be replaced when dependencies are built.
