
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multidc_test.cc" "tests/CMakeFiles/multidc_test.dir/multidc_test.cc.o" "gcc" "tests/CMakeFiles/multidc_test.dir/multidc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/tamp_service.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/tamp_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/tamp_api.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tamp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/tamp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/tamp_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tamp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tamp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tamp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
