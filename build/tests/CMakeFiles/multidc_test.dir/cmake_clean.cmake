file(REMOVE_RECURSE
  "CMakeFiles/multidc_test.dir/multidc_test.cc.o"
  "CMakeFiles/multidc_test.dir/multidc_test.cc.o.d"
  "multidc_test"
  "multidc_test.pdb"
  "multidc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
