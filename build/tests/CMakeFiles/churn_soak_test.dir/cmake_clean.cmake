file(REMOVE_RECURSE
  "CMakeFiles/churn_soak_test.dir/churn_soak_test.cc.o"
  "CMakeFiles/churn_soak_test.dir/churn_soak_test.cc.o.d"
  "churn_soak_test"
  "churn_soak_test.pdb"
  "churn_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
