file(REMOVE_RECURSE
  "libtamp_proxy.a"
)
