file(REMOVE_RECURSE
  "CMakeFiles/tamp_proxy.dir/proxy.cc.o"
  "CMakeFiles/tamp_proxy.dir/proxy.cc.o.d"
  "libtamp_proxy.a"
  "libtamp_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
