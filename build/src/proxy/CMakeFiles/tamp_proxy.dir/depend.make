# Empty dependencies file for tamp_proxy.
# This may be replaced when dependencies are built.
