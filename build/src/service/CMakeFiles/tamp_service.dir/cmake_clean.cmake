file(REMOVE_RECURSE
  "CMakeFiles/tamp_service.dir/consumer.cc.o"
  "CMakeFiles/tamp_service.dir/consumer.cc.o.d"
  "CMakeFiles/tamp_service.dir/messages.cc.o"
  "CMakeFiles/tamp_service.dir/messages.cc.o.d"
  "CMakeFiles/tamp_service.dir/multidc.cc.o"
  "CMakeFiles/tamp_service.dir/multidc.cc.o.d"
  "CMakeFiles/tamp_service.dir/provider.cc.o"
  "CMakeFiles/tamp_service.dir/provider.cc.o.d"
  "CMakeFiles/tamp_service.dir/relay.cc.o"
  "CMakeFiles/tamp_service.dir/relay.cc.o.d"
  "CMakeFiles/tamp_service.dir/search.cc.o"
  "CMakeFiles/tamp_service.dir/search.cc.o.d"
  "libtamp_service.a"
  "libtamp_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
