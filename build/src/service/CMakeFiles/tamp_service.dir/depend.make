# Empty dependencies file for tamp_service.
# This may be replaced when dependencies are built.
