file(REMOVE_RECURSE
  "libtamp_service.a"
)
