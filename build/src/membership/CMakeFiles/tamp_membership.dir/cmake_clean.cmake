file(REMOVE_RECURSE
  "CMakeFiles/tamp_membership.dir/codec.cc.o"
  "CMakeFiles/tamp_membership.dir/codec.cc.o.d"
  "CMakeFiles/tamp_membership.dir/messages.cc.o"
  "CMakeFiles/tamp_membership.dir/messages.cc.o.d"
  "CMakeFiles/tamp_membership.dir/table.cc.o"
  "CMakeFiles/tamp_membership.dir/table.cc.o.d"
  "CMakeFiles/tamp_membership.dir/wire.cc.o"
  "CMakeFiles/tamp_membership.dir/wire.cc.o.d"
  "libtamp_membership.a"
  "libtamp_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
