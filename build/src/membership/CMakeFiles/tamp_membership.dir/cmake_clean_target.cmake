file(REMOVE_RECURSE
  "libtamp_membership.a"
)
