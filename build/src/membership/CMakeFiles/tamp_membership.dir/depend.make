# Empty dependencies file for tamp_membership.
# This may be replaced when dependencies are built.
