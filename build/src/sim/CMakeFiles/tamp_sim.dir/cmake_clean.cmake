file(REMOVE_RECURSE
  "CMakeFiles/tamp_sim.dir/event_queue.cc.o"
  "CMakeFiles/tamp_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tamp_sim.dir/simulation.cc.o"
  "CMakeFiles/tamp_sim.dir/simulation.cc.o.d"
  "libtamp_sim.a"
  "libtamp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
