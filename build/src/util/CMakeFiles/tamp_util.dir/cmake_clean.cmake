file(REMOVE_RECURSE
  "CMakeFiles/tamp_util.dir/flags.cc.o"
  "CMakeFiles/tamp_util.dir/flags.cc.o.d"
  "CMakeFiles/tamp_util.dir/logging.cc.o"
  "CMakeFiles/tamp_util.dir/logging.cc.o.d"
  "CMakeFiles/tamp_util.dir/rng.cc.o"
  "CMakeFiles/tamp_util.dir/rng.cc.o.d"
  "CMakeFiles/tamp_util.dir/stats.cc.o"
  "CMakeFiles/tamp_util.dir/stats.cc.o.d"
  "CMakeFiles/tamp_util.dir/strings.cc.o"
  "CMakeFiles/tamp_util.dir/strings.cc.o.d"
  "libtamp_util.a"
  "libtamp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
