# Empty dependencies file for tamp_util.
# This may be replaced when dependencies are built.
