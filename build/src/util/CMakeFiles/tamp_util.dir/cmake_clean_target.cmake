file(REMOVE_RECURSE
  "libtamp_util.a"
)
