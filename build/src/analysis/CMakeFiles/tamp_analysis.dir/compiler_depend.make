# Empty compiler generated dependencies file for tamp_analysis.
# This may be replaced when dependencies are built.
