file(REMOVE_RECURSE
  "libtamp_analysis.a"
)
