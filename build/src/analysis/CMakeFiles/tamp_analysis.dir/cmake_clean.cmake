file(REMOVE_RECURSE
  "CMakeFiles/tamp_analysis.dir/models.cc.o"
  "CMakeFiles/tamp_analysis.dir/models.cc.o.d"
  "libtamp_analysis.a"
  "libtamp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
