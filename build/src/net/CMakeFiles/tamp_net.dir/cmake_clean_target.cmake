file(REMOVE_RECURSE
  "libtamp_net.a"
)
