# Empty compiler generated dependencies file for tamp_net.
# This may be replaced when dependencies are built.
