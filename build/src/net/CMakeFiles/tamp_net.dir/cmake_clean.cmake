file(REMOVE_RECURSE
  "CMakeFiles/tamp_net.dir/builders.cc.o"
  "CMakeFiles/tamp_net.dir/builders.cc.o.d"
  "CMakeFiles/tamp_net.dir/topology.cc.o"
  "CMakeFiles/tamp_net.dir/topology.cc.o.d"
  "CMakeFiles/tamp_net.dir/transport.cc.o"
  "CMakeFiles/tamp_net.dir/transport.cc.o.d"
  "libtamp_net.a"
  "libtamp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
