
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/alltoall.cc" "src/protocols/CMakeFiles/tamp_protocols.dir/alltoall.cc.o" "gcc" "src/protocols/CMakeFiles/tamp_protocols.dir/alltoall.cc.o.d"
  "/root/repo/src/protocols/cluster.cc" "src/protocols/CMakeFiles/tamp_protocols.dir/cluster.cc.o" "gcc" "src/protocols/CMakeFiles/tamp_protocols.dir/cluster.cc.o.d"
  "/root/repo/src/protocols/daemon.cc" "src/protocols/CMakeFiles/tamp_protocols.dir/daemon.cc.o" "gcc" "src/protocols/CMakeFiles/tamp_protocols.dir/daemon.cc.o.d"
  "/root/repo/src/protocols/gossip.cc" "src/protocols/CMakeFiles/tamp_protocols.dir/gossip.cc.o" "gcc" "src/protocols/CMakeFiles/tamp_protocols.dir/gossip.cc.o.d"
  "/root/repo/src/protocols/hier.cc" "src/protocols/CMakeFiles/tamp_protocols.dir/hier.cc.o" "gcc" "src/protocols/CMakeFiles/tamp_protocols.dir/hier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/membership/CMakeFiles/tamp_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tamp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tamp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tamp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
