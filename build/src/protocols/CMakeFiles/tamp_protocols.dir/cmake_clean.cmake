file(REMOVE_RECURSE
  "CMakeFiles/tamp_protocols.dir/alltoall.cc.o"
  "CMakeFiles/tamp_protocols.dir/alltoall.cc.o.d"
  "CMakeFiles/tamp_protocols.dir/cluster.cc.o"
  "CMakeFiles/tamp_protocols.dir/cluster.cc.o.d"
  "CMakeFiles/tamp_protocols.dir/daemon.cc.o"
  "CMakeFiles/tamp_protocols.dir/daemon.cc.o.d"
  "CMakeFiles/tamp_protocols.dir/gossip.cc.o"
  "CMakeFiles/tamp_protocols.dir/gossip.cc.o.d"
  "CMakeFiles/tamp_protocols.dir/hier.cc.o"
  "CMakeFiles/tamp_protocols.dir/hier.cc.o.d"
  "libtamp_protocols.a"
  "libtamp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
