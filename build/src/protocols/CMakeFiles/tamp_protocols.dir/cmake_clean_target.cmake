file(REMOVE_RECURSE
  "libtamp_protocols.a"
)
