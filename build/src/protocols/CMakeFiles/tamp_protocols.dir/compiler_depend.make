# Empty compiler generated dependencies file for tamp_protocols.
# This may be replaced when dependencies are built.
