file(REMOVE_RECURSE
  "libtamp_api.a"
)
