file(REMOVE_RECURSE
  "CMakeFiles/tamp_api.dir/config.cc.o"
  "CMakeFiles/tamp_api.dir/config.cc.o.d"
  "CMakeFiles/tamp_api.dir/directory_store.cc.o"
  "CMakeFiles/tamp_api.dir/directory_store.cc.o.d"
  "CMakeFiles/tamp_api.dir/mclient.cc.o"
  "CMakeFiles/tamp_api.dir/mclient.cc.o.d"
  "CMakeFiles/tamp_api.dir/mservice.cc.o"
  "CMakeFiles/tamp_api.dir/mservice.cc.o.d"
  "libtamp_api.a"
  "libtamp_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
