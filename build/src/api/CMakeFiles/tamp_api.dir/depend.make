# Empty dependencies file for tamp_api.
# This may be replaced when dependencies are built.
