# Empty dependencies file for fig13_convergence_time.
# This may be replaced when dependencies are built.
