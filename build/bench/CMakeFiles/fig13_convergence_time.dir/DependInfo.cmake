
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_convergence_time.cc" "bench/CMakeFiles/fig13_convergence_time.dir/fig13_convergence_time.cc.o" "gcc" "bench/CMakeFiles/fig13_convergence_time.dir/fig13_convergence_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/tamp_service.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/tamp_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/tamp_api.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tamp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/tamp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/tamp_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tamp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tamp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tamp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
