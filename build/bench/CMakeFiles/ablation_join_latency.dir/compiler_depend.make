# Empty compiler generated dependencies file for ablation_join_latency.
# This may be replaced when dependencies are built.
