file(REMOVE_RECURSE
  "CMakeFiles/ablation_join_latency.dir/ablation_join_latency.cc.o"
  "CMakeFiles/ablation_join_latency.dir/ablation_join_latency.cc.o.d"
  "ablation_join_latency"
  "ablation_join_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_join_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
