# Empty dependencies file for ablation_leader_failover.
# This may be replaced when dependencies are built.
