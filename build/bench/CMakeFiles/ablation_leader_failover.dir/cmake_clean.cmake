file(REMOVE_RECURSE
  "CMakeFiles/ablation_leader_failover.dir/ablation_leader_failover.cc.o"
  "CMakeFiles/ablation_leader_failover.dir/ablation_leader_failover.cc.o.d"
  "ablation_leader_failover"
  "ablation_leader_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_leader_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
