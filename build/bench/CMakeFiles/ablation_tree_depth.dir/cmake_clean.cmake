file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_depth.dir/ablation_tree_depth.cc.o"
  "CMakeFiles/ablation_tree_depth.dir/ablation_tree_depth.cc.o.d"
  "ablation_tree_depth"
  "ablation_tree_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
