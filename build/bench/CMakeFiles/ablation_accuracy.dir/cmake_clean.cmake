file(REMOVE_RECURSE
  "CMakeFiles/ablation_accuracy.dir/ablation_accuracy.cc.o"
  "CMakeFiles/ablation_accuracy.dir/ablation_accuracy.cc.o.d"
  "ablation_accuracy"
  "ablation_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
