file(REMOVE_RECURSE
  "CMakeFiles/ablation_loss_recovery.dir/ablation_loss_recovery.cc.o"
  "CMakeFiles/ablation_loss_recovery.dir/ablation_loss_recovery.cc.o.d"
  "ablation_loss_recovery"
  "ablation_loss_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loss_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
