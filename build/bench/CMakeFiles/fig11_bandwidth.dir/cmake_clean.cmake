file(REMOVE_RECURSE
  "CMakeFiles/fig11_bandwidth.dir/fig11_bandwidth.cc.o"
  "CMakeFiles/fig11_bandwidth.dir/fig11_bandwidth.cc.o.d"
  "fig11_bandwidth"
  "fig11_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
