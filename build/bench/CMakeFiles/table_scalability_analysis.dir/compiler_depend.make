# Empty compiler generated dependencies file for table_scalability_analysis.
# This may be replaced when dependencies are built.
