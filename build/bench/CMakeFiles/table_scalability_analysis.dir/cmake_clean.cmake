file(REMOVE_RECURSE
  "CMakeFiles/table_scalability_analysis.dir/table_scalability_analysis.cc.o"
  "CMakeFiles/table_scalability_analysis.dir/table_scalability_analysis.cc.o.d"
  "table_scalability_analysis"
  "table_scalability_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_scalability_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
