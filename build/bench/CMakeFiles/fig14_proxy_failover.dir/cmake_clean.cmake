file(REMOVE_RECURSE
  "CMakeFiles/fig14_proxy_failover.dir/fig14_proxy_failover.cc.o"
  "CMakeFiles/fig14_proxy_failover.dir/fig14_proxy_failover.cc.o.d"
  "fig14_proxy_failover"
  "fig14_proxy_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_proxy_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
