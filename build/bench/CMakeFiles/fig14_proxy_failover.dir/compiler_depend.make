# Empty compiler generated dependencies file for fig14_proxy_failover.
# This may be replaced when dependencies are built.
