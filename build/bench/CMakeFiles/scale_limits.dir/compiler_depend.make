# Empty compiler generated dependencies file for scale_limits.
# This may be replaced when dependencies are built.
