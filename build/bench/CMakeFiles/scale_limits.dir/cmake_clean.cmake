file(REMOVE_RECURSE
  "CMakeFiles/scale_limits.dir/scale_limits.cc.o"
  "CMakeFiles/scale_limits.dir/scale_limits.cc.o.d"
  "scale_limits"
  "scale_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
