file(REMOVE_RECURSE
  "CMakeFiles/cache_cluster.dir/cache_cluster.cpp.o"
  "CMakeFiles/cache_cluster.dir/cache_cluster.cpp.o.d"
  "cache_cluster"
  "cache_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
