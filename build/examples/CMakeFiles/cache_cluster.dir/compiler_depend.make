# Empty compiler generated dependencies file for cache_cluster.
# This may be replaced when dependencies are built.
