// The parallel scenario runner's contract: byte-identical to the serial
// runner for every seed, results in input order regardless of completion
// order, and one failing scenario never poisons its siblings.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel_runner.h"
#include "sim/scenario.h"

namespace tamp::chaos {
namespace {

using protocols::Scheme;

ScenarioSpec spec_of(Scheme scheme, ShapeKind shape, PlanKind plan,
                     uint64_t seed, bool observed = true) {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.shape = shape;
  spec.plan = plan;
  spec.seed = seed;
  spec.trace = observed;
  spec.metrics = observed;
  return spec;
}

// A cross-section of the matrix: every scheme, every shape, storm and
// non-storm plans, several seeds — small enough to run twice (serial +
// parallel) in a unit test, diverse enough that any cross-scenario state
// bleed (RNG, metrics registry, tracer, static caches) would corrupt at
// least one byte of some artifact.
std::vector<ScenarioSpec> sample_specs() {
  return {
      spec_of(Scheme::kHierarchical, ShapeKind::kRacked, PlanKind::kLeaderKill,
              1),
      spec_of(Scheme::kHierarchical, ShapeKind::kRouterChain,
              PlanKind::kPauseResume, 2),
      spec_of(Scheme::kHierarchical, ShapeKind::kSingleSegment,
              PlanKind::kHealStorm, 3),
      spec_of(Scheme::kHierarchical, ShapeKind::kRacked, PlanKind::kJoinStorm,
              1),
      spec_of(Scheme::kGossip, ShapeKind::kRacked, PlanKind::kCrashRestart, 1),
      spec_of(Scheme::kGossip, ShapeKind::kSingleSegment, PlanKind::kLossStorm,
              2),
      spec_of(Scheme::kAllToAll, ShapeKind::kRouterChain,
              PlanKind::kPartitionHeal, 1),
      spec_of(Scheme::kAllToAll, ShapeKind::kRacked, PlanKind::kUplinkFlap, 2),
  };
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.passed, b.passed) << a.name;
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.repro, b.repro) << a.name;
  EXPECT_EQ(a.report, b.report) << a.name;
  EXPECT_EQ(a.violation_count, b.violation_count) << a.name;
  EXPECT_EQ(a.oracle_checks, b.oracle_checks) << a.name;
  EXPECT_EQ(a.horizon, b.horizon) << a.name;
  EXPECT_EQ(a.events, b.events) << a.name;
  EXPECT_EQ(a.final_converged, b.final_converged) << a.name;
  EXPECT_EQ(a.final_running, b.final_running) << a.name;
  // The byte-identity core of the contract: traces and metric snapshots.
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl) << a.name;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << a.name;
}

// --- serial-vs-parallel equivalence ---------------------------------------

TEST(ParallelRunner, ByteIdenticalToSerialRunner) {
  const std::vector<ScenarioSpec> specs = sample_specs();

  std::vector<ScenarioResult> serial;
  serial.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) serial.push_back(run_scenario(spec));

  ParallelRunOptions options;
  options.jobs = 4;
  const std::vector<ScenarioResult> parallel = run_scenarios(specs, options);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

// Running the *same* spec concurrently on every worker is the sharpest
// shared-state probe: any global RNG draw, metrics registration, or tracer
// append from a sibling shows up as a byte difference between the copies.
TEST(ParallelRunner, ConcurrentCopiesOfOneSpecAreIdentical) {
  const ScenarioSpec spec = spec_of(Scheme::kHierarchical, ShapeKind::kRacked,
                                    PlanKind::kPauseResume, 5);
  const std::vector<ScenarioSpec> specs(4, spec);

  ParallelRunOptions options;
  options.jobs = 4;
  const std::vector<ScenarioResult> results = run_scenarios(specs, options);

  ASSERT_EQ(results.size(), 4u);
  EXPECT_FALSE(results[0].trace_jsonl.empty());
  for (size_t i = 1; i < results.size(); ++i) {
    expect_identical(results[0], results[i]);
  }
}

TEST(ParallelRunner, OneJobMatchesDirectSerialCalls) {
  const std::vector<ScenarioSpec> specs = {
      spec_of(Scheme::kHierarchical, ShapeKind::kRacked,
              PlanKind::kCrashRestart, 1),
      spec_of(Scheme::kGossip, ShapeKind::kSingleSegment,
              PlanKind::kLeaderKill, 2),
  };
  ParallelRunOptions options;
  options.jobs = 1;
  const std::vector<ScenarioResult> results = run_scenarios(specs, options);
  ASSERT_EQ(results.size(), 2u);
  for (size_t i = 0; i < specs.size(); ++i) {
    expect_identical(run_scenario(specs[i]), results[i]);
  }
}

// --- result isolation ------------------------------------------------------

// gossip/partition-heal is deliberately excluded from the matrix because it
// *really* violates the convergence invariant (symmetric split: plain gossip
// has no rejoin path). Here that makes it the perfect mid-batch red entry:
// a genuine oracle failure between two green siblings.
TEST(ParallelRunner, OracleFailureMidBatchDoesNotPoisonSiblings) {
  const ScenarioSpec red = spec_of(Scheme::kGossip, ShapeKind::kSingleSegment,
                                   PlanKind::kPartitionHeal, 1);
  ASSERT_FALSE(plan_applicable(red.scheme, red.plan));
  const std::vector<ScenarioSpec> specs = {
      spec_of(Scheme::kHierarchical, ShapeKind::kRacked, PlanKind::kLeaderKill,
              1),
      red,
      spec_of(Scheme::kAllToAll, ShapeKind::kRacked, PlanKind::kCrashRestart,
              3),
  };

  ParallelRunOptions options;
  options.jobs = 3;
  const std::vector<ScenarioResult> results = run_scenarios(specs, options);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[1].passed) << results[1].name;
  EXPECT_GT(results[1].violation_count, 0u);
  // The siblings are not merely green: they are byte-identical to their
  // solo serial runs, so the failure leaked nothing into them.
  expect_identical(run_scenario(specs[0]), results[0]);
  expect_identical(run_scenario(specs[2]), results[2]);
}

TEST(ParallelRunner, ThrowingScenarioIsIsolatedToItsSlot) {
  const std::vector<ScenarioSpec> specs(4, ScenarioSpec{});
  ParallelRunOptions options;
  options.jobs = 4;
  options.run = [](const ScenarioSpec& spec) -> ScenarioResult {
    if (spec.seed == 99) throw std::runtime_error("injected fault");
    ScenarioResult result;
    result.passed = true;
    result.name = scenario_name(spec);
    return result;
  };
  std::vector<ScenarioSpec> mutated = specs;
  mutated[2].seed = 99;

  const std::vector<ScenarioResult> results = run_scenarios(mutated, options);

  ASSERT_EQ(results.size(), 4u);
  for (size_t i : {size_t{0}, size_t{1}, size_t{3}}) {
    EXPECT_TRUE(results[i].passed) << i;
  }
  EXPECT_FALSE(results[2].passed);
  EXPECT_EQ(results[2].violation_count, 1u);
  EXPECT_NE(results[2].report.find("injected fault"), std::string::npos)
      << results[2].report;
  // The failed slot still carries its reproduction coordinates.
  EXPECT_EQ(results[2].name, scenario_name(mutated[2]));
  EXPECT_EQ(results[2].repro, repro_command(mutated[2]));
}

// --- edge cases -------------------------------------------------------------

TEST(ParallelRunner, EmptyScenarioSet) {
  std::atomic<int> emitted{0};
  ParallelRunOptions options;
  options.jobs = 8;
  options.on_result = [&](size_t, const ScenarioResult&) { ++emitted; };
  const std::vector<ScenarioResult> results = run_scenarios({}, options);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(emitted.load(), 0);
}

TEST(ParallelRunner, MoreThreadsThanScenarios) {
  std::vector<ScenarioSpec> specs(2, ScenarioSpec{});
  specs[0].seed = 10;
  specs[1].seed = 11;
  ParallelRunOptions options;
  options.jobs = 16;
  options.run = [](const ScenarioSpec& spec) {
    ScenarioResult result;
    result.passed = true;
    result.name = scenario_name(spec);
    return result;
  };
  const std::vector<ScenarioResult> results = run_scenarios(specs, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, scenario_name(specs[0]));
  EXPECT_EQ(results[1].name, scenario_name(specs[1]));
  // Surplus workers are not spawned at all.
  EXPECT_EQ(effective_jobs(16, 2), 2u);
}

TEST(ParallelRunner, EffectiveJobsResolution) {
  EXPECT_EQ(effective_jobs(1, 100), 1u);
  EXPECT_EQ(effective_jobs(8, 100), 8u);
  EXPECT_EQ(effective_jobs(8, 3), 3u);
  EXPECT_EQ(effective_jobs(5, 0), 1u);
  EXPECT_GE(effective_jobs(0, 100), 1u);  // hardware concurrency, >= 1
}

// Workers finish in reverse order (earlier specs sleep longest); the
// results vector and the on_result stream must still be in input order.
TEST(ParallelRunner, DeterministicOrderingRegardlessOfCompletionOrder) {
  constexpr size_t kCount = 6;
  std::vector<ScenarioSpec> specs(kCount, ScenarioSpec{});
  for (size_t i = 0; i < kCount; ++i) specs[i].seed = i;

  std::atomic<int> completion_rank{0};
  std::vector<int> completed_rank(kCount, -1);
  ParallelRunOptions options;
  options.jobs = kCount;
  options.run = [&](const ScenarioSpec& spec) {
    const auto index = static_cast<size_t>(spec.seed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(5 * (kCount - index)));
    completed_rank[index] = completion_rank.fetch_add(1);
    ScenarioResult result;
    result.passed = true;
    result.name = scenario_name(spec);
    return result;
  };
  std::vector<size_t> emitted;
  std::thread::id caller = std::this_thread::get_id();
  options.on_result = [&](size_t index, const ScenarioResult& result) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(result.name, scenario_name(specs[index]));
    emitted.push_back(index);
  };

  const std::vector<ScenarioResult> results = run_scenarios(specs, options);

  ASSERT_EQ(results.size(), kCount);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(results[i].name, scenario_name(specs[i])) << i;
    EXPECT_EQ(emitted[i], i);
  }
  // Sanity: the staggered sleeps really did complete out of input order
  // (the last spec, sleeping shortest, finished before the first).
  EXPECT_LT(completed_rank[kCount - 1], completed_rank[0]);
}

// The full grid helper is the single source of truth for the CI gate; pin
// its shape so a silent shrink of the matrix can't pass unnoticed.
TEST(ParallelRunner, FullMatrixShape) {
  const std::vector<ScenarioSpec> specs = full_matrix();
  size_t expected = 0;
  for (Scheme scheme :
       {Scheme::kAllToAll, Scheme::kGossip, Scheme::kHierarchical}) {
    for (PlanKind plan : kAllPlanKinds) {
      if (plan_applicable(scheme, plan)) expected += 3 * 3;  // shapes x seeds
    }
  }
  EXPECT_EQ(specs.size(), expected);
  EXPECT_GE(specs.size(), 162u);  // the grid only ever grows
  for (const ScenarioSpec& spec : specs) {
    EXPECT_TRUE(plan_applicable(spec.scheme, spec.plan))
        << scenario_name(spec);
  }
}

}  // namespace
}  // namespace tamp::chaos
