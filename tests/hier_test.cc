#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

struct HierFixture : public ::testing::Test {
  sim::Simulation sim{23};
  net::Topology topo;

  Cluster::Options options(int max_ttl = 4) {
    Cluster::Options opts;
    opts.scheme = Scheme::kHierarchical;
    opts.hier.max_ttl = max_ttl;
    return opts;
  }

  HierDaemon* leader_of_level0_group(Cluster& cluster,
                                     const std::vector<net::HostId>& rack) {
    for (net::HostId h : rack) {
      auto* d = static_cast<HierDaemon*>(cluster.daemon_for(h));
      if (d != nullptr && d->is_leader(0)) return d;
    }
    return nullptr;
  }
};

TEST_F(HierFixture, SingleSegmentConverges) {
  auto layout = net::build_single_segment(topo, 10);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options(1));
  cluster.start_all();
  sim.run_until(10 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

TEST_F(HierFixture, SingleSegmentElectsExactlyOneLeader) {
  auto layout = net::build_single_segment(topo, 10);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options(1));
  cluster.start_all();
  sim.run_until(10 * sim::kSecond);

  int leaders = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.hier_daemon(i)->is_leader(0)) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  // Bully: lowest id wins.
  auto lowest = *std::min_element(layout.hosts.begin(), layout.hosts.end());
  EXPECT_TRUE(
      static_cast<HierDaemon*>(cluster.daemon_for(lowest))->is_leader(0));
}

TEST_F(HierFixture, RackedClusterFormsTwoLevels) {
  net::RackedClusterParams params;
  params.racks = 5;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);

  EXPECT_TRUE(cluster.converged());

  // Exactly one level-0 leader per rack.
  std::vector<HierDaemon*> rack_leaders;
  for (const auto& rack : layout.racks) {
    int leaders = 0;
    for (net::HostId h : rack) {
      auto* d = static_cast<HierDaemon*>(cluster.daemon_for(h));
      if (d->is_leader(0)) {
        ++leaders;
        rack_leaders.push_back(d);
      }
      // Everyone agrees on who leads the rack.
      EXPECT_NE(d->leader_of(0), membership::kInvalidNode);
    }
    EXPECT_EQ(leaders, 1);
  }
  ASSERT_EQ(rack_leaders.size(), 5u);

  // Rack leaders all join level 1, and exactly one of them leads it.
  int level1_leaders = 0;
  for (auto* d : rack_leaders) {
    EXPECT_TRUE(d->joined(1));
    EXPECT_EQ(d->group_members(1).size(), 4u);  // the other four leaders
    if (d->is_leader(1)) ++level1_leaders;
  }
  EXPECT_EQ(level1_leaders, 1);

  // Non-leaders never join level 1.
  for (size_t i = 0; i < cluster.size(); ++i) {
    auto* d = cluster.hier_daemon(i);
    if (!d->is_leader(0)) {
      EXPECT_FALSE(d->joined(1));
    }
  }
}

TEST_F(HierFixture, FailureOfRegularNodeConvergesClusterWide) {
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 5;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());

  // Pick a non-leader victim in rack 0 (highest id in the rack is safe:
  // the bully elects the lowest).
  net::HostId victim = *std::max_element(layout.racks[0].begin(),
                                         layout.racks[0].end());
  size_t victim_index = 0;
  for (size_t i = 0; i < layout.hosts.size(); ++i) {
    if (layout.hosts[i] == victim) victim_index = i;
  }

  sim::Time first = -1, last = -1;
  int leaves = 0;
  cluster.set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject == victim && !alive) {
          if (first < 0) first = when;
          last = when;
          ++leaves;
        }
      });

  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  const sim::Time kill_at = sim.now();
  cluster.kill(victim_index);
  sim.run_until(kill_at + 20 * sim::kSecond);

  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(leaves, 14);  // every survivor exactly once
  // Local detection ~ max_losses * period; remote nodes learn within
  // ~tree-propagation of that.
  EXPECT_GE(first - kill_at, 4 * sim::kSecond);
  EXPECT_LE(first - kill_at, 7 * sim::kSecond);
  EXPECT_LE(last - first, 2 * sim::kSecond);
}

TEST_F(HierFixture, JoinPropagatesClusterWide) {
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  cluster.kill(11);  // a rack-2 node is down from the start
  sim.run_until(15 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());

  cluster.restart(11);
  sim.run_until(30 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
  // Cross-rack observers see the restarted incarnation.
  const auto* seen = cluster.daemon(0).table().find(layout.hosts[11]);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->data.incarnation, 2u);
}

TEST_F(HierFixture, Level0LeaderDeathBackupTakesOver) {
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 5;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  HierDaemon* leader = leader_of_level0_group(cluster, layout.racks[1]);
  ASSERT_NE(leader, nullptr);
  net::HostId dead_leader = leader->self();
  size_t leader_index = 0;
  for (size_t i = 0; i < layout.hosts.size(); ++i) {
    if (layout.hosts[i] == dead_leader) leader_index = i;
  }

  cluster.kill(leader_index);
  sim.run_until(sim.now() + 25 * sim::kSecond);

  EXPECT_TRUE(cluster.converged());
  HierDaemon* new_leader = leader_of_level0_group(cluster, layout.racks[1]);
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->self(), dead_leader);
  EXPECT_TRUE(new_leader->joined(1));
}

TEST_F(HierFixture, BothLeaderAndBackupDieElectionRecovers) {
  net::RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 6;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  HierDaemon* leader = leader_of_level0_group(cluster, layout.racks[0]);
  ASSERT_NE(leader, nullptr);
  net::HostId backup = leader->backup_of(0);
  ASSERT_NE(backup, membership::kInvalidNode);

  auto index_of = [&](net::HostId h) {
    return static_cast<size_t>(
        std::find(layout.hosts.begin(), layout.hosts.end(), h) -
        layout.hosts.begin());
  };
  cluster.kill(index_of(leader->self()));
  cluster.kill(index_of(backup));
  sim.run_until(sim.now() + 30 * sim::kSecond);

  EXPECT_TRUE(cluster.converged());
  HierDaemon* new_leader = leader_of_level0_group(cluster, layout.racks[0]);
  ASSERT_NE(new_leader, nullptr);
}

TEST_F(HierFixture, DeepTreeFormsThreeLevels) {
  auto layout = net::build_router_tree(topo, 2, 1, 3);
  // Two leaf segments under each of two depth-1 routers... branching=2,
  // depth=1: root router with 2 leaf routers, each with a 3-host segment.
  // Cross-segment TTL: leaf,root,leaf = 3 routers -> TTL 4.
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options(4));
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());

  // Each segment has a level-0 leader; those leaders can only hear each
  // other at TTL 4 => they meet at level 3 (channels for levels 1,2 are
  // singleton groups they lead trivially).
  int top_leaders = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    auto* d = cluster.hier_daemon(i);
    if (d->is_leader(0)) {
      EXPECT_TRUE(d->joined(3));
      EXPECT_EQ(d->group_members(3).size(), 1u);
      if (d->is_leader(3)) ++top_leaders;
    }
  }
  EXPECT_EQ(top_leaders, 1);
}

TEST_F(HierFixture, Fig4OverlappingGroupsStayConsistent) {
  auto layout = net::build_fig4_overlap(topo, 2);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.all, options(4));
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());

  // Kill a node in segment C; B's nodes are 4 TTL-hops away and can only
  // learn through the overlap leader(s).
  net::HostId victim = layout.segment_c[1];
  size_t victim_index = static_cast<size_t>(
      std::find(layout.all.begin(), layout.all.end(), victim) -
      layout.all.begin());
  cluster.kill(victim_index);
  sim.run_until(sim.now() + 20 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
  for (net::HostId h : layout.segment_b) {
    EXPECT_FALSE(cluster.daemon_for(h)->table().contains(victim));
  }
}

TEST_F(HierFixture, NoTwoLeadersSeeEachOtherOnOneChannel) {
  auto layout = net::build_fig4_overlap(topo, 2);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.all, options(4));
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);

  // Paper invariant: on any channel, a leader never hears another leader.
  for (size_t i = 0; i < cluster.size(); ++i) {
    auto* a = cluster.hier_daemon(i);
    for (int level = 0; level < 4; ++level) {
      if (!a->is_leader(level)) continue;
      for (size_t j = 0; j < cluster.size(); ++j) {
        if (i == j) continue;
        auto* b = cluster.hier_daemon(j);
        if (!b->is_leader(level)) continue;
        int ttl = topo.ttl_required(a->self(), b->self());
        EXPECT_GT(ttl, level + 1)
            << "leaders " << a->self() << " and " << b->self()
            << " can hear each other at level " << level;
      }
    }
  }
}

TEST_F(HierFixture, UpdateLossRecoveredByPiggyback) {
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 5;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  // Significant loss during a churn phase: kill + restart several nodes.
  net.set_extra_loss(0.15);
  cluster.kill(4);
  cluster.kill(9);
  sim.run_until(sim.now() + 15 * sim::kSecond);
  cluster.restart(4);
  sim.run_until(sim.now() + 15 * sim::kSecond);
  net.set_extra_loss(0.0);
  sim.run_until(sim.now() + 20 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

TEST_F(HierFixture, HeartbeatTrafficStaysLocal) {
  net::RackedClusterParams params;
  params.racks = 5;
  params.hosts_per_rack = 20;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());
  net.obs().metrics.reset(obs::Protocol::kNet);
  sim.run_until(25 * sim::kSecond);

  // Per node per second: ~19 intra-rack heartbeats + a few level-1 packets.
  // The all-to-all equivalent would be 99 packets per node per second.
  double per_node_per_sec =
      static_cast<double>(net.obs().metrics.counter_value(
          obs::Protocol::kNet, "rx_messages")) /
      10.0 / static_cast<double>(layout.hosts.size());
  EXPECT_LT(per_node_per_sec, 30.0);
  EXPECT_GT(per_node_per_sec, 15.0);
}

TEST_F(HierFixture, NetworkPartitionDetectedAndHealed) {
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  // Cut rack 2's uplink: a switch/uplink failure partitions 4 nodes.
  topo.set_link_up(layout.rack_uplinks[2], false);
  sim.run_until(sim.now() + 30 * sim::kSecond);

  // Main partition no longer lists rack-2 nodes.
  for (net::HostId h : layout.racks[0]) {
    auto& table = cluster.daemon_for(h)->table();
    for (net::HostId r2 : layout.racks[2]) {
      EXPECT_FALSE(table.contains(r2));
    }
    EXPECT_EQ(table.size(), 8u);
  }
  // Rack-2 nodes still see each other (local group survives).
  for (net::HostId h : layout.racks[2]) {
    auto& table = cluster.daemon_for(h)->table();
    for (net::HostId peer : layout.racks[2]) {
      EXPECT_TRUE(table.contains(peer));
    }
  }

  // Heal: views must re-merge despite tombstones (they expire).
  topo.set_link_up(layout.rack_uplinks[2], true);
  sim.run_until(sim.now() + 60 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

TEST_F(HierFixture, ValueUpdatePropagatesAcrossGroups) {
  net::RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  // A rack-0 node publishes a new value; a rack-1 node must see it.
  cluster.daemon(1).update_value("load", "0.75");
  sim.run_until(sim.now() + 5 * sim::kSecond);
  const auto* entry =
      cluster.daemon_for(layout.racks[1][0])->table().find(layout.hosts[1]);
  ASSERT_NE(entry, nullptr);
  auto it = entry->data.values.find("load");
  ASSERT_NE(it, entry->data.values.end());
  EXPECT_EQ(it->second, "0.75");
}

TEST_F(HierFixture, RegisterServiceVisibleClusterWide) {
  net::RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 3;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);

  cluster.daemon(0).register_service("http", {0}, {{"Port", "8080"}});
  sim.run_until(sim.now() + 5 * sim::kSecond);

  auto matches =
      cluster.daemon_for(layout.racks[1][2])->table().lookup("http", "*");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0]->data.node, layout.hosts[0]);
  EXPECT_EQ(matches[0]->data.services.back().params.at("Port"), "8080");
}

TEST_F(HierFixture, StatsCountersMove) {
  net::RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);

  const obs::MetricsRegistry& m = net.obs().metrics;
  EXPECT_GT(m.counter_sum_over_nodes(obs::Protocol::kHier,
                                     "elections_started"),
            0u);
  EXPECT_GT(m.counter_sum_over_nodes(obs::Protocol::kHier, "heartbeats_sent"),
            8u * 10u);
  EXPECT_GT(m.counter_sum_over_nodes(obs::Protocol::kHier,
                                     "bootstraps_requested"),
            0u);
}

}  // namespace
}  // namespace tamp::protocols
