#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/logging.h"
#include "util/strings.h"

namespace tamp::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_u64(10), 10u);
    int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.25);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / trials, 4.0, 0.15);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(OnlineStats, Basics) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(OnlineStats, MergeMatchesBulk) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentiles, Quantiles) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.p95(), 95.05, 0.01);
  EXPECT_NEAR(p.mean(), 50.5, 1e-9);
}

TEST(Percentiles, Empty) {
  Percentiles p;
  EXPECT_EQ(p.median(), 0.0);
  EXPECT_EQ(p.mean(), 0.0);
}

TEST(WindowedRate, SlidingWindow) {
  WindowedRate rate(1'000'000'000);  // 1 s window
  rate.add(0, 100);
  rate.add(500'000'000, 100);
  EXPECT_NEAR(rate.rate_per_sec(500'000'000), 200, 1e-9);
  // At t=1.2s the first sample (t=0) falls out.
  EXPECT_NEAR(rate.rate_per_sec(1'200'000'000), 100, 1e-9);
  EXPECT_NEAR(rate.total(), 200, 1e-9);
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_FALSE(parse_double("nope").has_value());
}

TEST(Strings, PartitionSpecSingle) {
  auto spec = expand_partition_spec("3");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(*spec, (std::vector<int>{3}));
}

TEST(Strings, PartitionSpecRange) {
  auto spec = expand_partition_spec("1-3");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(*spec, (std::vector<int>{1, 2, 3}));
}

TEST(Strings, PartitionSpecMixed) {
  auto spec = expand_partition_spec("0,2,5-7");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(*spec, (std::vector<int>{0, 2, 5, 6, 7}));
}

TEST(Strings, PartitionSpecWildcard) {
  EXPECT_FALSE(expand_partition_spec("*").has_value());
  EXPECT_FALSE(expand_partition_spec("").has_value());
}

TEST(Strings, PartitionSpecMalformed) {
  auto spec = expand_partition_spec("5-2");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->empty());
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KB");
}

}  // namespace
}  // namespace tamp::util

namespace tamp::util {
namespace {

TEST(TimeSeries, CsvRendering) {
  TimeSeries series("qps");
  series.add(0.0, 10.0);
  series.add(1.0, 12.5);
  std::string csv = series.to_csv();
  EXPECT_NE(csv.find("t,qps"), std::string::npos);
  EXPECT_NE(csv.find("1,12.5"), std::string::npos);
  EXPECT_EQ(series.size(), 2u);
}

TEST(Logging, SinkCapturesAboveThreshold) {
  auto& logger = Logger::instance();
  std::vector<std::string> lines;
  logger.set_level(LogLevel::kInfo);
  logger.set_sink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  TAMP_LOG(Debug) << "hidden";
  TAMP_LOG(Info) << "visible " << 42;
  TAMP_LOG(Error) << "loud";
  logger.clear_sink();
  logger.set_level(LogLevel::kWarn);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "visible 42");
  EXPECT_EQ(lines[1], "loud");
}

TEST(Logging, TimeSourcePrefixes) {
  auto& logger = Logger::instance();
  std::vector<std::string> lines;
  logger.set_level(LogLevel::kInfo);
  logger.set_time_source([] { return std::string("1.5s"); });
  logger.set_sink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  TAMP_LOG(Info) << "tick";
  logger.clear_sink();
  logger.clear_time_source();
  logger.set_level(LogLevel::kWarn);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[1.5s] tick");
}

// Regression for the parallel chaos runner's shared-state audit: the
// process-global Logger is written from every scenario worker thread, so
// concurrent statements must neither race (TSan-clean) nor tear — every
// captured line is exactly one of the strings some thread logged.
TEST(Logging, ConcurrentWritersDoNotTearLines) {
  auto& logger = Logger::instance();
  std::mutex mu;
  std::vector<std::string> lines;
  logger.set_level(LogLevel::kInfo);
  logger.set_sink([&](LogLevel, const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        TAMP_LOG(Info) << "writer " << t << " line " << i;
      }
    });
  }
  for (auto& w : writers) w.join();
  logger.clear_sink();
  logger.set_level(LogLevel::kWarn);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kLines));
  for (const std::string& line : lines) {
    // "writer <t> line <i>" with t and i in range — an interleaved or torn
    // line fails to reparse.
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "writer %d line %d", &t, &i), 2)
        << "torn line: " << line;
    EXPECT_GE(t, 0);
    EXPECT_LT(t, kThreads);
    EXPECT_GE(i, 0);
    EXPECT_LT(i, kLines);
  }
}

TEST(LogLevelNames, AllNamed) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace tamp::util
