// Decoder fuzzing: the daemons feed every received datagram through
// decode_message / decode_service_message; arbitrary bytes must never
// crash, hang, or over-read — only yield nullopt or a well-formed message.
#include <gtest/gtest.h>

#include <type_traits>
#include <variant>

#include "membership/codec.h"
#include "membership/messages.h"
#include "service/messages.h"
#include "util/rng.h"

namespace tamp {
namespace {

std::vector<uint8_t> random_bytes(util::Rng& rng, size_t max_size) {
  std::vector<uint8_t> bytes(rng.uniform_u64(max_size) + 1);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.next_u64());
  return bytes;
}

TEST(WireFuzz, RandomBytesNeverCrashMembershipDecoder) {
  util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    auto bytes = random_bytes(rng, 512);
    (void)membership::decode_message(bytes.data(), bytes.size());
  }
  SUCCEED();
}

TEST(WireFuzz, RandomBytesNeverCrashServiceDecoder) {
  util::Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    auto bytes = random_bytes(rng, 512);
    (void)service::decode_service_message(bytes.data(), bytes.size());
  }
  SUCCEED();
}

TEST(WireFuzz, MutatedValidMessagesNeverCrash) {
  util::Rng rng(3);
  membership::HeartbeatMsg heartbeat;
  heartbeat.entry = membership::make_representative_entry(5);
  auto payload = membership::encode_message(membership::Message{heartbeat});
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> mutated(*payload);
    int flips = 1 + static_cast<int>(rng.uniform_u64(8));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.uniform_u64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.uniform_u64(8));
    }
    (void)membership::decode_message(mutated.data(), mutated.size());
  }
  SUCCEED();
}

// The version byte is a hard gate: any frame not leading with the current
// tagged version decodes to nullopt — a pre-epoch (v1) frame, whose first
// byte was the bare MessageType, can never be misparsed as v2.
TEST(WireFuzz, WrongVersionByteAlwaysRejected) {
  util::Rng rng(10);
  membership::UpdateMsg update;
  update.origin = 3;
  update.epoch = 2;
  membership::UpdateRecord record;
  record.seq = 1;
  record.kind = membership::UpdateKind::kJoin;
  record.subject = 7;
  record.entry = membership::make_representative_entry(7);
  update.records.push_back(std::move(record));
  auto payload = membership::encode_message(membership::Message{update});
  ASSERT_EQ((*payload)[0], membership::kWireVersionByte);

  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> mutated(*payload);
    uint8_t first = static_cast<uint8_t>(rng.next_u64());
    mutated[0] = first;
    auto decoded = membership::decode_message(mutated.data(), mutated.size());
    if (first == membership::kWireVersionByte) {
      EXPECT_TRUE(decoded.has_value());
    } else {
      EXPECT_FALSE(decoded.has_value());
    }
  }
}

// Random structured entries round-trip exactly (property over the codec).
TEST(WireFuzz, RandomEntriesRoundTrip) {
  util::Rng rng(4);
  auto random_string = [&](size_t max_len) {
    std::string s(rng.uniform_u64(max_len), 'x');
    for (auto& c : s) c = static_cast<char>('a' + rng.uniform_u64(26));
    return s;
  };
  for (int i = 0; i < 2000; ++i) {
    membership::EntryData entry;
    entry.node = static_cast<membership::NodeId>(rng.uniform_u64(1 << 20));
    entry.incarnation = rng.next_u64();
    entry.machine.cpus = static_cast<uint16_t>(rng.uniform_u64(256));
    entry.machine.memory_mb = static_cast<uint32_t>(rng.next_u64());
    entry.machine.os = random_string(24);
    size_t services = rng.uniform_u64(4);
    for (size_t s = 0; s < services; ++s) {
      membership::ServiceRegistration service;
      service.name = random_string(16);
      size_t partitions = rng.uniform_u64(6);
      for (size_t p = 0; p < partitions; ++p) {
        service.partitions.push_back(
            static_cast<int>(rng.uniform_u64(1 << 16)));
      }
      size_t params = rng.uniform_u64(3);
      for (size_t p = 0; p < params; ++p) {
        service.params[random_string(8)] = random_string(12);
      }
      entry.services.push_back(std::move(service));
    }
    size_t values = rng.uniform_u64(5);
    for (size_t v = 0; v < values; ++v) {
      entry.values[random_string(10)] = random_string(32);
    }

    membership::WireWriter writer;
    membership::encode_entry(writer, entry);
    auto buffer = writer.take();
    membership::WireReader reader(buffer);
    auto decoded = membership::decode_entry(reader);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, entry);
    EXPECT_EQ(reader.remaining(), 0u);
  }
}

// Random update messages (records of both kinds) round-trip through the
// full envelope.
TEST(WireFuzz, RandomUpdateMessagesRoundTrip) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    membership::UpdateMsg msg;
    msg.origin = static_cast<membership::NodeId>(rng.uniform_u64(10000));
    msg.origin_incarnation = rng.next_u64();
    size_t records = 1 + rng.uniform_u64(6);
    for (size_t r = 0; r < records; ++r) {
      membership::UpdateRecord record;
      record.seq = rng.next_u64();
      record.subject =
          static_cast<membership::NodeId>(rng.uniform_u64(10000));
      record.incarnation = rng.next_u64();
      if (rng.bernoulli(0.5)) {
        record.kind = membership::UpdateKind::kJoin;
        record.entry =
            membership::make_representative_entry(record.subject, 1);
      } else {
        record.kind = membership::UpdateKind::kLeave;
      }
      msg.records.push_back(std::move(record));
    }
    auto payload = membership::encode_message(membership::Message{msg});
    auto decoded = membership::decode_message(payload->data(), payload->size());
    ASSERT_TRUE(decoded.has_value());
    auto* out = std::get_if<membership::UpdateMsg>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->origin, msg.origin);
    EXPECT_EQ(out->origin_incarnation, msg.origin_incarnation);
    ASSERT_EQ(out->records.size(), msg.records.size());
    for (size_t r = 0; r < records; ++r) {
      EXPECT_EQ(out->records[r].seq, msg.records[r].seq);
      EXPECT_EQ(out->records[r].kind, msg.records[r].kind);
      EXPECT_EQ(out->records[r].entry, msg.records[r].entry);
    }
  }
}

namespace {

std::string random_name(util::Rng& rng, size_t max_len) {
  std::string s(rng.uniform_u64(max_len) + 1, 'x');
  for (auto& c : s) c = static_cast<char>('a' + rng.uniform_u64(26));
  return s;
}

membership::ServiceSummary random_summary(util::Rng& rng) {
  membership::ServiceSummary summary;
  size_t services = rng.uniform_u64(4);
  for (size_t s = 0; s < services; ++s) {
    auto& partitions = summary.availability[random_name(rng, 12)];
    size_t count = rng.uniform_u64(6);
    for (size_t p = 0; p < count; ++p) {
      partitions[static_cast<int>(rng.uniform_u64(64))] =
          static_cast<int>(rng.uniform_u64(100));
    }
  }
  return summary;
}

}  // namespace

// Proxy heartbeat / update messages (dc id + sender + seq + service summary)
// round-trip exactly through the shared membership envelope.
TEST(WireFuzz, RandomProxyMessagesRoundTrip) {
  util::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const uint16_t dc = static_cast<uint16_t>(rng.uniform_u64(1 << 16));
    const auto sender =
        static_cast<membership::NodeId>(rng.uniform_u64(10000));
    const uint64_t seq = rng.next_u64();
    const membership::ServiceSummary summary = random_summary(rng);

    membership::Message message;
    if (rng.bernoulli(0.5)) {
      membership::ProxyHeartbeatMsg msg;
      msg.dc = dc;
      msg.sender = sender;
      msg.seq = seq;
      msg.summary = summary;
      message = msg;
    } else {
      membership::ProxyUpdateMsg msg;
      msg.dc = dc;
      msg.sender = sender;
      msg.seq = seq;
      msg.summary = summary;
      message = msg;
    }
    auto payload = membership::encode_message(message);
    auto decoded = membership::decode_message(payload->data(), payload->size());
    ASSERT_TRUE(decoded.has_value());
    if (const auto* heartbeat =
            std::get_if<membership::ProxyHeartbeatMsg>(&*decoded)) {
      EXPECT_EQ(heartbeat->dc, dc);
      EXPECT_EQ(heartbeat->sender, sender);
      EXPECT_EQ(heartbeat->seq, seq);
      EXPECT_EQ(heartbeat->summary, summary);
    } else {
      const auto* update = std::get_if<membership::ProxyUpdateMsg>(&*decoded);
      ASSERT_NE(update, nullptr);
      EXPECT_EQ(update->dc, dc);
      EXPECT_EQ(update->sender, sender);
      EXPECT_EQ(update->seq, seq);
      EXPECT_EQ(update->summary, summary);
    }
  }
}

TEST(WireFuzz, MutatedProxyMessagesNeverCrash) {
  util::Rng rng(7);
  membership::ProxyUpdateMsg msg;
  msg.dc = 3;
  msg.sender = 17;
  msg.seq = 42;
  msg.summary = random_summary(rng);
  auto payload = membership::encode_message(membership::Message{msg});
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> mutated(*payload);
    int flips = 1 + static_cast<int>(rng.uniform_u64(8));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.uniform_u64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.uniform_u64(8));
    }
    (void)membership::decode_message(mutated.data(), mutated.size());
  }
  SUCCEED();
}

// Every service-plane message variant round-trips through its envelope.
TEST(WireFuzz, RandomServiceMessagesRoundTrip) {
  util::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    service::ServiceMessage message;
    switch (rng.uniform_u64(6)) {
      case 0: {
        service::LoadPollMsg msg;
        msg.poll_id = rng.next_u64();
        msg.from = static_cast<net::HostId>(rng.uniform_u64(10000));
        msg.reply_port = static_cast<net::Port>(rng.uniform_u64(1 << 16));
        message = msg;
        break;
      }
      case 1: {
        service::LoadReplyMsg msg;
        msg.poll_id = rng.next_u64();
        msg.from = static_cast<net::HostId>(rng.uniform_u64(10000));
        msg.load = static_cast<uint32_t>(rng.next_u64());
        message = msg;
        break;
      }
      case 2: {
        service::RequestMsg msg;
        msg.request_id = rng.next_u64();
        msg.reply_host = static_cast<net::HostId>(rng.uniform_u64(10000));
        msg.reply_port = static_cast<net::Port>(rng.uniform_u64(1 << 16));
        msg.service = random_name(rng, 20);
        msg.partition = static_cast<int32_t>(rng.uniform_u64(1 << 16));
        msg.request_bytes = static_cast<uint32_t>(rng.uniform_u64(1 << 20));
        msg.response_bytes = static_cast<uint32_t>(rng.uniform_u64(1 << 20));
        msg.relay_hops = static_cast<uint8_t>(rng.uniform_u64(4));
        message = msg;
        break;
      }
      case 3: {
        service::ResponseMsg msg;
        msg.request_id = rng.next_u64();
        msg.from = static_cast<net::HostId>(rng.uniform_u64(10000));
        msg.status =
            static_cast<service::ResponseStatus>(rng.uniform_u64(4));
        msg.payload_bytes = static_cast<uint32_t>(rng.uniform_u64(1 << 20));
        message = msg;
        break;
      }
      case 4: {
        service::RelaySynMsg msg;
        msg.conn_id = rng.next_u64();
        msg.from = static_cast<net::HostId>(rng.uniform_u64(10000));
        message = msg;
        break;
      }
      default: {
        service::RelayAckMsg msg;
        msg.conn_id = rng.next_u64();
        msg.from = static_cast<net::HostId>(rng.uniform_u64(10000));
        message = msg;
        break;
      }
    }

    auto payload = service::encode_service_message(message);
    auto decoded =
        service::decode_service_message(payload->data(), payload->size());
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->index(), message.index());
    std::visit(
        [&](const auto& original) {
          using T = std::decay_t<decltype(original)>;
          const auto& round = std::get<T>(*decoded);
          if constexpr (std::is_same_v<T, service::LoadPollMsg>) {
            EXPECT_EQ(round.poll_id, original.poll_id);
            EXPECT_EQ(round.from, original.from);
            EXPECT_EQ(round.reply_port, original.reply_port);
          } else if constexpr (std::is_same_v<T, service::LoadReplyMsg>) {
            EXPECT_EQ(round.poll_id, original.poll_id);
            EXPECT_EQ(round.from, original.from);
            EXPECT_EQ(round.load, original.load);
          } else if constexpr (std::is_same_v<T, service::RequestMsg>) {
            EXPECT_EQ(round.request_id, original.request_id);
            EXPECT_EQ(round.reply_host, original.reply_host);
            EXPECT_EQ(round.reply_port, original.reply_port);
            EXPECT_EQ(round.service, original.service);
            EXPECT_EQ(round.partition, original.partition);
            EXPECT_EQ(round.request_bytes, original.request_bytes);
            EXPECT_EQ(round.response_bytes, original.response_bytes);
            EXPECT_EQ(round.relay_hops, original.relay_hops);
          } else if constexpr (std::is_same_v<T, service::ResponseMsg>) {
            EXPECT_EQ(round.request_id, original.request_id);
            EXPECT_EQ(round.from, original.from);
            EXPECT_EQ(round.status, original.status);
            EXPECT_EQ(round.payload_bytes, original.payload_bytes);
          } else if constexpr (std::is_same_v<T, service::RelaySynMsg>) {
            EXPECT_EQ(round.conn_id, original.conn_id);
            EXPECT_EQ(round.from, original.from);
          } else {
            EXPECT_EQ(round.conn_id, original.conn_id);
            EXPECT_EQ(round.from, original.from);
          }
        },
        message);
  }
}

TEST(WireFuzz, MutatedServiceMessagesNeverCrash) {
  util::Rng rng(9);
  service::RequestMsg request;
  request.request_id = 99;
  request.reply_host = 4;
  request.reply_port = 700;
  request.service = "http";
  request.partition = 2;
  request.request_bytes = 512;
  request.response_bytes = 2048;
  auto payload =
      service::encode_service_message(service::ServiceMessage{request});
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> mutated(*payload);
    int flips = 1 + static_cast<int>(rng.uniform_u64(8));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.uniform_u64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.uniform_u64(8));
    }
    (void)service::decode_service_message(mutated.data(), mutated.size());
  }
  SUCCEED();
}

// Random digest-family messages round-trip through the full envelope; the
// scope list exercises the delta-varint coding across sparse id spaces.
TEST(WireFuzz, RandomDigestMessagesRoundTrip) {
  util::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    membership::RefreshDigestMsg msg;
    msg.origin = static_cast<membership::NodeId>(rng.uniform_u64(10000));
    msg.origin_incarnation = rng.next_u64();
    msg.level = static_cast<uint8_t>(rng.uniform_u64(4));
    msg.epoch = rng.uniform_u64(1 << 20);
    msg.subtree = rng.uniform_u64(2) == 1;
    msg.view_hash = rng.next_u64();
    size_t buckets = 1 + rng.uniform_u64(64);
    for (size_t b = 0; b < buckets; ++b) msg.buckets.push_back(rng.next_u64());
    if (msg.subtree) {
      membership::NodeId id = 0;
      size_t subjects = rng.uniform_u64(200);
      for (size_t s = 0; s < subjects; ++s) {
        id += 1 + static_cast<membership::NodeId>(rng.uniform_u64(1 << 16));
        msg.subjects.push_back(id);
      }
    }
    msg.row_count = msg.subtree
                        ? static_cast<uint32_t>(msg.subjects.size())
                        : static_cast<uint32_t>(rng.uniform_u64(20000));

    auto payload = membership::encode_message(membership::Message{msg});
    auto decoded = membership::decode_message(payload->data(), payload->size());
    ASSERT_TRUE(decoded.has_value());
    auto* out = std::get_if<membership::RefreshDigestMsg>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->origin, msg.origin);
    EXPECT_EQ(out->subtree, msg.subtree);
    EXPECT_EQ(out->row_count, msg.row_count);
    EXPECT_EQ(out->view_hash, msg.view_hash);
    EXPECT_EQ(out->buckets, msg.buckets);
    EXPECT_EQ(out->subjects, msg.subjects);
  }
}

TEST(WireFuzz, MutatedDigestMessagesNeverCrash) {
  util::Rng rng(12);
  membership::RefreshDigestMsg digest;
  digest.origin = 40;
  digest.subtree = true;
  digest.buckets.assign(16, 0x55aa55aa55aa55aaULL);
  for (membership::NodeId id = 20; id < 40; ++id) {
    digest.subjects.push_back(id);
  }
  digest.row_count = static_cast<uint32_t>(digest.subjects.size());

  membership::RefreshPullMsg pull;
  pull.requester = 7;
  pull.subtree = true;
  pull.bucket_indices = {1, 5, 9};
  for (membership::NodeId id = 20; id < 30; ++id) {
    pull.rows.push_back(membership::DigestRowSummary{id, 1, 0x1234});
  }

  membership::RefreshDeltaMsg delta;
  delta.responder = 40;
  delta.truncated = true;
  delta.entries = {membership::make_representative_entry(21, 2)};
  delta.confirmed = {22, 23, 24};

  const membership::Message corpus[] = {membership::Message{digest},
                                        membership::Message{pull},
                                        membership::Message{delta}};
  for (const auto& message : corpus) {
    auto payload = membership::encode_message(message);
    for (int i = 0; i < 20000; ++i) {
      std::vector<uint8_t> mutated(*payload);
      int flips = 1 + static_cast<int>(rng.uniform_u64(8));
      for (int f = 0; f < flips; ++f) {
        size_t pos = rng.uniform_u64(mutated.size());
        mutated[pos] ^= static_cast<uint8_t>(1u << rng.uniform_u64(8));
      }
      (void)membership::decode_message(mutated.data(), mutated.size());
    }
    // Every truncated prefix as well: length fields lie, decoders may not.
    for (size_t len = 0; len < payload->size(); ++len) {
      (void)membership::decode_message(payload->data(), len);
    }
  }
  SUCCEED();
}

// A forged bucket count past the decoder cap must be rejected outright, not
// allocated.
TEST(WireFuzz, OversizedDigestVectorsRejected) {
  membership::RefreshDigestMsg msg;
  msg.origin = 1;
  msg.buckets.assign(membership::kMaxDigestBuckets + 1, 7);
  auto payload = membership::encode_message(membership::Message{msg});
  EXPECT_FALSE(
      membership::decode_message(payload->data(), payload->size()).has_value());

  membership::RefreshPullMsg pull;
  pull.requester = 2;
  pull.bucket_indices.assign(membership::kMaxDigestBuckets + 1, 3);
  payload = membership::encode_message(membership::Message{pull});
  EXPECT_FALSE(
      membership::decode_message(payload->data(), payload->size()).has_value());
}

// Truncation fuzz: every prefix of a valid encoding must decode to nullopt
// or a well-formed message, never crash or over-read.
TEST(WireFuzz, TruncatedMessagesNeverCrash) {
  membership::HeartbeatMsg heartbeat;
  heartbeat.entry = membership::make_representative_entry(5);
  auto mpayload = membership::encode_message(membership::Message{heartbeat});
  for (size_t len = 0; len < mpayload->size(); ++len) {
    (void)membership::decode_message(mpayload->data(), len);
  }
  service::RequestMsg request;
  request.service = "search";
  auto spayload =
      service::encode_service_message(service::ServiceMessage{request});
  for (size_t len = 0; len < spayload->size(); ++len) {
    (void)service::decode_service_message(spayload->data(), len);
  }
  SUCCEED();
}

}  // namespace
}  // namespace tamp
