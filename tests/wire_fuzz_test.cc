// Decoder fuzzing: the daemons feed every received datagram through
// decode_message / decode_service_message; arbitrary bytes must never
// crash, hang, or over-read — only yield nullopt or a well-formed message.
#include <gtest/gtest.h>

#include "membership/codec.h"
#include "membership/messages.h"
#include "service/messages.h"
#include "util/rng.h"

namespace tamp {
namespace {

std::vector<uint8_t> random_bytes(util::Rng& rng, size_t max_size) {
  std::vector<uint8_t> bytes(rng.uniform_u64(max_size) + 1);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.next_u64());
  return bytes;
}

TEST(WireFuzz, RandomBytesNeverCrashMembershipDecoder) {
  util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    auto bytes = random_bytes(rng, 512);
    (void)membership::decode_message(bytes.data(), bytes.size());
  }
  SUCCEED();
}

TEST(WireFuzz, RandomBytesNeverCrashServiceDecoder) {
  util::Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    auto bytes = random_bytes(rng, 512);
    (void)service::decode_service_message(bytes.data(), bytes.size());
  }
  SUCCEED();
}

TEST(WireFuzz, MutatedValidMessagesNeverCrash) {
  util::Rng rng(3);
  membership::HeartbeatMsg heartbeat;
  heartbeat.entry = membership::make_representative_entry(5);
  auto payload = membership::encode_message(membership::Message{heartbeat});
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> mutated(*payload);
    int flips = 1 + static_cast<int>(rng.uniform_u64(8));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.uniform_u64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.uniform_u64(8));
    }
    (void)membership::decode_message(mutated.data(), mutated.size());
  }
  SUCCEED();
}

// Random structured entries round-trip exactly (property over the codec).
TEST(WireFuzz, RandomEntriesRoundTrip) {
  util::Rng rng(4);
  auto random_string = [&](size_t max_len) {
    std::string s(rng.uniform_u64(max_len), 'x');
    for (auto& c : s) c = static_cast<char>('a' + rng.uniform_u64(26));
    return s;
  };
  for (int i = 0; i < 2000; ++i) {
    membership::EntryData entry;
    entry.node = static_cast<membership::NodeId>(rng.uniform_u64(1 << 20));
    entry.incarnation = rng.next_u64();
    entry.machine.cpus = static_cast<uint16_t>(rng.uniform_u64(256));
    entry.machine.memory_mb = static_cast<uint32_t>(rng.next_u64());
    entry.machine.os = random_string(24);
    size_t services = rng.uniform_u64(4);
    for (size_t s = 0; s < services; ++s) {
      membership::ServiceRegistration service;
      service.name = random_string(16);
      size_t partitions = rng.uniform_u64(6);
      for (size_t p = 0; p < partitions; ++p) {
        service.partitions.push_back(
            static_cast<int>(rng.uniform_u64(1 << 16)));
      }
      size_t params = rng.uniform_u64(3);
      for (size_t p = 0; p < params; ++p) {
        service.params[random_string(8)] = random_string(12);
      }
      entry.services.push_back(std::move(service));
    }
    size_t values = rng.uniform_u64(5);
    for (size_t v = 0; v < values; ++v) {
      entry.values[random_string(10)] = random_string(32);
    }

    membership::WireWriter writer;
    membership::encode_entry(writer, entry);
    auto buffer = writer.take();
    membership::WireReader reader(buffer);
    auto decoded = membership::decode_entry(reader);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, entry);
    EXPECT_EQ(reader.remaining(), 0u);
  }
}

// Random update messages (records of both kinds) round-trip through the
// full envelope.
TEST(WireFuzz, RandomUpdateMessagesRoundTrip) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    membership::UpdateMsg msg;
    msg.origin = static_cast<membership::NodeId>(rng.uniform_u64(10000));
    msg.origin_incarnation = rng.next_u64();
    size_t records = 1 + rng.uniform_u64(6);
    for (size_t r = 0; r < records; ++r) {
      membership::UpdateRecord record;
      record.seq = rng.next_u64();
      record.subject =
          static_cast<membership::NodeId>(rng.uniform_u64(10000));
      record.incarnation = rng.next_u64();
      if (rng.bernoulli(0.5)) {
        record.kind = membership::UpdateKind::kJoin;
        record.entry =
            membership::make_representative_entry(record.subject, 1);
      } else {
        record.kind = membership::UpdateKind::kLeave;
      }
      msg.records.push_back(std::move(record));
    }
    auto payload = membership::encode_message(membership::Message{msg});
    auto decoded = membership::decode_message(payload->data(), payload->size());
    ASSERT_TRUE(decoded.has_value());
    auto* out = std::get_if<membership::UpdateMsg>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->origin, msg.origin);
    EXPECT_EQ(out->origin_incarnation, msg.origin_incarnation);
    ASSERT_EQ(out->records.size(), msg.records.size());
    for (size_t r = 0; r < records; ++r) {
      EXPECT_EQ(out->records[r].seq, msg.records[r].seq);
      EXPECT_EQ(out->records[r].kind, msg.records[r].kind);
      EXPECT_EQ(out->records[r].entry, msg.records[r].entry);
    }
  }
}

}  // namespace
}  // namespace tamp
