#include <gtest/gtest.h>

#include <map>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "service/consumer.h"
#include "service/provider.h"

namespace tamp::service {
namespace {

struct ServiceFixture : public ::testing::Test {
  sim::Simulation sim{31};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<protocols::Cluster> cluster;

  void build(int hosts) {
    layout = net::build_single_segment(topo, hosts);
    net = std::make_unique<net::Network>(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier.max_ttl = 1;
    cluster = std::make_unique<protocols::Cluster>(sim, *net, layout.hosts,
                                                   opts);
    cluster->start_all();
    sim.run_until(8 * sim::kSecond);
    ASSERT_TRUE(cluster->converged());
  }
};

TEST_F(ServiceFixture, InvokeRoundTrip) {
  build(4);
  ServiceProvider provider(sim, *net, cluster->daemon(1));
  provider.host_service("echo", {0});
  provider.start();

  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(sim.now() + 3 * sim::kSecond);  // registration propagates

  InvokeResult got;
  bool done = false;
  consumer.invoke("echo", 0, 100, 500, [&](const InvokeResult& result) {
    got = result;
    done = true;
  });
  sim.run_until(sim.now() + 2 * sim::kSecond);

  ASSERT_TRUE(done);
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(got.server, layout.hosts[1]);
  EXPECT_FALSE(got.via_proxy);
  EXPECT_GT(got.latency, 0);
  EXPECT_LT(got.latency, 200 * sim::kMillisecond);
  EXPECT_EQ(provider.requests_served(), 1u);
}

TEST_F(ServiceFixture, UnknownServiceFailsCleanly) {
  build(3);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();

  InvokeResult got;
  bool done = false;
  consumer.invoke("nonexistent", 0, 10, 10, [&](const InvokeResult& result) {
    got = result;
    done = true;
  });
  sim.run_until(sim.now() + 3 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.cause, FailureCause::kNoProvider);
}

TEST_F(ServiceFixture, RandomPollingPrefersLightReplica) {
  build(5);
  ServiceProvider busy(sim, *net, cluster->daemon(1));
  busy.host_service("work", {0});
  busy.start();
  ServiceProvider idle(sim, *net, cluster->daemon(2));
  idle.host_service("work", {0});
  idle.start();

  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(sim.now() + 3 * sim::kSecond);

  // Swamp the busy replica directly so its queue is long.
  for (int i = 0; i < 50; ++i) {
    RequestMsg request;
    request.request_id = 900000u + static_cast<uint64_t>(i);
    request.reply_host = layout.hosts[0];
    request.reply_port = 12345;  // nobody listens; fine
    request.service = "work";
    request.partition = 0;
    net->send_unicast(layout.hosts[0],
                      {layout.hosts[1], protocols::kServicePort},
                      encode_service_message(request));
  }
  sim.run_until(sim.now() + 100 * sim::kMillisecond);
  ASSERT_GT(busy.current_load(), 10u);

  std::map<net::HostId, int> hits;
  int done = 0;
  for (int i = 0; i < 30; ++i) {
    consumer.invoke("work", 0, 10, 10, [&](const InvokeResult& result) {
      if (result.ok()) hits[result.server]++;
      ++done;
    });
  }
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(done, 30);
  // Random polling (d=2) must route the large majority to the idle one.
  EXPECT_GT(hits[layout.hosts[2]], 25);
}

TEST_F(ServiceFixture, FailoverToAnotherReplicaOnDeadTarget) {
  build(5);
  ServiceProvider a(sim, *net, cluster->daemon(1));
  a.host_service("kv", {0});
  a.start();
  ServiceProvider b(sim, *net, cluster->daemon(2));
  b.host_service("kv", {0});
  b.start();
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(sim.now() + 3 * sim::kSecond);

  // Node 1 crashes; before the membership notices, invocations must still
  // succeed by timing out against the dead replica and retrying the other.
  net->set_host_up(layout.hosts[1], false);

  int ok = 0, total = 0;
  for (int i = 0; i < 10; ++i) {
    consumer.invoke("kv", 0, 10, 10, [&](const InvokeResult& result) {
      ++total;
      if (result.ok()) {
        ++ok;
        EXPECT_EQ(result.server, layout.hosts[2]);
      }
    });
  }
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(total, 10);
  EXPECT_EQ(ok, 10);
}

TEST_F(ServiceFixture, OverloadedProviderRejects) {
  build(3);
  ProviderConfig config;
  config.max_queue = 2;
  config.concurrency = 1;
  config.mean_service_time = 500 * sim::kMillisecond;
  ServiceProvider provider(sim, *net, cluster->daemon(1), config);
  provider.host_service("slow", {0});
  provider.start();

  ConsumerConfig consumer_config;
  ASSERT_TRUE(ConsumerConfigBuilder()
                  .proxy_fallback(false)
                  .max_attempts(1)
                  .Build(&consumer_config)
                  .ok());
  ServiceConsumer consumer(sim, *net, cluster->daemon(0), consumer_config);
  consumer.start();
  sim.run_until(sim.now() + 3 * sim::kSecond);

  int ok = 0, rejected = 0;
  for (int i = 0; i < 12; ++i) {
    consumer.invoke("slow", 0, 10, 10, [&](const InvokeResult& result) {
      if (result.ok()) {
        ++ok;
      } else {
        ++rejected;
      }
    });
  }
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(ok + rejected, 12);
  EXPECT_GT(rejected, 0);
  EXPECT_GT(provider.requests_rejected(), 0u);
}

TEST_F(ServiceFixture, PartitionSelectsCorrectProvider) {
  build(5);
  ServiceProvider p0(sim, *net, cluster->daemon(1));
  p0.host_service("part", {0});
  p0.start();
  ServiceProvider p1(sim, *net, cluster->daemon(2));
  p1.host_service("part", {1});
  p1.start();
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(sim.now() + 3 * sim::kSecond);

  bool done = false;
  consumer.invoke("part", 1, 10, 10, [&](const InvokeResult& result) {
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.server, layout.hosts[2]);
    done = true;
  });
  sim.run_until(sim.now() + 2 * sim::kSecond);
  EXPECT_TRUE(done);
}

TEST(ServiceMessages, RoundTrips) {
  RequestMsg request;
  request.request_id = 42;
  request.reply_host = 7;
  request.reply_port = 999;
  request.service = "search";
  request.partition = 3;
  request.request_bytes = 256;
  request.response_bytes = 1024;
  request.relay_hops = 1;
  auto payload = encode_service_message(request);
  // Request body is padded onto the wire.
  EXPECT_GE(payload->size(), 256u);
  auto decoded = decode_service_message(payload->data(), payload->size());
  ASSERT_TRUE(decoded.has_value());
  auto* out = std::get_if<RequestMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->service, "search");
  EXPECT_EQ(out->partition, 3);
  EXPECT_EQ(out->relay_hops, 1);

  ResponseMsg response;
  response.request_id = 42;
  response.from = 9;
  response.status = ResponseStatus::kOk;
  response.payload_bytes = 2048;
  auto response_payload = encode_service_message(response);
  EXPECT_GE(response_payload->size(), 2048u);
  auto response_decoded = decode_service_message(response_payload->data(),
                                                 response_payload->size());
  ASSERT_TRUE(response_decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<ResponseMsg>(*response_decoded));

  uint8_t garbage[] = {0xfe, 0x01};
  EXPECT_FALSE(decode_service_message(garbage, sizeof(garbage)).has_value());
}

}  // namespace
}  // namespace tamp::service
