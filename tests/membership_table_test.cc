#include <gtest/gtest.h>

#include "membership/codec.h"
#include "membership/table.h"

namespace tamp::membership {
namespace {

EntryData entry(NodeId node, Incarnation inc = 1) {
  EntryData e = make_representative_entry(node, inc);
  return e;
}

TEST(Codec, EntryRoundTrip) {
  EntryData original = entry(7, 3);
  WireWriter w;
  encode_entry(w, original);
  auto buffer = w.take();
  WireReader r(buffer);
  auto decoded = decode_entry(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(Codec, RepresentativeEntryNearPaperSize) {
  // The paper measured 228 bytes of per-node membership information.
  size_t size = encoded_entry_size(entry(42));
  EXPECT_GT(size, 180u);
  EXPECT_LT(size, 280u);
}

TEST(Codec, TruncatedBufferFailsCleanly) {
  WireWriter w;
  encode_entry(w, entry(1));
  auto buffer = w.take();
  for (size_t cut = 0; cut + 1 < buffer.size(); cut += 7) {
    WireReader r(buffer.data(), cut);
    auto decoded = decode_entry(r);
    EXPECT_FALSE(decoded.has_value()) << "cut=" << cut;
  }
}

TEST(Wire, VarintRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40,
                     0xffffffffffffffffull}) {
    WireWriter w;
    w.varint(v);
    WireReader r(w.view().data(), w.view().size());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(Wire, PadTo) {
  WireWriter w;
  w.u32(5);
  w.pad_to(100);
  EXPECT_EQ(w.size(), 100u);
  w.pad_to(50);  // never shrinks
  EXPECT_EQ(w.size(), 100u);
}

TEST(Table, ApplyAddsAndRefreshes) {
  MembershipTable table;
  EXPECT_EQ(table.apply(entry(1), Liveness::kDirect, kInvalidNode, 100),
            ApplyResult::kAdded);
  EXPECT_EQ(table.apply(entry(1), Liveness::kDirect, kInvalidNode, 200),
            ApplyResult::kRefreshed);
  EXPECT_EQ(table.find(1)->last_heard, 200);
  EXPECT_EQ(table.size(), 1u);
}

TEST(Table, NewerIncarnationUpdates) {
  MembershipTable table;
  table.apply(entry(1, 1), Liveness::kDirect, kInvalidNode, 0);
  EXPECT_EQ(table.apply(entry(1, 2), Liveness::kDirect, kInvalidNode, 1),
            ApplyResult::kUpdated);
  EXPECT_EQ(table.find(1)->data.incarnation, 2u);
}

TEST(Table, OlderIncarnationIsStale) {
  MembershipTable table;
  table.apply(entry(1, 5), Liveness::kDirect, kInvalidNode, 0);
  EXPECT_EQ(table.apply(entry(1, 4), Liveness::kDirect, kInvalidNode, 1),
            ApplyResult::kStale);
  EXPECT_EQ(table.find(1)->data.incarnation, 5u);
}

TEST(Table, RelayedDoesNotDowngradeDirect) {
  MembershipTable table;
  table.apply(entry(1), Liveness::kDirect, kInvalidNode, 0);
  table.apply(entry(1), Liveness::kRelayed, 9, 1);
  EXPECT_EQ(table.find(1)->liveness, Liveness::kDirect);
  // But a relayed record with *new content* still refreshes the data.
  EntryData updated = entry(1);
  updated.values["hostname"] = "renamed";
  EXPECT_EQ(table.apply(updated, Liveness::kRelayed, 9, 2),
            ApplyResult::kUpdated);
  EXPECT_EQ(table.find(1)->data.values.at("hostname"), "renamed");
  EXPECT_EQ(table.find(1)->liveness, Liveness::kDirect);
}

TEST(Table, DirectUpgradesRelayed) {
  MembershipTable table;
  table.apply(entry(1), Liveness::kRelayed, 9, 0);
  EXPECT_EQ(table.find(1)->liveness, Liveness::kRelayed);
  table.apply(entry(1), Liveness::kDirect, kInvalidNode, 1);
  EXPECT_EQ(table.find(1)->liveness, Liveness::kDirect);
}

TEST(Table, RemoveHonorsIncarnation) {
  MembershipTable table;
  table.apply(entry(1, 3), Liveness::kDirect, kInvalidNode, 0);
  EXPECT_FALSE(table.remove(1, 2, 10));  // stale leave
  EXPECT_TRUE(table.contains(1));
  EXPECT_TRUE(table.remove(1, 3, 10));
  EXPECT_FALSE(table.contains(1));
}

TEST(Table, TombstoneBlocksRelayedRejoin) {
  MembershipTable table;
  table.apply(entry(1, 3), Liveness::kDirect, kInvalidNode, 0);
  table.remove(1, 3, 10);
  EXPECT_EQ(table.apply(entry(1, 3), Liveness::kRelayed, 9, 11),
            ApplyResult::kStale);
  // Higher incarnation passes.
  EXPECT_EQ(table.apply(entry(1, 4), Liveness::kRelayed, 9, 12),
            ApplyResult::kAdded);
}

TEST(Table, DirectObservationOverridesTombstone) {
  MembershipTable table;
  table.apply(entry(1, 3), Liveness::kDirect, kInvalidNode, 0);
  table.remove(1, 3, 10);
  EXPECT_EQ(table.apply(entry(1, 3), Liveness::kDirect, kInvalidNode, 11),
            ApplyResult::kAdded);
}

TEST(Table, TombstoneExpires) {
  MembershipTable table(/*tombstone_ttl=*/100);
  table.apply(entry(1, 3), Liveness::kDirect, kInvalidNode, 0);
  table.remove(1, 3, 10);
  EXPECT_EQ(table.apply(entry(1, 3), Liveness::kRelayed, 9, 50),
            ApplyResult::kStale);
  EXPECT_EQ(table.apply(entry(1, 3), Liveness::kRelayed, 9, 111),
            ApplyResult::kAdded);
}

TEST(Table, ExpirePolicy) {
  MembershipTable table;
  table.apply(entry(1), Liveness::kDirect, kInvalidNode, 0);
  table.apply(entry(2), Liveness::kDirect, kInvalidNode, 50);
  auto expired = table.expire(101, [](const MembershipEntry& e) {
    return e.data.node == 1 ? sim::Duration{100} : sim::Duration{-1};
  });
  EXPECT_EQ(expired, (std::vector<NodeId>{1}));
  EXPECT_FALSE(table.contains(1));
  EXPECT_TRUE(table.contains(2));
}

TEST(Table, PurgeRelayedBy) {
  MembershipTable table;
  table.apply(entry(1), Liveness::kRelayed, 9, 0);
  table.apply(entry(2), Liveness::kRelayed, 9, 0);
  table.apply(entry(3), Liveness::kRelayed, 8, 0);
  table.apply(entry(4), Liveness::kDirect, kInvalidNode, 0);
  auto purged = table.purge_relayed_by(9);
  EXPECT_EQ(purged, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(table.size(), 2u);
}

TEST(Table, LookupByServiceAndPartition) {
  MembershipTable table;
  EntryData a;
  a.node = 1;
  a.incarnation = 1;
  a.services.push_back({"index", {0, 1}, {}});
  EntryData b;
  b.node = 2;
  b.incarnation = 1;
  b.services.push_back({"index", {2}, {}});
  EntryData c;
  c.node = 3;
  c.incarnation = 1;
  c.services.push_back({"doc", {0}, {}});
  for (const auto& e : {a, b, c}) {
    table.apply(e, Liveness::kDirect, kInvalidNode, 0);
  }

  EXPECT_EQ(table.lookup("index", "*").size(), 2u);
  EXPECT_EQ(table.lookup("index", "2").size(), 1u);
  EXPECT_EQ(table.lookup("index", "0-1").size(), 1u);
  EXPECT_EQ(table.lookup(".*", "*").size(), 3u);
  EXPECT_EQ(table.lookup("doc", "1-5").size(), 0u);
  EXPECT_EQ(table.lookup("(index|doc)", "0").size(), 2u);
}

TEST(Table, LookupMalformedRegexMatchesNothing) {
  MembershipTable table;
  table.apply(entry(1), Liveness::kDirect, kInvalidNode, 0);
  EXPECT_TRUE(table.lookup("(unclosed", "*").empty());
}

TEST(Table, NodeIdsSorted) {
  MembershipTable table;
  for (NodeId n : {5u, 1u, 3u}) {
    table.apply(entry(n), Liveness::kDirect, kInvalidNode, 0);
  }
  EXPECT_EQ(table.node_ids(), (std::vector<NodeId>{1, 3, 5}));
}

}  // namespace
}  // namespace tamp::membership
