// Edge cases of the Neptune consumer module's invocation state machine:
// polling behavior, retry ordering, callback-exactly-once, and timeout
// boundaries.
#include <gtest/gtest.h>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "service/consumer.h"
#include "service/provider.h"

namespace tamp::service {
namespace {

struct ConsumerEdgeFixture : public ::testing::Test {
  sim::Simulation sim{111};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<protocols::Cluster> cluster;
  std::vector<std::unique_ptr<ServiceProvider>> providers;

  void build(int hosts) {
    layout = net::build_single_segment(topo, hosts);
    net = std::make_unique<net::Network>(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier.max_ttl = 1;
    cluster = std::make_unique<protocols::Cluster>(sim, *net, layout.hosts,
                                                   opts);
    cluster->start_all();
  }

  ServiceProvider& add_provider(size_t index, const std::string& service,
                                int partition) {
    providers.push_back(
        std::make_unique<ServiceProvider>(sim, *net, cluster->daemon(index)));
    providers.back()->host_service(service, {partition});
    providers.back()->start();
    return *providers.back();
  }
};

TEST_F(ConsumerEdgeFixture, CallbackFiresExactlyOnceOnSuccess) {
  build(4);
  add_provider(1, "svc", 0);
  add_provider(2, "svc", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int calls = 0;
  consumer.invoke("svc", 0, 10, 10, [&](const InvokeResult&) { ++calls; });
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(calls, 1);
}

TEST_F(ConsumerEdgeFixture, CallbackFiresExactlyOnceOnFailure) {
  build(3);
  ConsumerConfig config;
  config.proxy_fallback = false;
  ServiceConsumer consumer(sim, *net, cluster->daemon(0), config);
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int calls = 0;
  consumer.invoke("ghost", 0, 10, 10, [&](const InvokeResult&) { ++calls; });
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(calls, 1);
}

TEST_F(ConsumerEdgeFixture, SingleReplicaSkipsPolling) {
  build(3);
  auto& provider = add_provider(1, "solo", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  sim::Duration latency = -1;
  consumer.invoke("solo", 0, 10, 10, [&](const InvokeResult& result) {
    ASSERT_TRUE(result.ok);
    latency = result.latency;
  });
  sim.run_until(sim.now() + 2 * sim::kSecond);
  // No 20 ms poll round: straight dispatch + ~10 ms service time.
  EXPECT_GT(latency, 0);
  EXPECT_LT(latency, 150 * sim::kMillisecond);
  EXPECT_EQ(provider.requests_served(), 1u);
}

TEST_F(ConsumerEdgeFixture, PollTimeoutFallsBackToResponders) {
  build(5);
  add_provider(1, "mix", 0);
  add_provider(2, "mix", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  // One of the two replicas silently dies (no membership update yet).
  net->set_host_up(layout.hosts[1], false);
  int ok = 0;
  for (int i = 0; i < 8; ++i) {
    consumer.invoke("mix", 0, 10, 10, [&](const InvokeResult& result) {
      if (result.ok) {
        ++ok;
        EXPECT_EQ(result.server, layout.hosts[2]);
      }
    });
  }
  sim.run_until(sim.now() + 6 * sim::kSecond);
  EXPECT_EQ(ok, 8);
}

TEST_F(ConsumerEdgeFixture, ExhaustedAttemptsReportUnavailable) {
  build(5);
  add_provider(1, "doomed", 0);
  add_provider(2, "doomed", 0);
  add_provider(3, "doomed", 0);
  ConsumerConfig config;
  config.proxy_fallback = false;
  config.max_attempts = 2;
  ServiceConsumer consumer(sim, *net, cluster->daemon(0), config);
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  // All replicas die silently.
  for (size_t i : {1, 2, 3}) net->set_host_up(layout.hosts[i], false);
  InvokeResult got;
  bool done = false;
  consumer.invoke("doomed", 0, 10, 10, [&](const InvokeResult& result) {
    got = result;
    done = true;
  });
  sim.run_until(sim.now() + 10 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.status, ResponseStatus::kUnavailable);
  EXPECT_EQ(got.attempts, 2);
  // Bounded by attempts x (poll timeout + request timeout).
  EXPECT_LT(got.latency, 5 * sim::kSecond);
}

TEST_F(ConsumerEdgeFixture, ConcurrentInvocationsKeepIdsSeparate) {
  build(4);
  add_provider(1, "a", 0);
  add_provider(2, "b", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int done = 0;
  for (int i = 0; i < 20; ++i) {
    const char* service = (i % 2 == 0) ? "a" : "b";
    net::HostId expected = (i % 2 == 0) ? layout.hosts[1] : layout.hosts[2];
    consumer.invoke(service, 0, 10, 10,
                    [&, expected](const InvokeResult& result) {
                      EXPECT_TRUE(result.ok);
                      EXPECT_EQ(result.server, expected);
                      ++done;
                    });
  }
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(done, 20);
}

TEST_F(ConsumerEdgeFixture, StopCancelsPendingWork) {
  build(3);
  ProviderConfig slow;
  slow.mean_service_time = 2 * sim::kSecond;
  providers.push_back(std::make_unique<ServiceProvider>(
      sim, *net, cluster->daemon(1), slow));
  providers.back()->host_service("slow", {0});
  providers.back()->start();

  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int calls = 0;
  consumer.invoke("slow", 0, 10, 10, [&](const InvokeResult&) { ++calls; });
  sim.run_until(sim.now() + 100 * sim::kMillisecond);
  consumer.stop();
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(calls, 0);  // stopped consumers never fire stale callbacks
}

TEST_F(ConsumerEdgeFixture, ProviderQueueDrainsInOrder) {
  build(3);
  ProviderConfig config;
  config.concurrency = 1;
  config.mean_service_time = 20 * sim::kMillisecond;
  providers.push_back(std::make_unique<ServiceProvider>(
      sim, *net, cluster->daemon(1), config));
  providers.back()->host_service("fifo", {0});
  providers.back()->start();

  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int done = 0;
  for (int i = 0; i < 10; ++i) {
    consumer.invoke("fifo", 0, 10, 10, [&](const InvokeResult& result) {
      EXPECT_TRUE(result.ok);
      ++done;
    });
  }
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(done, 10);
  EXPECT_EQ(providers.back()->requests_served(), 10u);
}

}  // namespace
}  // namespace tamp::service
