// Edge cases of the Neptune consumer module's invocation state machine:
// polling behavior, retry ordering, callback-exactly-once, and timeout
// boundaries.
#include <gtest/gtest.h>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "proxy/proxy.h"
#include "service/consumer.h"
#include "service/messages.h"
#include "service/provider.h"

namespace tamp::service {
namespace {

struct ConsumerEdgeFixture : public ::testing::Test {
  sim::Simulation sim{111};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<protocols::Cluster> cluster;
  std::vector<std::unique_ptr<ServiceProvider>> providers;

  void build(int hosts) {
    layout = net::build_single_segment(topo, hosts);
    net = std::make_unique<net::Network>(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier.max_ttl = 1;
    cluster = std::make_unique<protocols::Cluster>(sim, *net, layout.hosts,
                                                   opts);
    cluster->start_all();
  }

  ServiceProvider& add_provider(size_t index, const std::string& service,
                                int partition) {
    providers.push_back(
        std::make_unique<ServiceProvider>(sim, *net, cluster->daemon(index)));
    providers.back()->host_service(service, {partition});
    providers.back()->start();
    return *providers.back();
  }
};

TEST_F(ConsumerEdgeFixture, CallbackFiresExactlyOnceOnSuccess) {
  build(4);
  add_provider(1, "svc", 0);
  add_provider(2, "svc", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int calls = 0;
  consumer.invoke("svc", 0, 10, 10, [&](const InvokeResult&) { ++calls; });
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(calls, 1);
}

TEST_F(ConsumerEdgeFixture, CallbackFiresExactlyOnceOnFailure) {
  build(3);
  ConsumerConfig config;
  ASSERT_TRUE(
      ConsumerConfigBuilder().proxy_fallback(false).Build(&config).ok());
  ServiceConsumer consumer(sim, *net, cluster->daemon(0), config);
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int calls = 0;
  consumer.invoke("ghost", 0, 10, 10, [&](const InvokeResult&) { ++calls; });
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(calls, 1);
}

TEST_F(ConsumerEdgeFixture, SingleReplicaSkipsPolling) {
  build(3);
  auto& provider = add_provider(1, "solo", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  sim::Duration latency = -1;
  consumer.invoke("solo", 0, 10, 10, [&](const InvokeResult& result) {
    ASSERT_TRUE(result.ok());
    latency = result.latency;
  });
  sim.run_until(sim.now() + 2 * sim::kSecond);
  // No 20 ms poll round: straight dispatch + ~10 ms service time.
  EXPECT_GT(latency, 0);
  EXPECT_LT(latency, 150 * sim::kMillisecond);
  EXPECT_EQ(provider.requests_served(), 1u);
}

TEST_F(ConsumerEdgeFixture, PollTimeoutFallsBackToResponders) {
  build(5);
  add_provider(1, "mix", 0);
  add_provider(2, "mix", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  // One of the two replicas silently dies (no membership update yet).
  net->set_host_up(layout.hosts[1], false);
  int ok = 0;
  for (int i = 0; i < 8; ++i) {
    consumer.invoke("mix", 0, 10, 10, [&](const InvokeResult& result) {
      if (result.ok()) {
        ++ok;
        EXPECT_EQ(result.server, layout.hosts[2]);
      }
    });
  }
  sim.run_until(sim.now() + 6 * sim::kSecond);
  EXPECT_EQ(ok, 8);
}

TEST_F(ConsumerEdgeFixture, ExhaustedAttemptsReportUnavailable) {
  build(5);
  add_provider(1, "doomed", 0);
  add_provider(2, "doomed", 0);
  add_provider(3, "doomed", 0);
  ConsumerConfig config;
  ASSERT_TRUE(ConsumerConfigBuilder()
                  .proxy_fallback(false)
                  .max_attempts(2)
                  .Build(&config)
                  .ok());
  ServiceConsumer consumer(sim, *net, cluster->daemon(0), config);
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  // All replicas die silently.
  for (size_t i : {1, 2, 3}) net->set_host_up(layout.hosts[i], false);
  InvokeResult got;
  bool done = false;
  consumer.invoke("doomed", 0, 10, 10, [&](const InvokeResult& result) {
    got = result;
    done = true;
  });
  sim.run_until(sim.now() + 10 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.cause, FailureCause::kProviderDead);
  EXPECT_EQ(got.attempts, 2);
  // Bounded by attempts x (poll timeout + request timeout).
  EXPECT_LT(got.latency, 5 * sim::kSecond);
}

TEST_F(ConsumerEdgeFixture, ConcurrentInvocationsKeepIdsSeparate) {
  build(4);
  add_provider(1, "a", 0);
  add_provider(2, "b", 0);
  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int done = 0;
  for (int i = 0; i < 20; ++i) {
    const char* service = (i % 2 == 0) ? "a" : "b";
    net::HostId expected = (i % 2 == 0) ? layout.hosts[1] : layout.hosts[2];
    consumer.invoke(service, 0, 10, 10,
                    [&, expected](const InvokeResult& result) {
                      EXPECT_TRUE(result.ok());
                      EXPECT_EQ(result.server, expected);
                      ++done;
                    });
  }
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(done, 20);
}

TEST_F(ConsumerEdgeFixture, StopCancelsPendingWork) {
  build(3);
  ProviderConfig slow;
  slow.mean_service_time = 2 * sim::kSecond;
  providers.push_back(std::make_unique<ServiceProvider>(
      sim, *net, cluster->daemon(1), slow));
  providers.back()->host_service("slow", {0});
  providers.back()->start();

  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int calls = 0;
  consumer.invoke("slow", 0, 10, 10, [&](const InvokeResult&) { ++calls; });
  sim.run_until(sim.now() + 100 * sim::kMillisecond);
  consumer.stop();
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(calls, 0);  // stopped consumers never fire stale callbacks
}

TEST_F(ConsumerEdgeFixture, ProviderQueueDrainsInOrder) {
  build(3);
  ProviderConfig config;
  config.concurrency = 1;
  config.mean_service_time = 20 * sim::kMillisecond;
  providers.push_back(std::make_unique<ServiceProvider>(
      sim, *net, cluster->daemon(1), config));
  providers.back()->host_service("fifo", {0});
  providers.back()->start();

  ServiceConsumer consumer(sim, *net, cluster->daemon(0));
  consumer.start();
  sim.run_until(8 * sim::kSecond);

  int done = 0;
  for (int i = 0; i < 10; ++i) {
    consumer.invoke("fifo", 0, 10, 10, [&](const InvokeResult& result) {
      EXPECT_TRUE(result.ok());
      ++done;
    });
  }
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(done, 10);
  EXPECT_EQ(providers.back()->requests_served(), 10u);
}

// --- proxy fallback under dynamic-topology faults --------------------------
//
// The racked fixture mirrors the router-flap / rewire-heal chaos plans at
// unit scale: providers live across the core router from the consumer, a
// proxy lives on the consumer's own segment, and the test mutates the
// topology mid-run. The "proxy" is the directory row plus a minimal relay
// stub answering kOk on the relay port — the consumer's fallback decision
// (when to give up on the directory and pay the relay) is what's under test,
// not the WAN handshake (multidc_test covers that).
struct ProxyFallbackFixture : public ::testing::Test {
  sim::Simulation sim{17};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<protocols::Cluster> cluster;
  std::vector<std::unique_ptr<ServiceProvider>> providers;
  uint64_t relay_served = 0;

  void build(int racks, int hosts_per_rack) {
    net::RackedClusterParams params;
    params.racks = racks;
    params.hosts_per_rack = hosts_per_rack;
    layout = net::build_racked_cluster(topo, params);
    net = std::make_unique<net::Network>(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    // React to topology mutation at heartbeat speed, like the chaos plans.
    opts.hier.topology_poll_interval = 1 * sim::kSecond;
    cluster = std::make_unique<protocols::Cluster>(sim, *net, layout.hosts,
                                                   opts);
    cluster->start_all();
  }

  protocols::MembershipDaemon& daemon_of(net::HostId host) {
    protocols::MembershipDaemon* daemon = cluster->daemon_for(host);
    EXPECT_NE(daemon, nullptr);
    return *daemon;
  }

  void add_provider(net::HostId host, const std::string& service) {
    providers.push_back(
        std::make_unique<ServiceProvider>(sim, *net, daemon_of(host)));
    providers.back()->host_service(service, {0});
    providers.back()->start();
  }

  // Advertise `host` as a proxy and answer relayed requests with kOk.
  void add_relay_stub(net::HostId host) {
    daemon_of(host).register_service(proxy::kProxyServiceName, {0});
    net->bind(host, kProxyRelayPort, [this, host](const net::Packet& packet) {
      auto message = decode_service_message(packet);
      if (!message) return;
      const auto* request = std::get_if<RequestMsg>(&*message);
      if (request == nullptr) return;
      ++relay_served;
      ResponseMsg response;
      response.request_id = request->request_id;
      response.from = host;
      response.status = ResponseStatus::kOk;
      response.payload_bytes = request->response_bytes;
      net->send_unicast(host,
                        net::Address{request->reply_host, request->reply_port},
                        encode_service_message(response));
    });
  }

  InvokeResult invoke_and_wait(ServiceConsumer& consumer,
                               const std::string& service) {
    InvokeResult got;
    bool done = false;
    consumer.invoke(service, 0, 10, 10, [&](const InvokeResult& result) {
      got = result;
      done = true;
    });
    sim.run_until(sim.now() + 10 * sim::kSecond);
    EXPECT_TRUE(done);
    return got;
  }
};

// Router-flap: the core router power-cycles. While it is dark the directory
// still lists the cross-rack providers (stale rows), so the consumer pays
// misroutes, exhausts its direct attempts, and must fall back to the
// same-segment proxy; once the router returns and the directory
// reconverges, requests go direct again.
TEST_F(ProxyFallbackFixture, RouterFlapFallsBackToProxyAndRecovers) {
  build(2, 4);
  add_provider(layout.racks[1][0], "svc");
  add_provider(layout.racks[1][1], "svc");
  add_relay_stub(layout.racks[0][1]);
  ServiceConsumer consumer(sim, *net, daemon_of(layout.racks[0][0]));
  consumer.start();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster->converged());

  InvokeResult direct = invoke_and_wait(consumer, "svc");
  ASSERT_TRUE(direct.ok());
  EXPECT_FALSE(direct.via_proxy);
  EXPECT_EQ(relay_served, 0u);

  // Dark phase, stale window: invoked at the instant of the crash, before
  // any topology tick can prune, the rows still point across the dead core.
  topo.set_device_up(layout.routers[0], false);
  InvokeResult flapped = invoke_and_wait(consumer, "svc");
  ASSERT_TRUE(flapped.ok());
  EXPECT_TRUE(flapped.via_proxy);
  EXPECT_GT(flapped.misroutes, 0);
  EXPECT_EQ(relay_served, 1u);

  // Dark phase, after reconvergence: whether or not the stale rows are
  // gone, the proxy still carries the traffic.
  sim.run_until(sim.now() + 25 * sim::kSecond);
  InvokeResult pruned = invoke_and_wait(consumer, "svc");
  ASSERT_TRUE(pruned.ok());
  EXPECT_TRUE(pruned.via_proxy);
  EXPECT_EQ(relay_served, 2u);

  // Heal: the router returns, the directory re-merges, traffic goes direct.
  topo.set_device_up(layout.routers[0], true);
  sim.run_until(sim.now() + 30 * sim::kSecond);
  ASSERT_TRUE(cluster->converged());
  InvokeResult healed = invoke_and_wait(consumer, "svc");
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.via_proxy);
  EXPECT_EQ(relay_served, 2u);
}

// Rewire-heal: the core crashes and the network heals into a different
// shape before it returns — a provider host is re-homed onto the consumer's
// own segment. The consumer must ride the proxy while dark, then find the
// migrated provider directly once the directory tracks the new shape (the
// core is still down — only the rewire made the direct path exist).
TEST_F(ProxyFallbackFixture, RewireHealRestoresDirectPathWithoutRouter) {
  build(3, 3);
  net::HostId migrant = layout.racks[1][0];
  add_provider(migrant, "svc");
  add_provider(layout.racks[1][1], "svc");
  add_relay_stub(layout.racks[0][1]);
  ServiceConsumer consumer(sim, *net, daemon_of(layout.racks[0][0]));
  consumer.start();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster->converged());

  topo.set_device_up(layout.routers[0], false);
  sim.run_until(sim.now() + 1 * sim::kSecond);
  InvokeResult dark = invoke_and_wait(consumer, "svc");
  ASSERT_TRUE(dark.ok());
  EXPECT_TRUE(dark.via_proxy);
  EXPECT_EQ(relay_served, 1u);

  // Rewire: the provider joins the consumer's segment while the core is
  // still dark; the level-0 group re-forms around it.
  topo.migrate_host(migrant, layout.rack_switches[0]);
  sim.run_until(sim.now() + 25 * sim::kSecond);
  InvokeResult rewired = invoke_and_wait(consumer, "svc");
  ASSERT_TRUE(rewired.ok());
  EXPECT_FALSE(rewired.via_proxy);
  EXPECT_EQ(rewired.server, migrant);
  EXPECT_EQ(relay_served, 1u);

  // Heal: the router returns; direct service continues uninterrupted.
  topo.set_device_up(layout.routers[0], true);
  sim.run_until(sim.now() + 30 * sim::kSecond);
  InvokeResult healed = invoke_and_wait(consumer, "svc");
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.via_proxy);
}

}  // namespace
}  // namespace tamp::service
