// Transport fault-injection hook + the DESIGN.md hardening guarantees that
// motivated it: tombstone/heartbeat interplay across partition heals, and
// incarnation-scoped update streams under crash-restart churn with loss.
#include <gtest/gtest.h>

#include <memory>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

// Minimal injector for direct hook tests: cut one sender's outbound
// traffic, or duplicate everything.
class TestInjector : public net::FaultInjector {
 public:
  Verdict verdict(const net::Packet& packet) override {
    Verdict verdict;
    if (packet.from.host == cut_sender_) verdict.cut = true;
    verdict.duplicates = duplicates_;
    return verdict;
  }
  void cut_outbound(net::HostId sender) { cut_sender_ = sender; }
  void set_duplicates(int copies) { duplicates_ = copies; }

 private:
  net::HostId cut_sender_ = net::kInvalidHost;
  int duplicates_ = 0;
};

// An asymmetric outbound cut: the victim's packets vanish but it still
// hears everyone. Peers must (correctly) remove the mute node; the mute
// node must keep its complete view — exactly the directional semantics the
// FaultInjector contract promises.
TEST(FaultInjection, AsymmetricCutIsDirectional) {
  sim::Simulation sim(1);
  net::Topology topo;
  auto layout = net::build_single_segment(topo, 5);
  net::Network net(sim, topo);
  TestInjector injector;
  net.set_fault_injector(&injector);

  Cluster::Options opts;
  opts.scheme = Scheme::kAllToAll;
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(10 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  net::HostId mute = layout.hosts[2];
  injector.cut_outbound(mute);
  sim.run_until(sim.now() + 10 * sim::kSecond);

  for (size_t i = 0; i < cluster.size(); ++i) {
    if (i == 2) continue;
    EXPECT_FALSE(cluster.daemon(i).table().contains(mute))
        << "peer " << i << " still lists the mute node";
  }
  // The mute node hears every peer, so its view must still be complete.
  EXPECT_EQ(cluster.daemon(2).view_size(), cluster.size());

  // Heal: direct heartbeats resume and everyone re-adds the node.
  injector.cut_outbound(net::kInvalidHost);
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

// Packet duplication must be harmless: processing is idempotent, so a
// cluster formed entirely under 3x duplication converges normally.
TEST(FaultInjection, DuplicationIsIdempotent) {
  sim::Simulation sim(2);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  TestInjector injector;
  injector.set_duplicates(2);
  net.set_fault_injector(&injector);

  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  EXPECT_TRUE(cluster.converged())
      << cluster.converged_count() << "/" << cluster.size();
}

// With no injector installed the transport must draw the same RNG sequence
// as before the hook existed: two runs, one with a no-op Verdict-returning
// injector and one with none, stay step-for-step identical because the
// injector only *adds* draws when a verdict demands them.
TEST(FaultInjection, NoopInjectorPreservesDeterminism) {
  auto run = [](bool with_injector) {
    sim::Simulation sim(7);
    net::Topology topo;
    auto layout = net::build_single_segment(topo, 6);
    net::Network net(sim, topo);
    net.set_extra_loss(0.05);  // force RNG draws on the delivery path
    TestInjector injector;
    if (with_injector) net.set_fault_injector(&injector);
    Cluster::Options opts;
    opts.scheme = Scheme::kAllToAll;
    Cluster cluster(sim, net, layout.hosts, opts);
    cluster.start_all();
    sim.run_until(12 * sim::kSecond);
    return std::make_pair(sim.events_executed(),
                          net.obs().metrics.counter_value(
                              obs::Protocol::kNet, "dropped_messages"));
  };
  EXPECT_EQ(run(false), run(true));
}

// DESIGN.md hardening item 8, first half: a partition held past the
// tombstone TTL re-merges cleanly on heal — the LEAVE tombstones both sides
// recorded have expired, so the relayed re-joins are accepted and nobody's
// incarnation had to change.
TEST(FaultInjection, PartitionHealRemergesWithSameIncarnations) {
  sim::Simulation sim(3);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  opts.hier.refresh_interval = 10 * sim::kSecond;  // prompt anti-entropy
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  // Cut rack 0 off for twice the tombstone TTL.
  topo.set_link_up(layout.rack_uplinks[0], false);
  sim.run_until(sim.now() + 2 * opts.hier.tombstone_ttl);
  net::HostId islander = layout.racks[0][1];
  net::HostId mainlander = layout.racks[1][1];
  EXPECT_FALSE(cluster.daemon_for(mainlander)->table().contains(islander));
  EXPECT_FALSE(cluster.daemon_for(islander)->table().contains(mainlander));

  topo.set_link_up(layout.rack_uplinks[0], true);
  sim.run_until(sim.now() + 20 * sim::kSecond);

  EXPECT_TRUE(cluster.converged())
      << cluster.converged_count() << "/" << cluster.size();
  const auto* entry = cluster.daemon_for(mainlander)->table().find(islander);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data.incarnation, 1u) << "re-merge must not need a new life";
}

// DESIGN.md hardening item 8, second half: a tombstone never outlasts the
// evidence — hearing the node's own heartbeat overrides the quarantine
// immediately. One node's NIC cable is pulled long enough to be removed,
// then restored *within* the tombstone TTL; same-segment peers must re-add
// it within a few heartbeat periods, not after tombstone expiry.
TEST(FaultInjection, DirectHeartbeatOverridesTombstoneImmediately) {
  sim::Simulation sim(4);
  net::Topology topo;
  auto layout = net::build_single_segment(topo, 8);
  net::Network net(sim, topo);
  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  net::HostId victim = layout.hosts[3];
  topo.set_link_up(topo.uplink_of(victim), false);
  // Long enough for the level-0 timeout + LEAVE propagation, well inside
  // the 15 s tombstone TTL.
  sim.run_until(sim.now() + 8 * sim::kSecond);
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (i == 3) continue;
    ASSERT_FALSE(cluster.daemon(i).table().contains(victim))
        << "peer " << i << " never removed the unplugged node";
  }

  topo.set_link_up(topo.uplink_of(victim), true);
  sim.run_until(sim.now() + 3 * opts.hier.period);
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(cluster.daemon(i).table().contains(victim))
        << "peer " << i << " kept quarantining a directly heard node";
  }
}

// DESIGN.md hardening item 5: a crash-restart under 10% packet loss comes
// back as a fresh incarnation whose update stream is accepted everywhere —
// the per-origin sequence cursors are incarnation-scoped, so the new
// stream's records are not discarded against the old stream's cursor.
TEST(FaultInjection, CrashRestartNewIncarnationAcceptedUnderLoss) {
  sim::Simulation sim(5);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 4;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  net.set_extra_loss(0.10);
  size_t victim_index = 5;
  net::HostId victim = layout.hosts[victim_index];
  cluster.kill(victim_index);
  sim.run_until(sim.now() + 25 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  cluster.restart(victim_index);
  sim.run_until(sim.now() + 20 * sim::kSecond);
  ASSERT_TRUE(cluster.converged())
      << cluster.converged_count() << "/" << cluster.size();
  for (size_t i = 0; i < cluster.size(); ++i) {
    const auto* entry = cluster.daemon(i).table().find(victim);
    ASSERT_NE(entry, nullptr) << "view " << i;
    EXPECT_EQ(entry->data.incarnation, 2u) << "view " << i;
  }

  // The fresh incarnation's update stream must work end to end: a value
  // published by the revenant reaches every receiver promptly despite the
  // continuing loss.
  cluster.daemon(victim_index).update_value("epoch", "second-life");
  sim.run_until(sim.now() + 5 * opts.hier.period);
  for (size_t i = 0; i < cluster.size(); ++i) {
    const auto* entry = cluster.daemon(i).table().find(victim);
    ASSERT_NE(entry, nullptr) << "view " << i;
    auto it = entry->data.values.find("epoch");
    ASSERT_NE(it, entry->data.values.end())
        << "view " << i << " never accepted the new stream's update";
    EXPECT_EQ(it->second, "second-life");
  }
}

}  // namespace
}  // namespace tamp::protocols
