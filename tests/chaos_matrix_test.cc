// The chaos matrix: every (scheme x shape x plan x seed) scenario runs a
// full fault schedule through the transport's FaultInjector and is graded
// by the MembershipOracle. A failing entry prints the exact reproduction
// tuple and the bench/chaos_soak command that replays it.
#include <gtest/gtest.h>

#include <cctype>
#include <vector>

#include "sim/scenario.h"

namespace tamp::chaos {
namespace {

// The grid itself comes from full_matrix() — the same spec list the
// parallel runner's CI gate sweeps via bench/chaos_soak --jobs=N.
std::vector<ScenarioSpec> matrix() { return full_matrix(); }

std::string param_name(const ::testing::TestParamInfo<ScenarioSpec>& info) {
  std::string name = scenario_name(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class ChaosMatrix : public ::testing::TestWithParam<ScenarioSpec> {};

TEST_P(ChaosMatrix, InvariantsHoldUnderFaults) {
  ScenarioResult result = run_scenario(GetParam());
  EXPECT_GT(result.oracle_checks, 0u) << result.name;
  EXPECT_GT(result.final_running, 0u) << result.name;
  EXPECT_TRUE(result.passed)
      << result.name << ": " << result.violation_count
      << " invariant violation(s)\n"
      << result.report << "\nreproduce with: " << result.repro;
  // At quiescence the cluster itself must agree with the oracle: every
  // running view converged back to the running set.
  EXPECT_EQ(result.final_converged, result.final_running)
      << result.name << "\nreproduce with: " << result.repro;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosMatrix, ::testing::ValuesIn(matrix()),
                         param_name);

// The digest slice: the hier rows of the same grid, re-run with incremental
// digest anti-entropy. The digest path must survive exactly the fault plans
// the full-image path does.
INSTANTIATE_TEST_SUITE_P(DigestSweep, ChaosMatrix,
                         ::testing::ValuesIn(digest_matrix()), param_name);

}  // namespace
}  // namespace tamp::chaos
