// Parameterized property suites run against all three membership schemes:
// the invariants every membership protocol must satisfy, swept over scheme
// x cluster shape x seed.
#include <gtest/gtest.h>

#include <tuple>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

struct ClusterShape {
  int racks;
  int hosts_per_rack;
};

using Param = std::tuple<Scheme, ClusterShape, uint64_t /*seed*/>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [scheme, shape, seed] = info.param;
  std::string name = scheme_name(scheme);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + std::to_string(shape.racks) + "x" +
         std::to_string(shape.hosts_per_rack) + "_s" + std::to_string(seed);
}

class MembershipProperty : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto& [scheme, shape, seed] = GetParam();
    sim_ = std::make_unique<sim::Simulation>(seed);
    if (shape.racks == 1) {
      layout_ = net::build_single_segment(topo_, shape.hosts_per_rack);
    } else {
      net::RackedClusterParams params;
      params.racks = shape.racks;
      params.hosts_per_rack = shape.hosts_per_rack;
      layout_ = net::build_racked_cluster(topo_, params);
    }
    net_ = std::make_unique<net::Network>(*sim_, topo_);
    Cluster::Options opts;
    opts.scheme = scheme;
    cluster_ = std::make_unique<Cluster>(*sim_, *net_, layout_.hosts, opts);
  }

  // Generous time bound that covers gossip's slow convergence too.
  sim::Duration settle() const {
    return std::get<0>(GetParam()) == Scheme::kGossip ? 40 * sim::kSecond
                                                      : 15 * sim::kSecond;
  }
  sim::Duration detect() const {
    return std::get<0>(GetParam()) == Scheme::kGossip ? 60 * sim::kSecond
                                                      : 20 * sim::kSecond;
  }

  std::unique_ptr<sim::Simulation> sim_;
  net::Topology topo_;
  net::ClusterLayout layout_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<Cluster> cluster_;
};

// Property: from a cold start, every node's view converges to exactly the
// live node set (completeness + accuracy).
TEST_P(MembershipProperty, ColdStartConverges) {
  cluster_->start_all();
  sim_->run_until(settle());
  EXPECT_TRUE(cluster_->converged())
      << cluster_->converged_count() << "/" << cluster_->size();
}

// Property: a single failure is (a) detected by everyone, (b) exactly once
// per observer, and (c) no live node is ever falsely removed.
TEST_P(MembershipProperty, SingleFailureDetectedExactlyOnceEach) {
  size_t victim_index = cluster_->size() / 2;
  net::HostId victim = layout_.hosts[victim_index];
  std::map<membership::NodeId, int> false_leaves;
  int victim_leaves = 0;
  cluster_->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time) {
        if (alive) return;
        if (subject == victim) {
          ++victim_leaves;
        } else {
          ++false_leaves[subject];
        }
      });
  cluster_->start_all();
  sim_->run_until(settle());
  ASSERT_TRUE(cluster_->converged());

  cluster_->kill(victim_index);
  sim_->run_until(sim_->now() + detect());

  EXPECT_TRUE(cluster_->converged());
  EXPECT_EQ(victim_leaves, static_cast<int>(cluster_->size()) - 1);
  EXPECT_TRUE(false_leaves.empty());
}

// Property: views never contain nodes that were never started.
TEST_P(MembershipProperty, NoPhantomMembers) {
  cluster_->start_all();
  sim_->run_until(settle());
  std::set<net::HostId> valid(layout_.hosts.begin(), layout_.hosts.end());
  for (size_t i = 0; i < cluster_->size(); ++i) {
    for (auto id : cluster_->daemon(i).table().node_ids()) {
      EXPECT_TRUE(valid.contains(id));
    }
  }
}

// Property: kill then restart returns the cluster to full membership, and
// the new incarnation is what survives.
TEST_P(MembershipProperty, ChurnRoundTrip) {
  cluster_->start_all();
  sim_->run_until(settle());
  ASSERT_TRUE(cluster_->converged());

  cluster_->kill(0);
  sim_->run_until(sim_->now() + detect());
  ASSERT_TRUE(cluster_->converged());

  cluster_->restart(0);
  sim_->run_until(sim_->now() + detect());
  EXPECT_TRUE(cluster_->converged());
  const auto* entry =
      cluster_->daemon(1).table().find(layout_.hosts[0]);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data.incarnation, 2u);
}

// Property: under sustained moderate packet loss, no false failure
// detections occur (the schemes' loss tolerance parameters hold).
TEST_P(MembershipProperty, ModerateLossCausesNoFalseFailures) {
  int leaves = 0;
  cluster_->set_change_listener(
      [&](membership::NodeId, bool alive, sim::Time) {
        if (!alive) ++leaves;
      });
  cluster_->start_all();
  sim_->run_until(settle());
  ASSERT_TRUE(cluster_->converged());
  net_->set_extra_loss(0.03);
  sim_->run_until(sim_->now() + 30 * sim::kSecond);
  EXPECT_EQ(leaves, 0);
  EXPECT_TRUE(cluster_->converged());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MembershipProperty,
    ::testing::Combine(
        ::testing::Values(Scheme::kAllToAll, Scheme::kGossip,
                          Scheme::kHierarchical),
        ::testing::Values(ClusterShape{1, 8}, ClusterShape{3, 6}),
        ::testing::Values(1u, 2u)),
    param_name);

// Hierarchical-only sweep: formation must work on every topology family.
class HierTopologyProperty
    : public ::testing::TestWithParam<std::tuple<int /*racks*/,
                                                 int /*hosts*/, uint64_t>> {};

TEST_P(HierTopologyProperty, ConvergesAndElectsOneLeaderPerRack) {
  const auto& [racks, hosts, seed] = GetParam();
  sim::Simulation sim(seed);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = racks;
  params.hosts_per_rack = hosts;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);

  EXPECT_TRUE(cluster.converged())
      << cluster.converged_count() << "/" << cluster.size();
  for (const auto& rack : layout.racks) {
    int leaders = 0;
    for (net::HostId h : rack) {
      if (static_cast<HierDaemon*>(cluster.daemon_for(h))->is_leader(0)) {
        ++leaders;
      }
    }
    EXPECT_EQ(leaders, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierTopologyProperty,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(3, 10),
                       ::testing::Values(3u, 4u)));

}  // namespace
}  // namespace tamp::protocols
