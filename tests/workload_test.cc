// The application traffic layer: the deterministic open-loop workload
// driver, its phase-bucketed SLO accounting, and its integration with the
// chaos scenario runner (SLO mode must be a pure function of the spec at
// any parallel-runner worker count).
#include <gtest/gtest.h>

#include <numeric>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "sim/parallel_runner.h"
#include "sim/scenario.h"
#include "workload/workload.h"

namespace tamp::workload {
namespace {

struct WorkloadFixture {
  sim::Simulation sim;
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<protocols::Cluster> cluster;
  std::unique_ptr<WorkloadDriver> driver;

  explicit WorkloadFixture(uint64_t sim_seed = 33) : sim(sim_seed) {}

  void build(int hosts, uint64_t workload_seed = 5,
             WorkloadConfig config = {}) {
    layout = net::build_single_segment(topo, hosts);
    net = std::make_unique<net::Network>(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier.max_ttl = 1;
    cluster = std::make_unique<protocols::Cluster>(sim, *net, layout.hosts,
                                                   opts);
    cluster->start_all();
    driver = std::make_unique<WorkloadDriver>(sim, *net, *cluster, config,
                                              workload_seed);
    driver->start();
  }
};

uint64_t phase_balance(const PhaseSlo& phase) {
  return phase.ok + phase.failed + phase.aborted + phase.unresolved;
}

TEST(Workload, HealthyClusterCompletesEverythingInPre) {
  WorkloadFixture fx;
  fx.build(6);
  fx.sim.run_until(40 * sim::kSecond);
  fx.driver->quiesce();
  fx.sim.run_until(45 * sim::kSecond);

  std::vector<PhaseSlo> phases = fx.driver->report();
  ASSERT_EQ(phases.size(), static_cast<size_t>(kPhaseCount));
  // No phase bounds set: everything lands in "pre".
  EXPECT_GT(phases[0].issued, 100u);
  EXPECT_EQ(phases[1].issued, 0u);
  EXPECT_EQ(phases[2].issued, 0u);
  EXPECT_EQ(phases[0].issued, phase_balance(phases[0]));
  EXPECT_EQ(phases[0].unresolved, 0u);  // quiesce drained the tail
  EXPECT_EQ(phases[0].failed, 0u);
  EXPECT_EQ(phases[0].ok, phases[0].issued);
  // A healthy directory never misroutes and never needs the proxy.
  EXPECT_EQ(phases[0].misroutes, 0u);
  EXPECT_EQ(phases[0].via_proxy, 0u);
  // Load-balanced dispatch sometimes polls, so attempts == completions.
  EXPECT_EQ(phases[0].attempts, phases[0].ok);
  // Percentiles are populated, ordered, and plausible for a 2 ms service.
  EXPECT_GT(phases[0].p50_ns, 0);
  EXPECT_LE(phases[0].p50_ns, phases[0].p99_ns);
  EXPECT_LE(phases[0].p99_ns, phases[0].p999_ns);
  EXPECT_LE(phases[0].p999_ns, phases[0].max_ns);
}

TEST(Workload, RegistryCountersMatchTheReport) {
  WorkloadFixture fx;
  fx.build(5);
  fx.sim.run_until(30 * sim::kSecond);
  fx.driver->quiesce();
  fx.sim.run_until(35 * sim::kSecond);

  std::vector<PhaseSlo> phases = fx.driver->report();
  uint64_t issued = 0, ok = 0;
  for (const PhaseSlo& p : phases) {
    issued += p.issued;
    ok += p.ok;
  }
  const obs::MetricsRegistry& metrics = fx.net->obs().metrics;
  EXPECT_EQ(metrics.counter_sum_over_nodes(obs::Protocol::kWorkload,
                                           "requests_issued"),
            issued);
  EXPECT_EQ(
      metrics.counter_sum_over_nodes(obs::Protocol::kWorkload, "requests_ok"),
      ok);
  EXPECT_EQ(fx.driver->issued(), issued);
}

TEST(Workload, SameSeedSameBytes) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    WorkloadFixture fx;
    fx.build(5, /*workload_seed=*/9);
    fx.sim.run_until(30 * sim::kSecond);
    fx.driver->quiesce();
    fx.sim.run_until(35 * sim::kSecond);
    *out = fx.driver->report_json();
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"phases\""), std::string::npos);
}

TEST(Workload, DifferentSeedDifferentArrivals) {
  uint64_t issued_a = 0, issued_b = 0;
  for (auto [seed, out] : {std::pair<uint64_t, uint64_t*>{3, &issued_a},
                           std::pair<uint64_t, uint64_t*>{4, &issued_b}}) {
    WorkloadFixture fx;
    fx.build(5, seed);
    fx.sim.run_until(30 * sim::kSecond);
    *out = fx.driver->issued();
  }
  // Poisson arrivals from different seeds almost surely differ in count;
  // equality would mean the seed is being ignored.
  EXPECT_NE(issued_a, issued_b);
}

TEST(Workload, SilentProviderDeathShowsUpAsMisroutes) {
  WorkloadFixture fx;
  WorkloadConfig config;
  config.partitions = 2;
  config.replicas = 2;
  fx.build(4, 5, config);
  fx.sim.run_until(20 * sim::kSecond);

  // A provider host dies silently: the membership layer needs detection
  // time, and until then its directory rows are misroute bait.
  fx.net->set_host_up(fx.layout.hosts[1], false);
  fx.sim.run_until(40 * sim::kSecond);
  fx.driver->quiesce();
  fx.sim.run_until(46 * sim::kSecond);

  std::vector<PhaseSlo> phases = fx.driver->report();
  EXPECT_GT(phases[0].misroutes, 0u);
  // Nothing leaks: the dead host's own doomed requests and everyone
  // else's retries all land in some bucket.
  for (const PhaseSlo& p : phases) {
    EXPECT_EQ(p.issued, phase_balance(p));
  }
}

TEST(Workload, NoteKillAndRestartRebuildTheAgent) {
  WorkloadFixture fx;
  fx.build(4);
  fx.sim.run_until(20 * sim::kSecond);
  const uint64_t before = fx.driver->issued();
  EXPECT_GT(before, 0u);

  fx.driver->note_kill(1);
  fx.cluster->kill(1);
  fx.sim.run_until(25 * sim::kSecond);
  fx.cluster->restart(1);
  fx.driver->note_restart(1);
  fx.sim.run_until(45 * sim::kSecond);
  fx.driver->quiesce();
  fx.sim.run_until(50 * sim::kSecond);

  // The rebuilt agent issues again (arrivals resumed after restart).
  std::vector<PhaseSlo> phases = fx.driver->report();
  uint64_t issued = 0;
  for (const PhaseSlo& p : phases) issued += p.issued;
  EXPECT_GT(issued, before);
  for (const PhaseSlo& p : phases) {
    EXPECT_EQ(p.issued, phase_balance(p));
    EXPECT_EQ(p.unresolved, 0u);
  }
}

// --- scenario integration --------------------------------------------------

TEST(WorkloadScenario, SloModeGradesPhasesAndBalances) {
  chaos::ScenarioSpec spec;
  spec.scheme = protocols::Scheme::kHierarchical;
  spec.shape = chaos::ShapeKind::kRacked;
  spec.plan = chaos::PlanKind::kCrashRestart;
  spec.seed = 1;
  spec.slo = true;
  chaos::ScenarioResult result = chaos::run_scenario(spec);
  EXPECT_TRUE(result.passed) << result.report;
  ASSERT_EQ(result.slo_phases.size(), static_cast<size_t>(kPhaseCount));
  for (const PhaseSlo& p : result.slo_phases) {
    EXPECT_GT(p.issued, 0u);
    EXPECT_EQ(p.issued, phase_balance(p));
  }
  EXPECT_NE(result.slo_json.find("\"phase\":\"fault\""), std::string::npos);
  // scenario_name advertises SLO mode, so red matrix entries reproduce it.
  EXPECT_NE(result.name.find("/slo"), std::string::npos);
  EXPECT_NE(result.repro.find("--slo"), std::string::npos);
}

TEST(WorkloadScenario, SloJsonIdenticalAcrossWorkerCounts) {
  std::vector<chaos::ScenarioSpec> specs;
  for (chaos::PlanKind plan :
       {chaos::PlanKind::kCrashRestart, chaos::PlanKind::kRouterFlap}) {
    chaos::ScenarioSpec spec;
    spec.scheme = protocols::Scheme::kHierarchical;
    spec.shape = chaos::ShapeKind::kRacked;
    spec.plan = plan;
    spec.seed = 2;
    spec.slo = true;
    specs.push_back(spec);
  }
  std::vector<std::string> serial, parallel;
  for (auto [jobs, out] :
       {std::pair<size_t, std::vector<std::string>*>{1, &serial},
        std::pair<size_t, std::vector<std::string>*>{4, &parallel}}) {
    chaos::ParallelRunOptions options;
    options.jobs = jobs;
    options.on_result = [&](size_t, const chaos::ScenarioResult& result) {
      out->push_back(result.slo_json);
    };
    chaos::run_scenarios(specs, options);
  }
  ASSERT_EQ(serial.size(), specs.size());
  EXPECT_EQ(serial, parallel);
  for (const std::string& json : serial) EXPECT_FALSE(json.empty());
}

}  // namespace
}  // namespace tamp::workload
