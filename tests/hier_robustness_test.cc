// Robustness behaviors of the hierarchical daemon beyond the paper's happy
// path: graceful channel departure, incarnation-scoped update streams,
// heartbeat-advertised loss recovery, anti-entropy repair, failover without
// view flapping, and administrator channel overrides.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "sim/scenario.h"

namespace tamp::protocols {
namespace {

struct RobustnessFixture : public ::testing::Test {
  sim::Simulation sim{77};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<protocols::Cluster> cluster;

  void build(int racks, int hosts_per_rack, Cluster::Options opts = {}) {
    net::RackedClusterParams params;
    params.racks = racks;
    params.hosts_per_rack = hosts_per_rack;
    layout = net::build_racked_cluster(topo, params);
    net = std::make_unique<net::Network>(sim, topo);
    opts.scheme = Scheme::kHierarchical;
    cluster = std::make_unique<Cluster>(sim, *net, layout.hosts, opts);
    cluster->start_all();
    sim.run_until(15 * sim::kSecond);
    ASSERT_TRUE(cluster->converged());
  }

  size_t index_of(net::HostId host) {
    auto it = std::find(layout.hosts.begin(), layout.hosts.end(), host);
    return static_cast<size_t>(it - layout.hosts.begin());
  }

  uint64_t hier_counter(const HierDaemon* d, std::string_view name) {
    return net->obs().metrics.counter_value(obs::Protocol::kHier, name,
                                            d->self());
  }

  HierDaemon* rack_leader(int rack) {
    for (net::HostId h : layout.racks[static_cast<size_t>(rack)]) {
      auto* d = static_cast<HierDaemon*>(cluster->daemon_for(h));
      if (d != nullptr && d->running() && d->is_leader(0)) return d;
    }
    return nullptr;
  }
};

// Drops the first `count` frames of one wire type, cluster-wide — surgical,
// deterministic packet loss for regression-testing the solicited-exchange
// retry paths. Matches on the raw frame prefix (version byte + type byte)
// so the transport stays payload-agnostic.
class DropFirstOfType : public net::FaultInjector {
 public:
  Verdict verdict(const net::Packet& p) override {
    Verdict v;
    if (remaining_ > 0 && p.size() >= 2 &&
        p.data()[0] == membership::kWireVersionByte &&
        p.data()[1] == static_cast<uint8_t>(type_)) {
      --remaining_;
      ++dropped_;
      v.cut = true;
    }
    return v;
  }
  void arm(membership::MessageType type, int count = 1) {
    type_ = type;
    remaining_ = count;
  }
  int dropped() const { return dropped_; }

 private:
  membership::MessageType type_ = membership::MessageType::kHeartbeat;
  int remaining_ = 0;
  int dropped_ = 0;
};

// Losing the one BootstrapRequest a joiner sends must not strand it: with
// anti-entropy disabled there is no other path to the full image, so the
// pending-exchange retry has to re-send the request. (Before the retry
// tracker existed the daemon marked itself bootstrapped at *send* time and
// never asked again — this is the regression test for that bug.)
TEST_F(RobustnessFixture, BootstrapRequestLostIsRetriedWithinBudget) {
  Cluster::Options opts;
  // Anti-entropy pushed far past the test horizon: recovery inside the
  // window can only come from a re-sent bootstrap. (Not 0 — disabling
  // refresh entirely also arms the short orphan-expiry timeout, which
  // would start purging healthy relayed entries mid-test.)
  opts.hier.refresh_interval = 1000 * sim::kSecond;
  build(2, 5, opts);
  DropFirstOfType injector;
  net->set_fault_injector(&injector);

  net::HostId revenant = layout.racks[1][3];
  cluster->kill(index_of(revenant));
  sim.run_until(sim.now() + 15 * sim::kSecond);
  ASSERT_TRUE(cluster->converged());

  injector.arm(membership::MessageType::kBootstrapRequest);
  cluster->restart(index_of(revenant));
  sim.run_until(sim.now() + 15 * sim::kSecond);

  EXPECT_EQ(injector.dropped(), 1);
  EXPECT_TRUE(cluster->converged())
      << cluster->converged_count() << "/" << cluster->size();
  auto* daemon = static_cast<HierDaemon*>(cluster->daemon_for(revenant));
  EXPECT_EQ(daemon->view_size(), cluster->size())
      << "joiner never recovered the full image";
  EXPECT_GE(hier_counter(daemon, "exchange_retries"), 1u);
  EXPECT_GE(hier_counter(daemon, "bootstraps_requested"), 2u);
}

// Same discipline on the reply path: the server's BootstrapResponse
// evaporates, and the joiner must notice (no response before the retry
// timer) and ask again rather than believing it is bootstrapped.
TEST_F(RobustnessFixture, BootstrapResponseLostIsRetriedWithinBudget) {
  Cluster::Options opts;
  opts.hier.refresh_interval = 1000 * sim::kSecond;
  build(2, 5, opts);
  DropFirstOfType injector;
  net->set_fault_injector(&injector);

  net::HostId revenant = layout.racks[1][3];
  cluster->kill(index_of(revenant));
  sim.run_until(sim.now() + 15 * sim::kSecond);
  ASSERT_TRUE(cluster->converged());

  injector.arm(membership::MessageType::kBootstrapResponse);
  cluster->restart(index_of(revenant));
  sim.run_until(sim.now() + 15 * sim::kSecond);

  EXPECT_EQ(injector.dropped(), 1);
  EXPECT_TRUE(cluster->converged())
      << cluster->converged_count() << "/" << cluster->size();
  auto* daemon = static_cast<HierDaemon*>(cluster->daemon_for(revenant));
  EXPECT_EQ(daemon->view_size(), cluster->size());
  EXPECT_GE(hier_counter(daemon, "exchange_retries"), 1u);
}

// The gap-recovery sync poll gets the same treatment: if the one
// SyncRequest a receiver sends after noticing a stream gap is lost, the
// retry must re-poll — pre-retry code remembered the request in
// last_sync_request and never asked for that seq again.
TEST_F(RobustnessFixture, SyncRequestLostIsRetriedWithinBudget) {
  Cluster::Options opts;
  opts.hier.refresh_interval = 120 * sim::kSecond;  // recovery = sync only
  build(3, 5, opts);
  DropFirstOfType injector;
  net->set_fault_injector(&injector);

  // Lose a node, blackout the window where its LEAVE updates are relayed,
  // then heal: receivers notice the advertised gap and poll for repair.
  net::HostId victim = layout.racks[0][4];
  cluster->kill(index_of(victim));
  sim.run_until(sim.now() + 3500 * sim::kMillisecond);
  net->set_extra_loss(1.0);
  sim.run_until(sim.now() + 3 * sim::kSecond);
  net->set_extra_loss(0.0);
  injector.arm(membership::MessageType::kSyncRequest);
  sim.run_until(sim.now() + 12 * sim::kSecond);

  EXPECT_EQ(injector.dropped(), 1);
  EXPECT_TRUE(cluster->converged())
      << cluster->converged_count() << "/" << cluster->size();
  uint64_t retries = 0;
  for (size_t i = 0; i < cluster->size(); ++i) {
    auto* d = cluster->hier_daemon(i);
    if (d->running()) retries += hier_counter(d, "exchange_retries");
  }
  EXPECT_GE(retries, 1u);
}

// And the reply path: a lost SyncResponse leaves the requester's cursor
// behind, so its pending exchange must fire again until the image lands.
TEST_F(RobustnessFixture, SyncResponseLostIsRetriedWithinBudget) {
  Cluster::Options opts;
  opts.hier.refresh_interval = 120 * sim::kSecond;
  build(3, 5, opts);
  DropFirstOfType injector;
  net->set_fault_injector(&injector);

  net::HostId victim = layout.racks[0][4];
  cluster->kill(index_of(victim));
  sim.run_until(sim.now() + 3500 * sim::kMillisecond);
  net->set_extra_loss(1.0);
  sim.run_until(sim.now() + 3 * sim::kSecond);
  net->set_extra_loss(0.0);
  injector.arm(membership::MessageType::kSyncResponse);
  sim.run_until(sim.now() + 12 * sim::kSecond);

  EXPECT_EQ(injector.dropped(), 1);
  EXPECT_TRUE(cluster->converged())
      << cluster->converged_count() << "/" << cluster->size();
  uint64_t retries = 0;
  for (size_t i = 0; i < cluster->size(); ++i) {
    auto* d = cluster->hier_daemon(i);
    if (d->running()) retries += hier_counter(d, "exchange_retries");
  }
  EXPECT_GE(retries, 1u);
}

// Killing a level-0 leader must not produce *any* leave notification for a
// node that is still alive (no view flapping during failover) — the
// backup-takeover guard plus graceful goodbyes at work.
TEST_F(RobustnessFixture, LeaderFailoverCausesNoSpuriousLeaves) {
  build(3, 6);
  HierDaemon* leader = rack_leader(1);
  ASSERT_NE(leader, nullptr);
  net::HostId victim = leader->self();

  std::map<membership::NodeId, int> leaves;
  cluster->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time) {
        if (!alive) leaves[subject]++;
      });
  cluster->kill(index_of(victim));
  sim.run_until(sim.now() + 30 * sim::kSecond);

  EXPECT_TRUE(cluster->converged());
  ASSERT_EQ(leaves.size(), 1u);  // only the victim
  EXPECT_EQ(leaves.begin()->first, victim);
  EXPECT_EQ(leaves.begin()->second, 17);  // every survivor exactly once
}

// A node that was a leader, died, restarted, and becomes a leader again
// starts its update streams over at sequence 0 under a higher incarnation.
// Peers must accept the fresh stream rather than judging it by the old
// cursor (otherwise the restarted leader's updates are silently dropped).
TEST_F(RobustnessFixture, RestartedLeaderStreamsAreAccepted) {
  build(2, 3);
  // Rack 0 hosts: ids sorted; index 0 is the bully winner and leader.
  net::HostId old_leader = layout.racks[0][0];
  ASSERT_TRUE(static_cast<HierDaemon*>(cluster->daemon_for(old_leader))
                  ->is_leader(0));

  // Kill the leader, let the rack re-elect, then kill the other two rack-0
  // members and restart the original: it comes back alone, leads the rack,
  // and must get its (fresh-stream) updates accepted at level 1.
  cluster->kill(index_of(old_leader));
  sim.run_until(sim.now() + 15 * sim::kSecond);
  ASSERT_TRUE(cluster->converged());

  cluster->kill(index_of(layout.racks[0][1]));
  cluster->kill(index_of(layout.racks[0][2]));
  cluster->restart(index_of(old_leader));
  sim.run_until(sim.now() + 30 * sim::kSecond);

  EXPECT_TRUE(cluster->converged());
  auto* revenant = static_cast<HierDaemon*>(cluster->daemon_for(old_leader));
  EXPECT_TRUE(revenant->is_leader(0));
  // Rack-1 nodes see the new incarnation.
  const auto* entry =
      cluster->daemon_for(layout.racks[1][2])->table().find(old_leader);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data.incarnation, 2u);
}

// With anti-entropy refresh disabled, a membership change whose update
// multicasts are all lost must still propagate: the next heartbeat
// advertises the sender's stream position, the receiver notices the gap and
// polls for a full image (paper Message Loss Detection, strengthened).
TEST_F(RobustnessFixture, HeartbeatAdvertisedGapTriggersSyncRecovery) {
  Cluster::Options opts;
  // Slow anti-entropy so recovery inside the test window can only come
  // from the heartbeat-advertised sync path.
  opts.hier.refresh_interval = 120 * sim::kSecond;
  build(3, 5, opts);

  // Blackout exactly the window where the failure is detected and its
  // LEAVE updates are relayed (3 s < the 5 s suspicion timeout, so no
  // false deaths), then heal.
  net::HostId victim = layout.racks[0][4];
  cluster->kill(index_of(victim));
  sim.run_until(sim.now() + 3500 * sim::kMillisecond);
  net->set_extra_loss(1.0);
  sim.run_until(sim.now() + 3 * sim::kSecond);  // detection under blackout
  net->set_extra_loss(0.0);
  // Within a few heartbeats the gap is noticed and synced — no 30 s
  // refresh to fall back on.
  sim.run_until(sim.now() + 8 * sim::kSecond);

  EXPECT_TRUE(cluster->converged());
  uint64_t syncs = 0;
  for (size_t i = 0; i < cluster->size(); ++i) {
    auto* d = cluster->hier_daemon(i);
    if (d->running()) syncs += hier_counter(d, "syncs_requested");
  }
  EXPECT_GT(syncs, 0u);
}

// An abdicating leader leaves its higher channels gracefully: peers on
// those channels drop it from group bookkeeping without ever declaring the
// (alive) node dead.
TEST_F(RobustnessFixture, AbdicationIsNotDeath) {
  build(3, 5);
  // Force an abdication: kill rack-0's leader; the backup takes over; when
  // the original lowest-id node restarts it stays a follower, but the
  // *takeover* leader abdicates if a lower-id member later claims... the
  // cleanest trigger is a heal-style merge: take rack 0's uplink down and
  // back up, making its leader re-meet the level-1 group.
  HierDaemon* leader0 = rack_leader(0);
  ASSERT_NE(leader0, nullptr);

  std::set<membership::NodeId> dead_reported;
  cluster->set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time) {
        if (!alive) dead_reported.insert(subject);
      });

  topo.set_link_up(layout.rack_uplinks[0], false);
  sim.run_until(sim.now() + 25 * sim::kSecond);
  // During the partition, rack-0's leader climbed to higher levels in its
  // own island; on heal it must abdicate back under the main tree.
  topo.set_link_up(layout.rack_uplinks[0], true);
  sim.run_until(sim.now() + 60 * sim::kSecond);

  EXPECT_TRUE(cluster->converged());
  // The partition caused (correct) mutual removals, but after the heal no
  // *live* node may still be considered dead anywhere.
  for (size_t i = 0; i < cluster->size(); ++i) {
    EXPECT_EQ(cluster->daemon(i).view_size(), cluster->size());
  }
}

// Administrators can pin specific channels per level (paper Sec. 3.1.1);
// formation must work identically on the remapped channels.
TEST_F(RobustnessFixture, AdminSpecifiedLevelChannels) {
  Cluster::Options opts;
  opts.hier.level_channels = {7100, 0 /*derived*/, 7302};
  build(2, 4, opts);

  EXPECT_TRUE(cluster->converged());
  int leaders = 0;
  for (size_t i = 0; i < cluster->size(); ++i) {
    auto* d = cluster->hier_daemon(i);
    if (d->is_leader(0)) {
      ++leaders;
      EXPECT_TRUE(net->in_group(d->self(), 7100));
      EXPECT_TRUE(d->joined(1));
    }
  }
  EXPECT_EQ(leaders, 2);

  // Failure detection still works across the remapped channels.
  net::HostId victim = layout.racks[1][3];
  cluster->kill(index_of(victim));
  sim.run_until(sim.now() + 15 * sim::kSecond);
  EXPECT_TRUE(cluster->converged());
}

// The anti-entropy refresh repairs a view that missed everything: a node
// whose updates and syncs were all suppressed for a long stretch still
// converges once traffic flows again.
TEST_F(RobustnessFixture, AntiEntropyRepairsSilentDivergence) {
  Cluster::Options opts;
  opts.hier.refresh_interval = 10 * sim::kSecond;
  build(2, 6, opts);

  // Isolate one follower's *receive* path indirectly: full loss while a
  // node joins elsewhere, then heal and wait one refresh interval.
  cluster->kill(9);
  sim.run_until(sim.now() + 10 * sim::kSecond);
  ASSERT_TRUE(cluster->converged());
  net->set_extra_loss(0.9);
  cluster->restart(9);
  sim.run_until(sim.now() + 10 * sim::kSecond);
  net->set_extra_loss(0.0);
  sim.run_until(sim.now() + 25 * sim::kSecond);
  EXPECT_TRUE(cluster->converged());
}

// Regression for the stale-leadership replay family: a leader paused across
// an election resumes believing it still leads and replays pre-pause state
// (COORDINATORs, out-log deltas, refresh images). Leadership epochs plus the
// succession fence must make it abdicate and re-bootstrap instead of purging
// live successors. Seeds 5-9 cover the formations that historically broke —
// seed 7 on the router chain is the exact non-convergence from the issue,
// where overlapping groups share a channel and naive cross-lineage epoch
// comparison severed the bridge leader.
TEST(PauseAcrossElection, StaleLeaderReplayIsFencedOnEveryShape) {
  for (chaos::ShapeKind shape : chaos::kAllShapeKinds) {
    for (uint64_t seed = 5; seed <= 9; ++seed) {
      chaos::ScenarioSpec spec;
      spec.scheme = Scheme::kHierarchical;
      spec.shape = shape;
      spec.plan = chaos::PlanKind::kPauseResume;
      spec.seed = seed;
      spec.nodes = 12;
      chaos::ScenarioResult result = chaos::run_scenario(spec);
      EXPECT_TRUE(result.passed)
          << result.name << " violated the oracle:\n"
          << result.report << "repro: " << result.repro;
      EXPECT_EQ(result.final_converged, result.final_running)
          << result.name << " ended unconverged; repro: " << result.repro;
    }
  }
}

// The digest redesign's equivalence contract: for the same seed and fault
// schedule, digest-mode anti-entropy must converge every node to exactly
// the table full-mode converges it to — same members, same incarnations,
// same replicated entry content. (Timestamps and provenance are local soft
// state and deliberately out of scope.)
TEST(FullVsDigest, ConvergeToIdenticalTablesPerSeed) {
  auto run = [](AntiEntropyMode mode) {
    sim::Simulation sim(4242);
    net::Topology topo;
    net::RackedClusterParams params;
    params.racks = 3;
    params.hosts_per_rack = 6;
    auto layout = net::build_racked_cluster(topo, params);
    net::Network net(sim, topo);
    Cluster::Options opts;
    opts.scheme = Scheme::kHierarchical;
    opts.hier.refresh_interval = 10 * sim::kSecond;
    opts.hier.anti_entropy_mode = mode;
    Cluster cluster(sim, net, layout.hosts, opts);
    cluster.start_all();
    sim.run_until(15 * sim::kSecond);
    // Churn that exercises the anti-entropy paths: a member dies and
    // returns with a new incarnation, then a (likely) leader dies for good.
    cluster.kill(4);
    sim.run_until(sim.now() + 20 * sim::kSecond);
    cluster.restart(4);
    sim.run_until(sim.now() + 20 * sim::kSecond);
    cluster.kill(12);
    sim.run_until(sim.now() + 40 * sim::kSecond);
    EXPECT_TRUE(cluster.converged());

    std::vector<std::map<membership::NodeId, membership::EntryData>> tables;
    for (net::HostId host : layout.hosts) {
      auto* d = static_cast<HierDaemon*>(cluster.daemon_for(host));
      std::map<membership::NodeId, membership::EntryData> view;
      if (d != nullptr && d->running()) {
        for (const auto& [id, entry] : d->table().entries()) {
          view[id] = entry.data;
        }
      }
      tables.push_back(std::move(view));
    }
    return tables;
  };

  const auto full = run(AntiEntropyMode::kFull);
  const auto digest = run(AntiEntropyMode::kDigest);
  ASSERT_EQ(full.size(), digest.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i], digest[i]) << "node index " << i
                                  << " diverged between anti-entropy modes";
  }
}

// Deterministic replay: identical seeds give identical event counts and
// final state; different seeds differ in timing but agree on convergence.
TEST_F(RobustnessFixture, DeterministicReplay) {
  auto run = [](uint64_t seed) {
    sim::Simulation sim(seed);
    net::Topology topo;
    net::RackedClusterParams params;
    params.racks = 2;
    params.hosts_per_rack = 5;
    auto layout = net::build_racked_cluster(topo, params);
    net::Network net(sim, topo);
    Cluster::Options opts;
    opts.scheme = Scheme::kHierarchical;
    Cluster cluster(sim, net, layout.hosts, opts);
    cluster.start_all();
    cluster.kill(7);
    sim.run_until(40 * sim::kSecond);
    return std::pair<uint64_t, uint64_t>(
        sim.events_executed(),
        net.obs().metrics.counter_value(obs::Protocol::kNet,
                                        "rx_wire_bytes"));
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(1235));
}

}  // namespace
}  // namespace tamp::protocols
