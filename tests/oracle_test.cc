// Oracle self-tests: the invariant oracle must (a) stay silent on healthy
// runs, and (b) catch deliberately planted violations of each invariant
// class, reporting the offending node and virtual time.
#include <gtest/gtest.h>

#include <memory>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "protocols/oracle.h"

namespace tamp::protocols {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  void build(Scheme scheme, int racks, int hosts_per_rack,
             uint64_t seed = 1) {
    sim_ = std::make_unique<sim::Simulation>(seed);
    if (racks == 1) {
      layout_ = net::build_single_segment(topo_, hosts_per_rack);
    } else {
      net::RackedClusterParams params;
      params.racks = racks;
      params.hosts_per_rack = hosts_per_rack;
      layout_ = net::build_racked_cluster(topo_, params);
    }
    net_ = std::make_unique<net::Network>(*sim_, topo_);
    Cluster::Options opts;
    opts.scheme = scheme;
    cluster_ = std::make_unique<Cluster>(*sim_, *net_, layout_.hosts, opts);
    oracle_ = std::make_unique<MembershipOracle>(*sim_, *net_, topo_,
                                                 *cluster_);
  }

  // Index into layout_.hosts of a given host id.
  size_t index_of(net::HostId host) const {
    for (size_t i = 0; i < layout_.hosts.size(); ++i) {
      if (layout_.hosts[i] == host) return i;
    }
    ADD_FAILURE() << "unknown host " << host;
    return 0;
  }

  std::unique_ptr<sim::Simulation> sim_;
  net::Topology topo_;
  net::ClusterLayout layout_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<MembershipOracle> oracle_;
};

// A clean run — cold start, one real crash, one restart — produces zero
// violations: the oracle must not cry wolf on correct protocol behaviour.
TEST_F(OracleTest, CleanRunStaysSilent) {
  build(Scheme::kHierarchical, 3, 4);
  oracle_->start();
  cluster_->start_all();
  sim_->run_until(20 * sim::kSecond);

  cluster_->kill(5);
  oracle_->note_crash(5);
  sim_->run_until(40 * sim::kSecond);
  cluster_->restart(5);
  oracle_->note_restart(5);
  sim_->run_until(60 * sim::kSecond);

  EXPECT_TRUE(oracle_->ok()) << oracle_->report();
  EXPECT_GT(oracle_->checks_run(), 0u);
}

// Invariant 1: an entry for a node that was never part of the cluster is
// flagged on the next check tick, naming the phantom id.
TEST_F(OracleTest, DetectsPlantedPhantom) {
  build(Scheme::kAllToAll, 1, 6);
  oracle_->start();
  cluster_->start_all();
  sim_->run_until(16 * sim::kSecond);
  ASSERT_TRUE(oracle_->ok()) << oracle_->report();

  membership::EntryData phantom;
  phantom.node = 9999;  // no such host
  phantom.incarnation = 1;
  cluster_->daemon(2).table().apply(phantom, membership::Liveness::kDirect,
                                    membership::kInvalidNode, sim_->now());
  sim::Time planted_at = sim_->now();
  sim_->run_until(planted_at + 2 * sim::kSecond);

  ASSERT_FALSE(oracle_->ok());
  const auto& violation = oracle_->violations().front();
  EXPECT_EQ(violation.invariant, "phantom-member");
  EXPECT_EQ(violation.observer, layout_.hosts[2]);
  EXPECT_EQ(violation.subject, 9999u);
  EXPECT_GE(violation.when, planted_at);
  EXPECT_NE(violation.to_string().find("phantom"), std::string::npos);
}

// Invariant 4: silently deleting a live node from one observer's directory
// is caught by the quiescent completeness check. A cross-rack observer is
// used so the tombstone actually blocks the relayed repair path (a direct
// heartbeat would override it within a period).
TEST_F(OracleTest, DetectsPlantedFalseRemoval) {
  build(Scheme::kHierarchical, 3, 4);
  oracle_->start();
  cluster_->start_all();
  sim_->run_until(20 * sim::kSecond);
  ASSERT_TRUE(oracle_->ok()) << oracle_->report();

  net::HostId victim = layout_.racks[0][1];   // non-leader in rack 0
  size_t observer = index_of(layout_.racks[1][1]);  // lives in rack 1
  const auto* entry = cluster_->daemon(observer).table().find(victim);
  ASSERT_NE(entry, nullptr);
  cluster_->daemon(observer).table().remove(victim, entry->data.incarnation,
                                            sim_->now());
  sim::Time planted_at = sim_->now();
  sim_->run_until(planted_at + 3 * sim::kSecond);

  ASSERT_FALSE(oracle_->ok());
  const auto& violation = oracle_->violations().front();
  EXPECT_EQ(violation.invariant, "completeness");
  EXPECT_EQ(violation.observer, layout_.hosts[observer]);
  EXPECT_EQ(violation.subject, victim);
  EXPECT_GE(violation.when, planted_at);
}

// Invariant 6: a provenance cycle (two entries relayed by each other, no
// directly-heard root) is flagged. The observer's NIC is silently cut so
// the protocol cannot repair the plant before the check runs.
TEST_F(OracleTest, DetectsPlantedProvenanceCycle) {
  build(Scheme::kHierarchical, 1, 6);
  oracle_->start();
  cluster_->start_all();
  sim_->run_until(16 * sim::kSecond);
  ASSERT_TRUE(oracle_->ok()) << oracle_->report();

  size_t observer = 3;
  net::HostId a = layout_.hosts[4];
  net::HostId b = layout_.hosts[5];
  net_->set_host_up(layout_.hosts[observer], false);  // freeze repairs
  auto& table = cluster_->daemon(observer).table();
  table.demote_to_relayed(a, b);
  table.demote_to_relayed(b, a);
  sim::Time planted_at = sim_->now();
  sim_->run_until(planted_at + 2 * sim::kSecond);

  ASSERT_FALSE(oracle_->ok());
  const auto& violation = oracle_->violations().front();
  EXPECT_EQ(violation.invariant, "provenance");
  EXPECT_EQ(violation.observer, layout_.hosts[observer]);
  EXPECT_NE(violation.detail.find("cycle"), std::string::npos);
}

// Invariant 2: when the network silently blackholes everything (no fault
// reported to the oracle, reachability still claims fine), the resulting
// removals of live nodes are *not* excused — they are false failure
// declarations and must be flagged.
TEST_F(OracleTest, DetectsFalseFailuresUnderSilentBlackhole) {
  build(Scheme::kAllToAll, 1, 6);
  oracle_->start();
  cluster_->start_all();
  sim_->run_until(16 * sim::kSecond);
  ASSERT_TRUE(oracle_->ok()) << oracle_->report();

  net_->set_extra_loss(1.0);  // silent: no note_network_fault()
  sim_->run_until(sim_->now() + 15 * sim::kSecond);

  ASSERT_FALSE(oracle_->ok());
  bool found = false;
  for (const auto& violation : oracle_->violations()) {
    if (violation.invariant == "false-failure") {
      found = true;
      EXPECT_NE(violation.observer, membership::kInvalidNode);
      EXPECT_NE(violation.subject, membership::kInvalidNode);
      EXPECT_GT(violation.when, 16 * sim::kSecond);
    }
  }
  EXPECT_TRUE(found) << oracle_->report();
}

// Invariant 3: a crash the oracle knows about but that never actually
// happened (the victim keeps heartbeating, so nobody removes it) trips the
// detection-bound / completeness machinery — proving the kill-probe path
// fires rather than silently forgetting obligations.
TEST_F(OracleTest, DetectsMissedDetection) {
  build(Scheme::kAllToAll, 1, 6);
  oracle_->start();
  cluster_->start_all();
  sim_->run_until(16 * sim::kSecond);
  ASSERT_TRUE(oracle_->ok()) << oracle_->report();

  // Lie to the oracle: claim node 2 crashed, but leave it running.
  oracle_->note_crash(2);
  sim_->run_until(sim_->now() + oracle_->detection_deadline() +
                  oracle_->quiesce_bound() + 5 * sim::kSecond);

  ASSERT_FALSE(oracle_->ok());
  const auto& violation = oracle_->violations().front();
  EXPECT_EQ(violation.subject, layout_.hosts[2]);
  EXPECT_TRUE(violation.invariant == "detection-bound" ||
              violation.invariant == "completeness")
      << violation.to_string();
}

// Bound derivation sanity: each scheme gets positive, ordered bounds, and
// the hierarchical bounds grow with the topology's TTL depth.
TEST(OracleBounds, DerivedBoundsAreOrdered) {
  for (Scheme scheme :
       {Scheme::kAllToAll, Scheme::kGossip, Scheme::kHierarchical}) {
    sim::Simulation sim(1);
    net::Topology topo;
    net::RackedClusterParams params;
    params.racks = 3;
    params.hosts_per_rack = 4;
    auto layout = net::build_racked_cluster(topo, params);
    net::Network net(sim, topo);
    Cluster::Options opts;
    opts.scheme = scheme;
    Cluster cluster(sim, net, layout.hosts, opts);
    MembershipOracle oracle(sim, net, topo, cluster);
    EXPECT_GT(oracle.detection_bound(), 0) << scheme_name(scheme);
    EXPECT_GT(oracle.convergence_bound(), oracle.detection_bound());
    EXPECT_GT(oracle.quiesce_bound(), oracle.convergence_bound());
    EXPECT_GT(oracle.detection_deadline(), oracle.detection_bound());
  }
}

}  // namespace
}  // namespace tamp::protocols
