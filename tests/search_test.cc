#include <gtest/gtest.h>

#include "net/builders.h"
#include "service/multidc.h"
#include "service/search.h"

namespace tamp::service {
namespace {

struct SearchFixture : public ::testing::Test {
  sim::Simulation sim{61};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<protocols::Cluster> cluster;
  std::unique_ptr<SearchDeployment> deployment;

  void build(int hosts) {
    layout = net::build_single_segment(topo, hosts);
    net = std::make_unique<net::Network>(sim, topo);
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier.max_ttl = 1;
    cluster = std::make_unique<protocols::Cluster>(sim, *net, layout.hosts,
                                                   opts);
    cluster->start_all();
    SearchParams params;
    deployment = std::make_unique<SearchDeployment>(sim, *net, *cluster,
                                                    params);
    deployment->start();
    sim.run_until(10 * sim::kSecond);
    ASSERT_TRUE(cluster->converged());
  }
};

TEST_F(SearchFixture, SingleQueryCompletes) {
  build(24);
  QueryResult got;
  bool done = false;
  deployment->gateways()[0]->query([&](const QueryResult& result) {
    got = result;
    done = true;
  });
  sim.run_until(sim.now() + 2 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.ok);
  EXPECT_FALSE(got.used_proxy);
  // Two phases of ~10ms services plus polling overhead.
  EXPECT_GT(got.latency, 5 * sim::kMillisecond);
  EXPECT_LT(got.latency, 300 * sim::kMillisecond);
}

TEST_F(SearchFixture, WorkloadSustainsThroughput) {
  build(24);
  SearchWorkload workload(sim, deployment->gateways(), 40.0);
  workload.run_for(20 * sim::kSecond);
  sim.run_until(sim.now() + 22 * sim::kSecond);

  EXPECT_GT(workload.total_completed(), 600u);
  EXPECT_EQ(workload.total_failed(), 0u);
  // Mean completion rate tracks the arrival rate (open loop, ~40 qps).
  double seconds = 20.0;
  double qps = static_cast<double>(workload.total_completed()) / seconds;
  EXPECT_NEAR(qps, 40.0, 6.0);
  EXPECT_LT(workload.latencies().median(), 150.0);  // ms
}

TEST_F(SearchFixture, SurvivesSingleDocReplicaFailure) {
  build(24);
  // Kill one doc node; remaining replicas of that partition absorb the
  // traffic after (and even during) failure detection.
  size_t victim = deployment->doc_nodes()[0];
  cluster->kill(victim);

  SearchWorkload workload(sim, deployment->gateways(), 20.0);
  workload.run_for(15 * sim::kSecond);
  sim.run_until(sim.now() + 18 * sim::kSecond);
  EXPECT_EQ(workload.total_failed(), 0u);
  EXPECT_GT(workload.total_completed(), 200u);
}

TEST(SearchMultiDc, DocFailureFailsOverToRemoteDatacenter) {
  sim::Simulation sim(71);
  MultiDcParams params = default_two_dc_params();
  MultiDcHarness harness(sim, params);

  SearchParams search;
  search.replicas = 2;
  SearchDeployment east(sim, harness.network(), harness.cluster(0), search);
  SearchDeployment west(sim, harness.network(), harness.cluster(1), search);

  harness.start();
  east.start();
  west.start();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(harness.cluster(0).converged());
  ASSERT_TRUE(harness.cluster(1).converged());

  // Baseline: local query in DC 0 is fast.
  QueryResult local;
  bool local_done = false;
  east.gateways()[0]->query([&](const QueryResult& r) {
    local = r;
    local_done = true;
  });
  sim.run_until(sim.now() + 2 * sim::kSecond);
  ASSERT_TRUE(local_done);
  ASSERT_TRUE(local.ok);
  EXPECT_LT(local.latency, 100 * sim::kMillisecond);

  // Kill the whole doc service in DC 0.
  std::set<size_t> doc_nodes(east.doc_nodes().begin(), east.doc_nodes().end());
  for (size_t node : doc_nodes) harness.cluster(0).kill(node);
  // Wait past detection so the directory is clean.
  sim.run_until(sim.now() + 10 * sim::kSecond);

  QueryResult failover;
  bool failover_done = false;
  east.gateways()[0]->query([&](const QueryResult& r) {
    failover = r;
    failover_done = true;
  });
  sim.run_until(sim.now() + 5 * sim::kSecond);
  ASSERT_TRUE(failover_done);
  EXPECT_TRUE(failover.ok);
  EXPECT_TRUE(failover.used_proxy);
  // Doc phase crossed the WAN: ~2+ RTTs at 90 ms (paper: >200 ms responses).
  EXPECT_GT(failover.latency, 180 * sim::kMillisecond);
}

}  // namespace
}  // namespace tamp::service
