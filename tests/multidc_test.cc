// Integration tests for three-datacenter deployments and relay edge cases.
#include <gtest/gtest.h>

#include "service/multidc.h"
#include "service/provider.h"

namespace tamp::service {
namespace {

MultiDcParams three_dc_params() {
  MultiDcParams params;
  for (int dc = 0; dc < 3; ++dc) {
    net::RackedClusterParams cluster;
    cluster.racks = 1;
    cluster.hosts_per_rack = 6;
    cluster.dc = static_cast<net::DatacenterId>(dc);
    cluster.name_prefix = "dc" + std::to_string(dc);
    params.dcs.push_back(cluster);
  }
  return params;
}

TEST(ThreeDc, SummariesMeshAcrossAllPairs) {
  sim::Simulation sim(83);
  MultiDcHarness harness(sim, three_dc_params());
  // One distinct service per datacenter.
  harness.cluster(0).daemon(1).register_service("alpha", {0});
  harness.cluster(1).daemon(1).register_service("beta", {0});
  harness.cluster(2).daemon(1).register_service("gamma", {0});
  harness.start();
  sim.run_until(20 * sim::kSecond);

  // Every DC's proxy leader sees the other two DCs' services.
  struct Expect {
    size_t dc;
    const char* remote_service;
    net::DatacenterId remote_dc;
  };
  const Expect expectations[] = {
      {0, "beta", 1},  {0, "gamma", 2}, {1, "alpha", 0},
      {1, "gamma", 2}, {2, "alpha", 0}, {2, "beta", 1},
  };
  for (const auto& expect : expectations) {
    auto* leader = harness.proxy_leader(expect.dc);
    ASSERT_NE(leader, nullptr);
    auto dcs = leader->lookup_remote(expect.remote_service, 0);
    ASSERT_EQ(dcs.size(), 1u)
        << "dc" << expect.dc << " looking for " << expect.remote_service;
    EXPECT_EQ(dcs[0], expect.remote_dc);
  }
}

TEST(ThreeDc, InvocationPicksADatacenterThatHasTheService) {
  sim::Simulation sim(89);
  MultiDcHarness harness(sim, three_dc_params());
  // "shared" runs in DCs 1 and 2, not 0.
  ServiceProvider p1(sim, harness.network(), harness.cluster(1).daemon(2));
  p1.host_service("shared", {0});
  p1.start();
  ServiceProvider p2(sim, harness.network(), harness.cluster(2).daemon(2));
  p2.host_service("shared", {0});
  p2.start();
  harness.start();
  sim.run_until(20 * sim::kSecond);

  ServiceConsumer consumer(sim, harness.network(),
                           harness.cluster(0).daemon(1));
  consumer.start();
  int ok = 0, total = 0;
  for (int i = 0; i < 6; ++i) {
    consumer.invoke("shared", 0, 100, 100,
                    [&](const InvokeResult& result) {
                      ++total;
                      if (result.ok()) {
                        ++ok;
                        EXPECT_TRUE(result.via_proxy);
                      }
                    });
  }
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(total, 6);
  EXPECT_EQ(ok, 6);
}

TEST(RelayEdgeCases, StaleSummaryDoesNotPingPong) {
  // DC 1 advertises "flaky", then its providers die. DC 0 may relay a
  // request on the stale summary; the remote side must fail it cleanly
  // (relay_hops = 0 forbids re-relaying), never bounce it back and forth.
  sim::Simulation sim(97);
  MultiDcParams params = service::default_two_dc_params();
  MultiDcHarness harness(sim, params);
  ServiceProvider provider(sim, harness.network(),
                           harness.cluster(1).daemon(2));
  provider.host_service("flaky", {0});
  provider.start();
  harness.start();
  sim.run_until(15 * sim::kSecond);

  // Kill the provider node abruptly; immediately invoke from DC 0 while
  // DC 0's summary still lists it.
  harness.cluster(1).kill(2);
  ServiceConsumer consumer(sim, harness.network(),
                           harness.cluster(0).daemon(1));
  consumer.start();

  bool done = false;
  InvokeResult got;
  consumer.invoke("flaky", 0, 50, 50, [&](const InvokeResult& result) {
    got = result;
    done = true;
  });
  sim.run_until(sim.now() + 8 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.ok());  // clean failure, bounded time
}

TEST(RelayEdgeCases, WanCutFailsRelayWithTimeout) {
  sim::Simulation sim(101);
  MultiDcParams params = service::default_two_dc_params();
  MultiDcHarness harness(sim, params);
  ServiceProvider provider(sim, harness.network(),
                           harness.cluster(1).daemon(2));
  provider.host_service("remote-only", {0});
  provider.start();
  harness.start();
  sim.run_until(15 * sim::kSecond);

  // Cut the WAN *after* summaries propagated, then invoke: the relay's
  // SYN gets no ACK and the caller gets a bounded failure.
  harness.topology().set_link_up(harness.layout().wan_links[0], false);
  ServiceConsumer consumer(sim, harness.network(),
                           harness.cluster(0).daemon(1));
  consumer.start();

  bool done = false;
  sim::Time started = sim.now();
  sim::Duration elapsed = 0;
  consumer.invoke("remote-only", 0, 50, 50,
                  [&](const InvokeResult& result) {
                    EXPECT_FALSE(result.ok());
                    elapsed = sim.now() - started;
                    done = true;
                  });
  sim.run_until(sim.now() + 10 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_LT(elapsed, 5 * sim::kSecond);
}

TEST(RelayEdgeCases, ProxyCountersAccount) {
  sim::Simulation sim(103);
  MultiDcParams params = service::default_two_dc_params();
  MultiDcHarness harness(sim, params);
  ServiceProvider provider(sim, harness.network(),
                           harness.cluster(1).daemon(2));
  provider.host_service("counted", {0});
  provider.start();
  harness.start();
  sim.run_until(15 * sim::kSecond);

  ServiceConsumer consumer(sim, harness.network(),
                           harness.cluster(0).daemon(1));
  consumer.start();
  int ok = 0;
  for (int i = 0; i < 3; ++i) {
    consumer.invoke("counted", 0, 10, 10,
                    [&](const InvokeResult& result) { ok += result.ok() ? 1 : 0; });
  }
  sim.run_until(sim.now() + 5 * sim::kSecond);
  EXPECT_EQ(ok, 3);

  auto* east_leader = harness.proxy_leader(0);
  auto* west_leader = harness.proxy_leader(1);
  ASSERT_NE(east_leader, nullptr);
  ASSERT_NE(west_leader, nullptr);
  const obs::MetricsRegistry& m = harness.network().obs().metrics;
  auto proxy_counter = [&](const proxy::ProxyDaemon* d, std::string_view name) {
    return m.counter_value(obs::Protocol::kProxy, name, d->self());
  };
  EXPECT_GT(proxy_counter(east_leader, "wan_heartbeats_sent"), 5u);
  EXPECT_GT(proxy_counter(east_leader, "wan_messages_received"), 5u);
  EXPECT_GT(proxy_counter(west_leader, "relays_to_local_group"), 0u);
}

}  // namespace
}  // namespace tamp::service
