#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/builders.h"
#include "net/transport.h"
#include "sim/simulation.h"

namespace tamp::net {
namespace {

Payload bytes(std::initializer_list<uint8_t> data) {
  return make_payload(std::vector<uint8_t>(data));
}

struct TransportFixture : public ::testing::Test {
  sim::Simulation sim{1};
  Topology topo;
};

TEST_F(TransportFixture, UnicastDelivers) {
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  std::vector<uint8_t> got;
  net.bind(layout.hosts[1], 7, [&](const Packet& p) {
    got.assign(p.data(), p.data() + p.size());
    EXPECT_EQ(p.from.host, layout.hosts[0]);
    EXPECT_EQ(p.kind, DeliveryKind::kUnicast);
  });
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 7}, bytes({1, 2, 3}));
  sim.run();
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(TransportFixture, UnicastToUnboundPortCountsWireTraffic) {
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 9}, bytes({1}));
  sim.run();
  const obs::MetricsRegistry& m = net.obs().metrics;
  EXPECT_EQ(m.counter_value(obs::Protocol::kNet, "rx_messages",
                            layout.hosts[1]),
            1u);
  EXPECT_GT(m.counter_value(obs::Protocol::kNet, "rx_wire_bytes",
                            layout.hosts[1]),
            0u);
}

TEST_F(TransportFixture, MulticastReachesOnlyGroupMembers) {
  auto layout = build_single_segment(topo, 4);
  Network net(sim, topo);
  std::vector<HostId> receivers;
  for (HostId h : layout.hosts) {
    net.bind(h, 7, [&receivers, h](const Packet&) { receivers.push_back(h); });
  }
  net.join_group(layout.hosts[1], 42);
  net.join_group(layout.hosts[2], 42);
  net.send_multicast(layout.hosts[0], 42, 1, 7, bytes({9}));
  sim.run();
  EXPECT_EQ(receivers, (std::vector<HostId>{layout.hosts[1], layout.hosts[2]}));
}

TEST_F(TransportFixture, MulticastTtlScoping) {
  RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 2;
  auto layout = build_racked_cluster(topo, params);
  Network net(sim, topo);
  std::vector<HostId> receivers;
  for (HostId h : layout.hosts) {
    net.join_group(h, 5);
    net.bind(h, 7, [&receivers, h](const Packet&) { receivers.push_back(h); });
  }
  // TTL 1: stays within the sender's rack.
  net.send_multicast(layout.racks[0][0], 5, 1, 7, bytes({1}));
  sim.run();
  EXPECT_EQ(receivers, (std::vector<HostId>{layout.racks[0][1]}));

  // TTL 2: crosses the core router to the other rack.
  receivers.clear();
  net.send_multicast(layout.racks[0][0], 5, 2, 7, bytes({1}));
  sim.run();
  EXPECT_EQ(receivers.size(), 3u);
}

TEST_F(TransportFixture, SenderDoesNotReceiveOwnMulticast) {
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  bool self_rx = false;
  net.join_group(layout.hosts[0], 5);
  net.bind(layout.hosts[0], 7, [&](const Packet&) { self_rx = true; });
  net.send_multicast(layout.hosts[0], 5, 1, 7, bytes({1}));
  sim.run();
  EXPECT_FALSE(self_rx);
}

TEST_F(TransportFixture, DownHostNeitherSendsNorReceives) {
  auto layout = build_single_segment(topo, 3);
  Network net(sim, topo);
  int rx = 0;
  net.bind(layout.hosts[1], 7, [&](const Packet&) { ++rx; });

  net.set_host_up(layout.hosts[0], false);
  EXPECT_FALSE(
      net.send_unicast(layout.hosts[0], {layout.hosts[1], 7}, bytes({1})));
  net.set_host_up(layout.hosts[0], true);

  net.set_host_up(layout.hosts[1], false);
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 7}, bytes({1}));
  sim.run();
  EXPECT_EQ(rx, 0);

  // Back up: traffic flows again (sockets survived the outage).
  net.set_host_up(layout.hosts[1], true);
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 7}, bytes({1}));
  sim.run();
  EXPECT_EQ(rx, 1);
}

TEST_F(TransportFixture, ExtraLossDropsRoughlyAtRate) {
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  int rx = 0;
  net.bind(layout.hosts[1], 7, [&](const Packet&) { ++rx; });
  net.set_extra_loss(0.3);
  const int sent = 5000;
  for (int i = 0; i < sent; ++i) {
    net.send_unicast(layout.hosts[0], {layout.hosts[1], 7}, bytes({1}));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(rx) / sent, 0.7, 0.03);
  EXPECT_EQ(net.obs().metrics.counter_value(obs::Protocol::kNet,
                                            "dropped_messages",
                                            layout.hosts[1]),
            static_cast<uint64_t>(sent - rx));
}

TEST_F(TransportFixture, DeliveryDelayIncludesPathLatency) {
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  sim::Time delivered_at = -1;
  net.bind(layout.hosts[1], 7,
           [&](const Packet&) { delivered_at = sim.now(); });
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 7}, bytes({1}));
  sim.run();
  // Two 50 us access links + min delivery delay + transmission time.
  EXPECT_GE(delivered_at, 100 * sim::kMicrosecond);
  EXPECT_LT(delivered_at, sim::kMillisecond);
}

TEST_F(TransportFixture, WireBytesIncludeOverheadAndFragments) {
  auto layout = build_single_segment(topo, 2);
  NetworkConfig config;
  config.mtu = 100;
  config.per_fragment_overhead = 46;
  Network net(sim, topo, config);
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 7},
                   make_payload(std::vector<uint8_t>(250, 0)));
  sim.run();
  // 250 bytes -> 3 fragments -> 250 + 3 * 46.
  EXPECT_EQ(net.obs().metrics.counter_value(obs::Protocol::kNet,
                                            "tx_wire_bytes"),
            250u + 3u * 46u);
}

TEST_F(TransportFixture, VirtualIpFollowsOwner) {
  auto layout = build_single_segment(topo, 3);
  Network net(sim, topo);
  std::vector<HostId> receivers;
  for (HostId h : layout.hosts) {
    net.bind(h, 7, [&receivers, h](const Packet&) { receivers.push_back(h); });
  }
  VirtualIpId vip = net.allocate_virtual_ip();
  EXPECT_EQ(net.virtual_ip_owner(vip), kInvalidHost);
  net.send_to_virtual(layout.hosts[0], vip, 7, bytes({1}));  // unowned: void
  sim.run();
  EXPECT_TRUE(receivers.empty());

  net.assign_virtual_ip(vip, layout.hosts[1]);
  net.send_to_virtual(layout.hosts[0], vip, 7, bytes({1}));
  sim.run();
  EXPECT_EQ(receivers, (std::vector<HostId>{layout.hosts[1]}));

  // Failover: reassign to another host.
  receivers.clear();
  net.assign_virtual_ip(vip, layout.hosts[2]);
  net.send_to_virtual(layout.hosts[0], vip, 7, bytes({1}));
  sim.run();
  EXPECT_EQ(receivers, (std::vector<HostId>{layout.hosts[2]}));
}

TEST_F(TransportFixture, StatsAccumulateAndReset) {
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  net.join_group(layout.hosts[1], 3);
  net.bind(layout.hosts[1], 7, [](const Packet&) {});
  net.send_multicast(layout.hosts[0], 3, 1, 7, bytes({1, 2}));
  sim.run();
  const obs::MetricsRegistry& m = net.obs().metrics;
  EXPECT_EQ(m.counter_value(obs::Protocol::kNet, "tx_messages",
                            layout.hosts[0]),
            1u);
  EXPECT_EQ(m.counter_value(obs::Protocol::kNet, "rx_multicast_messages",
                            layout.hosts[1]),
            1u);
  EXPECT_EQ(m.counter_value(obs::Protocol::kNet, "rx_messages"), 1u);
  net.obs().metrics.reset(obs::Protocol::kNet);
  EXPECT_EQ(m.counter_value(obs::Protocol::kNet, "tx_messages",
                            layout.hosts[0]),
            0u);
  EXPECT_EQ(m.counter_value(obs::Protocol::kNet, "rx_messages"), 0u);
}

TEST_F(TransportFixture, LeaveGroupStopsDelivery) {
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  int rx = 0;
  net.join_group(layout.hosts[1], 3);
  net.bind(layout.hosts[1], 7, [&](const Packet&) { ++rx; });
  net.send_multicast(layout.hosts[0], 3, 1, 7, bytes({1}));
  sim.run();
  EXPECT_EQ(rx, 1);
  net.leave_group(layout.hosts[1], 3);
  net.send_multicast(layout.hosts[0], 3, 1, 7, bytes({1}));
  sim.run();
  EXPECT_EQ(rx, 1);
}

}  // namespace
}  // namespace tamp::net

namespace tamp::net {
namespace {

TEST(TransportFragmentation, MessageLostIfAnyFragmentLost) {
  // IP fragmentation semantics: an F-fragment message survives with
  // probability (1-p)^F, so large messages suffer more under loss.
  sim::Simulation sim{3};
  Topology topo;
  DeviceId sw = topo.add_l2_switch("sw");
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  topo.connect(a, sw, {50 * sim::kMicrosecond, 100e6, 0.05});
  topo.connect(b, sw, {50 * sim::kMicrosecond, 100e6, 0.0});
  Network net(sim, topo);

  int small_rx = 0, large_rx = 0;
  net.bind(b, 7, [&](const Packet& p) {
    (p.size() <= 100 ? small_rx : large_rx) += 1;
  });
  const int sent = 4000;
  for (int i = 0; i < sent; ++i) {
    net.send_unicast(a, {b, 7}, make_payload(std::vector<uint8_t>(100, 1)));
    net.send_unicast(a, {b, 7},
                     make_payload(std::vector<uint8_t>(6000, 2)));  // 4 frags
  }
  sim.run();
  double small_rate = static_cast<double>(small_rx) / sent;
  double large_rate = static_cast<double>(large_rx) / sent;
  EXPECT_NEAR(small_rate, 0.95, 0.02);
  EXPECT_NEAR(large_rate, std::pow(0.95, 4), 0.03);
}

TEST(TransportFragmentation, TransmissionDelayScalesWithSize) {
  sim::Simulation sim{5};
  Topology topo;
  auto layout = build_single_segment(topo, 2);
  Network net(sim, topo);
  std::vector<sim::Time> deliveries;
  net.bind(layout.hosts[1], 7,
           [&](const Packet&) { deliveries.push_back(sim.now()); });
  // 100 KB at 100 Mb/s ~ 8 ms of transmission time; 100 B ~ negligible.
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 7},
                   make_payload(std::vector<uint8_t>(100'000, 0)));
  net.send_unicast(layout.hosts[0], {layout.hosts[1], 7},
                   make_payload(std::vector<uint8_t>(100, 0)));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // The small message overtakes the big one (independent delays model
  // parallel paths through the switch fabric; FIFO per flow isn't claimed).
  sim::Duration gap = deliveries[1] - deliveries[0];
  EXPECT_GT(gap, 7 * sim::kMillisecond);
}

}  // namespace
}  // namespace tamp::net
