// Runtime topology mutation end-to-end: the hierarchical daemons must
// re-scope their TTL groups when the network changes shape under them —
// host migration, router power cycles, new links — and the oracle's
// scope-reconvergence invariant (11) must grade the final shape on the
// canned router-flap / rewire-heal chaos plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "sim/scenario.h"

namespace tamp::protocols {
namespace {

bool contains(const std::vector<membership::NodeId>& members,
              membership::NodeId node) {
  return std::find(members.begin(), members.end(), node) != members.end();
}

// A migrated host must leave its old level-0 group and show up in the new
// segment's group — on both sides — while staying in everyone's full
// directory throughout (it never died).
TEST(DynamicTopology, MigrationRescopesLevelZeroGroups) {
  sim::Simulation sim{42};
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 4;
  net::ClusterLayout layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);

  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  opts.hier.refresh_interval = 10 * sim::kSecond;
  opts.hier.topology_poll_interval = opts.hier.period;
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  net::HostId mover = layout.racks[0][3];
  topo.migrate_host(mover, layout.rack_switches[1]);
  sim.run_until(sim.now() + 25 * sim::kSecond);

  auto* moved = static_cast<HierDaemon*>(cluster.daemon_for(mover));
  ASSERT_NE(moved, nullptr);
  std::vector<membership::NodeId> group = moved->group_members(0);
  for (net::HostId h : layout.racks[1]) {
    EXPECT_TRUE(contains(group, h)) << "mover missing new segment peer " << h;
  }
  for (net::HostId h : layout.racks[0]) {
    if (h == mover) continue;
    EXPECT_FALSE(contains(group, h)) << "mover still tracks old peer " << h;
    auto* d = static_cast<HierDaemon*>(cluster.daemon_for(h));
    EXPECT_FALSE(contains(d->group_members(0), mover))
        << "old segment peer " << h << " still tracks the mover at level 0";
  }
  // The epoch watch (not a timeout) did the pruning on the mover: it saw
  // every old-rack peer fall out of TTL-1 scope in one reaction.
  EXPECT_GE(net.obs().metrics.counter_value(obs::Protocol::kHier,
                                            "topology_rescopes", mover),
            3u);
  // Full-cluster membership is unaffected — the mover stayed alive.
  EXPECT_TRUE(cluster.converged())
      << cluster.converged_count() << "/" << cluster.size();
}

// Crashing the core router must *not* make anyone declare cross-rack peers
// dead-and-gone forever: after the router powers back, the directory and
// the level groups must both return to the pre-crash shape.
TEST(DynamicTopology, RouterPowerCycleReformsHierarchy) {
  sim::Simulation sim{7};
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 3;
  net::ClusterLayout layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);

  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  opts.hier.refresh_interval = 10 * sim::kSecond;
  opts.hier.topology_poll_interval = opts.hier.period;
  Cluster cluster(sim, net, layout.hosts, opts);
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  topo.set_device_up(layout.routers[0], false);
  sim.run_until(sim.now() + 20 * sim::kSecond);
  // Dark phase: each rack's level-0 group is intact (intra-rack paths never
  // died), but no daemon may track a cross-rack peer in any group.
  for (size_t rack = 0; rack < layout.racks.size(); ++rack) {
    for (net::HostId h : layout.racks[rack]) {
      auto* d = static_cast<HierDaemon*>(cluster.daemon_for(h));
      std::vector<membership::NodeId> group = d->group_members(0);
      for (net::HostId peer : layout.racks[rack]) {
        if (peer != h) EXPECT_TRUE(contains(group, peer));
      }
      for (size_t other = 0; other < layout.racks.size(); ++other) {
        if (other == rack) continue;
        for (net::HostId peer : layout.racks[other]) {
          EXPECT_FALSE(contains(group, peer))
              << h << " tracks cross-rack " << peer << " through a dead core";
        }
      }
    }
  }

  topo.set_device_up(layout.routers[0], true);
  sim.run_until(sim.now() + 30 * sim::kSecond);
  EXPECT_TRUE(cluster.converged())
      << cluster.converged_count() << "/" << cluster.size()
      << " after router recovery";
  // The level-1 tree re-forms: exactly one root leader spanning the racks.
  int level1_leaders = 0;
  for (net::HostId h : layout.hosts) {
    auto* d = static_cast<HierDaemon*>(cluster.daemon_for(h));
    if (d->is_leader(1)) ++level1_leaders;
  }
  EXPECT_EQ(level1_leaders, 1);
}

// The canned mutation plans, end-to-end through the scenario runner with
// the oracle grading all eleven invariants (scope reconvergence included).
TEST(DynamicTopology, RouterFlapScenarioPassesEveryShape) {
  for (chaos::ShapeKind shape : chaos::kAllShapeKinds) {
    chaos::ScenarioSpec spec;
    spec.scheme = Scheme::kHierarchical;
    spec.shape = shape;
    spec.plan = chaos::PlanKind::kRouterFlap;
    spec.seed = 2;
    chaos::ScenarioResult result = chaos::run_scenario(spec);
    EXPECT_TRUE(result.passed) << result.name << "\n" << result.report;
    EXPECT_GT(result.oracle_checks, 0u);
  }
}

TEST(DynamicTopology, RewireHealScenarioPassesEveryShape) {
  for (chaos::ShapeKind shape : chaos::kAllShapeKinds) {
    chaos::ScenarioSpec spec;
    spec.scheme = Scheme::kHierarchical;
    spec.shape = shape;
    spec.plan = chaos::PlanKind::kRewireHeal;
    spec.seed = 3;
    chaos::ScenarioResult result = chaos::run_scenario(spec);
    EXPECT_TRUE(result.passed) << result.name << "\n" << result.report;
    EXPECT_GT(result.oracle_checks, 0u);
  }
}

}  // namespace
}  // namespace tamp::protocols
