#include <gtest/gtest.h>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

struct AllToAllFixture : public ::testing::Test {
  sim::Simulation sim{7};
  net::Topology topo;

  Cluster::Options options() {
    Cluster::Options opts;
    opts.scheme = Scheme::kAllToAll;
    return opts;
  }
};

TEST_F(AllToAllFixture, ViewsConvergeToFullCluster) {
  auto layout = net::build_single_segment(topo, 10);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(5 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.daemon(i).view_size(), 10u);
  }
}

TEST_F(AllToAllFixture, FailureDetectedWithinKPeriods) {
  auto layout = net::build_single_segment(topo, 8);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());

  sim::Time detected = -1;
  net::HostId victim = layout.hosts[3];
  cluster.set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject == victim && !alive && detected < 0) detected = when;
      });
  cluster.start_all();
  sim.run_until(5 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  const sim::Time kill_at = sim.now();
  cluster.kill(3);
  sim.run_until(kill_at + 20 * sim::kSecond);

  ASSERT_GE(detected, 0);
  sim::Duration detection = detected - kill_at;
  // Paper: detection time ~ max_losses * period (5 s), independent of size.
  EXPECT_GE(detection, 4 * sim::kSecond);
  EXPECT_LE(detection, 7 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

TEST_F(AllToAllFixture, JoinIsDiscovered) {
  auto layout = net::build_single_segment(topo, 6);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  cluster.kill(5);  // node 5 starts out dead
  sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(cluster.daemon(0).view_size(), 5u);

  cluster.restart(5);
  sim.run_until(15 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(cluster.daemon(0).view_size(), 6u);
}

TEST_F(AllToAllFixture, RestartedNodeHasNewIncarnation) {
  auto layout = net::build_single_segment(topo, 4);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(5 * sim::kSecond);

  cluster.kill(2);
  sim.run_until(15 * sim::kSecond);
  cluster.restart(2);
  sim.run_until(25 * sim::kSecond);

  const auto* entry = cluster.daemon(0).table().find(layout.hosts[2]);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data.incarnation, 2u);
}

TEST_F(AllToAllFixture, TrafficGrowsQuadratically) {
  auto measure = [&](int n) {
    sim::Simulation local_sim{7};
    net::Topology local_topo;
    auto layout = net::build_single_segment(local_topo, n);
    net::Network net(local_sim, local_topo);
    Cluster cluster(local_sim, net, layout.hosts, options());
    cluster.start_all();
    local_sim.run_until(5 * sim::kSecond);
    net.obs().metrics.reset(obs::Protocol::kNet);
    local_sim.run_until(15 * sim::kSecond);
    return net.obs().metrics.counter_value(obs::Protocol::kNet,
                                           "rx_wire_bytes");
  };
  uint64_t at10 = measure(10);
  uint64_t at20 = measure(20);
  // Doubling the cluster should ~quadruple aggregate received bytes.
  double ratio = static_cast<double>(at20) / static_cast<double>(at10);
  EXPECT_GT(ratio, 3.2);
  EXPECT_LT(ratio, 4.8);
}

TEST_F(AllToAllFixture, SurvivesModeratePacketLoss) {
  auto layout = net::build_single_segment(topo, 8);
  net::Network net(sim, topo);
  net.set_extra_loss(0.05);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);
  // 5% loss never produces 5 consecutive losses here: no false failures.
  EXPECT_TRUE(cluster.converged());
}

TEST_F(AllToAllFixture, StopUnbindsCleanly) {
  auto layout = net::build_single_segment(topo, 3);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(2 * sim::kSecond);
  cluster.stop_all();
  cluster.start_all();  // re-binding must not trip the port-in-use check
  sim.run_until(8 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

}  // namespace
}  // namespace tamp::protocols
