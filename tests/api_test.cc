#include <gtest/gtest.h>

#include "api/mclient.h"
#include "api/mservice.h"
#include "net/builders.h"
#include "service/consumer.h"

namespace tamp::api {
namespace {

constexpr char kPaperConfig[] = R"(
*SYSTEM
SHM_KEY = 999
MAX_TTL = 4
MCAST_ADDR = 239.255.0.2
MCAST_PORT = 10050
MCAST_FREQ = 1
MAX_LOSS = 5

*SERVICE
[HTTP]
    PARTITION = 0
    Port = 8080
[Cache]
    PARTITION = 2
)";

TEST(Config, ParsesPaperExample) {
  std::string error;
  auto config = parse_config(kPaperConfig, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->system.shm_key, 999);
  EXPECT_EQ(config->system.max_ttl, 4);
  EXPECT_EQ(config->system.mcast_addr, "239.255.0.2");
  EXPECT_EQ(config->system.mcast_port, 10050);
  EXPECT_DOUBLE_EQ(config->system.mcast_freq, 1.0);
  EXPECT_EQ(config->system.max_loss, 5);
  ASSERT_EQ(config->services.size(), 2u);
  EXPECT_EQ(config->services[0].name, "HTTP");
  EXPECT_EQ(config->services[0].partition_spec, "0");
  EXPECT_EQ(config->services[0].params.at("Port"), "8080");
  EXPECT_EQ(config->services[1].name, "Cache");
  EXPECT_EQ(config->services[1].partition_spec, "2");
}

TEST(Config, EmptyTextYieldsDefaults) {
  auto config = parse_config("");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->system.shm_key, 999);
  EXPECT_TRUE(config->services.empty());
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  auto config = parse_config("# hello\n\n*SYSTEM\n; note\nMAX_TTL = 2\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->system.max_ttl, 2);
}

TEST(Config, RejectsUnknownSection) {
  std::string error;
  EXPECT_FALSE(parse_config("*BOGUS\nA = 1\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(Config, RejectsUnknownSystemKey) {
  std::string error;
  EXPECT_FALSE(parse_config("*SYSTEM\nWAT = 1\n", &error).has_value());
}

TEST(Config, RejectsNonNumericValue) {
  std::string error;
  EXPECT_FALSE(parse_config("*SYSTEM\nMAX_TTL = lots\n", &error).has_value());
}

TEST(Config, RejectsKeyOutsideSection) {
  std::string error;
  EXPECT_FALSE(parse_config("MAX_TTL = 4\n", &error).has_value());
}

TEST(Config, RejectsServiceKeyBeforeHeader) {
  std::string error;
  EXPECT_FALSE(
      parse_config("*SERVICE\nPARTITION = 1\n", &error).has_value());
}

TEST(Config, McastAddrMapsToStableChannel) {
  EXPECT_EQ(channel_for_mcast_addr("239.255.0.2"),
            channel_for_mcast_addr("239.255.0.2"));
  EXPECT_NE(channel_for_mcast_addr("239.255.0.2"),
            channel_for_mcast_addr("239.255.0.3"));
}

struct ApiFixture : public ::testing::Test {
  sim::Simulation sim{51};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  DirectoryStore store;
  std::vector<std::unique_ptr<MService>> services;

  void build(int racks, int hosts_per_rack) {
    net::RackedClusterParams params;
    params.racks = racks;
    params.hosts_per_rack = hosts_per_rack;
    layout = net::build_racked_cluster(topo, params);
    net = std::make_unique<net::Network>(sim, topo);
    for (net::HostId host : layout.hosts) {
      services.push_back(
          std::make_unique<MService>(sim, *net, store, host, kPaperConfig));
      EXPECT_TRUE(services.back()->config_error().empty());
      EXPECT_EQ(services.back()->run(), 0);
    }
  }
};

TEST_F(ApiFixture, FullStackConvergesAndClientSeesServices) {
  build(2, 4);
  sim.run_until(15 * sim::kSecond);

  MClient client(store, layout.hosts[0], 999);
  ASSERT_TRUE(client.attached());

  MachineList machines;
  // Every node registered HTTP partition 0 from the shared config file.
  int count = client.lookup_service("HTTP", "0", &machines);
  EXPECT_EQ(count, 8);
  ASSERT_EQ(machines.size(), 8u);

  // Attributes include the service parameters from the config file.
  bool port_found = false;
  for (const auto& [key, value] : machines[0]) {
    if (key == "service.HTTP.Port" && value == "8080") port_found = true;
  }
  EXPECT_TRUE(port_found);

  // Regex + partition spec work through the client API too.
  EXPECT_EQ(client.lookup_service("(HTTP|Cache)", "2", nullptr), 8);
  EXPECT_EQ(client.lookup_service("Cache", "0-1", nullptr), 0);
}

TEST_F(ApiFixture, UpdateValuePropagates) {
  build(2, 3);
  sim.run_until(15 * sim::kSecond);
  services[0]->update_value("load", "0.42");
  sim.run_until(sim.now() + 5 * sim::kSecond);

  MClient client(store, layout.hosts[5], 999);
  MachineList machines;
  client.lookup_service("HTTP", "*", &machines);
  bool seen = false;
  for (const auto& machine : machines) {
    for (const auto& [key, value] : machine) {
      if (key == "load" && value == "0.42") seen = true;
    }
  }
  EXPECT_TRUE(seen);

  services[0]->delete_value("load");
  sim.run_until(sim.now() + 5 * sim::kSecond);
  machines.clear();
  client.lookup_service("HTTP", "*", &machines);
  for (const auto& machine : machines) {
    for (const auto& [key, value] : machine) {
      EXPECT_FALSE(key == "load" && value == "0.42");
    }
  }
}

TEST_F(ApiFixture, RegisterServiceAtRuntime) {
  build(1, 4);
  sim.run_until(10 * sim::kSecond);
  services[2]->register_service("Retriever", "1-3");
  sim.run_until(sim.now() + 5 * sim::kSecond);

  MClient client(store, layout.hosts[0], 999);
  MachineList machines;
  EXPECT_EQ(client.lookup_service("Retriever", "2", &machines), 1);
}

TEST_F(ApiFixture, ShutdownWithdrawsSegment) {
  build(1, 3);
  sim.run_until(8 * sim::kSecond);
  MClient client(store, layout.hosts[0], 999);
  EXPECT_TRUE(client.attached());
  services[0]->shutdown();
  EXPECT_FALSE(client.attached());
  EXPECT_EQ(client.lookup_service("HTTP", "*", nullptr), -1);
}

TEST_F(ApiFixture, ControlAdjustsDaemonParameters) {
  net::ClusterLayout small = net::build_single_segment(topo, 2);
  net = std::make_unique<net::Network>(sim, topo);
  MService service(sim, *net, store, small.hosts[0], kPaperConfig);
  EXPECT_TRUE(service.control(SetFrequencyRequest{2.0}).status.ok());
  EXPECT_TRUE(service.control(SetMaxLossRequest{3}).status.ok());
  ControlResponse ttl_response = service.control(SetMaxTtlRequest{2});
  EXPECT_TRUE(ttl_response.status.ok());
  EXPECT_EQ(ttl_response.version, kControlApiVersion);
  ASSERT_EQ(service.run(), 0);
  EXPECT_EQ(service.daemon().config().period, sim::kSecond / 2);
  EXPECT_EQ(service.daemon().config().max_losses, 3);
  EXPECT_EQ(service.daemon().config().max_ttl, 2);
  EXPECT_EQ(service.run(), -1);  // double run rejected
}

TEST_F(ApiFixture, ControlRejectsBadValuesAndLateChanges) {
  net::ClusterLayout small = net::build_single_segment(topo, 2);
  net = std::make_unique<net::Network>(sim, topo);
  MService service(sim, *net, store, small.hosts[0], kPaperConfig);

  // Invalid values come back as Status errors instead of asserting, and
  // leave the configuration untouched.
  EXPECT_FALSE(service.control(SetFrequencyRequest{-1.0}).status.ok());
  EXPECT_FALSE(service.control(SetMaxTtlRequest{0}).status.ok());
  EXPECT_FALSE(service.control(SetMaxLossRequest{0}).status.ok());
  EXPECT_DOUBLE_EQ(service.config().system.mcast_freq, 1.0);
  EXPECT_EQ(service.config().system.max_ttl, 4);

  // Queries before run() are rejected too.
  EXPECT_FALSE(service.control(LeadershipQuery{}).status.ok());

  ASSERT_EQ(service.run(), 0);
  // Parameter changes after run() are rejected, not applied.
  EXPECT_FALSE(service.control(SetFrequencyRequest{2.0}).status.ok());
  EXPECT_EQ(service.daemon().config().period, sim::kSecond);
}

TEST_F(ApiFixture, LeadershipQueryReportsEpochsAndIncarnation) {
  build(1, 4);
  sim.run_until(15 * sim::kSecond);

  bool leader_seen = false;
  for (auto& service : services) {
    ControlResponse response = service->control(LeadershipQuery{});
    ASSERT_TRUE(response.status.ok()) << response.status.message();
    EXPECT_EQ(response.version, kControlApiVersion);
    EXPECT_GE(response.incarnation, 1u);
    ASSERT_EQ(response.leadership.size(), 4u);
    const LeadershipInfo& level0 = response.leadership[0];
    EXPECT_EQ(level0.level, 0);
    EXPECT_TRUE(level0.joined);
    EXPECT_NE(level0.leader, membership::kInvalidNode);
    if (level0.is_leader) {
      leader_seen = true;
      // A node that led an election minted at least epoch 1.
      EXPECT_GE(level0.epoch, 1u);
    }
  }
  EXPECT_TRUE(leader_seen);
}

TEST(ConfigBuilder, FluentBuildValidates) {
  MembershipConfig config;
  Status status = MembershipConfigBuilder()
                      .mcast_addr("239.255.0.7")
                      .mcast_freq(2.0)
                      .max_ttl(3)
                      .max_loss(4)
                      .add_service("HTTP", "0", {{"Port", "8080"}})
                      .Build(&config);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(config.system.mcast_addr, "239.255.0.7");
  EXPECT_DOUBLE_EQ(config.system.mcast_freq, 2.0);
  EXPECT_EQ(config.system.max_ttl, 3);
  ASSERT_EQ(config.services.size(), 1u);
  EXPECT_EQ(config.services[0].params.at("Port"), "8080");
}

TEST(ConfigBuilder, RejectsOutOfRangeValues) {
  MembershipConfig config;
  config.system.max_ttl = 99;  // sentinel: must stay untouched on error
  EXPECT_FALSE(MembershipConfigBuilder().max_ttl(0).Build(&config).ok());
  EXPECT_FALSE(MembershipConfigBuilder().max_ttl(251).Build(&config).ok());
  EXPECT_FALSE(MembershipConfigBuilder().mcast_freq(0).Build(&config).ok());
  EXPECT_FALSE(MembershipConfigBuilder().max_loss(0).Build(&config).ok());
  EXPECT_FALSE(MembershipConfigBuilder().mcast_port(65535).Build(&config).ok());
  EXPECT_FALSE(MembershipConfigBuilder().mcast_addr("").Build(&config).ok());
  EXPECT_FALSE(
      MembershipConfigBuilder().add_service("S", "4-2").Build(&config).ok());
  EXPECT_FALSE(
      MembershipConfigBuilder().add_service("").Build(&config).ok());
  EXPECT_EQ(config.system.max_ttl, 99);
}

TEST(ConfigBuilder, AntiEntropyKnobsValidateAndFlowThrough) {
  MembershipConfig config;
  Status status = MembershipConfigBuilder()
                      .anti_entropy_mode("digest")
                      .digest_interval(15.0)
                      .digest_max_rows_per_delta(128)
                      .Build(&config);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(config.system.anti_entropy_mode, "digest");
  EXPECT_DOUBLE_EQ(config.system.digest_interval, 15.0);
  EXPECT_EQ(config.system.digest_max_rows_per_delta, 128);

  // Defaults keep the pre-v4 behavior: full-view refresh.
  MembershipConfig defaults;
  ASSERT_TRUE(MembershipConfigBuilder().Build(&defaults).ok());
  EXPECT_EQ(defaults.system.anti_entropy_mode, "full");

  EXPECT_FALSE(
      MembershipConfigBuilder().anti_entropy_mode("gossip").Build(&config).ok());
  EXPECT_FALSE(
      MembershipConfigBuilder().anti_entropy_mode("").Build(&config).ok());
  EXPECT_FALSE(
      MembershipConfigBuilder().digest_interval(-1.0).Build(&config).ok());
  EXPECT_FALSE(
      MembershipConfigBuilder().digest_interval(3601.0).Build(&config).ok());
  EXPECT_FALSE(
      MembershipConfigBuilder().digest_max_rows_per_delta(0).Build(&config).ok());
  EXPECT_FALSE(MembershipConfigBuilder()
                   .digest_max_rows_per_delta(65537)
                   .Build(&config)
                   .ok());
}

TEST(ConfigBuilder, AntiEntropyKeysParseFromFigureSevenText) {
  MembershipConfig config;
  Status status = MembershipConfigBuilder::FromText(
                      "*SYSTEM\n"
                      "ANTI_ENTROPY_MODE = Digest\n"  // case-folded
                      "DIGEST_INTERVAL = 20\n"
                      "DIGEST_MAX_ROWS_PER_DELTA = 32\n")
                      .Build(&config);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(config.system.anti_entropy_mode, "digest");
  EXPECT_DOUBLE_EQ(config.system.digest_interval, 20.0);
  EXPECT_EQ(config.system.digest_max_rows_per_delta, 32);

  // Vocabulary violations surface at Build(), like every other key.
  EXPECT_FALSE(MembershipConfigBuilder::FromText(
                   "*SYSTEM\nANTI_ENTROPY_MODE = sometimes\n")
                   .Build(&config)
                   .ok());
  EXPECT_FALSE(MembershipConfigBuilder::FromText(
                   "*SYSTEM\nDIGEST_INTERVAL = -3\n")
                   .Build(&config)
                   .ok());
  EXPECT_FALSE(MembershipConfigBuilder::FromText(
                   "*SYSTEM\nDIGEST_MAX_ROWS_PER_DELTA = 1.5\n")
                   .Build(&config)
                   .ok());
}

TEST(ConfigBuilder, SeedsFromFigureSevenText) {
  MembershipConfig config;
  Status status = MembershipConfigBuilder::FromText(kPaperConfig)
                      .mcast_freq(4.0)  // override on top of the file
                      .Build(&config);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(config.system.shm_key, 999);
  EXPECT_DOUBLE_EQ(config.system.mcast_freq, 4.0);
  ASSERT_EQ(config.services.size(), 2u);

  // A parse failure is remembered and surfaces in Build().
  Status bad = MembershipConfigBuilder::FromText("*SYSTEM\nMAX_TTL = oops\n")
                   .Build(&config);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("line 2"), std::string::npos);
}

TEST(ConfigBuilder, ValidatedConfigConstructsServiceDirectly) {
  sim::Simulation sim(7);
  net::Topology topo;
  auto layout = net::build_single_segment(topo, 2);
  net::Network net(sim, topo);
  DirectoryStore store;

  MembershipConfig config;
  ASSERT_TRUE(MembershipConfigBuilder::FromText(kPaperConfig)
                  .shm_key(1234)
                  .Build(&config)
                  .ok());
  MService service(sim, net, store, layout.hosts[0], std::move(config));
  EXPECT_TRUE(service.config_error().empty());
  EXPECT_EQ(service.shm_key(), 1234);
  EXPECT_EQ(service.run(), 0);
  MClient client(store, layout.hosts[0], 1234);
  EXPECT_TRUE(client.attached());
}

// --- control API v5: application-traffic queries ---------------------------

struct TrafficQueryFixture : public ::testing::Test {
  sim::Simulation sim{91};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  DirectoryStore store;
  std::unique_ptr<MService> service;

  void SetUp() override {
    layout = net::build_single_segment(topo, 2);
    net = std::make_unique<net::Network>(sim, topo);
    service = std::make_unique<MService>(sim, *net, store, layout.hosts[0],
                                         kPaperConfig);
  }

  // Stand in for a workload driver having run on this node: the queries
  // read the registry, so seeding it directly gives exact expectations.
  void seed_workload_metrics() {
    obs::MetricsRegistry& metrics = net->obs().metrics;
    const net::HostId self = layout.hosts[0];
    metrics.counter(obs::Protocol::kWorkload, "requests_issued", self)
        ->add(120);
    metrics.counter(obs::Protocol::kWorkload, "requests_ok", self)->add(110);
    metrics.counter(obs::Protocol::kWorkload, "requests_failed", self)
        ->add(10);
    metrics.counter(obs::Protocol::kWorkload, "request_attempts", self)
        ->add(140);
    metrics.counter(obs::Protocol::kWorkload, "misroutes", self)->add(7);
    metrics.counter(obs::Protocol::kWorkload, "proxy_fallbacks", self)
        ->add(3);
  }
};

TEST_F(TrafficQueryFixture, WorkloadQueryRoundTrip) {
  ASSERT_EQ(service->run(), 0);
  seed_workload_metrics();
  // A neighbor's counters must not bleed into this node's answer.
  net->obs()
      .metrics.counter(obs::Protocol::kWorkload, "requests_issued",
                       layout.hosts[1])
      ->add(999);

  ControlResponse response = service->control(WorkloadQuery{});
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.version, kControlApiVersion);
  EXPECT_EQ(response.workload.requests_issued, 120u);
  EXPECT_EQ(response.workload.requests_ok, 110u);
  EXPECT_EQ(response.workload.requests_failed, 10u);
  EXPECT_EQ(response.workload.request_attempts, 140u);
  EXPECT_EQ(response.workload.misroutes, 7u);
  EXPECT_EQ(response.workload.proxy_fallbacks, 3u);
}

TEST_F(TrafficQueryFixture, SloQueryReportsLatencyDistribution) {
  ASSERT_EQ(service->run(), 0);
  seed_workload_metrics();
  obs::Histogram* latency = net->obs().metrics.histogram(
      obs::Protocol::kWorkload, "latency_ns", layout.hosts[0]);
  for (int ms = 1; ms <= 100; ++ms) latency->observe(ms * 1e6);

  ControlResponse response = service->control(SloQuery{});
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  // SloQuery answers the WorkloadQuery fields too.
  EXPECT_EQ(response.workload.requests_issued, 120u);
  EXPECT_EQ(response.slo.latency_samples, 100u);
  EXPECT_GT(response.slo.p50_ns, 40 * 1000000ll);
  EXPECT_LT(response.slo.p50_ns, 60 * 1000000ll);
  EXPECT_LE(response.slo.p50_ns, response.slo.p99_ns);
  EXPECT_LE(response.slo.p99_ns, response.slo.p999_ns);
  EXPECT_EQ(response.slo.max_ns, 100 * 1000000ll);
}

TEST_F(TrafficQueryFixture, SloQueryWithoutSamplesReportsEmptySentinels) {
  ASSERT_EQ(service->run(), 0);
  ControlResponse response = service->control(SloQuery{});
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.slo.latency_samples, 0u);
  EXPECT_EQ(response.slo.p50_ns, -1);
  EXPECT_EQ(response.slo.p999_ns, -1);
}

TEST_F(TrafficQueryFixture, TrafficQueriesGateOnVersionAndRun) {
  // Before run(): both queries are rejected.
  EXPECT_FALSE(service->control(WorkloadQuery{}).status.ok());
  EXPECT_FALSE(service->control(SloQuery{}).status.ok());
  ASSERT_EQ(service->run(), 0);

  // A pre-v5 client's stamp is rejected, never silently misread.
  WorkloadQuery stale_workload;
  stale_workload.version = 4;
  ControlResponse rejected = service->control(stale_workload);
  EXPECT_FALSE(rejected.status.ok());
  EXPECT_NE(rejected.status.message().find("version"), std::string::npos);
  SloQuery stale_slo;
  stale_slo.version = 4;
  EXPECT_FALSE(service->control(stale_slo).status.ok());

  EXPECT_TRUE(service->control(WorkloadQuery{}).status.ok());
}

// --- ConsumerConfigBuilder -------------------------------------------------

TEST(ConsumerConfigBuilder, FluentBuildValidates) {
  service::ConsumerConfig config;
  Status status = service::ConsumerConfigBuilder()
                      .poll_candidates(3)
                      .poll_timeout(50 * sim::kMillisecond)
                      .request_timeout(sim::kSecond)
                      .max_attempts(5)
                      .proxy_fallback(false)
                      .Build(&config);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(config.poll_candidates, 3);
  EXPECT_EQ(config.poll_timeout, 50 * sim::kMillisecond);
  EXPECT_EQ(config.request_timeout, sim::kSecond);
  EXPECT_EQ(config.max_attempts, 5);
  EXPECT_FALSE(config.proxy_fallback);
}

TEST(ConsumerConfigBuilder, RejectsOutOfRangeValues) {
  service::ConsumerConfig config;
  config.max_attempts = 99;  // sentinel: must stay untouched on error
  using service::ConsumerConfigBuilder;
  EXPECT_FALSE(ConsumerConfigBuilder().poll_candidates(0).Build(&config).ok());
  EXPECT_FALSE(
      ConsumerConfigBuilder().poll_candidates(17).Build(&config).ok());
  EXPECT_FALSE(ConsumerConfigBuilder().max_attempts(0).Build(&config).ok());
  EXPECT_FALSE(ConsumerConfigBuilder().poll_timeout(0).Build(&config).ok());
  EXPECT_FALSE(
      ConsumerConfigBuilder().request_timeout(-1).Build(&config).ok());
  EXPECT_FALSE(ConsumerConfigBuilder().relay_timeout(0).Build(&config).ok());
  // Port collisions would make the consumer answer itself.
  EXPECT_FALSE(ConsumerConfigBuilder()
                   .reply_port(protocols::kServicePort)
                   .Build(&config)
                   .ok());
  EXPECT_FALSE(ConsumerConfigBuilder()
                   .reply_port(service::kProxyRelayPort)
                   .Build(&config)
                   .ok());
  EXPECT_EQ(config.max_attempts, 99);
}

TEST(ApiStandalone, MalformedConfigFallsBackToDefaults) {
  sim::Simulation sim(1);
  net::Topology topo;
  auto layout = net::build_single_segment(topo, 2);
  net::Network net(sim, topo);
  DirectoryStore store;
  MService service(sim, net, store, layout.hosts[0], "*SYSTEM\nMAX_TTL=oops");
  EXPECT_FALSE(service.config_error().empty());
  EXPECT_EQ(service.config().system.max_ttl, 4);  // default kept
  EXPECT_EQ(service.run(), 0);
}

}  // namespace
}  // namespace tamp::api
