// Randomized churn soak: a scripted adversary kills and restarts random
// nodes (sometimes under packet loss) for a long stretch of virtual time;
// after a quiet period every surviving view must equal the live set, no
// node may ever be counted dead twice in a row without a rejoin between,
// and leadership invariants must hold. Parameterized over seeds and
// cluster shapes — each seed generates a different adversary schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

using Param = std::tuple<uint64_t /*seed*/, int /*racks*/, int /*hosts*/,
                         double /*loss*/>;

class ChurnSoak : public ::testing::TestWithParam<Param> {};

TEST_P(ChurnSoak, EventuallyConvergesWithConsistentNotifications) {
  const auto& [seed, racks, hosts_per_rack, loss] = GetParam();
  sim::Simulation sim(seed);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = racks;
  params.hosts_per_rack = hosts_per_rack;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster::Options opts;
  opts.scheme = Scheme::kHierarchical;
  Cluster cluster(sim, net, layout.hosts, opts);

  // Notification sanity: per (observer, subject), alive-state transitions
  // must alternate (no double-leave, no double-join).
  std::map<std::pair<size_t, membership::NodeId>, bool> believed_alive;
  int violations = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.daemon(i).set_change_listener(
        [&, i](membership::NodeId subject, bool alive, sim::Time) {
          auto key = std::make_pair(i, subject);
          auto it = believed_alive.find(key);
          bool previous = it == believed_alive.end() ? false : it->second;
          if (previous == alive) ++violations;
          believed_alive[key] = alive;
        });
  }

  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());
  net.set_extra_loss(loss);

  // Adversary: 12 random churn actions, 4-9 s apart, touching random
  // nodes; at most half the cluster may be down at once.
  util::Rng adversary(seed * 2654435761u + 7);
  std::set<size_t> down;
  for (int action = 0; action < 12; ++action) {
    sim.run_until(sim.now() +
                  sim::kSecond * adversary.uniform_int(4, 9));
    if (!down.empty() && adversary.bernoulli(0.45)) {
      // Restart a random down node.
      auto it = down.begin();
      std::advance(it, static_cast<long>(
                           adversary.uniform_u64(down.size())));
      size_t index = *it;
      down.erase(it);
      cluster.restart(index);
    } else if (down.size() < cluster.size() / 2) {
      size_t index = static_cast<size_t>(
          adversary.uniform_u64(cluster.size()));
      if (!down.contains(index)) {
        cluster.kill(index);
        down.insert(index);
      }
    }
  }

  // Quiet period: loss off, restarts of everything still down, then let
  // the protocol settle (tombstones + anti-entropy horizon).
  net.set_extra_loss(0.0);
  for (size_t index : down) cluster.restart(index);
  sim.run_until(sim.now() + 100 * sim::kSecond);

  EXPECT_TRUE(cluster.converged())
      << cluster.converged_count() << "/" << cluster.size() << " seed "
      << seed;
  EXPECT_EQ(violations, 0);

  // Leadership invariants after the dust settles: exactly one level-0
  // leader audible per node, and every node agrees with its own group.
  for (size_t i = 0; i < cluster.size(); ++i) {
    auto* daemon = cluster.hier_daemon(i);
    ASSERT_TRUE(daemon->running());
    EXPECT_TRUE(daemon->joined(0));
    EXPECT_NE(daemon->leader_of(0), membership::kInvalidNode)
        << "node " << daemon->self() << " has no level-0 leader";
    // Pending-exchange bookkeeping must not leak across churn: per level,
    // at most one outstanding sync per known member plus one bootstrap
    // slot. (The old last_sync_request map grew monotonically here.)
    for (int level = 0; level < opts.hier.max_ttl; ++level) {
      EXPECT_LE(daemon->pending_exchanges(level),
                cluster.size() + 1)
          << "node " << daemon->self() << " leaked pending exchanges at level "
          << level;
    }
  }
}

std::string soak_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [seed, racks, hosts, loss] = info.param;
  return "s" + std::to_string(seed) + "_" + std::to_string(racks) + "x" +
         std::to_string(hosts) + "_loss" +
         std::to_string(static_cast<int>(loss * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Adversaries, ChurnSoak,
    ::testing::Values(Param{11, 2, 6, 0.0}, Param{12, 3, 5, 0.0},
                      Param{13, 2, 8, 0.02}, Param{14, 4, 4, 0.02},
                      Param{15, 3, 7, 0.05}, Param{16, 2, 10, 0.05}),
    soak_name);

}  // namespace
}  // namespace tamp::protocols
