// Observability layer tests: the metrics registry and tracer in isolation,
// trace determinism through the chaos scenario runner (same seed =>
// byte-identical JSONL), the conservation identities the runner grades, and
// the v4 control-surface round-trip (MetricsQuery / TraceControl /
// AntiEntropyQuery) including the version-mismatch rejection path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "api/mservice.h"
#include "net/builders.h"
#include "obs/obs.h"
#include "sim/scenario.h"

namespace tamp {
namespace {

// --- registry --------------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAcrossReset) {
  obs::MetricsRegistry registry;
  obs::Counter* counter =
      registry.counter(obs::Protocol::kHier, "updates_sent", 7);
  counter->add(3);
  EXPECT_EQ(registry.counter_value(obs::Protocol::kHier, "updates_sent", 7),
            3u);

  registry.reset();
  EXPECT_EQ(registry.counter_value(obs::Protocol::kHier, "updates_sent", 7),
            0u);
  counter->add();  // same handle keeps recording into the same cell
  EXPECT_EQ(registry.counter_value(obs::Protocol::kHier, "updates_sent", 7),
            1u);

  // Resolution is idempotent: same key, same cell.
  EXPECT_EQ(registry.counter(obs::Protocol::kHier, "updates_sent", 7),
            counter);
}

TEST(MetricsRegistry, ResetIsScopedToOneProtocol) {
  obs::MetricsRegistry registry;
  registry.counter(obs::Protocol::kNet, "tx_messages", 1)->add(5);
  registry.counter(obs::Protocol::kHier, "updates_sent", 1)->add(7);
  registry.reset(obs::Protocol::kNet);
  EXPECT_EQ(registry.counter_value(obs::Protocol::kNet, "tx_messages", 1), 0u);
  EXPECT_EQ(registry.counter_value(obs::Protocol::kHier, "updates_sent", 1),
            7u);
}

TEST(MetricsRegistry, AggregationExcludesTheNoNodeCell) {
  obs::MetricsRegistry registry;
  registry.counter(obs::Protocol::kNet, "tx_messages", 1)->add(2);
  registry.counter(obs::Protocol::kNet, "tx_messages", 2)->add(3);
  registry.counter(obs::Protocol::kNet, "tx_messages")->add(5);  // aggregate
  EXPECT_EQ(
      registry.counter_sum_over_nodes(obs::Protocol::kNet, "tx_messages"),
      5u);
  EXPECT_EQ(registry.counter_value(obs::Protocol::kNet, "tx_messages"), 5u);
}

TEST(MetricsRegistry, PrefixSumDecomposesAFamily) {
  obs::MetricsRegistry registry;
  registry.counter(obs::Protocol::kNet, "tx_kind_heartbeat")->add(4);
  registry.counter(obs::Protocol::kNet, "tx_kind_update")->add(6);
  registry.counter(obs::Protocol::kNet, "tx_messages")->add(10);
  EXPECT_EQ(registry.counter_prefix_sum(obs::Protocol::kNet, "tx_kind_"),
            10u);
}

TEST(MetricsRegistry, VisitIsSortedAndIncludesZeroCells) {
  obs::MetricsRegistry registry;
  registry.counter(obs::Protocol::kHier, "b_metric", 2);
  registry.counter(obs::Protocol::kHier, "a_metric", 1)->add(1);
  registry.counter(obs::Protocol::kNet, "z_metric", 0);

  std::vector<std::string> order;
  registry.visit_counters([&](const obs::MetricsRegistry::CounterRow& row) {
    order.push_back(std::string(obs::protocol_name(row.protocol)) + "/" +
                    std::string(row.name));
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "net/z_metric");  // kNet sorts before kHier
  EXPECT_EQ(order[1], "hier/a_metric");
  EXPECT_EQ(order[2], "hier/b_metric");
}

TEST(MetricsRegistry, DisabledRegistryDropsWritesAndReportsNothing) {
  obs::MetricsRegistry registry;
  registry.set_enabled(false);
  obs::Counter* counter =
      registry.counter(obs::Protocol::kGossip, "gossips_sent", 3);
  counter->add(9);
  EXPECT_EQ(registry.counter_value(obs::Protocol::kGossip, "gossips_sent", 3),
            0u);
  size_t rows = 0;
  registry.visit_counters(
      [&](const obs::MetricsRegistry::CounterRow&) { ++rows; });
  EXPECT_EQ(rows, 0u);
}

// --- tracer ----------------------------------------------------------------

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  obs::Tracer tracer;
  tracer.record(obs::TraceKind::kDeltaEmit, 1, 100);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, KindsMaskFiltersAtRecordTime) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_kinds_mask(obs::trace_bit(obs::TraceKind::kEpochMint));
  tracer.record(obs::TraceKind::kEpochMint, 1, 100, 0, 42);
  tracer.record(obs::TraceKind::kDeltaEmit, 1, 100);
  ASSERT_EQ(tracer.recorded(), 1u);
  EXPECT_EQ(tracer.events().front().kind, obs::TraceKind::kEpochMint);
  EXPECT_EQ(tracer.events().front().a, 42u);
}

TEST(Tracer, RingEvictsOldestBeyondCapacity) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(4);
  for (int i = 0; i < 6; ++i) {
    tracer.record(obs::TraceKind::kFault, obs::kNoNode, i);
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.overwritten(), 2u);
  ASSERT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events().front().at, 2);  // the two oldest were evicted
}

TEST(Tracer, JsonlIsOneEventPerLine) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(obs::TraceKind::kCoordinator, 5, 1000, 2, 9, 0);
  tracer.record(obs::TraceKind::kFault, obs::kNoNode, 2000);
  std::string jsonl = tracer.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"coordinator\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"node\":-1"), std::string::npos);  // kNoNode
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

// --- trace determinism through the scenario runner ------------------------

chaos::ScenarioSpec traced_spec(uint64_t seed) {
  chaos::ScenarioSpec spec;
  spec.scheme = protocols::Scheme::kHierarchical;
  spec.shape = chaos::ShapeKind::kRacked;
  spec.plan = chaos::PlanKind::kLeaderKill;
  spec.seed = seed;
  spec.trace = true;
  spec.metrics = true;
  return spec;
}

TEST(TraceDeterminism, SameSeedRunsProduceByteIdenticalArtifacts) {
  chaos::ScenarioResult first = chaos::run_scenario(traced_spec(3));
  chaos::ScenarioResult second = chaos::run_scenario(traced_spec(3));
  ASSERT_TRUE(first.passed) << first.report;
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
  ASSERT_FALSE(first.metrics_json.empty());
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(TraceDeterminism, DifferentSeedsDiverge) {
  chaos::ScenarioResult a = chaos::run_scenario(traced_spec(3));
  chaos::ScenarioResult b = chaos::run_scenario(traced_spec(4));
  EXPECT_NE(a.trace_jsonl, b.trace_jsonl);
}

TEST(TraceDeterminism, KindsMaskRestrictsTheArtifact) {
  chaos::ScenarioSpec spec = traced_spec(3);
  spec.trace_kinds_mask = obs::trace_bit(obs::TraceKind::kFault);
  chaos::ScenarioResult result = chaos::run_scenario(spec);
  ASSERT_FALSE(result.trace_jsonl.empty());
  EXPECT_EQ(result.trace_jsonl.find("\"kind\":\"delta_emit\""),
            std::string::npos);
  EXPECT_NE(result.trace_jsonl.find("\"kind\":\"fault\""), std::string::npos);
}

// The runner grades the registry's conservation identities on every run
// (per-host sums vs totals, per-kind decomposition, protocol-vs-transport
// send counts); a passing scenario certifies that no message was counted
// twice or lost from the books. Sweep one plan per scheme here — the full
// matrix in chaos_matrix_test covers the rest.
TEST(MetricsConservation, HoldsAcrossSchemesUnderChaos) {
  for (protocols::Scheme scheme :
       {protocols::Scheme::kAllToAll, protocols::Scheme::kGossip,
        protocols::Scheme::kHierarchical}) {
    chaos::ScenarioSpec spec;
    spec.scheme = scheme;
    spec.shape = chaos::ShapeKind::kRacked;
    spec.plan = chaos::PlanKind::kCrashRestart;
    spec.seed = 2;
    chaos::ScenarioResult result = chaos::run_scenario(spec);
    EXPECT_TRUE(result.passed) << result.name << "\n" << result.report;
    EXPECT_EQ(result.report.find("metrics-conservation"), std::string::npos)
        << result.report;
  }
}

// --- control surface (v4) --------------------------------------------------

class ControlObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    layout = net::build_single_segment(topo, 4);
    net = std::make_unique<net::Network>(sim, topo);
    service = std::make_unique<api::MService>(
        sim, *net, store, layout.hosts[0], api::MembershipConfig{});
  }

  sim::Simulation sim{17};
  net::Topology topo;
  net::ClusterLayout layout;
  std::unique_ptr<net::Network> net;
  api::DirectoryStore store;
  std::unique_ptr<api::MService> service;
};

TEST_F(ControlObsFixture, MetricsQueryRoundTrip) {
  ASSERT_EQ(service->run(), 0);
  sim.run_until(10 * sim::kSecond);

  api::ControlResponse response = service->control(api::MetricsQuery{});
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.version, api::kControlApiVersion);
  ASSERT_FALSE(response.metrics.empty());
  // Sorted by name, and consistent with the registry's own cells.
  for (size_t i = 1; i < response.metrics.size(); ++i) {
    EXPECT_LT(response.metrics[i - 1].name, response.metrics[i].name);
  }
  bool heartbeats_seen = false;
  for (const api::MetricValue& metric : response.metrics) {
    EXPECT_EQ(metric.value,
              net->obs().metrics.counter_value(obs::Protocol::kHier,
                                               metric.name, layout.hosts[0]));
    if (metric.name == "heartbeats_sent") {
      heartbeats_seen = true;
      EXPECT_GT(metric.value, 0u);
    }
  }
  EXPECT_TRUE(heartbeats_seen);

  // Substring filter and result cap both narrow the response.
  api::MetricsQuery filtered;
  filtered.name_filter = "heartbeats";
  api::ControlResponse narrowed = service->control(filtered);
  ASSERT_TRUE(narrowed.status.ok());
  ASSERT_FALSE(narrowed.metrics.empty());
  EXPECT_LT(narrowed.metrics.size(), response.metrics.size());
  for (const api::MetricValue& metric : narrowed.metrics) {
    EXPECT_NE(metric.name.find("heartbeats"), std::string::npos);
  }
  api::MetricsQuery capped;
  capped.max_results = 1;
  EXPECT_EQ(service->control(capped).metrics.size(), 1u);
}

TEST_F(ControlObsFixture, V2StampedRequestsAreRejected) {
  ASSERT_EQ(service->run(), 0);
  api::MetricsQuery stale_query;
  stale_query.version = 2;
  api::ControlResponse response = service->control(stale_query);
  EXPECT_FALSE(response.status.ok());
  EXPECT_NE(response.status.message().find("not supported"),
            std::string::npos);
  EXPECT_TRUE(response.metrics.empty());

  api::TraceControl stale_trace;
  stale_trace.version = 2;
  EXPECT_FALSE(service->control(stale_trace).status.ok());
  EXPECT_FALSE(net->obs().tracer.enabled());  // rejected => not applied
}

TEST_F(ControlObsFixture, MalformedObservabilityRequestsAreRejected) {
  ASSERT_EQ(service->run(), 0);
  api::MetricsQuery oversized;
  oversized.name_filter.assign(257, 'x');
  EXPECT_FALSE(service->control(oversized).status.ok());
  api::MetricsQuery zero_cap;
  zero_cap.max_results = 0;
  EXPECT_FALSE(service->control(zero_cap).status.ok());
  api::MetricsQuery huge_cap;
  huge_cap.max_results = 5000;
  EXPECT_FALSE(service->control(huge_cap).status.ok());

  api::TraceControl zero_ring;
  zero_ring.capacity = 0;
  EXPECT_FALSE(service->control(zero_ring).status.ok());
  api::TraceControl giant_ring;
  giant_ring.capacity = api::kMaxTraceCapacity + 1;
  EXPECT_FALSE(service->control(giant_ring).status.ok());
  api::TraceControl unknown_kinds;
  unknown_kinds.kinds_mask = obs::kAllTraceKinds | (obs::kAllTraceKinds + 1);
  EXPECT_FALSE(service->control(unknown_kinds).status.ok());
}

TEST_F(ControlObsFixture, MetricsQueryRequiresRunningDaemon) {
  EXPECT_FALSE(service->control(api::MetricsQuery{}).status.ok());
}

TEST_F(ControlObsFixture, AntiEntropyQueryReportsModeAndCounters) {
  ASSERT_EQ(service->run(), 0);
  sim.run_until(70 * sim::kSecond);  // past at least one refresh interval

  api::ControlResponse response = service->control(api::AntiEntropyQuery{});
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.version, api::kControlApiVersion);
  EXPECT_EQ(response.anti_entropy.mode, "full");
  // Full mode never emits digest traffic.
  EXPECT_EQ(response.anti_entropy.digests_sent, 0u);
  EXPECT_EQ(response.anti_entropy.deltas_sent, 0u);
}

TEST_F(ControlObsFixture, AntiEntropyQueryReflectsDigestMode) {
  api::MembershipConfig config;
  ASSERT_TRUE(api::MembershipConfigBuilder()
                  .anti_entropy_mode("digest")
                  .Build(&config)
                  .ok());
  api::DirectoryStore digest_store;
  api::MService digest_service(sim, *net, digest_store, layout.hosts[1],
                               config);
  ASSERT_EQ(digest_service.run(), 0);
  sim.run_until(sim.now() + 70 * sim::kSecond);

  api::ControlResponse response =
      digest_service.control(api::AntiEntropyQuery{});
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.anti_entropy.mode, "digest");
  // The lone leader on its channel has sent at least one digest round, and
  // the registry's per-node counters back every stat the response carries.
  EXPECT_GT(response.anti_entropy.digests_sent, 0u);
  EXPECT_EQ(response.anti_entropy.digests_sent,
            net->obs().metrics.counter_value(
                obs::Protocol::kHier, "digests_sent", layout.hosts[1]));
}

TEST_F(ControlObsFixture, AntiEntropyQueryVersionAndRunGates) {
  // Before run(): rejected like every daemon-backed query.
  EXPECT_FALSE(service->control(api::AntiEntropyQuery{}).status.ok());

  ASSERT_EQ(service->run(), 0);
  api::AntiEntropyQuery stale;
  stale.version = 3;
  api::ControlResponse response = service->control(stale);
  EXPECT_FALSE(response.status.ok());
  EXPECT_NE(response.status.message().find("not supported"),
            std::string::npos);
  EXPECT_TRUE(response.anti_entropy.mode.empty());  // rejected => not filled
}

TEST_F(ControlObsFixture, TraceControlDrivesTheNetworkTracer) {
  // Works before run(): the tracer lives on the Network.
  api::TraceControl control;
  control.capacity = 1024;
  control.kinds_mask = obs::trace_bit(obs::TraceKind::kGroupJoin);
  ASSERT_TRUE(service->control(control).status.ok());
  EXPECT_TRUE(net->obs().tracer.enabled());
  EXPECT_EQ(net->obs().tracer.capacity(), 1024u);

  ASSERT_EQ(service->run(), 0);
  sim.run_until(5 * sim::kSecond);
  EXPECT_GT(net->obs().tracer.recorded(), 0u);
  for (const obs::TraceEvent& event : net->obs().tracer.events()) {
    EXPECT_EQ(event.kind, obs::TraceKind::kGroupJoin);
  }

  api::TraceControl off;
  off.enable = false;
  ASSERT_TRUE(service->control(off).status.ok());
  EXPECT_FALSE(net->obs().tracer.enabled());
}

TEST(ObsConfig, BuilderValidatesObservabilityFields) {
  api::MembershipConfig config;
  EXPECT_FALSE(
      api::MembershipConfigBuilder().trace_capacity(0).Build(&config).ok());
  EXPECT_FALSE(api::MembershipConfigBuilder()
                   .trace_capacity(api::kMaxTraceCapacity + 1)
                   .Build(&config)
                   .ok());
  EXPECT_FALSE(api::MembershipConfigBuilder()
                   .trace_kinds_mask(~uint64_t{0})
                   .Build(&config)
                   .ok());
  EXPECT_TRUE(api::MembershipConfigBuilder()
                  .metrics_enabled(false)
                  .trace_capacity(4096)
                  .trace_kinds_mask(obs::trace_bit(obs::TraceKind::kFault))
                  .Build(&config)
                  .ok());
  EXPECT_FALSE(config.system.metrics_enabled);
  EXPECT_EQ(config.system.trace_capacity, 4096u);
}

TEST(ObsConfig, RunAppliesObservabilityConfigToTheNetwork) {
  sim::Simulation sim{9};
  net::Topology topo;
  auto layout = net::build_single_segment(topo, 2);
  net::Network net(sim, topo);
  api::DirectoryStore store;

  api::MembershipConfig config;
  api::MembershipConfigBuilder builder;
  ASSERT_TRUE(builder.metrics_enabled(false)
                  .trace_capacity(2048)
                  .trace_kinds_mask(obs::trace_bit(obs::TraceKind::kGroupJoin))
                  .Build(&config)
                  .ok());
  api::MService service(sim, net, store, layout.hosts[0], std::move(config));
  ASSERT_EQ(service.run(), 0);
  EXPECT_FALSE(net.obs().metrics.enabled());
  EXPECT_EQ(net.obs().tracer.capacity(), 2048u);
  EXPECT_EQ(net.obs().tracer.kinds_mask(),
            obs::trace_bit(obs::TraceKind::kGroupJoin));
  sim.run_until(5 * sim::kSecond);
  EXPECT_EQ(net.obs().metrics.counter_value(obs::Protocol::kHier,
                                            "heartbeats_sent",
                                            layout.hosts[0]),
            0u);  // disabled registry: daemon writes land in scratch
}

}  // namespace
}  // namespace tamp
