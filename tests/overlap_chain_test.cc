// Overlap stress: on a router chain, TTL groups at every intermediate
// level overlap (each node's audible set is a window of the chain). The
// formation, election-suppression, update relay, and failure paths must
// all hold — this is the paper's "other topologies" case (Sec. 3.1.1)
// pushed far beyond the Figure-4 example.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

using Param = std::tuple<int /*segments*/, int /*hosts*/, uint64_t /*seed*/>;

class OverlapChain : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto& [segments, hosts, seed] = GetParam();
    sim_ = std::make_unique<sim::Simulation>(seed);
    layout_ = net::build_router_chain(topo_, segments, hosts);
    net_ = std::make_unique<net::Network>(*sim_, topo_);
    Cluster::Options opts;
    opts.scheme = Scheme::kHierarchical;
    opts.hier.max_ttl = topo_.max_ttl();
    cluster_ = std::make_unique<Cluster>(*sim_, *net_, layout_.hosts, opts);
  }

  std::unique_ptr<sim::Simulation> sim_;
  net::Topology topo_;
  net::ClusterLayout layout_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_P(OverlapChain, ChainDistances) {
  const auto& [segments, hosts, seed] = GetParam();
  (void)hosts;
  (void)seed;
  // ttl(i, j) = |i - j| + 2 across segments, 1 within.
  for (int i = 0; i < segments; ++i) {
    for (int j = 0; j < segments; ++j) {
      int expected = i == j ? 1 : std::abs(i - j) + 2;
      EXPECT_EQ(topo_.ttl_required(layout_.racks[static_cast<size_t>(i)][0],
                                   layout_.racks[static_cast<size_t>(j)][0]),
                layout_.racks[static_cast<size_t>(i)][0] ==
                        layout_.racks[static_cast<size_t>(j)][0]
                    ? 0
                    : expected);
    }
  }
}

TEST_P(OverlapChain, ConvergesDespiteOverlappingGroups) {
  cluster_->start_all();
  sim_->run_until(30 * sim::kSecond);
  EXPECT_TRUE(cluster_->converged())
      << cluster_->converged_count() << "/" << cluster_->size();
}

TEST_P(OverlapChain, LeaderInvariantHoldsOnEveryChannel) {
  cluster_->start_all();
  sim_->run_until(30 * sim::kSecond);
  ASSERT_TRUE(cluster_->converged());

  // Paper: "a group leader cannot see other leaders at the same level."
  const int max_ttl = topo_.max_ttl();
  for (int level = 0; level < max_ttl; ++level) {
    for (size_t i = 0; i < cluster_->size(); ++i) {
      auto* a = cluster_->hier_daemon(i);
      if (!a->is_leader(level)) continue;
      for (size_t j = i + 1; j < cluster_->size(); ++j) {
        auto* b = cluster_->hier_daemon(j);
        if (!b->is_leader(level)) continue;
        EXPECT_GT(topo_.ttl_required(a->self(), b->self()), level + 1)
            << "level " << level << " leaders " << a->self() << ", "
            << b->self() << " within earshot";
      }
    }
  }
}

TEST_P(OverlapChain, EndToEndFailurePropagation) {
  const auto& [segments, hosts, seed] = GetParam();
  (void)seed;
  cluster_->start_all();
  sim_->run_until(30 * sim::kSecond);
  ASSERT_TRUE(cluster_->converged());

  // Kill a non-leader at one end; the far end must learn of it.
  net::HostId victim = layout_.racks[0].back();
  if (hosts == 1) return;  // every node is a leader; covered elsewhere
  size_t victim_index = static_cast<size_t>(
      std::find(layout_.hosts.begin(), layout_.hosts.end(), victim) -
      layout_.hosts.begin());
  cluster_->kill(victim_index);
  sim_->run_until(sim_->now() + 25 * sim::kSecond);

  EXPECT_TRUE(cluster_->converged());
  net::HostId far = layout_.racks.back().back();
  EXPECT_FALSE(cluster_->daemon_for(far)->table().contains(victim));
}

std::string chain_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [segments, hosts, seed] = info.param;
  return "c" + std::to_string(segments) + "x" + std::to_string(hosts) +
         "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Chains, OverlapChain,
                         ::testing::Values(Param{2, 3, 1}, Param{3, 2, 2},
                                           Param{4, 3, 3}, Param{5, 2, 4},
                                           Param{6, 2, 5}),
                         chain_name);

}  // namespace
}  // namespace tamp::protocols
