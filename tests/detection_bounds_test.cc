// Property sweep: the detection-time bound of the heartbeat-based schemes
// (detection within [k-1, k+1] heartbeat periods of the failure) must hold
// across cluster shapes, loss-tolerance settings, and heartbeat rates —
// the quantity Section 4's analysis calls T_detect = k / f.
#include <gtest/gtest.h>

#include <tuple>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

using Param = std::tuple<Scheme, int /*max_losses*/, double /*freq hz*/,
                         uint64_t /*seed*/>;

class DetectionBounds : public ::testing::TestWithParam<Param> {};

TEST_P(DetectionBounds, DetectionWithinAnalyticalBound) {
  const auto& [scheme, max_losses, freq, seed] = GetParam();
  sim::Simulation sim(seed);
  net::Topology topo;
  net::RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 8;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);

  const auto period =
      static_cast<sim::Duration>(1e9 / freq);
  Cluster::Options opts;
  opts.scheme = scheme;
  opts.alltoall.period = period;
  opts.alltoall.max_losses = max_losses;
  opts.hier.period = period;
  opts.hier.max_losses = max_losses;
  // Formation phases scale with the heartbeat period.
  opts.hier.join_listen = 3 * period;
  Cluster cluster(sim, net, layout.hosts, opts);

  net::HostId victim = layout.hosts[12];
  sim::Time first = -1;
  cluster.set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject == victim && !alive && first < 0) first = when;
      });

  cluster.start_all();
  sim.run_until(20 * period + 10 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  const sim::Time killed_at = sim.now();
  cluster.kill(12);
  sim.run_until(killed_at + (max_losses + 5) * period + 5 * sim::kSecond);

  ASSERT_GE(first, 0);
  const double detection_periods =
      static_cast<double>(first - killed_at) / static_cast<double>(period);
  // Analysis: T_detect = k/f. Allow one period of phase slack either way
  // plus the scan granularity.
  EXPECT_GE(detection_periods, static_cast<double>(max_losses) - 1.1);
  EXPECT_LE(detection_periods, static_cast<double>(max_losses) + 1.1);
  EXPECT_TRUE(cluster.converged());
}

std::string bound_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [scheme, k, freq, seed] = info.param;
  std::string name = scheme == Scheme::kAllToAll ? "a2a" : "hier";
  return name + "_k" + std::to_string(k) + "_f" +
         std::to_string(static_cast<int>(freq * 10)) + "_s" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetectionBounds,
    ::testing::Combine(
        ::testing::Values(Scheme::kAllToAll, Scheme::kHierarchical),
        ::testing::Values(3, 5, 8),
        ::testing::Values(0.5, 1.0, 2.0),
        ::testing::Values(6u, 7u)),
    bound_name);

}  // namespace
}  // namespace tamp::protocols
