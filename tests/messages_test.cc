#include <gtest/gtest.h>

#include "membership/codec.h"
#include "membership/messages.h"

namespace tamp::membership {
namespace {

template <typename T>
T round_trip(const T& msg, size_t pad = 0) {
  auto payload = encode_message(Message{msg}, pad);
  auto decoded = decode_message(payload->data(), payload->size());
  EXPECT_TRUE(decoded.has_value());
  auto* typed = std::get_if<T>(&*decoded);
  EXPECT_NE(typed, nullptr);
  return *typed;
}

TEST(Messages, HeartbeatRoundTrip) {
  HeartbeatMsg msg;
  msg.entry = make_representative_entry(12, 4);
  msg.level = 2;
  msg.is_leader = true;
  msg.backup = 99;
  msg.seq = 12345;
  msg.epoch = 7;
  auto out = round_trip(msg);
  EXPECT_EQ(out.entry, msg.entry);
  EXPECT_EQ(out.level, 2);
  EXPECT_TRUE(out.is_leader);
  EXPECT_EQ(out.backup, 99u);
  EXPECT_EQ(out.seq, 12345u);
  EXPECT_EQ(out.epoch, 7u);
}

TEST(Messages, HeartbeatPadding) {
  HeartbeatMsg msg;
  msg.entry = make_representative_entry(1);
  auto payload = encode_message(Message{msg}, 512);
  EXPECT_EQ(payload->size(), 512u);
  auto decoded = decode_message(payload->data(), payload->size());
  ASSERT_TRUE(decoded.has_value());  // trailing zeros are ignored
  EXPECT_TRUE(std::holds_alternative<HeartbeatMsg>(*decoded));
}

TEST(Messages, UpdateRoundTrip) {
  UpdateMsg msg;
  msg.origin = 3;
  msg.epoch = 5;
  msg.window_base = 9;
  UpdateRecord join;
  join.seq = 10;
  join.kind = UpdateKind::kJoin;
  join.subject = 7;
  join.incarnation = 2;
  join.entry = make_representative_entry(7, 2);
  UpdateRecord leave;
  leave.seq = 11;
  leave.kind = UpdateKind::kLeave;
  leave.subject = 8;
  leave.incarnation = 1;
  leave.epoch = 4;
  msg.records = {join, leave};

  auto out = round_trip(msg);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.origin, 3u);
  EXPECT_EQ(out.epoch, 5u);
  EXPECT_EQ(out.window_base, 9u);
  EXPECT_EQ(out.records[0].kind, UpdateKind::kJoin);
  ASSERT_TRUE(out.records[0].entry.has_value());
  EXPECT_EQ(*out.records[0].entry, *join.entry);
  EXPECT_EQ(out.records[1].kind, UpdateKind::kLeave);
  EXPECT_FALSE(out.records[1].entry.has_value());
  EXPECT_EQ(out.records[1].seq, 11u);
  EXPECT_EQ(out.records[1].epoch, 4u);
}

TEST(Messages, BootstrapRoundTrip) {
  BootstrapRequestMsg request;
  request.requester = 5;
  request.epoch = 3;
  request.known = {make_representative_entry(5), make_representative_entry(6)};
  auto req_out = round_trip(request);
  EXPECT_EQ(req_out.requester, 5u);
  EXPECT_EQ(req_out.epoch, 3u);
  EXPECT_EQ(req_out.known.size(), 2u);

  BootstrapResponseMsg response;
  response.responder = 1;
  response.responder_incarnation = 4;
  response.epoch = 9;
  for (NodeId n = 0; n < 20; ++n) {
    response.entries.push_back(make_representative_entry(n));
  }
  auto resp_out = round_trip(response);
  EXPECT_EQ(resp_out.responder_incarnation, 4u);
  EXPECT_EQ(resp_out.entries.size(), 20u);
  EXPECT_EQ(resp_out.entries[19], response.entries[19]);
  EXPECT_EQ(resp_out.epoch, 9u);
}

TEST(Messages, SyncRoundTrip) {
  SyncRequestMsg request{42, 2, 1000, 6};
  auto req_out = round_trip(request);
  EXPECT_EQ(req_out.requester, 42u);
  EXPECT_EQ(req_out.level, 2);
  EXPECT_EQ(req_out.last_seq_seen, 1000u);
  EXPECT_EQ(req_out.epoch, 6u);

  SyncResponseMsg response;
  response.responder = 1;
  response.level = 2;
  response.stream_seq = 1010;
  response.epoch = 8;
  response.entries = {make_representative_entry(3)};
  auto resp_out = round_trip(response);
  EXPECT_EQ(resp_out.stream_seq, 1010u);
  EXPECT_EQ(resp_out.epoch, 8u);
  ASSERT_EQ(resp_out.entries.size(), 1u);
}

TEST(Messages, ElectionRoundTrips) {
  auto election = round_trip(ElectionMsg{9, 1});
  EXPECT_EQ(election.candidate, 9u);
  EXPECT_EQ(election.level, 1);

  auto answer = round_trip(ElectionAnswerMsg{4, 2});
  EXPECT_EQ(answer.responder, 4u);

  CoordinatorMsg announce{2, 0, 17};
  announce.epoch = 12;
  announce.prev = 6;  // succession record: node 6's reign <= 11 is fenced
  announce.leader_incarnation = 3;
  announce.prev_incarnation = 2;  // ...but only node 6's second life
  auto coordinator = round_trip(announce);
  EXPECT_EQ(coordinator.leader, 2u);
  EXPECT_EQ(coordinator.backup, 17u);
  EXPECT_EQ(coordinator.epoch, 12u);
  EXPECT_EQ(coordinator.prev, 6u);
  EXPECT_EQ(coordinator.leader_incarnation, 3u);
  EXPECT_EQ(coordinator.prev_incarnation, 2u);

  // Default-constructed succession fields survive the trip too.
  auto bare = round_trip(CoordinatorMsg{2, 0, 17});
  EXPECT_EQ(bare.epoch, 0u);
  EXPECT_EQ(bare.prev, kInvalidNode);
  EXPECT_EQ(bare.leader_incarnation, 0u);
  EXPECT_EQ(bare.prev_incarnation, 0u);
}

TEST(Messages, BusyRoundTrip) {
  BusyMsg msg;
  msg.responder = 21;
  msg.level = 1;
  msg.kind = BusyKind::kSync;
  msg.retry_after = 1500000000;  // 1.5 s in ns
  auto out = round_trip(msg);
  EXPECT_EQ(out.responder, 21u);
  EXPECT_EQ(out.level, 1);
  EXPECT_EQ(out.kind, BusyKind::kSync);
  EXPECT_EQ(out.retry_after, 1500000000);

  // An out-of-range deferral kind is rejected, not misparsed.
  auto payload = encode_message(Message{msg});
  auto decoded = decode_message(payload->data(), payload->size());
  ASSERT_TRUE(decoded.has_value());
  std::vector<uint8_t> bad(*payload);
  bad[2 + 4 + 1] = 99;  // version, type, responder u32, level u8 -> kind
  EXPECT_FALSE(decode_message(bad.data(), bad.size()).has_value());
}

TEST(Messages, VersionByteGatesDecoding) {
  HeartbeatMsg msg;
  msg.entry = make_representative_entry(1);
  auto payload = encode_message(Message{msg});
  ASSERT_FALSE(payload->empty());
  // Every frame leads with the tagged version byte.
  EXPECT_EQ((*payload)[0], kWireVersionByte);

  // A frame claiming any other version is rejected, not misparsed.
  for (int version = 0; version <= 0x0f; ++version) {
    if ((kWireVersionTag | version) == kWireVersionByte) continue;
    std::vector<uint8_t> other(*payload);
    other[0] = static_cast<uint8_t>(kWireVersionTag | version);
    EXPECT_FALSE(decode_message(other.data(), other.size()).has_value());
  }
}

TEST(Messages, EpochlessV1FramesRejectedNeverMisparsed) {
  // v1 frames began with the bare MessageType byte (1..12); the version tag
  // 0xA0 is disjoint from that range, so every old frame fails the gate
  // cleanly instead of decoding with garbage epochs.
  HeartbeatMsg msg;
  msg.entry = make_representative_entry(1);
  auto payload = encode_message(Message{msg});
  for (uint8_t type = 0; type <= 12; ++type) {
    std::vector<uint8_t> v1(payload->begin() + 1, payload->end());
    v1.insert(v1.begin(), type);  // what a v1 sender would have led with
    EXPECT_FALSE(decode_message(v1.data(), v1.size()).has_value());
  }
}

TEST(Messages, GossipRoundTripAndSizeScalesWithView) {
  GossipMsg small;
  small.sender = 1;
  small.records.push_back({make_representative_entry(1), 10});
  auto small_payload = encode_message(Message{small});

  GossipMsg big = small;
  for (NodeId n = 2; n <= 50; ++n) {
    big.records.push_back({make_representative_entry(n), 5});
  }
  auto big_payload = encode_message(Message{big});

  // Gossip messages carry the whole view: size grows ~linearly with n —
  // the reason the paper's Figure 11 shows quadratic aggregate bandwidth.
  EXPECT_GT(big_payload->size(), 40 * small_payload->size());

  auto out = round_trip(big);
  EXPECT_EQ(out.records.size(), 50u);
  EXPECT_EQ(out.records[49].heartbeat_counter, 5u);
}

TEST(Messages, ProxyRoundTrip) {
  ProxyHeartbeatMsg msg;
  msg.dc = 1;
  msg.sender = 77;
  msg.seq = 5;
  msg.summary.availability["index"][0] = 3;
  msg.summary.availability["index"][1] = 2;
  msg.summary.availability["doc"][2] = 1;
  auto out = round_trip(msg);
  EXPECT_EQ(out.dc, 1);
  EXPECT_EQ(out.summary, msg.summary);

  ProxyUpdateMsg update;
  update.dc = 2;
  update.sender = 9;
  update.seq = 6;
  update.summary.availability["cache"][0] = 4;
  auto update_out = round_trip(update);
  EXPECT_EQ(update_out.summary, update.summary);
}

TEST(Messages, ProxySummaryMuchSmallerThanFullEntries) {
  // "The summary does not include the detailed machine information" — check
  // the encoded summary for 100 nodes is far smaller than 100 entries.
  ProxyHeartbeatMsg summary_msg;
  summary_msg.dc = 0;
  for (int p = 0; p < 5; ++p) summary_msg.summary.availability["index"][p] = 20;
  auto summary_payload = encode_message(Message{summary_msg});

  BootstrapResponseMsg full;
  full.responder = 0;
  for (NodeId n = 0; n < 100; ++n) {
    full.entries.push_back(make_representative_entry(n));
  }
  auto full_payload = encode_message(Message{full});
  EXPECT_LT(summary_payload->size() * 50, full_payload->size());
}

TEST(Messages, RefreshDigestRoundTrip) {
  RefreshDigestMsg msg;
  msg.origin = 40;
  msg.origin_incarnation = 3;
  msg.level = 2;
  msg.epoch = 19;
  msg.subtree = true;
  msg.view_hash = 0xdeadbeefcafef00dULL;
  msg.buckets = {1, 0, 0xffffffffffffffffULL, 42};
  msg.subjects = {0, 7, 40, 41, 59, 4000000000u};  // sparse ids survive
  msg.row_count = static_cast<uint32_t>(msg.subjects.size());
  auto out = round_trip(msg);
  EXPECT_EQ(out.origin, 40u);
  EXPECT_EQ(out.origin_incarnation, 3u);
  EXPECT_EQ(out.level, 2);
  EXPECT_EQ(out.epoch, 19u);
  EXPECT_TRUE(out.subtree);
  EXPECT_EQ(out.row_count, 6u);
  EXPECT_EQ(out.view_hash, msg.view_hash);
  EXPECT_EQ(out.buckets, msg.buckets);
  EXPECT_EQ(out.subjects, msg.subjects);

  // Downward full-view digest: no scope list, row_count free-standing.
  RefreshDigestMsg down;
  down.origin = 2;
  down.row_count = 5000;
  down.buckets.assign(16, 9);
  auto down_out = round_trip(down);
  EXPECT_FALSE(down_out.subtree);
  EXPECT_EQ(down_out.row_count, 5000u);
  EXPECT_TRUE(down_out.subjects.empty());
}

TEST(Messages, RefreshDigestScopeListValidated) {
  RefreshDigestMsg msg;
  msg.origin = 1;
  msg.subtree = true;
  msg.buckets = {7};
  msg.subjects = {4, 9};
  msg.row_count = 2;
  // Baseline sanity: the valid form decodes.
  (void)round_trip(msg);

  // A scope list on a downward digest is malformed.
  RefreshDigestMsg down = msg;
  down.subtree = false;
  auto payload = encode_message(Message{down});
  EXPECT_FALSE(decode_message(payload->data(), payload->size()).has_value());

  // row_count must match the scope list length on subtree digests.
  RefreshDigestMsg short_count = msg;
  short_count.row_count = 1;
  payload = encode_message(Message{short_count});
  EXPECT_FALSE(decode_message(payload->data(), payload->size()).has_value());

  // Non-ascending ids produce a zero delta on the wire — rejected.
  RefreshDigestMsg dup = msg;
  dup.subjects = {4, 4};
  payload = encode_message(Message{dup});
  EXPECT_FALSE(decode_message(payload->data(), payload->size()).has_value());
}

TEST(Messages, RefreshPullRoundTrip) {
  RefreshPullMsg msg;
  msg.requester = 86;
  msg.level = 1;
  msg.epoch = 4;
  msg.subtree = true;
  msg.bucket_indices = {0, 3, 15};
  msg.rows = {DigestRowSummary{12, 2, 0x1111},
              DigestRowSummary{77, 9, 0x2222}};
  auto out = round_trip(msg);
  EXPECT_EQ(out.requester, 86u);
  EXPECT_EQ(out.level, 1);
  EXPECT_EQ(out.epoch, 4u);
  EXPECT_TRUE(out.subtree);
  EXPECT_EQ(out.bucket_indices, msg.bucket_indices);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[1].subject, 77u);
  EXPECT_EQ(out.rows[1].incarnation, 9u);
  EXPECT_EQ(out.rows[1].row_hash, 0x2222u);
}

TEST(Messages, RefreshDeltaRoundTrip) {
  RefreshDeltaMsg msg;
  msg.responder = 23;
  msg.responder_incarnation = 5;
  msg.level = 1;
  msg.epoch = 11;
  msg.truncated = true;
  msg.entries = {make_representative_entry(30, 1),
                 make_representative_entry(31, 2)};
  msg.confirmed = {24, 25, 39};
  auto out = round_trip(msg);
  EXPECT_EQ(out.responder, 23u);
  EXPECT_EQ(out.responder_incarnation, 5u);
  EXPECT_EQ(out.epoch, 11u);
  EXPECT_TRUE(out.truncated);
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0], msg.entries[0]);
  EXPECT_EQ(out.entries[1], msg.entries[1]);
  EXPECT_EQ(out.confirmed, msg.confirmed);
}

TEST(Messages, DigestRowHashIgnoresLocalSoftState) {
  // The hash covers replicated content only — two holders with different
  // soft state (liveness, provenance, timestamps live outside EntryData)
  // must agree, or steady-state digests would never match.
  EntryData a = make_representative_entry(9, 3);
  EntryData b = a;
  EXPECT_EQ(digest_row_hash(a), digest_row_hash(b));
  b.incarnation++;
  EXPECT_NE(digest_row_hash(a), digest_row_hash(b));
  b = a;
  b.values["load"] = "0.7";
  EXPECT_NE(digest_row_hash(a), digest_row_hash(b));
  EXPECT_NE(digest_row_hash(a), 0u);  // zero is reserved (XOR-invisible)
}

TEST(Messages, MalformedInputsRejected) {
  EXPECT_FALSE(decode_message(nullptr, 0).has_value());
  uint8_t unknown_version[] = {0xee, 1, 2, 3};
  EXPECT_FALSE(
      decode_message(unknown_version, sizeof(unknown_version)).has_value());
  uint8_t unknown_type[] = {kWireVersionByte, 0xee, 1, 2, 3};
  EXPECT_FALSE(decode_message(unknown_type, sizeof(unknown_type)).has_value());
  uint8_t bad_kind[] = {kWireVersionByte,
                        2 /*kUpdate*/,
                        1, 0, 0, 0 /*origin*/,
                        0, 0, 0, 0, 0, 0, 0, 0 /*origin incarnation*/,
                        0 /*epoch varint*/,
                        0 /*window_base varint*/,
                        1 /*count varint*/,
                        0, 0, 0, 0, 0, 0, 0, 0 /*seq*/,
                        99 /*bad kind*/};
  EXPECT_FALSE(decode_message(bad_kind, sizeof(bad_kind)).has_value());
}

TEST(Messages, TruncationNeverCrashes) {
  HeartbeatMsg msg;
  msg.entry = make_representative_entry(1);
  auto payload = encode_message(Message{msg});
  for (size_t cut = 1; cut < payload->size(); ++cut) {
    (void)decode_message(payload->data(), cut);  // must not crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace tamp::membership
