#include <gtest/gtest.h>

#include <cmath>

#include "net/builders.h"
#include "protocols/cluster.h"

namespace tamp::protocols {
namespace {

struct GossipFixture : public ::testing::Test {
  sim::Simulation sim{11};
  net::Topology topo;

  Cluster::Options options() {
    Cluster::Options opts;
    opts.scheme = Scheme::kGossip;
    return opts;
  }
};

TEST_F(GossipFixture, ViewsFillInFromSeeds) {
  auto layout = net::build_single_segment(topo, 16);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  // Each node starts with 3 seeds; epidemic spread completes in O(log n).
  sim.run_until(15 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

TEST_F(GossipFixture, AdaptiveTfailGrowsWithViewSize) {
  auto layout = net::build_single_segment(topo, 32);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  auto* daemon = static_cast<GossipDaemon*>(&cluster.daemon(0));
  sim::Duration tfail32 = daemon->effective_tfail();
  // c0 + c1 * log2(32) periods.
  double expected = (5.5 + 1.75 * 5.0) * 1e9;
  EXPECT_NEAR(static_cast<double>(tfail32), expected, 1e6);
}

TEST_F(GossipFixture, FailureEventuallyDetectedEverywhere) {
  auto layout = net::build_single_segment(topo, 12);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());

  net::HostId victim = layout.hosts[5];
  sim::Time first = -1, last = -1;
  int leave_events = 0;
  cluster.set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        if (subject == victim && !alive) {
          if (first < 0) first = when;
          last = when;
          ++leave_events;
        }
      });
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  const sim::Time kill_at = sim.now();
  cluster.kill(5);
  sim.run_until(kill_at + 60 * sim::kSecond);

  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(leave_events, 11);  // every survivor notices exactly once
  // Detection takes at least tfail (~11.8 s at n=12) — much slower than the
  // heartbeat schemes, as the paper's Figure 12 shows.
  EXPECT_GE(first - kill_at, 10 * sim::kSecond);
  EXPECT_LE(last - kill_at, 45 * sim::kSecond);
}

TEST_F(GossipFixture, DeadNodeIsNotResurrectedByStaleGossip) {
  auto layout = net::build_single_segment(topo, 8);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());

  net::HostId victim = layout.hosts[2];
  int rejoin_events = 0;
  cluster.set_change_listener(
      [&](membership::NodeId subject, bool alive, sim::Time when) {
        (void)when;
        if (subject == victim && alive && when > 30 * sim::kSecond) {
          ++rejoin_events;
        }
      });
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  cluster.kill(2);
  sim.run_until(120 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(rejoin_events, 0);
}

TEST_F(GossipFixture, GossipMessagesCarryFullView) {
  auto layout = net::build_single_segment(topo, 24);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);
  net.obs().metrics.reset(obs::Protocol::kNet);
  sim.run_until(30 * sim::kSecond);
  // Aggregate bytes per second ~ n * (n * entry_size): with n=24 and ~230 B
  // entries each message is ~5.5 KB; 24 msg/s -> ~130 KB/s.
  double bytes_per_sec =
      static_cast<double>(net.obs().metrics.counter_value(
          obs::Protocol::kNet, "rx_wire_bytes")) /
      10.0;
  EXPECT_GT(bytes_per_sec, 80e3);
  EXPECT_LT(bytes_per_sec, 250e3);
}

TEST_F(GossipFixture, WorksAcrossRoutedTopology) {
  // Gossip is topology-oblivious: unicast works across routers unchanged.
  net::RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 5;
  auto layout = net::build_racked_cluster(topo, params);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(20 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
}

TEST_F(GossipFixture, RestartWithHigherIncarnationRejoins) {
  auto layout = net::build_single_segment(topo, 8);
  net::Network net(sim, topo);
  Cluster cluster(sim, net, layout.hosts, options());
  cluster.start_all();
  sim.run_until(15 * sim::kSecond);
  cluster.kill(3);
  sim.run_until(80 * sim::kSecond);
  ASSERT_TRUE(cluster.converged());

  cluster.restart(3);
  sim.run_until(120 * sim::kSecond);
  EXPECT_TRUE(cluster.converged());
  const auto* entry = cluster.daemon(0).table().find(layout.hosts[3]);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->data.incarnation, 2u);
}

}  // namespace
}  // namespace tamp::protocols
