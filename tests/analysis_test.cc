#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cost_model.h"
#include "analysis/models.h"

namespace tamp::analysis {
namespace {

ModelParams at(double n) {
  ModelParams p;
  p.n = n;
  return p;
}

TEST(Models, TreeHeight) {
  EXPECT_DOUBLE_EQ(tree_height(10, 20), 1.0);
  EXPECT_DOUBLE_EQ(tree_height(100, 20), 2.0);
  EXPECT_DOUBLE_EQ(tree_height(4000, 20), 3.0);
}

TEST(Models, GroupCount) {
  // Paper: (n-1)/(g-1).
  EXPECT_NEAR(group_count(100, 20), 99.0 / 19.0, 1e-12);
}

TEST(Models, BandwidthOrdering) {
  // Hierarchical must use the least bandwidth; gossip and all-to-all are
  // both quadratic (Figure 11's message).
  for (double n : {40.0, 100.0, 1000.0}) {
    ModelParams p = at(n);
    EXPECT_LT(hier_bandwidth(p), a2a_bandwidth(p));
    EXPECT_LT(hier_bandwidth(p), gossip_bandwidth(p));
  }
}

TEST(Models, A2aAndGossipQuadraticHierLinear) {
  double a2a_ratio = a2a_bandwidth(at(200)) / a2a_bandwidth(at(100));
  double gossip_ratio = gossip_bandwidth(at(200)) / gossip_bandwidth(at(100));
  double hier_ratio = hier_bandwidth(at(200)) / hier_bandwidth(at(100));
  EXPECT_NEAR(a2a_ratio, 4.0, 0.1);
  EXPECT_NEAR(gossip_ratio, 4.0, 0.1);
  EXPECT_NEAR(hier_ratio, 2.0, 0.15);  // ~linear
}

TEST(Models, DetectionTimesFixedFrequency) {
  ModelParams p = at(100);
  EXPECT_DOUBLE_EQ(a2a_detection(p), 5.0);
  EXPECT_DOUBLE_EQ(hier_detection(p), 5.0);
  // Gossip: c0 + c1*log2(100) periods ~ 17.1 s, growing with n.
  EXPECT_NEAR(gossip_detection(p), 5.5 + 1.75 * std::log2(100.0), 1e-9);
  EXPECT_GT(gossip_detection(at(1000)), gossip_detection(at(100)));
}

TEST(Models, ConvergenceAddsTreePropagation) {
  ModelParams p = at(100);
  EXPECT_GT(hier_convergence(p), hier_detection(p));
  EXPECT_LT(hier_convergence(p) - hier_detection(p), 0.1);  // ms-scale
  EXPECT_DOUBLE_EQ(a2a_convergence(p), a2a_detection(p));
}

TEST(Models, BdpOrderingHierBest) {
  for (double n : {100.0, 1000.0, 4000.0}) {
    ModelParams p = at(n);
    EXPECT_LT(hier_bdp(p), a2a_bdp(p));
    EXPECT_LT(a2a_bdp(p), gossip_bdp(p));
    EXPECT_LT(hier_bcp(p), a2a_bcp(p));
  }
}

TEST(Models, BdpIndependentOfBudget) {
  ModelParams p1 = at(500);
  ModelParams p2 = at(500);
  p2.bandwidth = p1.bandwidth * 10;
  EXPECT_NEAR(a2a_bdp(p1), a2a_bdp(p2), 1e-6);
  EXPECT_NEAR(hier_bdp(p1), hier_bdp(p2), 1e-6);
}

TEST(Models, DetectionAtBudgetScalesQuadraticallyForA2a) {
  double ratio = a2a_detection_at_budget(at(2000)) /
                 a2a_detection_at_budget(at(1000));
  EXPECT_NEAR(ratio, 4.0, 0.1);
  double hier_ratio = hier_detection_at_budget(at(2000)) /
                      hier_detection_at_budget(at(1000));
  EXPECT_LT(hier_ratio, 2.3);
}

TEST(Models, CompareSchemesTable) {
  auto rows = compare_schemes(at(100));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].scheme, "all-to-all");
  EXPECT_EQ(rows[2].scheme, "hierarchical");
  EXPECT_LT(rows[2].bandwidth_fixed_freq, rows[0].bandwidth_fixed_freq);
  EXPECT_LT(rows[2].bdp, rows[0].bdp);
}

TEST(CostModel, Figure2Calibration) {
  CpuCostModel cpu;
  // Paper Figure 2: ~4.5% CPU at 4000 heartbeat packets per second.
  EXPECT_NEAR(cpu.cpu_percent(4000), 4.5, 0.2);
  EXPECT_NEAR(cpu.cpu_percent(0), 0.0, 1e-12);

  LinkModel link;
  // 4000 nodes x 1024-byte heartbeats/s ~ 4 MB/s ~ 32% of Fast Ethernet.
  EXPECT_NEAR(link.utilization_percent(4000.0 * 1024.0), 32.8, 1.0);
}

}  // namespace
}  // namespace tamp::analysis
