#include <gtest/gtest.h>

#include <vector>

#include "util/flags.h"

namespace tamp::util {
namespace {

// argv helper: builds a mutable char*[] from literals.
struct Argv {
  explicit Argv(std::initializer_list<const char*> args) {
    storage.emplace_back("prog");
    for (const char* arg : args) storage.emplace_back(arg);
    for (auto& s : storage) pointers.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers.size()); }
  char** data() { return pointers.data(); }
  std::vector<std::string> storage;
  std::vector<char*> pointers;
};

TEST(Flags, DefaultsSurviveEmptyArgv) {
  FlagSet flags("test");
  auto& n = flags.add_int("n", 42, "");
  auto& x = flags.add_double("x", 1.5, "");
  auto& b = flags.add_bool("b", false, "");
  auto& s = flags.add_string("s", "hello", "");
  Argv argv({});
  flags.parse(argv.argc(), argv.data());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 1.5);
  EXPECT_FALSE(b);
  EXPECT_EQ(s, "hello");
}

TEST(Flags, EqualsSyntax) {
  FlagSet flags("test");
  auto& n = flags.add_int("n", 0, "");
  auto& x = flags.add_double("x", 0, "");
  auto& s = flags.add_string("s", "", "");
  Argv argv({"--n=7", "--x=2.25", "--s=abc"});
  flags.parse(argv.argc(), argv.data());
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(x, 2.25);
  EXPECT_EQ(s, "abc");
}

TEST(Flags, SpaceSyntax) {
  FlagSet flags("test");
  auto& n = flags.add_int("n", 0, "");
  Argv argv({"--n", "123"});
  flags.parse(argv.argc(), argv.data());
  EXPECT_EQ(n, 123);
}

TEST(Flags, BareBoolSetsTrue) {
  FlagSet flags("test");
  auto& b = flags.add_bool("verbose", false, "");
  Argv argv({"--verbose"});
  flags.parse(argv.argc(), argv.data());
  EXPECT_TRUE(b);
}

TEST(Flags, BoolExplicitValues) {
  FlagSet flags("test");
  auto& a = flags.add_bool("a", false, "");
  auto& b = flags.add_bool("b", true, "");
  Argv argv({"--a=true", "--b=false"});
  flags.parse(argv.argc(), argv.data());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(Flags, NegativeNumbers) {
  FlagSet flags("test");
  auto& n = flags.add_int("n", 0, "");
  Argv argv({"--n=-5"});
  flags.parse(argv.argc(), argv.data());
  EXPECT_EQ(n, -5);
}

TEST(Flags, UsageListsFlagsAndDefaults) {
  FlagSet flags("myprog");
  flags.add_int("nodes", 100, "cluster size");
  std::string usage = flags.usage();
  EXPECT_NE(usage.find("myprog"), std::string::npos);
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("100"), std::string::npos);
  EXPECT_NE(usage.find("cluster size"), std::string::npos);
}

TEST(FlagsDeath, UnknownFlagExits) {
  FlagSet flags("test");
  flags.add_int("n", 0, "");
  Argv argv({"--bogus=1"});
  EXPECT_EXIT(flags.parse(argv.argc(), argv.data()),
              ::testing::ExitedWithCode(2), "bad flag");
}

TEST(FlagsDeath, MalformedValueExits) {
  FlagSet flags("test");
  flags.add_int("n", 0, "");
  Argv argv({"--n=abc"});
  EXPECT_EXIT(flags.parse(argv.argc(), argv.data()),
              ::testing::ExitedWithCode(2), "bad flag");
}

TEST(FlagsDeath, HelpExitsZero) {
  FlagSet flags("test");
  flags.add_int("n", 0, "size");
  Argv argv({"--help"});
  EXPECT_EXIT(flags.parse(argv.argc(), argv.data()),
              ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace tamp::util
