#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"
#include "sim/timer.h"

namespace tamp::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.push(100, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, Cancel) {
  EventQueue q;
  bool ran = false;
  EventId id = q.push(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelInvalidId) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 2);
}

TEST(Simulation, NowAdvancesWithEvents) {
  Simulation sim;
  Time seen = -1;
  sim.schedule_at(5 * kSecond, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5 * kSecond);
  EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i * kSecond, [&] { ++count; });
  }
  sim.run_until(5 * kSecond);  // inclusive
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 5 * kSecond);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulation, EventsCanSchedule) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(kSecond, chain);
  };
  sim.schedule_after(kSecond, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(Simulation, NegativeDelayClamps) {
  Simulation sim;
  bool ran = false;
  sim.schedule_after(-100, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> draws;
    for (int i = 0; i < 10; ++i) {
      sim.schedule_after(i * kMillisecond,
                         [&] { draws.push_back(sim.rng().next_u64()); });
    }
    sim.run();
    return draws;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, kSecond, [&] { ++fires; });
  timer.start();
  sim.run_until(10 * kSecond);
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, StopPreventsFurtherFires) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, kSecond, [&] { ++fires; });
  timer.start();
  sim.schedule_at(3 * kSecond + 1, [&] { timer.stop(); });
  sim.run_until(10 * kSecond);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimer, RandomPhaseWithinPeriod) {
  Simulation sim(5);
  Time first = -1;
  PeriodicTimer timer(sim, kSecond, [&] {
    if (first < 0) first = sim.now();
  });
  timer.start_with_random_phase();
  sim.run_until(2 * kSecond);
  EXPECT_GE(first, 0);
  EXPECT_LT(first, kSecond);
}

TEST(OneShotTimer, RestartReplacesDeadline) {
  Simulation sim;
  int fires = 0;
  OneShotTimer timer(sim, [&] { ++fires; });
  timer.restart(2 * kSecond);
  sim.schedule_at(kSecond, [&] { timer.restart(5 * kSecond); });
  sim.run_until(4 * kSecond);
  EXPECT_EQ(fires, 0);  // original deadline was superseded
  sim.run_until(10 * kSecond);
  EXPECT_EQ(fires, 1);
}

TEST(OneShotTimer, CancelStops) {
  Simulation sim;
  int fires = 0;
  OneShotTimer timer(sim, [&] { ++fires; });
  timer.restart(kSecond);
  EXPECT_TRUE(timer.armed());
  timer.cancel();
  EXPECT_FALSE(timer.armed());
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(OneShotTimer, DestructorCancels) {
  Simulation sim;
  int fires = 0;
  {
    OneShotTimer timer(sim, [&] { ++fires; });
    timer.restart(kSecond);
  }
  sim.run();
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace tamp::sim
