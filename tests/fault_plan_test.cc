// FaultPlan generation: determinism, ordering, and the scenario naming /
// parsing round-trips that make a failing chaos tuple reproducible.
#include <gtest/gtest.h>

#include <set>

#include "sim/fault_plan.h"
#include "sim/scenario.h"

namespace tamp::chaos {
namespace {

std::string render(const FaultPlan& plan) {
  std::string out;
  for (const auto& event : plan.events) {
    out += sim::format_time(event.at) + " " + describe(event.action) + "\n";
  }
  return out;
}

TEST(FaultPlan, SameTupleSameSchedule) {
  for (PlanKind kind : kAllPlanKinds) {
    FaultPlan a = make_fault_plan(kind, 12, 4, 15 * sim::kSecond, 7);
    FaultPlan b = make_fault_plan(kind, 12, 4, 15 * sim::kSecond, 7);
    EXPECT_EQ(render(a), render(b)) << plan_name(kind);
    EXPECT_EQ(a.name, plan_name(kind));
  }
}

TEST(FaultPlan, EventsSortedAndNonEmpty) {
  for (PlanKind kind : kAllPlanKinds) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      FaultPlan plan = make_fault_plan(kind, 12, 4, 10 * sim::kSecond, seed);
      ASSERT_FALSE(plan.events.empty()) << plan_name(kind);
      for (size_t i = 1; i < plan.events.size(); ++i) {
        EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
      }
      EXPECT_GE(plan.events.front().at, 10 * sim::kSecond);
      EXPECT_EQ(plan.last_event_time(), plan.events.back().at);
    }
  }
}

TEST(FaultPlan, SeedSelectsDifferentVictims) {
  // Across a spread of seeds the crash plan must not always pick the same
  // victim (the whole point of the seed sweep).
  std::set<std::string> schedules;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    schedules.insert(
        render(make_fault_plan(PlanKind::kCrashRestart, 12, 4, 0, seed)));
  }
  EXPECT_GT(schedules.size(), 1u);
}

TEST(FaultPlan, VictimsNeverTargetNodeZero) {
  // Index 0 is the bully winner; only the leader-targeted plans may touch
  // it, so the random-victim plans stay distinguishable from them.
  for (PlanKind kind : {PlanKind::kCrashRestart, PlanKind::kPauseResume}) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      FaultPlan plan = make_fault_plan(kind, 8, 8, 0, seed);
      for (const auto& event : plan.events) {
        if (const auto* crash = std::get_if<CrashFault>(&event.action)) {
          EXPECT_NE(crash->node, 0u);
        }
        if (const auto* pause = std::get_if<PauseFault>(&event.action)) {
          EXPECT_NE(pause->node, 0u);
        }
      }
    }
  }
}

TEST(FaultPlan, PlanKindTableIsExhaustive) {
  // The static_assert in fault_plan.h pins std::size(kAllPlanKinds) to the
  // kCount sentinel; this sweep pins the rest of the surface to the array,
  // so a new PlanKind cannot ship with a missing name, generator, or
  // describe() case.
  EXPECT_EQ(std::size(kAllPlanKinds), kPlanKindCount);
  std::set<std::string> names;
  for (PlanKind kind : kAllPlanKinds) {
    std::string name = plan_name(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "PlanKind " << static_cast<int>(kind)
                         << " missing from plan_name()";
    EXPECT_TRUE(names.insert(name).second) << "duplicate plan name " << name;
    FaultPlan plan = make_fault_plan(kind, 12, 4, 0, 1);
    EXPECT_FALSE(plan.events.empty()) << name;
    for (const auto& event : plan.events) {
      EXPECT_FALSE(describe(event.action).empty()) << name;
    }
  }
}

TEST(FaultPlan, DescribeCoversEveryAction) {
  for (PlanKind kind : kAllPlanKinds) {
    FaultPlan plan = make_fault_plan(kind, 12, 4, 0, 3);
    for (const auto& event : plan.events) {
      EXPECT_FALSE(describe(event.action).empty());
    }
  }
}

TEST(ScenarioNaming, ParseRoundTripsEveryCoordinate) {
  using protocols::Scheme;
  for (Scheme scheme :
       {Scheme::kAllToAll, Scheme::kGossip, Scheme::kHierarchical}) {
    Scheme parsed;
    ASSERT_TRUE(parse_scheme(protocols::scheme_name(scheme), &parsed));
    EXPECT_EQ(parsed, scheme);
  }
  for (ShapeKind shape : kAllShapeKinds) {
    ShapeKind parsed;
    ASSERT_TRUE(parse_shape(shape_name(shape), &parsed));
    EXPECT_EQ(parsed, shape);
  }
  for (PlanKind plan : kAllPlanKinds) {
    PlanKind parsed;
    ASSERT_TRUE(parse_plan(plan_name(plan), &parsed));
    EXPECT_EQ(parsed, plan);
  }
  Scheme scheme;
  ShapeKind shape;
  PlanKind plan;
  EXPECT_FALSE(parse_scheme("carrier-pigeon", &scheme));
  EXPECT_FALSE(parse_shape("moebius", &shape));
  EXPECT_FALSE(parse_plan("bees", &plan));
}

TEST(ScenarioNaming, NameAndReproCarryAllFourCoordinates) {
  ScenarioSpec spec;
  spec.scheme = protocols::Scheme::kGossip;
  spec.shape = ShapeKind::kRouterChain;
  spec.plan = PlanKind::kLossStorm;
  spec.seed = 42;
  std::string name = scenario_name(spec);
  EXPECT_NE(name.find("gossip"), std::string::npos);
  EXPECT_NE(name.find("router-chain"), std::string::npos);
  EXPECT_NE(name.find("loss-storm"), std::string::npos);
  EXPECT_NE(name.find("s42"), std::string::npos);
  std::string repro = repro_command(spec);
  EXPECT_NE(repro.find("chaos_soak"), std::string::npos);
  EXPECT_NE(repro.find("--seed=42"), std::string::npos);
}

TEST(PlanApplicability, GossipSkipsOnlySymmetricSplits) {
  using protocols::Scheme;
  int applicable = 0;
  for (PlanKind plan : kAllPlanKinds) {
    EXPECT_TRUE(plan_applicable(Scheme::kAllToAll, plan));
    EXPECT_TRUE(plan_applicable(Scheme::kHierarchical, plan));
    if (plan_applicable(Scheme::kGossip, plan)) ++applicable;
  }
  // The matrix requirement: at least four plan kinds per scheme.
  EXPECT_GE(applicable, 4);
}

}  // namespace
}  // namespace tamp::chaos
