#include <gtest/gtest.h>

#include "net/builders.h"
#include "net/topology.h"

namespace tamp::net {
namespace {

TEST(Topology, SameSegmentIsTtlOne) {
  Topology topo;
  auto layout = build_single_segment(topo, 4);
  for (HostId a : layout.hosts) {
    for (HostId b : layout.hosts) {
      if (a == b) {
        EXPECT_EQ(topo.ttl_required(a, b), 0);
      } else {
        EXPECT_EQ(topo.ttl_required(a, b), 1);
      }
    }
  }
  EXPECT_EQ(topo.max_ttl(), 1);
}

TEST(Topology, RackedClusterTtls) {
  Topology topo;
  RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 4;
  auto layout = build_racked_cluster(topo, params);
  // Same rack: TTL 1 (only an L2 switch between).
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[0][1]), 1);
  // Cross-rack: one router crossing -> TTL 2.
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[1][0]), 2);
  EXPECT_EQ(topo.max_ttl(), 2);
}

TEST(Topology, RouterTreeDepthIncreasesTtl) {
  Topology topo;
  auto layout = build_router_tree(topo, 2, 2, 2);
  // Hosts under the same leaf: TTL 2 (their leaf router is on the path via
  // the L2 switch? no — same switch, no router crossing -> TTL 1).
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[0][1]), 1);
  // Hosts under sibling leaves share a depth-1 parent: leaf, parent, leaf
  // routers -> 3 routers -> TTL 4.
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[1][0]), 4);
  // Opposite sides of the root: 5 routers -> TTL 6.
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[3][0]), 6);
  EXPECT_EQ(topo.max_ttl(), 6);
}

TEST(Topology, Fig4OverlapDistances) {
  Topology topo;
  auto layout = build_fig4_overlap(topo, 1);
  HostId a = layout.segment_a[0];
  HostId b = layout.segment_b[0];
  HostId c = layout.segment_c[0];
  // The paper's example: A reaches B and C within 3 hops, but B and C need
  // 4 hops to reach each other (TTL transitivity fails).
  EXPECT_EQ(topo.ttl_required(a, b), 3);
  EXPECT_EQ(topo.ttl_required(a, c), 3);
  EXPECT_EQ(topo.ttl_required(b, c), 4);
}

TEST(Topology, SameRouterIsTtlTwo) {
  Topology topo;
  DeviceId router = topo.add_router("r");
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  topo.connect(a, router);
  topo.connect(b, router);
  // Hosts on two subnets of one router: the router decrements once.
  EXPECT_EQ(topo.ttl_required(a, b), 2);
}

TEST(Topology, PathLatencyAccumulates) {
  Topology topo;
  DeviceId sw1 = topo.add_l2_switch("sw1");
  DeviceId sw2 = topo.add_l2_switch("sw2");
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  topo.connect(a, sw1, {100 * sim::kMicrosecond, 100e6, 0.0});
  topo.connect(b, sw2, {100 * sim::kMicrosecond, 100e6, 0.0});
  topo.connect(sw1, sw2, {300 * sim::kMicrosecond, 1e9, 0.0});
  PathInfo p = topo.path(a, b);
  ASSERT_TRUE(p.reachable);
  EXPECT_EQ(p.latency, 500 * sim::kMicrosecond);
  EXPECT_EQ(p.router_hops, 0);  // only L2 devices
  EXPECT_DOUBLE_EQ(p.min_bandwidth_bps, 100e6);
}

TEST(Topology, PathSurvivalMultipliesLoss) {
  Topology topo;
  DeviceId sw = topo.add_l2_switch("sw");
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  topo.connect(a, sw, {50 * sim::kMicrosecond, 100e6, 0.1});
  topo.connect(b, sw, {50 * sim::kMicrosecond, 100e6, 0.2});
  PathInfo p = topo.path(a, b);
  EXPECT_NEAR(p.survival, 0.9 * 0.8, 1e-12);
}

TEST(Topology, LinkDownPartitions) {
  Topology topo;
  RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 2;
  auto layout = build_racked_cluster(topo, params);
  HostId a = layout.racks[0][0];
  HostId b = layout.racks[1][0];
  EXPECT_TRUE(topo.path(a, b).reachable);
  topo.set_link_up(layout.rack_uplinks[0], false);
  EXPECT_FALSE(topo.path(a, b).reachable);
  // Intra-rack connectivity survives the uplink failure.
  EXPECT_TRUE(topo.path(a, layout.racks[0][1]).reachable);
  topo.set_link_up(layout.rack_uplinks[0], true);
  EXPECT_TRUE(topo.path(a, b).reachable);
}

TEST(Topology, SelfPathIsReachableZeroCost) {
  Topology topo;
  auto layout = build_single_segment(topo, 2);
  PathInfo p = topo.path(layout.hosts[0], layout.hosts[0]);
  EXPECT_TRUE(p.reachable);
  EXPECT_EQ(p.latency, 0);
  EXPECT_EQ(topo.ttl_required(layout.hosts[0], layout.hosts[0]), 0);
}

TEST(Topology, DetachedHostUnreachable) {
  Topology topo;
  auto layout = build_single_segment(topo, 2);
  HostId lonely = topo.add_host("lonely");
  EXPECT_FALSE(topo.path(lonely, layout.hosts[0]).reachable);
  EXPECT_EQ(topo.ttl_required(lonely, layout.hosts[0]), 0);
}

TEST(Topology, MultiDatacenterTtlSeparation) {
  Topology topo;
  RackedClusterParams east;
  east.racks = 2;
  east.hosts_per_rack = 2;
  east.dc = 0;
  east.name_prefix = "east";
  RackedClusterParams west = east;
  west.dc = 1;
  west.name_prefix = "west";
  auto layout = build_multi_datacenter(topo, {east, west});

  HostId e0 = layout.clusters[0].hosts[0];
  HostId w0 = layout.clusters[1].hosts[0];
  // Intra-DC stays at TTL <= 2; cross-DC crosses core+border+border+core.
  EXPECT_LE(topo.ttl_required(e0, layout.clusters[0].hosts[3]), 2);
  EXPECT_EQ(topo.ttl_required(e0, w0), 5);
  EXPECT_EQ(topo.datacenter_of(e0), 0);
  EXPECT_EQ(topo.datacenter_of(w0), 1);
  EXPECT_EQ(topo.hosts_in_datacenter(0).size(), 4u);
  // WAN latency dominates the cross-DC path.
  EXPECT_GE(topo.path(e0, w0).latency, 45 * sim::kMillisecond);
}

TEST(Topology, HostsMustBeSingleHomed) {
  Topology topo;
  DeviceId sw1 = topo.add_l2_switch("sw1");
  DeviceId sw2 = topo.add_l2_switch("sw2");
  topo.connect(sw1, sw2);
  HostId h = topo.add_host("h");
  HostId other = topo.add_host("other");
  topo.connect(h, sw1);
  topo.connect(h, sw2);
  topo.connect(other, sw2);
  EXPECT_DEATH((void)topo.path(h, other), "single-homed");
}

TEST(Topology, HostToHostLinkRejected) {
  Topology topo;
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  EXPECT_DEATH(topo.connect(a, b), "hosts must attach");
}

}  // namespace
}  // namespace tamp::net
