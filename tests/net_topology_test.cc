#include <gtest/gtest.h>

#include "net/builders.h"
#include "net/topology.h"

namespace tamp::net {
namespace {

TEST(Topology, SameSegmentIsTtlOne) {
  Topology topo;
  auto layout = build_single_segment(topo, 4);
  for (HostId a : layout.hosts) {
    for (HostId b : layout.hosts) {
      if (a == b) {
        EXPECT_EQ(topo.ttl_required(a, b), 0);
      } else {
        EXPECT_EQ(topo.ttl_required(a, b), 1);
      }
    }
  }
  EXPECT_EQ(topo.max_ttl(), 1);
}

TEST(Topology, RackedClusterTtls) {
  Topology topo;
  RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 4;
  auto layout = build_racked_cluster(topo, params);
  // Same rack: TTL 1 (only an L2 switch between).
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[0][1]), 1);
  // Cross-rack: one router crossing -> TTL 2.
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[1][0]), 2);
  EXPECT_EQ(topo.max_ttl(), 2);
}

TEST(Topology, RouterTreeDepthIncreasesTtl) {
  Topology topo;
  auto layout = build_router_tree(topo, 2, 2, 2);
  // Hosts under the same leaf: TTL 2 (their leaf router is on the path via
  // the L2 switch? no — same switch, no router crossing -> TTL 1).
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[0][1]), 1);
  // Hosts under sibling leaves share a depth-1 parent: leaf, parent, leaf
  // routers -> 3 routers -> TTL 4.
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[1][0]), 4);
  // Opposite sides of the root: 5 routers -> TTL 6.
  EXPECT_EQ(topo.ttl_required(layout.racks[0][0], layout.racks[3][0]), 6);
  EXPECT_EQ(topo.max_ttl(), 6);
}

TEST(Topology, Fig4OverlapDistances) {
  Topology topo;
  auto layout = build_fig4_overlap(topo, 1);
  HostId a = layout.segment_a[0];
  HostId b = layout.segment_b[0];
  HostId c = layout.segment_c[0];
  // The paper's example: A reaches B and C within 3 hops, but B and C need
  // 4 hops to reach each other (TTL transitivity fails).
  EXPECT_EQ(topo.ttl_required(a, b), 3);
  EXPECT_EQ(topo.ttl_required(a, c), 3);
  EXPECT_EQ(topo.ttl_required(b, c), 4);
}

TEST(Topology, SameRouterIsTtlTwo) {
  Topology topo;
  DeviceId router = topo.add_router("r");
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  topo.connect(a, router);
  topo.connect(b, router);
  // Hosts on two subnets of one router: the router decrements once.
  EXPECT_EQ(topo.ttl_required(a, b), 2);
}

TEST(Topology, PathLatencyAccumulates) {
  Topology topo;
  DeviceId sw1 = topo.add_l2_switch("sw1");
  DeviceId sw2 = topo.add_l2_switch("sw2");
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  topo.connect(a, sw1, {100 * sim::kMicrosecond, 100e6, 0.0});
  topo.connect(b, sw2, {100 * sim::kMicrosecond, 100e6, 0.0});
  topo.connect(sw1, sw2, {300 * sim::kMicrosecond, 1e9, 0.0});
  PathInfo p = topo.path(a, b);
  ASSERT_TRUE(p.reachable);
  EXPECT_EQ(p.latency, 500 * sim::kMicrosecond);
  EXPECT_EQ(p.router_hops, 0);  // only L2 devices
  EXPECT_DOUBLE_EQ(p.min_bandwidth_bps, 100e6);
}

TEST(Topology, PathSurvivalMultipliesLoss) {
  Topology topo;
  DeviceId sw = topo.add_l2_switch("sw");
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  topo.connect(a, sw, {50 * sim::kMicrosecond, 100e6, 0.1});
  topo.connect(b, sw, {50 * sim::kMicrosecond, 100e6, 0.2});
  PathInfo p = topo.path(a, b);
  EXPECT_NEAR(p.survival, 0.9 * 0.8, 1e-12);
}

TEST(Topology, LinkDownPartitions) {
  Topology topo;
  RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 2;
  auto layout = build_racked_cluster(topo, params);
  HostId a = layout.racks[0][0];
  HostId b = layout.racks[1][0];
  EXPECT_TRUE(topo.path(a, b).reachable);
  topo.set_link_up(layout.rack_uplinks[0], false);
  EXPECT_FALSE(topo.path(a, b).reachable);
  // Intra-rack connectivity survives the uplink failure.
  EXPECT_TRUE(topo.path(a, layout.racks[0][1]).reachable);
  topo.set_link_up(layout.rack_uplinks[0], true);
  EXPECT_TRUE(topo.path(a, b).reachable);
}

TEST(Topology, SelfPathIsReachableZeroCost) {
  Topology topo;
  auto layout = build_single_segment(topo, 2);
  PathInfo p = topo.path(layout.hosts[0], layout.hosts[0]);
  EXPECT_TRUE(p.reachable);
  EXPECT_EQ(p.latency, 0);
  EXPECT_EQ(topo.ttl_required(layout.hosts[0], layout.hosts[0]), 0);
}

TEST(Topology, DetachedHostUnreachable) {
  Topology topo;
  auto layout = build_single_segment(topo, 2);
  HostId lonely = topo.add_host("lonely");
  EXPECT_FALSE(topo.path(lonely, layout.hosts[0]).reachable);
  EXPECT_EQ(topo.ttl_required(lonely, layout.hosts[0]), 0);
}

TEST(Topology, MultiDatacenterTtlSeparation) {
  Topology topo;
  RackedClusterParams east;
  east.racks = 2;
  east.hosts_per_rack = 2;
  east.dc = 0;
  east.name_prefix = "east";
  RackedClusterParams west = east;
  west.dc = 1;
  west.name_prefix = "west";
  auto layout = build_multi_datacenter(topo, {east, west});

  HostId e0 = layout.clusters[0].hosts[0];
  HostId w0 = layout.clusters[1].hosts[0];
  // Intra-DC stays at TTL <= 2; cross-DC crosses core+border+border+core.
  EXPECT_LE(topo.ttl_required(e0, layout.clusters[0].hosts[3]), 2);
  EXPECT_EQ(topo.ttl_required(e0, w0), 5);
  EXPECT_EQ(topo.datacenter_of(e0), 0);
  EXPECT_EQ(topo.datacenter_of(w0), 1);
  EXPECT_EQ(topo.hosts_in_datacenter(0).size(), 4u);
  // WAN latency dominates the cross-DC path.
  EXPECT_GE(topo.path(e0, w0).latency, 45 * sim::kMillisecond);
}

TEST(Topology, HostsMustBeSingleHomed) {
  Topology topo;
  DeviceId sw1 = topo.add_l2_switch("sw1");
  DeviceId sw2 = topo.add_l2_switch("sw2");
  topo.connect(sw1, sw2);
  HostId h = topo.add_host("h");
  topo.connect(h, sw1);
  // A second uplink dies at the mutation site, naming the offending host.
  EXPECT_DEATH(topo.connect(h, sw2), "host 'h'.*single-homed");
}

TEST(Topology, HostToHostLinkRejected) {
  Topology topo;
  HostId a = topo.add_host("a");
  HostId b = topo.add_host("b");
  EXPECT_DEATH(topo.connect(a, b), "hosts must attach");
}

TEST(Topology, DeviceCrashDropsIncidentLinksAtomically) {
  Topology topo;
  RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 2;
  auto layout = build_racked_cluster(topo, params);
  HostId a = layout.racks[0][0];
  HostId b = layout.racks[1][0];
  EXPECT_EQ(topo.ttl_required(a, b), 2);

  uint64_t before = topo.epoch();
  topo.set_device_up(layout.routers[0], false);
  EXPECT_GT(topo.epoch(), before);
  // Every cross-rack path dies in the same recompile; intra-rack survives.
  EXPECT_FALSE(topo.path(a, b).reachable);
  EXPECT_FALSE(topo.path(a, layout.racks[2][0]).reachable);
  EXPECT_TRUE(topo.path(a, layout.racks[0][1]).reachable);
  EXPECT_EQ(topo.max_ttl(), 1);

  // Links keep their own admin state across device recovery: an uplink taken
  // down during the blackout stays down after power-on.
  topo.set_link_up(layout.rack_uplinks[1], false);
  topo.set_device_up(layout.routers[0], true);
  EXPECT_TRUE(topo.path(a, layout.racks[2][0]).reachable);
  EXPECT_FALSE(topo.path(a, b).reachable);
  topo.set_link_up(layout.rack_uplinks[1], true);
  EXPECT_EQ(topo.ttl_required(a, b), 2);
}

TEST(Topology, SetDeviceUpRejectsHosts) {
  Topology topo;
  auto layout = build_single_segment(topo, 2);
  EXPECT_DEATH(topo.set_device_up(layout.hosts[0], false),
               "belongs to the Network");
}

TEST(Topology, MigrateHostRewiresUplinkInPlace) {
  Topology topo;
  RackedClusterParams params;
  params.racks = 2;
  params.hosts_per_rack = 2;
  auto layout = build_racked_cluster(topo, params);
  HostId mover = layout.racks[0][0];
  HostId old_peer = layout.racks[0][1];
  HostId new_peer = layout.racks[1][0];
  LinkId cable = topo.uplink_of(mover);

  topo.set_link_up(cable, false);  // admin state must survive the move
  topo.migrate_host(mover, layout.rack_switches[1]);
  EXPECT_EQ(topo.uplink_of(mover), cable);  // same cable, new port
  EXPECT_FALSE(topo.path(mover, new_peer).reachable);  // still unplugged
  topo.set_link_up(cable, true);
  EXPECT_EQ(topo.ttl_required(mover, new_peer), 1);  // now same segment
  EXPECT_EQ(topo.ttl_required(mover, old_peer), 2);  // old rack across core
}

TEST(Topology, EpochCountsEveryMutation) {
  Topology topo;
  uint64_t last = topo.epoch();
  auto bumped = [&] {
    bool result = topo.epoch() > last;
    last = topo.epoch();
    return result;
  };
  DeviceId sw = topo.add_l2_switch("sw");
  EXPECT_TRUE(bumped());
  DeviceId r = topo.add_router("r");
  EXPECT_TRUE(bumped());
  HostId h = topo.add_host("h");
  EXPECT_TRUE(bumped());
  LinkId l = topo.connect(h, sw);
  EXPECT_TRUE(bumped());
  topo.connect(sw, r);
  EXPECT_TRUE(bumped());
  topo.set_link_up(l, false);
  EXPECT_TRUE(bumped());
  topo.set_link_up(l, false);  // no state change: no bump
  EXPECT_FALSE(bumped());
  topo.set_device_up(r, false);
  EXPECT_TRUE(bumped());
  topo.set_device_up(r, false);  // no state change: no bump
  EXPECT_FALSE(bumped());
  topo.migrate_host(h, r);
  EXPECT_TRUE(bumped());
  (void)topo.max_ttl();  // queries never bump
  EXPECT_FALSE(bumped());
}

TEST(Topology, InterleavedMutationsMatchFreshRebuild) {
  // Property test for lazy recompilation: apply a deterministic script of
  // uplink flaps, router power cycles, migrations, and link additions with
  // queries interleaved (forcing a recompile between every mutation pair),
  // and after each step require path()/ttl_required()/max_ttl() to agree
  // with a fresh topology that replayed the same prefix cold. Routing
  // answers must depend only on the mutation history, never on when the
  // compiles happened.
  RackedClusterParams params;
  params.racks = 3;
  params.hosts_per_rack = 3;

  struct Op {
    enum Kind { kFlapUplink, kRouterPower, kMigrate, kAddLink } kind;
    size_t a = 0;
    size_t b = 0;
    bool up = false;
  };
  std::vector<Op> script;
  uint64_t state = 12345;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  bool router_up = true;
  std::vector<bool> uplink_up(3, true);
  for (int i = 0; i < 48; ++i) {
    switch (next() % 4) {
      case 0: {
        size_t s = next() % 3;
        uplink_up[s] = !uplink_up[s];
        script.push_back({Op::kFlapUplink, s, 0, uplink_up[s]});
        break;
      }
      case 1:
        router_up = !router_up;
        script.push_back({Op::kRouterPower, 0, 0, router_up});
        break;
      case 2:
        script.push_back({Op::kMigrate, next() % 9, next() % 3, false});
        break;
      case 3:
        script.push_back({Op::kAddLink, next() % 3, next() % 3, false});
        break;
    }
  }

  auto apply = [](Topology& topo, const ClusterLayout& layout, const Op& op) {
    switch (op.kind) {
      case Op::kFlapUplink:
        topo.set_link_up(layout.rack_uplinks[op.a], op.up);
        break;
      case Op::kRouterPower:
        topo.set_device_up(layout.routers[0], op.up);
        break;
      case Op::kMigrate:
        topo.migrate_host(layout.hosts[op.a], layout.rack_switches[op.b]);
        break;
      case Op::kAddLink:
        if (op.a != op.b) {
          topo.connect(layout.rack_switches[op.a], layout.rack_switches[op.b]);
        }
        break;
    }
  };

  Topology live;
  ClusterLayout layout = build_racked_cluster(live, params);
  for (size_t i = 0; i < script.size(); ++i) {
    apply(live, layout, script[i]);
    // Interleaved queries: compile against the half-applied script.
    (void)live.max_ttl();
    (void)live.path(layout.hosts[0], layout.hosts[i % layout.hosts.size()]);

    Topology fresh;
    ClusterLayout fresh_layout = build_racked_cluster(fresh, params);
    for (size_t j = 0; j <= i; ++j) apply(fresh, fresh_layout, script[j]);

    ASSERT_EQ(live.epoch(), fresh.epoch()) << "after op " << i;
    ASSERT_EQ(live.max_ttl(), fresh.max_ttl()) << "after op " << i;
    for (HostId a : layout.hosts) {
      for (HostId b : layout.hosts) {
        ASSERT_EQ(live.ttl_required(a, b), fresh.ttl_required(a, b))
            << "after op " << i << " pair " << a << "," << b;
        PathInfo lp = live.path(a, b);
        PathInfo fp = fresh.path(a, b);
        ASSERT_EQ(lp.reachable, fp.reachable) << "after op " << i;
        ASSERT_EQ(lp.latency, fp.latency) << "after op " << i;
        ASSERT_EQ(lp.router_hops, fp.router_hops) << "after op " << i;
      }
    }
  }
}

}  // namespace
}  // namespace tamp::net
