#include <gtest/gtest.h>

#include "service/multidc.h"
#include "service/search.h"

namespace tamp::proxy {
namespace {

using service::MultiDcHarness;
using service::MultiDcParams;

struct ProxyFixture : public ::testing::Test {
  sim::Simulation sim{41};
  std::unique_ptr<MultiDcHarness> harness;

  void build(MultiDcParams params = service::default_two_dc_params()) {
    harness = std::make_unique<MultiDcHarness>(sim, std::move(params));
    harness->start();
  }

  void settle() { sim.run_until(sim.now() + 15 * sim::kSecond); }
};

TEST_F(ProxyFixture, OneLeaderPerDcHoldsVip) {
  build();
  settle();
  for (size_t dc = 0; dc < harness->dc_count(); ++dc) {
    int leaders = 0;
    for (int i = 0; i < harness->proxies_per_dc(); ++i) {
      if (harness->proxy(dc, i).is_leader()) ++leaders;
    }
    EXPECT_EQ(leaders, 1);
    auto* leader = harness->proxy_leader(dc);
    ASSERT_NE(leader, nullptr);
    EXPECT_EQ(harness->network().virtual_ip_owner(harness->vip(dc)),
              leader->self());
  }
}

TEST_F(ProxyFixture, SummariesReachRemoteDatacenters) {
  build();
  // Register a service in DC 0 only.
  harness->cluster(0).daemon(2).register_service("index", {0, 1});
  settle();

  auto* west_leader = harness->proxy_leader(1);
  ASSERT_NE(west_leader, nullptr);
  auto remote = west_leader->lookup_remote("index", 1);
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(remote[0], 0);
  EXPECT_TRUE(west_leader->lookup_remote("index", 9).empty());
  EXPECT_TRUE(west_leader->lookup_remote("nope", 0).empty());
}

TEST_F(ProxyFixture, BackupProxiesLearnRemoteStateThroughRelay) {
  build();
  harness->cluster(0).daemon(2).register_service("cache", {0});
  settle();

  // Every proxy in DC 1 (not only the leader) must know DC 0's summary.
  for (int i = 0; i < harness->proxies_per_dc(); ++i) {
    auto& proxy = harness->proxy(1, i);
    EXPECT_EQ(proxy.lookup_remote("cache", 0).size(), 1u)
        << "proxy " << i << " leader=" << proxy.is_leader();
  }
}

TEST_F(ProxyFixture, SummaryTracksProviderFailure) {
  build();
  harness->cluster(0).daemon(2).register_service("db", {0});
  harness->cluster(0).daemon(3).register_service("db", {0});
  settle();

  auto* west_leader = harness->proxy_leader(1);
  ASSERT_NE(west_leader, nullptr);
  ASSERT_EQ(west_leader->lookup_remote("db", 0).size(), 1u);

  // Kill both providers; after detection + a summary update the service
  // disappears from the remote view.
  harness->cluster(0).kill(2);
  harness->cluster(0).kill(3);
  sim.run_until(sim.now() + 15 * sim::kSecond);
  EXPECT_TRUE(west_leader->lookup_remote("db", 0).empty());
}

TEST_F(ProxyFixture, VipFailsOverWhenLeaderDies) {
  build();
  settle();
  auto* leader = harness->proxy_leader(0);
  ASSERT_NE(leader, nullptr);
  net::HostId old_leader = leader->self();

  // Find and kill the leader's node within its cluster.
  auto& cluster = harness->cluster(0);
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.hosts()[i] == old_leader) {
      // Also stop the proxy daemon itself (it lives on that node).
      for (int p = 0; p < harness->proxies_per_dc(); ++p) {
        if (harness->proxy(0, p).self() == old_leader) {
          harness->proxy(0, p).stop();
        }
      }
      cluster.kill(i);
      break;
    }
  }
  sim.run_until(sim.now() + 20 * sim::kSecond);

  auto* new_leader = harness->proxy_leader(0);
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->self(), old_leader);
  EXPECT_EQ(harness->network().virtual_ip_owner(harness->vip(0)),
            new_leader->self());
  EXPECT_GT(harness->network().obs().metrics.counter_value(
                obs::Protocol::kProxy, "vip_takeovers", new_leader->self()),
            0u);
}

TEST_F(ProxyFixture, RemoteDirectoryExpiresWhenWanCut) {
  build();
  harness->cluster(0).daemon(2).register_service("index", {0});
  settle();
  auto* west_leader = harness->proxy_leader(1);
  ASSERT_NE(west_leader, nullptr);
  ASSERT_FALSE(west_leader->remote().empty());

  // Cut the WAN link: heartbeats stop; the remote directory must expire.
  harness->topology().set_link_up(harness->layout().wan_links[0], false);
  sim.run_until(sim.now() + 30 * sim::kSecond);
  EXPECT_TRUE(west_leader->remote().empty());

  // Heal: summaries come back.
  harness->topology().set_link_up(harness->layout().wan_links[0], true);
  sim.run_until(sim.now() + 10 * sim::kSecond);
  EXPECT_EQ(west_leader->lookup_remote("index", 0).size(), 1u);
}

TEST_F(ProxyFixture, CrossDcInvocationThroughRelay) {
  build();
  // "translate" exists only in DC 1.
  service::ServiceProvider provider(sim, harness->network(),
                                    harness->cluster(1).daemon(3));
  provider.host_service("translate", {0});
  provider.start();
  settle();

  // A consumer in DC 0 invokes it; there is no local provider, so the call
  // must go through the proxy pair (Fig. 6).
  service::ServiceConsumer consumer(sim, harness->network(),
                                    harness->cluster(0).daemon(1));
  consumer.start();

  service::InvokeResult got;
  bool done = false;
  consumer.invoke("translate", 0, 200, 800,
                  [&](const service::InvokeResult& result) {
                    got = result;
                    done = true;
                  });
  sim.run_until(sim.now() + 5 * sim::kSecond);

  ASSERT_TRUE(done);
  EXPECT_TRUE(got.ok());
  EXPECT_TRUE(got.via_proxy);
  // SYN + ACK + request + response: at least 4 WAN traversals at 45 ms.
  EXPECT_GE(got.latency, 180 * sim::kMillisecond);
  EXPECT_LT(got.latency, 400 * sim::kMillisecond);
}

TEST_F(ProxyFixture, CrossDcInvocationFailsWhenNowhereHosted) {
  build();
  settle();
  service::ServiceConsumer consumer(sim, harness->network(),
                                    harness->cluster(0).daemon(1));
  consumer.start();

  bool done = false;
  service::InvokeResult got;
  consumer.invoke("ghost", 0, 10, 10,
                  [&](const service::InvokeResult& result) {
                    got = result;
                    done = true;
                  });
  sim.run_until(sim.now() + 5 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.ok());
}

}  // namespace
}  // namespace tamp::proxy
