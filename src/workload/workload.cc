#include "workload/workload.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace tamp::workload {

namespace {

// Distinct stream from the simulation's protocol Rng: the arrival process
// must not depend on how many protocol draws preceded it.
constexpr uint64_t kArrivalSeedSalt = 0x9E3779B97F4A7C15ull;

// Exact-rank percentile (nearest-rank method) over a sorted sample vector:
// integer in, integer out, no interpolation — deterministic across
// platforms. q in (0, 1].
int64_t rank_percentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return -1;
  size_t rank = static_cast<size_t>(
      q * static_cast<double>(sorted.size()) + 0.9999999);
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

const char* phase_name(int phase) {
  switch (phase) {
    case 0:
      return "pre";
    case 1:
      return "fault";
    case 2:
      return "heal";
  }
  return "?";
}

WorkloadDriver::WorkloadDriver(sim::Simulation& sim, net::Network& net,
                               protocols::Cluster& cluster,
                               WorkloadConfig config, uint64_t seed)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      config_(std::move(config)),
      rng_(seed ^ kArrivalSeedSalt) {
  TAMP_CHECK(config_.partitions >= 1);
  TAMP_CHECK(config_.replicas >= 1);
  TAMP_CHECK(config_.requests_per_sec > 0);
  agents_.resize(cluster_.size());
}

WorkloadDriver::~WorkloadDriver() { stop(); }

void WorkloadDriver::set_phase_bounds(sim::Time fault_start,
                                      sim::Time heal_start) {
  fault_start_ = fault_start;
  heal_start_ = std::max(fault_start, heal_start);
}

int WorkloadDriver::phase_of(sim::Time at) const {
  if (at < fault_start_) return 0;
  if (at < heal_start_) return 1;
  return 2;
}

void WorkloadDriver::start() {
  if (started_) return;
  started_ = true;
  accepting_ = true;
  for (size_t i = 0; i < agents_.size(); ++i) {
    if (!cluster_.alive(i)) continue;
    build_agent(i);
  }
}

void WorkloadDriver::build_agent(size_t index) {
  Agent& agent = agents_[index];
  const net::HostId host = cluster_.hosts()[index];
  obs::MetricsRegistry& m = net_.obs().metrics;
  if (agent.issued == nullptr) {
    agent.issued = m.counter(obs::Protocol::kWorkload, "requests_issued", host);
    agent.ok = m.counter(obs::Protocol::kWorkload, "requests_ok", host);
    agent.failed = m.counter(obs::Protocol::kWorkload, "requests_failed", host);
    agent.attempts =
        m.counter(obs::Protocol::kWorkload, "request_attempts", host);
    agent.misroutes = m.counter(obs::Protocol::kWorkload, "misroutes", host);
    agent.proxy_fallbacks =
        m.counter(obs::Protocol::kWorkload, "proxy_fallbacks", host);
    agent.latency =
        m.histogram(obs::Protocol::kWorkload, "latency_ns", host);
  }

  // Providers: partition p lives on node indices (p*replicas + r) mod n.
  // Recomputed (not cached) so a rebuilt agent re-hosts the same set.
  agent.hosted_partitions.clear();
  for (int p = 0; p < config_.partitions; ++p) {
    for (int r = 0; r < config_.replicas; ++r) {
      const size_t owner =
          (static_cast<size_t>(p) * static_cast<size_t>(config_.replicas) +
           static_cast<size_t>(r)) %
          agents_.size();
      if (owner == index) agent.hosted_partitions.push_back(p);
    }
  }
  if (!agent.hosted_partitions.empty()) {
    service::ProviderConfig provider_config;
    provider_config.port = config_.consumer.provider_port;
    provider_config.concurrency = config_.provider_concurrency;
    provider_config.max_queue = config_.provider_max_queue;
    provider_config.mean_service_time = config_.provider_service_time;
    agent.provider = std::make_unique<service::ServiceProvider>(
        sim_, net_, cluster_.daemon(index), provider_config);
    agent.provider->host_service(config_.service, agent.hosted_partitions);
    agent.provider->start();
  }

  // Every node fronts users.
  agent.consumer = std::make_unique<service::ServiceConsumer>(
      sim_, net_, cluster_.daemon(index), config_.consumer);
  agent.consumer->start();
  if (accepting_) schedule_arrival(index);
}

void WorkloadDriver::teardown_agent(size_t index, bool count_aborted) {
  Agent& agent = agents_[index];
  sim_.cancel(agent.arrival);
  agent.arrival = sim::kInvalidEventId;
  if (count_aborted) {
    for (int phase = 0; phase < kPhaseCount; ++phase) {
      phases_[static_cast<size_t>(phase)].aborted +=
          agent.inflight[static_cast<size_t>(phase)];
    }
  }
  agent.inflight = {};
  // Destroying the consumer clears its pending map without firing
  // callbacks; the inflight counters above already graded those requests.
  agent.consumer.reset();
  agent.provider.reset();
}

void WorkloadDriver::quiesce() {
  accepting_ = false;
  for (Agent& agent : agents_) {
    sim_.cancel(agent.arrival);
    agent.arrival = sim::kInvalidEventId;
  }
}

void WorkloadDriver::stop() {
  if (!started_) return;
  accepting_ = false;
  for (size_t i = 0; i < agents_.size(); ++i) {
    teardown_agent(i, /*count_aborted=*/true);
  }
  started_ = false;
}

void WorkloadDriver::note_kill(size_t index) {
  if (!started_ || index >= agents_.size()) return;
  teardown_agent(index, /*count_aborted=*/true);
}

void WorkloadDriver::note_restart(size_t index) {
  if (!started_ || index >= agents_.size()) return;
  if (agents_[index].consumer != nullptr) return;  // never torn down
  build_agent(index);
}

void WorkloadDriver::schedule_arrival(size_t index) {
  Agent& agent = agents_[index];
  const double mean_gap_ns = 1e9 / config_.requests_per_sec;
  auto gap = static_cast<sim::Duration>(rng_.exponential(mean_gap_ns));
  sim::Time at = std::max(sim_.now(), config_.warmup) + gap;
  agent.arrival = sim_.schedule_at(at, [this, index] { fire(index); });
}

void WorkloadDriver::fire(size_t index) {
  Agent& agent = agents_[index];
  agent.arrival = sim::kInvalidEventId;
  if (!accepting_ || agent.consumer == nullptr) return;

  const int phase = phase_of(sim_.now());
  const int partition =
      static_cast<int>(rng_.uniform_u64(
          static_cast<uint64_t>(config_.partitions)));
  ++issued_total_;
  ++phases_[static_cast<size_t>(phase)].issued;
  agent.inflight[static_cast<size_t>(phase)] += 1;
  agent.issued->add();

  agent.consumer->invoke(
      config_.service, partition, config_.request_bytes,
      config_.response_bytes,
      [this, index, phase](const service::InvokeResult& result) {
        on_complete(index, phase, result);
      });
  schedule_arrival(index);
}

void WorkloadDriver::on_complete(size_t index, int phase,
                                 const service::InvokeResult& result) {
  Agent& agent = agents_[index];
  PhaseSlo& slo = phases_[static_cast<size_t>(phase)];
  TAMP_CHECK(agent.inflight[static_cast<size_t>(phase)] > 0);
  agent.inflight[static_cast<size_t>(phase)] -= 1;

  slo.attempts += static_cast<uint64_t>(result.attempts);
  slo.misroutes += static_cast<uint64_t>(result.misroutes);
  if (result.via_proxy) {
    ++slo.via_proxy;
    agent.proxy_fallbacks->add();
  }
  agent.attempts->add(static_cast<uint64_t>(result.attempts));
  agent.misroutes->add(static_cast<uint64_t>(result.misroutes));

  if (result.ok()) {
    ++slo.ok;
    agent.ok->add();
    latencies_[static_cast<size_t>(phase)].push_back(result.latency);
    agent.latency->observe(static_cast<double>(result.latency));
  } else {
    ++slo.failed;
    slo.failed_by_cause[static_cast<size_t>(result.cause)] += 1;
    agent.failed->add();
  }
}

std::vector<PhaseSlo> WorkloadDriver::report() const {
  std::vector<PhaseSlo> out(phases_.begin(), phases_.end());
  for (int phase = 0; phase < kPhaseCount; ++phase) {
    PhaseSlo& slo = out[static_cast<size_t>(phase)];
    slo.unresolved = 0;
    for (const Agent& agent : agents_) {
      slo.unresolved += agent.inflight[static_cast<size_t>(phase)];
    }
    std::vector<int64_t> sorted = latencies_[static_cast<size_t>(phase)];
    std::sort(sorted.begin(), sorted.end());
    slo.p50_ns = rank_percentile(sorted, 0.5);
    slo.p99_ns = rank_percentile(sorted, 0.99);
    slo.p999_ns = rank_percentile(sorted, 0.999);
    slo.max_ns = sorted.empty() ? -1 : sorted.back();
  }
  return out;
}

std::string WorkloadDriver::report_json() const {
  const std::vector<PhaseSlo> phases = report();
  std::string out;
  char buf[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  uint64_t completed = 0, aborted = 0, unresolved = 0;
  for (const PhaseSlo& slo : phases) {
    completed += slo.ok + slo.failed;
    aborted += slo.aborted;
    unresolved += slo.unresolved;
  }
  emit("{\"service\":\"%s\",\"issued\":%" PRIu64 ",\"completed\":%" PRIu64
       ",\"aborted\":%" PRIu64 ",\"unresolved\":%" PRIu64 ",\"phases\":[",
       config_.service.c_str(), issued_total_, completed, aborted, unresolved);
  for (int phase = 0; phase < kPhaseCount; ++phase) {
    const PhaseSlo& slo = phases[static_cast<size_t>(phase)];
    if (phase > 0) out += ",";
    emit("{\"phase\":\"%s\",\"issued\":%" PRIu64 ",\"ok\":%" PRIu64
         ",\"failed\":%" PRIu64 ",\"aborted\":%" PRIu64
         ",\"unresolved\":%" PRIu64 ",\"attempts\":%" PRIu64
         ",\"misroutes\":%" PRIu64 ",\"via_proxy\":%" PRIu64,
         phase_name(phase), slo.issued, slo.ok, slo.failed, slo.aborted,
         slo.unresolved, slo.attempts, slo.misroutes, slo.via_proxy);
    for (int cause = 1; cause < service::kFailureCauseCount; ++cause) {
      emit(",\"fail_%s\":%" PRIu64,
           service::failure_cause_name(
               static_cast<service::FailureCause>(cause)),
           slo.failed_by_cause[static_cast<size_t>(cause)]);
    }
    emit(",\"p50_ns\":%" PRId64 ",\"p99_ns\":%" PRId64 ",\"p999_ns\":%" PRId64
         ",\"max_ns\":%" PRId64 "}",
         slo.p50_ns, slo.p99_ns, slo.p999_ns, slo.max_ns);
  }
  out += "]}";
  return out;
}

}  // namespace tamp::workload
