// Application traffic layer: a deterministic open-loop workload generator
// (the paper's Neptune user requests) driven over each node's live
// ServiceConsumer + directory view while chaos plans run underneath.
//
// Every node runs a consumer issuing Poisson-arrival requests against a
// replicated (service, partition) set hosted by ServiceProviders placed
// round-robin across the cluster. The driver grades what each failure cost
// users — misroutes to dead replicas, retry amplification, proxy-fallback
// rate, and tail latency — bucketed into three scenario phases (pre-fault,
// fault window, heal window) by request *start* time.
//
// Determinism contract: arrivals draw from the driver's own seeded Rng (the
// simulation executes events single-threaded in deterministic order), all
// accounting is integer-valued, and report_json() renders integers only —
// so a scenario's SLO report is byte-identical across same-seed runs at any
// parallel-runner worker count.
#pragma once

#include <array>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "protocols/cluster.h"
#include "service/consumer.h"
#include "service/provider.h"
#include "util/rng.h"

namespace tamp::workload {

struct WorkloadConfig {
  std::string service = "app";
  int partitions = 4;
  int replicas = 2;  // providers per partition
  // Open-loop arrival rate per consumer node (requests/second). Open loop:
  // arrivals never wait for completions, so a slow system accumulates
  // latency instead of silently shedding offered load.
  double requests_per_sec = 25.0;
  uint32_t request_bytes = 64;
  uint32_t response_bytes = 256;
  // Arrivals start here, leaving the directory time to converge so the
  // pre-fault phase measures a healthy system.
  sim::Duration warmup = 10 * sim::kSecond;
  sim::Duration provider_service_time = 2 * sim::kMillisecond;
  int provider_concurrency = 4;
  size_t provider_max_queue = 256;
  service::ConsumerConfig consumer;  // build via ConsumerConfigBuilder
};

// Scenario phases, classified by request start time.
inline constexpr int kPhaseCount = 3;
const char* phase_name(int phase);  // "pre" | "fault" | "heal"

// Per-phase SLO aggregate. Counts partition a phase's issued requests
// exactly: issued == ok + failed + aborted + unresolved.
struct PhaseSlo {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;      // callback fired with a failure cause
  uint64_t aborted = 0;     // consumer torn down (node crash) mid-flight
  uint64_t unresolved = 0;  // still in flight at report time
  uint64_t attempts = 0;    // dispatch attempts over completed requests
  uint64_t misroutes = 0;   // directory rows acted on that pointed at a
                            //   non-serving replica
  uint64_t via_proxy = 0;   // completions that took the WAN relay path
  std::array<uint64_t, service::kFailureCauseCount> failed_by_cause{};
  // Exact-rank percentiles over successful latencies, ns; -1 when empty.
  int64_t p50_ns = -1;
  int64_t p99_ns = -1;
  int64_t p999_ns = -1;
  int64_t max_ns = -1;
};

class WorkloadDriver {
 public:
  // The cluster's daemons must exist (construction) but arrivals only begin
  // after start(). `seed` feeds the arrival process; scenario runners pass
  // the scenario seed so the workload is part of the reproduction tuple.
  WorkloadDriver(sim::Simulation& sim, net::Network& net,
                 protocols::Cluster& cluster, WorkloadConfig config,
                 uint64_t seed);
  ~WorkloadDriver();

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  // Phase boundaries: [0, fault_start) = pre, [fault_start, heal_start) =
  // fault, [heal_start, inf) = heal. Defaults put everything in "pre".
  void set_phase_bounds(sim::Time fault_start, sim::Time heal_start);

  // Create providers/consumers, register services, schedule first arrivals
  // (at config.warmup + an exponential gap). Call after the cluster's
  // daemons have been started.
  void start();
  // Stop issuing new arrivals; in-flight requests keep running so the tail
  // can drain before the horizon.
  void quiesce();
  // Tear everything down. In-flight requests count as aborted.
  void stop();

  // Scenario-runner hooks mirroring Cluster::kill / Cluster::restart.
  // Cluster::restart *replaces* the daemon object, so the node's provider
  // and consumer (which hold references into it) must be rebuilt, not
  // merely restarted.
  void note_kill(size_t index);
  void note_restart(size_t index);

  uint64_t issued() const { return issued_total_; }
  bool started() const { return started_; }

  // Aggregated per-phase SLO (kPhaseCount entries). Requests still in
  // flight are reported as unresolved under their start phase.
  std::vector<PhaseSlo> report() const;
  // Deterministic single-line JSON rendering of report(): integer fields
  // only, byte-identical across same-seed runs.
  std::string report_json() const;

 private:
  struct Agent {
    std::unique_ptr<service::ServiceProvider> provider;
    std::vector<int> hosted_partitions;  // replayed on rebuild after restart
    std::unique_ptr<service::ServiceConsumer> consumer;
    sim::EventId arrival = sim::kInvalidEventId;
    std::array<uint64_t, kPhaseCount> inflight{};
    // Registry handles (per node), resolved once.
    obs::Counter* issued = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* attempts = nullptr;
    obs::Counter* misroutes = nullptr;
    obs::Counter* proxy_fallbacks = nullptr;
    obs::Histogram* latency = nullptr;
  };

  int phase_of(sim::Time at) const;
  void build_agent(size_t index);
  void teardown_agent(size_t index, bool count_aborted);
  void schedule_arrival(size_t index);
  void fire(size_t index);
  void on_complete(size_t index, int phase,
                   const service::InvokeResult& result);

  sim::Simulation& sim_;
  net::Network& net_;
  protocols::Cluster& cluster_;
  WorkloadConfig config_;
  util::Rng rng_;
  bool started_ = false;
  bool accepting_ = false;
  sim::Time fault_start_ = std::numeric_limits<sim::Time>::max();
  sim::Time heal_start_ = std::numeric_limits<sim::Time>::max();
  std::vector<Agent> agents_;
  uint64_t issued_total_ = 0;
  std::array<PhaseSlo, kPhaseCount> phases_{};
  // Successful latencies per phase (ns), for exact-rank percentiles.
  std::array<std::vector<int64_t>, kPhaseCount> latencies_;
};

}  // namespace tamp::workload
