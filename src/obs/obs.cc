#include "obs/obs.h"

#include <cinttypes>
#include <cstdio>

namespace tamp::obs {

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kNet:
      return "net";
    case Protocol::kAllToAll:
      return "alltoall";
    case Protocol::kGossip:
      return "gossip";
    case Protocol::kHier:
      return "hier";
    case Protocol::kProxy:
      return "proxy";
    case Protocol::kChaos:
      return "chaos";
    case Protocol::kWorkload:
      return "workload";
    case Protocol::kCount:
      break;
  }
  return "?";
}

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFault:
      return "fault";
    case TraceKind::kGroupJoin:
      return "group_join";
    case TraceKind::kGroupLeave:
      return "group_leave";
    case TraceKind::kElectionStart:
      return "election_start";
    case TraceKind::kCoordinator:
      return "coordinator";
    case TraceKind::kEpochMint:
      return "epoch_mint";
    case TraceKind::kEpochSupersede:
      return "epoch_supersede";
    case TraceKind::kStaleReject:
      return "stale_reject";
    case TraceKind::kDeltaEmit:
      return "delta_emit";
    case TraceKind::kDeltaApply:
      return "delta_apply";
    case TraceKind::kTimeoutExpiry:
      return "timeout_expiry";
    case TraceKind::kBootstrapRequest:
      return "bootstrap_request";
    case TraceKind::kSyncRequest:
      return "sync_request";
    case TraceKind::kRetry:
      return "retry";
    case TraceKind::kBudgetExhausted:
      return "budget_exhausted";
    case TraceKind::kBusyPushback:
      return "busy_pushback";
    case TraceKind::kBusyDeferral:
      return "busy_deferral";
    case TraceKind::kEgressDrop:
      return "egress_drop";
    case TraceKind::kVipTakeover:
      return "vip_takeover";
    case TraceKind::kTopologyChange:
      return "topology_change";
    case TraceKind::kCount:
      break;
  }
  return "?";
}

// --- MetricsRegistry -------------------------------------------------------

template <class Cell>
Cell* MetricsRegistry::resolve(Table<Cell>& table, Cell* scratch,
                               Protocol protocol, std::string_view name,
                               NodeId node) {
  if (!enabled_) return scratch;
  Key key{static_cast<uint8_t>(protocol), std::string(name), node};
  auto it = table.find(key);
  if (it == table.end()) {
    it = table.emplace(std::move(key), std::make_unique<Cell>()).first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::counter(Protocol protocol, std::string_view name,
                                  NodeId node) {
  return resolve(counters_, &scratch_counter_, protocol, name, node);
}

Gauge* MetricsRegistry::gauge(Protocol protocol, std::string_view name,
                              NodeId node) {
  return resolve(gauges_, &scratch_gauge_, protocol, name, node);
}

Histogram* MetricsRegistry::histogram(Protocol protocol, std::string_view name,
                                      NodeId node) {
  return resolve(histograms_, &scratch_histogram_, protocol, name, node);
}

void MetricsRegistry::reset() {
  for (auto& [key, cell] : counters_) cell->value = 0;
  for (auto& [key, cell] : gauges_) cell->value = 0.0;
  for (auto& [key, cell] : histograms_) {
    cell->moments.reset();
    cell->tail.reset();
  }
  scratch_counter_.value = 0;
  scratch_gauge_.value = 0.0;
  scratch_histogram_.moments.reset();
  scratch_histogram_.tail.reset();
}

void MetricsRegistry::reset(Protocol protocol) {
  const auto p = static_cast<uint8_t>(protocol);
  for (auto& [key, cell] : counters_) {
    if (key.protocol == p) cell->value = 0;
  }
  for (auto& [key, cell] : gauges_) {
    if (key.protocol == p) cell->value = 0.0;
  }
  for (auto& [key, cell] : histograms_) {
    if (key.protocol != p) continue;
    cell->moments.reset();
    cell->tail.reset();
  }
}

uint64_t MetricsRegistry::counter_value(Protocol protocol,
                                        std::string_view name,
                                        NodeId node) const {
  if (!enabled_) return 0;
  auto it = counters_.find(
      Key{static_cast<uint8_t>(protocol), std::string(name), node});
  return it != counters_.end() ? it->second->value : 0;
}

double MetricsRegistry::gauge_value(Protocol protocol, std::string_view name,
                                    NodeId node) const {
  if (!enabled_) return 0.0;
  auto it = gauges_.find(
      Key{static_cast<uint8_t>(protocol), std::string(name), node});
  return it != gauges_.end() ? it->second->value : 0.0;
}

const Histogram* MetricsRegistry::find_histogram(Protocol protocol,
                                                 std::string_view name,
                                                 NodeId node) const {
  if (!enabled_) return nullptr;
  auto it = histograms_.find(
      Key{static_cast<uint8_t>(protocol), std::string(name), node});
  return it != histograms_.end() ? it->second.get() : nullptr;
}

uint64_t MetricsRegistry::counter_sum_over_nodes(Protocol protocol,
                                                 std::string_view name) const {
  if (!enabled_) return 0;
  const auto p = static_cast<uint8_t>(protocol);
  uint64_t sum = 0;
  // Keys sort by (protocol, name, node): the run we want is contiguous.
  auto it = counters_.lower_bound(Key{p, std::string(name), 0});
  for (; it != counters_.end(); ++it) {
    if (it->first.protocol != p || it->first.name != name) break;
    if (it->first.node == kNoNode) continue;
    sum += it->second->value;
  }
  return sum;
}

uint64_t MetricsRegistry::counter_prefix_sum(Protocol protocol,
                                             std::string_view prefix,
                                             NodeId node) const {
  if (!enabled_) return 0;
  const auto p = static_cast<uint8_t>(protocol);
  uint64_t sum = 0;
  auto it = counters_.lower_bound(Key{p, std::string(prefix), 0});
  for (; it != counters_.end(); ++it) {
    if (it->first.protocol != p || !it->first.name.starts_with(prefix)) break;
    if (it->first.node == node) sum += it->second->value;
  }
  return sum;
}

void MetricsRegistry::visit_counters(
    const std::function<void(const CounterRow&)>& fn) const {
  if (!enabled_) return;
  for (const auto& [key, cell] : counters_) {
    fn(CounterRow{static_cast<Protocol>(key.protocol), key.name, key.node,
                  cell->value});
  }
}

namespace {

void append_key(std::string& out, const MetricsRegistry::CounterRow& row) {
  out += "{\"proto\":\"";
  out += protocol_name(row.protocol);
  out += "\",\"name\":\"";
  out += row.name;
  out += "\",\"node\":";
  out += row.node == kNoNode ? std::string("-1")
                             : std::to_string(row.node);
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":[";
  if (enabled_) {
    bool first = true;
    for (const auto& [key, cell] : counters_) {
      if (cell->value == 0) continue;
      if (!first) out += ",";
      first = false;
      append_key(out, CounterRow{static_cast<Protocol>(key.protocol),
                                 key.name, key.node, cell->value});
      out += ",\"value\":" + std::to_string(cell->value) + "}";
    }
  }
  out += "],\"gauges\":[";
  if (enabled_) {
    bool first = true;
    for (const auto& [key, cell] : gauges_) {
      if (!first) out += ",";
      first = false;
      append_key(out, CounterRow{static_cast<Protocol>(key.protocol),
                                 key.name, key.node, 0});
      out += ",\"value\":" + format_double(cell->value) + "}";
    }
  }
  out += "],\"histograms\":[";
  if (enabled_) {
    bool first = true;
    for (const auto& [key, cell] : histograms_) {
      if (!first) out += ",";
      first = false;
      append_key(out, CounterRow{static_cast<Protocol>(key.protocol),
                                 key.name, key.node, 0});
      out += ",\"count\":" + std::to_string(cell->moments.count());
      out += ",\"mean\":" + format_double(cell->moments.mean());
      out += ",\"min\":" + format_double(cell->moments.min());
      out += ",\"max\":" + format_double(cell->moments.max()) + "}";
    }
  }
  out += "]}";
  return out;
}

// --- Tracer ----------------------------------------------------------------

void Tracer::set_capacity(size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++overwritten_;
  }
}

void Tracer::clear() {
  ring_.clear();
  recorded_ = 0;
  overwritten_ = 0;
}

void Tracer::push(const TraceEvent& event) {
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++overwritten_;
  }
  ring_.push_back(event);
  ++recorded_;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  out.reserve(ring_.size() * 64);
  for (const TraceEvent& event : ring_) {
    out += "{\"t\":" + std::to_string(event.at);
    out += ",\"node\":";
    out += event.node == kNoNode ? std::string("-1")
                                 : std::to_string(event.node);
    out += ",\"kind\":\"";
    out += trace_kind_name(event.kind);
    out += "\",\"level\":" + std::to_string(event.level);
    out += ",\"a\":" + std::to_string(event.a);
    out += ",\"b\":" + std::to_string(event.b);
    out += "}\n";
  }
  return out;
}

}  // namespace tamp::obs
