// Unified observability layer: a typed metrics registry and a deterministic
// structured event tracer, shared by the transport, the three membership
// protocols, the proxy, and the chaos harness.
//
// Design constraints, in order:
//  * Determinism. Every recorded value derives from the simulation (virtual
//    time, seeded RNG, integer ids). Trace serialization is integer-only, so
//    two runs with the same seed produce byte-identical JSONL — traces are
//    diffable regression artifacts, not logs.
//  * Hot-path cost. Counters are resolved once into stable `Counter*`
//    handles (a map lookup at construction, a single add on the data path);
//    a disabled tracer costs one inline branch per potential event.
//  * One schema. Metrics are keyed by {protocol, name, node}; the registry
//    is the only accounting surface (the legacy per-component stat structs
//    — `TrafficStats`, `HierStats`, `ProxyStats` — are gone).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "sim/time.h"
#include "util/stats.h"

namespace tamp::obs {

// Mirrors net::HostId (obs sits below net in the layering, so the alias is
// restated rather than included).
using NodeId = uint32_t;
// Aggregate / node-less metrics (e.g. transport totals) live under this
// pseudo-node; per-node sums deliberately exclude it.
inline constexpr NodeId kNoNode = UINT32_MAX;

// The subsystem that owns a metric — the coarse half of the metric key.
enum class Protocol : uint8_t {
  kNet = 0,
  kAllToAll,
  kGossip,
  kHier,
  kProxy,
  kChaos,
  kWorkload,
  kCount,
};
const char* protocol_name(Protocol protocol);

// --- metric cells ---------------------------------------------------------

struct Counter {
  uint64_t value = 0;
  void add(uint64_t delta = 1) { value += delta; }
};

struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

// Streaming moments plus exact percentiles; meant for rare-path
// distributions (serve sizes, convergence times), not per-packet samples.
struct Histogram {
  util::OnlineStats moments;
  util::Percentiles tail;
  void observe(double v) {
    moments.add(v);
    tail.add(v);
  }
};

// --- registry --------------------------------------------------------------

// Typed metric store keyed by {protocol, name, node}. Handle resolution
// (`counter()` etc.) is idempotent and returns a pointer that stays valid
// for the registry's lifetime; `reset()` zeroes values without invalidating
// handles, so components keep their cached pointers across measurement
// windows.
//
// When disabled, resolution hands out a shared scratch cell (writes vanish)
// and every query reports zero / empty. Set the flag before constructing
// the components to be silenced: handles resolved while enabled keep
// recording into their real cells, though queries still report nothing.
class MetricsRegistry {
 public:
  Counter* counter(Protocol protocol, std::string_view name,
                   NodeId node = kNoNode);
  Gauge* gauge(Protocol protocol, std::string_view name,
               NodeId node = kNoNode);
  Histogram* histogram(Protocol protocol, std::string_view name,
                       NodeId node = kNoNode);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Zero every value (all protocols, or one); handles stay valid.
  void reset();
  void reset(Protocol protocol);

  // --- queries (0 / empty when the metric does not exist or disabled) -----
  uint64_t counter_value(Protocol protocol, std::string_view name,
                         NodeId node = kNoNode) const;
  double gauge_value(Protocol protocol, std::string_view name,
                     NodeId node = kNoNode) const;
  // Sum of `name` across all real nodes (the kNoNode aggregate excluded).
  uint64_t counter_sum_over_nodes(Protocol protocol,
                                  std::string_view name) const;
  // Sum of every counter under `node` whose name starts with `prefix`.
  uint64_t counter_prefix_sum(Protocol protocol, std::string_view prefix,
                              NodeId node = kNoNode) const;
  // Read access to an existing histogram cell (nullptr when absent or the
  // registry is disabled) — the query-side companion of `histogram()`.
  const Histogram* find_histogram(Protocol protocol, std::string_view name,
                                  NodeId node = kNoNode) const;

  struct CounterRow {
    Protocol protocol;
    std::string_view name;
    NodeId node;
    uint64_t value;
  };
  // Deterministic iteration (sorted by protocol, name, node) over all
  // counters, zero-valued ones included.
  void visit_counters(const std::function<void(const CounterRow&)>& fn) const;

  // Deterministic JSON snapshot: non-zero counters, all gauges, all
  // histograms, sorted by key.
  std::string to_json() const;

 private:
  struct Key {
    uint8_t protocol;
    std::string name;
    NodeId node;
    auto operator<=>(const Key&) const = default;
  };
  template <class Cell>
  using Table = std::map<Key, std::unique_ptr<Cell>>;

  template <class Cell>
  Cell* resolve(Table<Cell>& table, Cell* scratch, Protocol protocol,
                std::string_view name, NodeId node);

  Table<Counter> counters_;
  Table<Gauge> gauges_;
  Table<Histogram> histograms_;
  Counter scratch_counter_;
  Gauge scratch_gauge_;
  Histogram scratch_histogram_;
  bool enabled_ = true;
};

// --- tracer ----------------------------------------------------------------

// Event taxonomy. Every structurally interesting protocol transition gets a
// kind; the two payload words carry kind-specific integers (documented at
// the record sites). Values are stable — they are the bit positions of the
// kinds mask on the control surface.
enum class TraceKind : uint8_t {
  kFault = 0,            // a = FaultAction variant index
  kGroupJoin = 1,        // hier: joined a level's channel
  kGroupLeave = 2,       // hier: left a level's channel
  kElectionStart = 3,    // a = level epoch at candidacy
  kCoordinator = 4,      // a = asserted epoch
  kEpochMint = 5,        // a = minted epoch
  kEpochSupersede = 6,   // a = adopted epoch, b = new leader
  kStaleReject = 7,      // a = claimant, b = claimed epoch
  kDeltaEmit = 8,        // a = records in the update msg, b = epoch
  kDeltaApply = 9,       // a = subject, b = record seq
  kTimeoutExpiry = 10,   // a = member declared dead
  kBootstrapRequest = 11,// a = target leader
  kSyncRequest = 12,     // a = origin polled
  kRetry = 13,           // a = target, b = attempts so far
  kBudgetExhausted = 14, // a = target
  kBusyPushback = 15,    // a = refused requester, b = retry_after ns
  kBusyDeferral = 16,    // a = busy responder, b = retry_after ns
  kEgressDrop = 17,      // a = wire kind, b = wire bytes
  kVipTakeover = 18,     // proxy VIP failover, a = datacenter
  kTopologyChange = 19,  // hier: reacted to a topology epoch change,
                         //   a = new epoch, b = members dropped as
                         //   out-of-scope across all levels
  kCount,
};
const char* trace_kind_name(TraceKind kind);

constexpr uint64_t trace_bit(TraceKind kind) {
  return uint64_t{1} << static_cast<unsigned>(kind);
}
inline constexpr uint64_t kAllTraceKinds =
    (uint64_t{1} << static_cast<unsigned>(TraceKind::kCount)) - 1;

struct TraceEvent {
  sim::Time at = 0;
  NodeId node = kNoNode;
  TraceKind kind = TraceKind::kFault;
  int16_t level = -1;  // hier tree level; -1 when not applicable
  uint64_t a = 0;
  uint64_t b = 0;
};

// Bounded ring of structured events. Disabled by default: the record()
// guard is the only cost tracing adds to an untraced run.
class Tracer {
 public:
  bool enabled() const { return enabled_; }
  size_t capacity() const { return capacity_; }
  uint64_t kinds_mask() const { return kinds_mask_; }

  void set_enabled(bool on) { enabled_ = on; }
  void set_capacity(size_t capacity);
  void set_kinds_mask(uint64_t mask) { kinds_mask_ = mask; }

  bool wants(TraceKind kind) const {
    return enabled_ &&
           ((kinds_mask_ >> static_cast<unsigned>(kind)) & 1) != 0;
  }

  void record(TraceKind kind, NodeId node, sim::Time at, int level = -1,
              uint64_t a = 0, uint64_t b = 0) {
    if (!wants(kind)) return;
    push(TraceEvent{at, node, kind, static_cast<int16_t>(level), a, b});
  }

  const std::deque<TraceEvent>& events() const { return ring_; }
  uint64_t recorded() const { return recorded_; }       // accepted, ever
  uint64_t overwritten() const { return overwritten_; } // evicted by the ring
  void clear();

  // One event per line, integer fields only — byte-identical across
  // same-seed runs. `node` is -1 for kNoNode.
  std::string to_jsonl() const;

 private:
  void push(const TraceEvent& event);

  std::deque<TraceEvent> ring_;
  size_t capacity_ = size_t{1} << 16;
  uint64_t kinds_mask_ = kAllTraceKinds;
  bool enabled_ = false;
  uint64_t recorded_ = 0;
  uint64_t overwritten_ = 0;
};

// The pair every instrumented component reaches through (the Network owns
// one; daemons and benches borrow it from there).
struct Observability {
  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace tamp::obs
