// Tiny command-line flag parser for the benchmark and example binaries.
//
//   util::FlagSet flags("fig11_bandwidth");
//   auto& nodes = flags.add_int("nodes", 100, "cluster size");
//   auto& seed  = flags.add_int("seed", 1, "rng seed");
//   flags.parse(argc, argv);           // accepts --nodes=200 / --nodes 200
//
// Unknown flags are an error; --help prints usage and exits(0).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tamp::util {

class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  int64_t& add_int(const std::string& name, int64_t default_value,
                   const std::string& help);
  double& add_double(const std::string& name, double default_value,
                     const std::string& help);
  bool& add_bool(const std::string& name, bool default_value,
                 const std::string& help);
  std::string& add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help);

  // Parses argv; on --help prints usage and std::exit(0); on a malformed or
  // unknown flag prints usage to stderr and std::exit(2).
  void parse(int argc, char** argv);

  std::string usage() const;

 private:
  struct Flag {
    enum class Type { kInt, kDouble, kBool, kString } type;
    std::string help;
    std::string default_repr;
    // Exactly one is used, per `type`.
    std::unique_ptr<int64_t> int_value;
    std::unique_ptr<double> double_value;
    std::unique_ptr<bool> bool_value;
    std::unique_ptr<std::string> string_value;
  };

  bool apply(const std::string& name, const std::string& value);

  std::string program_;
  std::map<std::string, Flag> flags_;
};

}  // namespace tamp::util
