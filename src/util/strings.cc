#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <set>

namespace tamp::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<int64_t> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::vector<int>> expand_partition_spec(std::string_view spec) {
  spec = trim(spec);
  if (spec.empty() || spec == "*") return std::nullopt;
  std::set<int> ids;
  for (const auto& piece : split(spec, ',')) {
    std::string_view p = trim(piece);
    if (p.empty()) continue;
    size_t dash = p.find('-');
    if (dash == std::string_view::npos) {
      auto v = parse_int(p);
      if (!v || *v < 0) return std::vector<int>{};
      ids.insert(static_cast<int>(*v));
    } else {
      auto lo = parse_int(p.substr(0, dash));
      auto hi = parse_int(p.substr(dash + 1));
      if (!lo || !hi || *lo < 0 || *hi < *lo) return std::vector<int>{};
      for (int64_t v = *lo; v <= *hi; ++v) ids.insert(static_cast<int>(v));
    }
  }
  return std::vector<int>(ids.begin(), ids.end());
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return strformat("%.2f %s", bytes, units[unit]);
}

}  // namespace tamp::util
