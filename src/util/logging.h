// Minimal streaming logger.
//
// Usage:
//   TAMP_LOG(Info) << "node " << id << " elected leader";
//
// The logger is process-global — the one piece of shared mutable state the
// parallel chaos runner's scenario threads touch — so it is thread-safe:
// the level gate is a relaxed atomic (one load on the fast path of a
// disabled statement) and line emission is serialized under a mutex, so
// concurrent scenarios never tear each other's lines. Severity below the
// configured threshold is compiled down to a no-op stream. Benchmarks set
// the threshold to Warn so logging never perturbs measured rates. A
// simulation-time hook can be installed so log lines carry virtual time
// instead of wall time; note that sink and time-source hooks are global,
// so per-scenario state must not leak into them (scenario code instead
// prefixes its lines with the scenario name).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace tamp::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  // When set, each line is prefixed with the returned virtual-time string.
  void set_time_source(std::function<std::string()> source);
  void clear_time_source();

  // Redirect output (tests capture lines; default writes to stderr).
  void set_sink(std::function<void(LogLevel, const std::string&)> sink);
  void clear_sink();

  void write(LogLevel level, const std::string& message);

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           static_cast<int>(level_.load(std::memory_order_relaxed));
  }

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  // guards the hooks and serializes line emission
  std::function<std::string()> time_source_;
  std::function<void(LogLevel, const std::string&)> sink_;
};

// One log statement: accumulates into a stringstream, flushes on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the stream when the level is disabled.
struct NullLogMessage {
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

const char* log_level_name(LogLevel level);

}  // namespace tamp::util

#define TAMP_LOG(severity)                                            \
  if (!::tamp::util::Logger::instance().enabled(                      \
          ::tamp::util::LogLevel::k##severity))                       \
    ;                                                                 \
  else                                                                \
    ::tamp::util::LogMessage(::tamp::util::LogLevel::k##severity)
