// Capped jittered exponential backoff with an attempt budget.
//
// Used by solicited request/response exchanges (bootstrap and sync polls):
// each retry waits base * multiplier^attempt, capped, then spread by a
// symmetric jitter factor so a cohort of requesters created by the same
// event (mass join, healed partition) does not retry in lockstep. The
// budget bounds how long a requester hammers one target before escalating
// to a different recovery path.
//
// Durations are plain int64_t nanoseconds so util stays independent of the
// simulation layer; callers pass sim::Duration values directly.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace tamp::util {

struct RetryPolicy {
  int64_t base = 0;        // first retry delay (ns)
  int64_t cap = 0;         // upper bound on the backoff (ns)
  double multiplier = 2.0;
  double jitter = 0.5;     // delay drawn from [b*(1-j), b*(1+j)]
  int budget = 5;          // attempts before the caller escalates

  // True once `attempts` sends have gone unanswered.
  bool exhausted(int attempts) const { return attempts >= budget; }

  // Deterministic backoff midpoint for retry number `attempt` (0-based).
  int64_t backoff(int attempt) const {
    double b = static_cast<double>(base);
    for (int i = 0; i < attempt && b < static_cast<double>(cap); ++i) {
      b *= multiplier;
    }
    if (b > static_cast<double>(cap)) b = static_cast<double>(cap);
    return static_cast<int64_t>(b);
  }

  // Jittered delay for retry number `attempt`.
  int64_t delay(int attempt, Rng& rng) const {
    int64_t b = backoff(attempt);
    double spread = jitter * (2.0 * rng.uniform_double() - 1.0);
    int64_t d = b + static_cast<int64_t>(static_cast<double>(b) * spread);
    return d > 0 ? d : 1;
  }
};

}  // namespace tamp::util
