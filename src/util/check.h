// Lightweight runtime assertion macros used across the library.
//
// TAMP_CHECK(cond) aborts with a message when `cond` is false, in every build
// type. It is used for internal invariants whose violation means the process
// state is corrupt; recoverable errors use exceptions or status returns.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tamp::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "TAMP_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace tamp::util

#define TAMP_CHECK(cond)                                    \
  do {                                                      \
    if (!(cond)) {                                          \
      ::tamp::util::check_failed(#cond, __FILE__, __LINE__); \
    }                                                       \
  } while (0)

#define TAMP_CHECK_MSG(cond, msg)                          \
  do {                                                     \
    if (!(cond)) {                                         \
      ::tamp::util::check_failed(msg, __FILE__, __LINE__); \
    }                                                      \
  } while (0)
