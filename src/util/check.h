// Lightweight runtime assertion macros used across the library.
//
// TAMP_CHECK(cond) aborts with a message when `cond` is false, in every build
// type. It is used for internal invariants whose violation means the process
// state is corrupt; recoverable errors use exceptions or status returns.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tamp::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "TAMP_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

// printf-style variant so failures can name the offending entity (host,
// device, ...) instead of just restating the condition.
[[noreturn]] inline void check_failed_fmt(const char* file, int line,
                                          const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] inline void check_failed_fmt(const char* file, int line,
                                          const char* fmt, ...) {
  std::fprintf(stderr, "TAMP_CHECK failed: ");
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, " at %s:%d\n", file, line);
  std::abort();
}

}  // namespace tamp::util

#define TAMP_CHECK(cond)                                    \
  do {                                                      \
    if (!(cond)) {                                          \
      ::tamp::util::check_failed(#cond, __FILE__, __LINE__); \
    }                                                       \
  } while (0)

// TAMP_CHECK_MSG(cond, "literal") or TAMP_CHECK_MSG(cond, "fmt %s", arg...).
#define TAMP_CHECK_MSG(cond, ...)                                      \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::tamp::util::check_failed_fmt(__FILE__, __LINE__, __VA_ARGS__); \
    }                                                                  \
  } while (0)
