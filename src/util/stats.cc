#include "util/stats.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace tamp::util {

void OnlineStats::add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats(); }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Percentiles::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::percentile(double q) {
  TAMP_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Percentiles::max() {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

void WindowedRate::add(int64_t now_ns, double amount) {
  evict(now_ns);
  samples_.push_back({now_ns, amount});
  in_window_ += amount;
  total_ += amount;
}

double WindowedRate::rate_per_sec(int64_t now_ns) {
  evict(now_ns);
  if (window_ns_ <= 0) return 0.0;
  return in_window_ * 1e9 / static_cast<double>(window_ns_);
}

void WindowedRate::evict(int64_t now_ns) {
  while (!samples_.empty() && samples_.front().t <= now_ns - window_ns_) {
    in_window_ -= samples_.front().amount;
    samples_.pop_front();
  }
}

std::string TimeSeries::to_csv() const {
  std::ostringstream out;
  out << "t," << name_ << "\n";
  for (const auto& p : points_) out << p.t << "," << p.value << "\n";
  return out.str();
}

}  // namespace tamp::util
