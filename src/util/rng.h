// Deterministic pseudo-random number generation.
//
// Every source of randomness in the library (gossip peer choice, packet
// loss, workload inter-arrival, backup-leader choice) draws from an Rng that
// is seeded explicitly, so a simulation run is a pure function of its seed.
//
// The generator is xoshiro256**, seeded via SplitMix64 — fast, high quality,
// and trivially reproducible across platforms (no reliance on libstdc++
// distribution internals: we implement the distributions we need).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace tamp::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) { reseed(seed); }

  void reseed(uint64_t seed);

  // Raw 64 random bits.
  uint64_t next_u64();

  // Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint64_t uniform_u64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double uniform_double();

  // Bernoulli trial.
  bool bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  int64_t poisson(double mean);

  // Fork a child generator whose stream is independent of subsequent draws
  // from this one. Used to give each simulated host its own stream so adding
  // a host does not perturb the randomness seen by others.
  Rng fork();

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(uniform_u64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Pick a uniformly random element index; container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    TAMP_CHECK(!items.empty());
    return items[uniform_u64(items.size())];
  }

 private:
  uint64_t state_[4];
};

}  // namespace tamp::util
