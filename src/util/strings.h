// Small string helpers shared by the config parser, partition-spec matcher
// and benchmark table printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tamp::util {

// Split on a delimiter; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delim);

// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

std::string to_lower(std::string_view text);

// Parse helpers returning nullopt on malformed input (never throw).
std::optional<int64_t> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);

// Expand a partition specification like "0", "1-3", "0,2,5-7" into the sorted
// list of partition ids. "*" (or empty) returns nullopt, meaning "all".
// Malformed specs also return an empty vector inside the optional? No:
// malformed specs return an empty list (matches nothing) and the caller may
// log. See tests for exact behaviour.
std::optional<std::vector<int>> expand_partition_spec(std::string_view spec);

// printf-style formatting into std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-readable byte count ("1.5 MB").
std::string human_bytes(double bytes);

}  // namespace tamp::util
