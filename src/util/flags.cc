#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace tamp::util {

int64_t& FlagSet::add_int(const std::string& name, int64_t default_value,
                          const std::string& help) {
  Flag flag;
  flag.type = Flag::Type::kInt;
  flag.help = help;
  flag.default_repr = std::to_string(default_value);
  flag.int_value = std::make_unique<int64_t>(default_value);
  auto [it, inserted] = flags_.emplace(name, std::move(flag));
  TAMP_CHECK_MSG(inserted, "duplicate flag");
  return *it->second.int_value;
}

double& FlagSet::add_double(const std::string& name, double default_value,
                            const std::string& help) {
  Flag flag;
  flag.type = Flag::Type::kDouble;
  flag.help = help;
  flag.default_repr = strformat("%g", default_value);
  flag.double_value = std::make_unique<double>(default_value);
  auto [it, inserted] = flags_.emplace(name, std::move(flag));
  TAMP_CHECK_MSG(inserted, "duplicate flag");
  return *it->second.double_value;
}

bool& FlagSet::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  Flag flag;
  flag.type = Flag::Type::kBool;
  flag.help = help;
  flag.default_repr = default_value ? "true" : "false";
  flag.bool_value = std::make_unique<bool>(default_value);
  auto [it, inserted] = flags_.emplace(name, std::move(flag));
  TAMP_CHECK_MSG(inserted, "duplicate flag");
  return *it->second.bool_value;
}

std::string& FlagSet::add_string(const std::string& name,
                                 const std::string& default_value,
                                 const std::string& help) {
  Flag flag;
  flag.type = Flag::Type::kString;
  flag.help = help;
  flag.default_repr = default_value;
  flag.string_value = std::make_unique<std::string>(default_value);
  auto [it, inserted] = flags_.emplace(name, std::move(flag));
  TAMP_CHECK_MSG(inserted, "duplicate flag");
  return *it->second.string_value;
}

bool FlagSet::apply(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  Flag& flag = it->second;
  switch (flag.type) {
    case Flag::Type::kInt: {
      auto v = parse_int(value);
      if (!v) return false;
      *flag.int_value = *v;
      return true;
    }
    case Flag::Type::kDouble: {
      auto v = parse_double(value);
      if (!v) return false;
      *flag.double_value = *v;
      return true;
    }
    case Flag::Type::kBool: {
      std::string lower = to_lower(value);
      if (lower == "true" || lower == "1" || lower == "yes" || lower.empty()) {
        *flag.bool_value = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        *flag.bool_value = false;
      } else {
        return false;
      }
      return true;
    }
    case Flag::Type::kString:
      *flag.string_value = value;
      return true;
  }
  return false;
}

void FlagSet::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n%s", arg.c_str(),
                   usage().c_str());
      std::exit(2);
    }
    std::string body = arg.substr(2);
    std::string name, value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      bool is_bool = it != flags_.end() && it->second.type == Flag::Type::kBool;
      if (!is_bool && i + 1 < argc) {
        value = argv[++i];
      }
    }
    if (!apply(name, value)) {
      std::fprintf(stderr, "bad flag '%s'\n%s", arg.c_str(), usage().c_str());
      std::exit(2);
    }
  }
}

std::string FlagSet::usage() const {
  std::ostringstream out;
  out << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default " << flag.default_repr << ")  "
        << flag.help << "\n";
  }
  return out.str();
}

}  // namespace tamp::util
