#include "util/rng.h"

#include <cmath>

namespace tamp::util {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

uint64_t Rng::uniform_u64(uint64_t bound) {
  TAMP_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  TAMP_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next_u64());  // full range
  return lo + static_cast<int64_t>(uniform_u64(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::exponential(double mean) {
  TAMP_CHECK(mean > 0.0);
  double u;
  do {
    u = uniform_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

int64_t Rng::poisson(double mean) {
  TAMP_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    double product = uniform_double();
    int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform_double();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  double u1, u2;
  do {
    u1 = uniform_double();
  } while (u1 <= 0.0);
  u2 = uniform_double();
  const double gauss =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  double value = mean + std::sqrt(mean) * gauss + 0.5;
  if (value < 0.0) value = 0.0;
  return static_cast<int64_t>(value);
}

Rng Rng::fork() {
  // Mix two draws into the child's seed so the parent stream advances and the
  // child is decorrelated.
  uint64_t a = next_u64();
  uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 29) ^ 0xa0761d6478bd642fULL);
}

}  // namespace tamp::util
