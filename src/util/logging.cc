#include "util/logging.h"

#include <cstdio>
#include <mutex>
#include <utility>

namespace tamp::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_time_source(std::function<std::string()> source) {
  std::lock_guard<std::mutex> lock(mutex_);
  time_source_ = std::move(source);
}

void Logger::clear_time_source() {
  std::lock_guard<std::mutex> lock(mutex_);
  time_source_ = nullptr;
}

void Logger::set_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::clear_sink() {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = nullptr;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  // One lock per emitted line: hooks can't be swapped mid-line and lines
  // from concurrent scenario threads never interleave mid-line.
  std::lock_guard<std::mutex> lock(mutex_);
  std::string prefix;
  if (time_source_) prefix = "[" + time_source_() + "] ";
  if (sink_) {
    sink_(level, prefix + message);
    return;
  }
  std::fprintf(stderr, "%s%-5s %s\n", prefix.c_str(), log_level_name(level),
               message.c_str());
}

}  // namespace tamp::util
