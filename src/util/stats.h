// Statistics helpers used by benchmarks and the evaluation harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

namespace tamp::util {

// Streaming mean / variance / min / max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores samples and answers percentile queries. Intended for latency
// distributions in the evaluation harness (sample counts are modest).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // q in [0, 1]; linear interpolation between closest ranks.
  double percentile(double q);
  double median() { return percentile(0.5); }
  double p95() { return percentile(0.95); }
  double p99() { return percentile(0.99); }
  double p999() { return percentile(0.999); }
  double mean() const;
  double max();
  void reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = false;
};

// Counts events (packets, bytes) within a sliding window of virtual time;
// used to report instantaneous rates like "received multicast packets per
// second" for the Figure 2 reproduction.
class WindowedRate {
 public:
  explicit WindowedRate(int64_t window_ns) : window_ns_(window_ns) {}

  void add(int64_t now_ns, double amount);
  // Rate per second over the window ending at `now_ns`.
  double rate_per_sec(int64_t now_ns);
  double total() const { return total_; }

 private:
  void evict(int64_t now_ns);
  struct Sample {
    int64_t t;
    double amount;
  };
  int64_t window_ns_;
  std::deque<Sample> samples_;
  double in_window_ = 0.0;
  double total_ = 0.0;
};

// A (time, value) series with CSV/console rendering — benches emit these as
// the figures' data series.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(double t, double value) { points_.push_back({t, value}); }
  const std::string& name() const { return name_; }
  size_t size() const { return points_.size(); }

  struct Point {
    double t;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

  std::string to_csv() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace tamp::util
