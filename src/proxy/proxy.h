// Membership proxy protocol (paper Section 3.2): cross-datacenter
// membership exchange and the plumbing for cross-DC service invocation.
//
// Each datacenter runs several proxies. Every proxy is an ordinary cluster
// node (it runs the hierarchical membership daemon and registers the
// "membership-proxy" service, so the whole cluster can find proxies through
// the normal yellow pages). Among the live proxies the one with the lowest
// node id acts as the *proxy leader* — the same lowest-id-wins rule as the
// bully election, decided here against the shared membership view every
// node already converges on.
//
// The leader:
//  * holds the datacenter's external virtual IP (IP failover: when the
//    leader dies, the next proxy claims the VIP, so remote datacenters keep
//    using one stable address — paper Fig. 6),
//  * periodically unicasts a ProxyHeartbeat carrying a compact *service
//    availability summary* of the local datacenter to every remote DC's
//    VIP (summaries omit per-machine details, exactly as the paper
//    prescribes; large summaries fragment at the transport),
//  * sends an immediate ProxyUpdate whenever the local summary changes,
//  * relays everything it learns about remote DCs to the local proxy group
//    over a reserved multicast channel, so backup proxies can take over
//    with warm state.
#pragma once

#include <map>
#include <optional>

#include "membership/messages.h"
#include "obs/obs.h"
#include "protocols/hier.h"
#include "protocols/ports.h"
#include "sim/timer.h"

namespace tamp::proxy {

inline constexpr char kProxyServiceName[] = "membership-proxy";

struct ProxyConfig {
  net::DatacenterId dc = 0;
  net::VirtualIpId local_vip = net::kInvalidVirtualIp;
  // Remote datacenters: dc id -> that DC's virtual IP.
  std::map<net::DatacenterId, net::VirtualIpId> remote_vips;
  sim::Duration period = sim::kSecond;   // WAN heartbeat period
  int max_losses = 5;                    // remote-DC heartbeat timeout factor
  net::ChannelId proxy_channel = protocols::kProxyChannelBase;
  uint8_t proxy_channel_ttl = 8;         // must span the local DC
  net::Port wan_port = protocols::kProxyWanPort;
  net::Port relay_port = protocols::kProxyWanPort + 1;  // local relay channel
};

// Knowledge about one remote datacenter.
struct RemoteDirectory {
  membership::ServiceSummary summary;
  sim::Time last_heard = 0;
  uint64_t last_seq = 0;
};

class ProxyDaemon {
 public:
  // `membership` is this node's cluster membership daemon (not owned). The
  // proxy registers the proxy service on it at start().
  ProxyDaemon(sim::Simulation& sim, net::Network& net,
              protocols::HierDaemon& membership, ProxyConfig config);
  ~ProxyDaemon();

  ProxyDaemon(const ProxyDaemon&) = delete;
  ProxyDaemon& operator=(const ProxyDaemon&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  membership::NodeId self() const { return membership_.self(); }
  const ProxyConfig& config() const { return config_; }

  // True when this proxy currently believes it is the datacenter's proxy
  // leader (and therefore holds the VIP).
  bool is_leader() const { return is_leader_; }

  // The availability summary of the local datacenter, as last computed.
  const membership::ServiceSummary& local_summary() const {
    return local_summary_;
  }

  // Remote state (either received directly as leader, or relayed by the
  // leader over the proxy channel).
  const std::map<net::DatacenterId, RemoteDirectory>& remote() const {
    return remote_;
  }

  // Which remote datacenters currently advertise at least one provider for
  // (service, partition)? Sorted by dc id.
  std::vector<net::DatacenterId> lookup_remote(const std::string& service,
                                               int partition) const;

 private:
  void tick();
  void recompute_summary(bool push_update);
  membership::ServiceSummary build_summary() const;
  void evaluate_leadership();
  void send_wan(const membership::Message& message, bool is_update);
  void on_wan_packet(const net::Packet& packet);
  void on_proxy_channel_packet(const net::Packet& packet);
  void ingest_remote(net::DatacenterId dc, uint64_t seq,
                     const membership::ServiceSummary& summary,
                     bool relay_locally);
  void expire_remotes();
  void resolve_metrics();

  // Registry handles under (obs::Protocol::kProxy, <name>, self).
  struct Metrics {
    obs::Counter* wan_heartbeats_sent = nullptr;
    obs::Counter* wan_updates_sent = nullptr;
    obs::Counter* wan_messages_received = nullptr;
    obs::Counter* vip_takeovers = nullptr;
    obs::Counter* relays_to_local_group = nullptr;
    obs::Gauge* is_leader = nullptr;  // 1.0 while holding the VIP
  };

  sim::Simulation& sim_;
  net::Network& net_;
  protocols::HierDaemon& membership_;
  ProxyConfig config_;
  sim::PeriodicTimer tick_timer_;
  bool running_ = false;
  bool is_leader_ = false;
  uint64_t seq_ = 0;
  membership::ServiceSummary local_summary_;
  std::map<net::DatacenterId, RemoteDirectory> remote_;
  Metrics metrics_;
};

}  // namespace tamp::proxy
