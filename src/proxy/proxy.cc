#include "proxy/proxy.h"

#include <algorithm>

#include "util/logging.h"

namespace tamp::proxy {

using membership::decode_message;
using membership::encode_message;
using membership::Message;
using membership::ProxyHeartbeatMsg;
using membership::ProxyUpdateMsg;
using membership::ServiceSummary;

ProxyDaemon::ProxyDaemon(sim::Simulation& sim, net::Network& net,
                         protocols::HierDaemon& membership, ProxyConfig config)
    : sim_(sim),
      net_(net),
      membership_(membership),
      config_(std::move(config)),
      tick_timer_(sim, config_.period, [this] { tick(); }) {
  resolve_metrics();
}

ProxyDaemon::~ProxyDaemon() { stop(); }

void ProxyDaemon::resolve_metrics() {
  auto& m = net_.obs().metrics;
  const obs::NodeId node = self();
  auto c = [&](std::string_view name) {
    return m.counter(obs::Protocol::kProxy, name, node);
  };
  metrics_.wan_heartbeats_sent = c("wan_heartbeats_sent");
  metrics_.wan_updates_sent = c("wan_updates_sent");
  metrics_.wan_messages_received = c("wan_messages_received");
  metrics_.vip_takeovers = c("vip_takeovers");
  metrics_.relays_to_local_group = c("relays_to_local_group");
  metrics_.is_leader = m.gauge(obs::Protocol::kProxy, "is_leader", node);
}

void ProxyDaemon::start() {
  if (running_) return;
  running_ = true;
  // Make this node discoverable as a proxy through the ordinary yellow
  // pages; the partition is the datacenter id.
  membership_.register_service(kProxyServiceName,
                               {static_cast<int>(config_.dc)});
  net_.join_group(self(), config_.proxy_channel);
  net_.bind(self(), config_.wan_port,
            [this](const net::Packet& p) { on_wan_packet(p); });
  net_.bind(self(), config_.relay_port,
            [this](const net::Packet& p) { on_proxy_channel_packet(p); });
  tick_timer_.start_with_random_phase();
}

void ProxyDaemon::stop() {
  if (!running_) return;
  tick_timer_.stop();
  net_.unbind(self(), config_.wan_port);
  net_.unbind(self(), config_.relay_port);
  net_.leave_group(self(), config_.proxy_channel);
  if (is_leader_ &&
      net_.virtual_ip_owner(config_.local_vip) == self()) {
    net_.assign_virtual_ip(config_.local_vip, net::kInvalidHost);
  }
  is_leader_ = false;
  metrics_.is_leader->set(0.0);
  running_ = false;
}

void ProxyDaemon::tick() {
  evaluate_leadership();
  recompute_summary(/*push_update=*/true);
  expire_remotes();
  if (!is_leader_) return;

  ProxyHeartbeatMsg heartbeat;
  heartbeat.dc = config_.dc;
  heartbeat.sender = self();
  heartbeat.seq = ++seq_;
  heartbeat.summary = local_summary_;
  send_wan(Message{heartbeat}, /*is_update=*/false);
}

void ProxyDaemon::evaluate_leadership() {
  // Lowest live proxy id wins — the bully rule, evaluated against the
  // converged membership view every proxy shares.
  auto proxies = membership_.table().lookup(kProxyServiceName, "*");
  membership::NodeId lowest = membership::kInvalidNode;
  for (const auto* entry : proxies) {
    lowest = std::min(lowest, entry->data.node);
  }
  const bool should_lead = lowest == self();
  if (should_lead && !is_leader_) {
    is_leader_ = true;
    metrics_.vip_takeovers->add();
    metrics_.is_leader->set(1.0);
    net_.obs().tracer.record(obs::TraceKind::kVipTakeover, self(), sim_.now(),
                             -1, config_.dc);
    net_.assign_virtual_ip(config_.local_vip, self());
    TAMP_LOG(Info) << "proxy " << self() << " takes over VIP of dc "
                   << config_.dc;
  } else if (!should_lead && is_leader_) {
    is_leader_ = false;
    metrics_.is_leader->set(0.0);
    if (net_.virtual_ip_owner(config_.local_vip) == self()) {
      net_.assign_virtual_ip(config_.local_vip, net::kInvalidHost);
    }
  } else if (is_leader_ &&
             net_.virtual_ip_owner(config_.local_vip) != self()) {
    net_.assign_virtual_ip(config_.local_vip, self());
  }
}

ServiceSummary ProxyDaemon::build_summary() const {
  ServiceSummary summary;
  for (const auto& [id, entry] : membership_.table().entries()) {
    for (const auto& service : entry.data.services) {
      if (service.name == kProxyServiceName) continue;
      auto& slot = summary.availability[service.name];
      for (int partition : service.partitions) {
        slot[partition] += 1;
      }
    }
  }
  return summary;
}

void ProxyDaemon::recompute_summary(bool push_update) {
  ServiceSummary fresh = build_summary();
  if (fresh == local_summary_) return;
  local_summary_ = std::move(fresh);
  if (!push_update || !is_leader_) return;
  // Paper Update Message: a change in the local summary is pushed to the
  // other datacenters immediately, without waiting for the next heartbeat.
  ProxyUpdateMsg update;
  update.dc = config_.dc;
  update.sender = self();
  update.seq = ++seq_;
  update.summary = local_summary_;
  send_wan(Message{update}, /*is_update=*/true);
}

void ProxyDaemon::send_wan(const Message& message, bool is_update) {
  // Sequential unicast to each remote datacenter's well-known VIP.
  auto payload = encode_message(message);
  for (const auto& [dc, vip] : config_.remote_vips) {
    if (dc == config_.dc) continue;
    net_.send_to_virtual(self(), vip, config_.wan_port, payload);
    if (is_update) {
      metrics_.wan_updates_sent->add();
    } else {
      metrics_.wan_heartbeats_sent->add();
    }
  }
}

void ProxyDaemon::on_wan_packet(const net::Packet& packet) {
  auto message = decode_message(packet);
  if (!message) return;
  metrics_.wan_messages_received->add();
  if (auto* heartbeat = std::get_if<ProxyHeartbeatMsg>(&*message)) {
    ingest_remote(heartbeat->dc, heartbeat->seq, heartbeat->summary, true);
  } else if (auto* update = std::get_if<ProxyUpdateMsg>(&*message)) {
    ingest_remote(update->dc, update->seq, update->summary, true);
  }
}

void ProxyDaemon::on_proxy_channel_packet(const net::Packet& packet) {
  auto message = decode_message(packet);
  if (!message) return;
  // Remote state relayed by the local proxy leader: absorb without
  // re-relaying (only the leader relays).
  if (auto* heartbeat = std::get_if<ProxyHeartbeatMsg>(&*message)) {
    ingest_remote(heartbeat->dc, heartbeat->seq, heartbeat->summary, false);
  } else if (auto* update = std::get_if<ProxyUpdateMsg>(&*message)) {
    ingest_remote(update->dc, update->seq, update->summary, false);
  }
}

void ProxyDaemon::ingest_remote(net::DatacenterId dc, uint64_t seq,
                                const ServiceSummary& summary,
                                bool relay_locally) {
  if (dc == config_.dc) return;
  RemoteDirectory& dir = remote_[dc];
  if (seq < dir.last_seq) return;  // out-of-order WAN packet
  dir.summary = summary;
  dir.last_seq = seq;
  dir.last_heard = sim_.now();

  if (relay_locally && is_leader_) {
    // Fan the news out to the backup proxies so a failover starts warm.
    ProxyHeartbeatMsg relay;
    relay.dc = dc;
    relay.sender = self();
    relay.seq = seq;
    relay.summary = summary;
    net_.send_multicast(self(), config_.proxy_channel,
                        config_.proxy_channel_ttl, config_.relay_port,
                        encode_message(Message{relay}));
    metrics_.relays_to_local_group->add();
  }
}

void ProxyDaemon::expire_remotes() {
  const sim::Duration timeout =
      static_cast<sim::Duration>(config_.max_losses) * config_.period * 2;
  for (auto it = remote_.begin(); it != remote_.end();) {
    if (sim_.now() - it->second.last_heard > timeout) {
      TAMP_LOG(Info) << "proxy " << self() << " drops silent dc " << it->first;
      it = remote_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<net::DatacenterId> ProxyDaemon::lookup_remote(
    const std::string& service, int partition) const {
  std::vector<net::DatacenterId> out;
  for (const auto& [dc, dir] : remote_) {
    auto svc = dir.summary.availability.find(service);
    if (svc == dir.summary.availability.end()) continue;
    auto part = svc->second.find(partition);
    if (part != svc->second.end() && part->second > 0) {
      out.push_back(dc);
    }
  }
  return out;
}

}  // namespace tamp::proxy
