// Core value types of the membership service's "yellow page" directory.
//
// A directory entry describes one cluster node: identity, incarnation (to
// tell a restarted node from its previous life), machine configuration, the
// service instances it exports, and arbitrary key/value attributes published
// through MService::update_value.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/ids.h"
#include "sim/time.h"

namespace tamp::membership {

// Node identity. Equal to the simulated HostId; its total order is what the
// bully election uses (lowest id wins leadership).
using NodeId = net::HostId;
inline constexpr NodeId kInvalidNode = net::kInvalidHost;

// Monotonically increasing per boot; lets the protocol reject stale
// information about an older incarnation of a restarted node.
using Incarnation = uint64_t;

// Leadership epoch: a per-(level, group) counter minted each time a node
// becomes leader of the group. Orthogonal to Incarnation — a node paused
// and resumed keeps its incarnation, but the leadership it held may have
// been superseded in the meantime. Traffic carrying an older epoch than
// the locally known leadership for the level is stale replay and fenced.
using Epoch = uint64_t;

// One exported service instance: name plus the data partitions this node
// hosts for it, plus service-specific parameters (e.g. HTTP "Port").
struct ServiceRegistration {
  std::string name;
  std::vector<int> partitions;
  std::map<std::string, std::string> params;

  bool operator==(const ServiceRegistration&) const = default;
};

// Relatively stable machine configuration (the paper's announcer reads this
// from /proc; we synthesize it).
struct MachineInfo {
  uint16_t cpus = 2;
  uint32_t memory_mb = 2048;
  std::string os = "linux-2.4.20";

  bool operator==(const MachineInfo&) const = default;
};

// The serializable per-node record exchanged by all protocols.
struct EntryData {
  NodeId node = kInvalidNode;
  Incarnation incarnation = 0;
  MachineInfo machine;
  std::vector<ServiceRegistration> services;
  std::map<std::string, std::string> values;  // update_value key/values

  bool operator==(const EntryData&) const = default;
};

// Why the local directory believes in an entry.
enum class Liveness : uint8_t {
  kDirect,   // we hear this node's own heartbeats on a shared channel
  kRelayed,  // learned via a group leader; its lifetime is tied to that leader
};

// A directory entry: the shared data plus local soft-state bookkeeping.
struct MembershipEntry {
  EntryData data;
  Liveness liveness = Liveness::kDirect;
  NodeId relayed_by = kInvalidNode;  // leader this entry depends on
  sim::Time last_heard = 0;          // local clock of last refresh
  sim::Time first_seen = 0;
};

}  // namespace tamp::membership
