#include "membership/table.h"

#include <algorithm>
#include <regex>

#include "util/strings.h"

namespace tamp::membership {

bool MembershipTable::tombstoned(NodeId node, Incarnation incarnation,
                                 sim::Time now) const {
  auto it = tombstones_.find(node);
  return it != tombstones_.end() && now < it->second.expires &&
         incarnation <= it->second.incarnation;
}

ApplyResult MembershipTable::apply(const EntryData& data, Liveness liveness,
                                   NodeId relayed_by, sim::Time now,
                                   bool override_tombstone) {
  if (liveness == Liveness::kDirect || override_tombstone) {
    // Hearing the node itself (or a solicited full exchange) is
    // authoritative: clear any tombstone.
    tombstones_.erase(data.node);
  } else if (tombstoned(data.node, data.incarnation, now)) {
    return ApplyResult::kStale;
  }

  auto it = entries_.find(data.node);
  if (it == entries_.end()) {
    MembershipEntry entry;
    entry.data = data;
    entry.liveness = liveness;
    entry.relayed_by = relayed_by;
    entry.last_heard = now;
    entry.first_seen = now;
    entries_.emplace(data.node, std::move(entry));
    return ApplyResult::kAdded;
  }

  MembershipEntry& entry = it->second;
  if (data.incarnation < entry.data.incarnation) return ApplyResult::kStale;

  // A direct observation always wins over a relayed one; a relayed record of
  // the same incarnation must not downgrade a direct entry's liveness.
  bool upgrade = liveness == Liveness::kDirect;
  if (!upgrade && entry.liveness == Liveness::kDirect &&
      data.incarnation == entry.data.incarnation) {
    // Still refresh content if it differs (e.g. a value update relayed
    // before the next direct heartbeat), but keep direct liveness.
    if (entry.data == data) {
      entry.last_heard = now;
      return ApplyResult::kRefreshed;
    }
    entry.data = data;
    entry.last_heard = now;
    return ApplyResult::kUpdated;
  }

  ApplyResult result = ApplyResult::kRefreshed;
  if (data.incarnation > entry.data.incarnation || !(entry.data == data)) {
    result = ApplyResult::kUpdated;
  }
  entry.data = data;
  entry.liveness = liveness;
  entry.relayed_by = relayed_by;
  entry.last_heard = now;
  return result;
}

bool MembershipTable::remove(NodeId node, Incarnation incarnation,
                             sim::Time now) {
  auto it = entries_.find(node);
  if (it != entries_.end() && it->second.data.incarnation > incarnation) {
    return false;  // we know a newer life of this node
  }
  Tombstone& tomb = tombstones_[node];
  tomb.incarnation = std::max(tomb.incarnation, incarnation);
  tomb.expires = now + tombstone_ttl_;
  // Opportunistic GC of expired tombstones keeps the map bounded.
  for (auto t = tombstones_.begin(); t != tombstones_.end();) {
    if (now >= t->second.expires) {
      t = tombstones_.erase(t);
    } else {
      ++t;
    }
  }
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

void MembershipTable::touch(NodeId node, sim::Time now) {
  auto it = entries_.find(node);
  if (it != entries_.end()) it->second.last_heard = now;
}

void MembershipTable::demote_to_relayed(NodeId node, NodeId relayed_by) {
  auto it = entries_.find(node);
  if (it != entries_.end() && it->second.liveness == Liveness::kDirect) {
    it->second.liveness = Liveness::kRelayed;
    it->second.relayed_by = relayed_by;
  }
}

const MembershipEntry* MembershipTable::find(NodeId node) const {
  auto it = entries_.find(node);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<NodeId> MembershipTable::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

std::vector<const MembershipEntry*> MembershipTable::lookup(
    const std::string& service_regex,
    const std::string& partition_spec) const {
  std::vector<const MembershipEntry*> out;
  std::regex pattern;
  try {
    pattern = std::regex(service_regex);
  } catch (const std::regex_error&) {
    return out;  // malformed pattern matches nothing
  }
  auto wanted = util::expand_partition_spec(partition_spec);

  for (const auto& [id, entry] : entries_) {
    for (const auto& service : entry.data.services) {
      if (!std::regex_match(service.name, pattern)) continue;
      bool partition_ok = !wanted.has_value();  // "*": any partition set
      if (wanted) {
        for (int p : service.partitions) {
          if (std::binary_search(wanted->begin(), wanted->end(), p)) {
            partition_ok = true;
            break;
          }
        }
      }
      if (partition_ok) {
        out.push_back(&entry);
        break;
      }
    }
  }
  return out;
}

std::vector<NodeId> MembershipTable::expire(
    sim::Time now,
    const std::function<sim::Duration(const MembershipEntry&)>& timeout_for) {
  std::vector<NodeId> expired;
  for (auto it = entries_.begin(); it != entries_.end();) {
    sim::Duration timeout = timeout_for(it->second);
    if (timeout >= 0 && now - it->second.last_heard > timeout) {
      expired.push_back(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::vector<NodeId> MembershipTable::purge_relayed_by(NodeId leader) {
  std::vector<NodeId> purged;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.liveness == Liveness::kRelayed &&
        it->second.relayed_by == leader) {
      purged.push_back(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return purged;
}

void MembershipTable::clear() {
  entries_.clear();
  tombstones_.clear();
}

}  // namespace tamp::membership
