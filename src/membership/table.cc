#include "membership/table.h"

#include <algorithm>
#include <regex>

#include "util/strings.h"

namespace tamp::membership {

namespace {

bool row_before(const MembershipTable::Row& row, NodeId node) {
  return row.first < node;
}

// lower_bound over a sorted row vector; returns end() if absent.
template <typename Vec>
auto locate(Vec& rows, NodeId node) {
  auto it = std::lower_bound(rows.begin(), rows.end(), node, row_before);
  if (it != rows.end() && it->first == node) return it;
  return rows.end();
}

}  // namespace

void MembershipTable::flush() const {
  if (overlay_.empty()) return;
  const size_t mid = entries_.size();
  entries_.insert(entries_.end(), std::make_move_iterator(overlay_.begin()),
                  std::make_move_iterator(overlay_.end()));
  std::inplace_merge(
      entries_.begin(), entries_.begin() + static_cast<ptrdiff_t>(mid),
      entries_.end(),
      [](const Row& a, const Row& b) { return a.first < b.first; });
  overlay_.clear();
}

MembershipEntry* MembershipTable::find_mutable(NodeId node) {
  auto it = locate(entries_, node);
  if (it != entries_.end()) return &it->second;
  auto ov = locate(overlay_, node);
  if (ov != overlay_.end()) return &ov->second;
  return nullptr;
}

bool MembershipTable::tombstoned(NodeId node, Incarnation incarnation,
                                 sim::Time now) const {
  auto it = tombstones_.find(node);
  return it != tombstones_.end() && now < it->second.expires &&
         incarnation <= it->second.incarnation;
}

ApplyResult MembershipTable::apply(const EntryData& data, Liveness liveness,
                                   NodeId relayed_by, sim::Time now,
                                   bool override_tombstone) {
  if (liveness == Liveness::kDirect || override_tombstone) {
    // Hearing the node itself (or a solicited full exchange) is
    // authoritative: clear any tombstone.
    tombstones_.erase(data.node);
  } else if (tombstoned(data.node, data.incarnation, now)) {
    return ApplyResult::kStale;
  }

  MembershipEntry* existing = find_mutable(data.node);
  if (existing == nullptr) {
    MembershipEntry entry;
    entry.data = data;
    entry.liveness = liveness;
    entry.relayed_by = relayed_by;
    entry.last_heard = now;
    entry.first_seen = now;
    auto pos = std::lower_bound(overlay_.begin(), overlay_.end(), data.node,
                                row_before);
    overlay_.emplace(pos, data.node, std::move(entry));
    return ApplyResult::kAdded;
  }

  MembershipEntry& entry = *existing;
  if (data.incarnation < entry.data.incarnation) return ApplyResult::kStale;

  // A direct observation always wins over a relayed one; a relayed record of
  // the same incarnation must not downgrade a direct entry's liveness.
  bool upgrade = liveness == Liveness::kDirect;
  if (!upgrade && entry.liveness == Liveness::kDirect &&
      data.incarnation == entry.data.incarnation) {
    // Still refresh content if it differs (e.g. a value update relayed
    // before the next direct heartbeat), but keep direct liveness.
    if (entry.data == data) {
      entry.last_heard = now;
      return ApplyResult::kRefreshed;
    }
    entry.data = data;
    entry.last_heard = now;
    return ApplyResult::kUpdated;
  }

  ApplyResult result = ApplyResult::kRefreshed;
  if (data.incarnation > entry.data.incarnation || !(entry.data == data)) {
    result = ApplyResult::kUpdated;
  }
  entry.data = data;
  entry.liveness = liveness;
  entry.relayed_by = relayed_by;
  entry.last_heard = now;
  return result;
}

bool MembershipTable::remove(NodeId node, Incarnation incarnation,
                             sim::Time now) {
  flush();
  auto it = locate(entries_, node);
  if (it != entries_.end() && it->second.data.incarnation > incarnation) {
    return false;  // we know a newer life of this node
  }
  Tombstone& tomb = tombstones_[node];
  tomb.incarnation = std::max(tomb.incarnation, incarnation);
  tomb.expires = now + tombstone_ttl_;
  // Opportunistic GC of expired tombstones keeps the map bounded.
  for (auto t = tombstones_.begin(); t != tombstones_.end();) {
    if (now >= t->second.expires) {
      t = tombstones_.erase(t);
    } else {
      ++t;
    }
  }
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

void MembershipTable::touch(NodeId node, sim::Time now) {
  MembershipEntry* entry = find_mutable(node);
  if (entry != nullptr) entry->last_heard = now;
}

void MembershipTable::reconfirm_relay(NodeId node, NodeId relayed_by,
                                      sim::Time now) {
  if (node == relayed_by) return;
  MembershipEntry* entry = find_mutable(node);
  if (entry == nullptr || entry->liveness != Liveness::kRelayed) return;
  entry->relayed_by = relayed_by;
  entry->last_heard = now;
}

void MembershipTable::demote_to_relayed(NodeId node, NodeId relayed_by) {
  MembershipEntry* entry = find_mutable(node);
  if (entry != nullptr && entry->liveness == Liveness::kDirect) {
    entry->liveness = Liveness::kRelayed;
    entry->relayed_by = relayed_by;
  }
}

const MembershipEntry* MembershipTable::find(NodeId node) const {
  flush();
  auto it = locate(entries_, node);
  return it == entries_.end() ? nullptr : &it->second;
}

bool MembershipTable::contains(NodeId node) const {
  return locate(entries_, node) != entries_.end() ||
         locate(overlay_, node) != overlay_.end();
}

std::vector<NodeId> MembershipTable::node_ids() const {
  flush();
  std::vector<NodeId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

std::vector<const MembershipEntry*> MembershipTable::lookup(
    const std::string& service_regex,
    const std::string& partition_spec) const {
  flush();
  std::vector<const MembershipEntry*> out;
  std::regex pattern;
  try {
    pattern = std::regex(service_regex);
  } catch (const std::regex_error&) {
    return out;  // malformed pattern matches nothing
  }
  auto wanted = util::expand_partition_spec(partition_spec);

  for (const auto& [id, entry] : entries_) {
    for (const auto& service : entry.data.services) {
      if (!std::regex_match(service.name, pattern)) continue;
      bool partition_ok = !wanted.has_value();  // "*": any partition set
      if (wanted) {
        for (int p : service.partitions) {
          if (std::binary_search(wanted->begin(), wanted->end(), p)) {
            partition_ok = true;
            break;
          }
        }
      }
      if (partition_ok) {
        out.push_back(&entry);
        break;
      }
    }
  }
  return out;
}

std::vector<NodeId> MembershipTable::expire(
    sim::Time now,
    const std::function<sim::Duration(const MembershipEntry&)>& timeout_for) {
  flush();
  std::vector<NodeId> expired;
  auto keep = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    sim::Duration timeout = timeout_for(it->second);
    if (timeout >= 0 && now - it->second.last_heard > timeout) {
      expired.push_back(it->first);
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  entries_.erase(keep, entries_.end());
  return expired;
}

std::vector<NodeId> MembershipTable::purge_relayed_by(NodeId leader) {
  flush();
  std::vector<NodeId> purged;
  auto keep = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.liveness == Liveness::kRelayed &&
        it->second.relayed_by == leader) {
      purged.push_back(it->first);
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  entries_.erase(keep, entries_.end());
  return purged;
}

void MembershipTable::clear() {
  entries_.clear();
  overlay_.clear();
  tombstones_.clear();
}

}  // namespace tamp::membership
