// Bounds-checked binary serialization.
//
// All protocol messages are encoded with this little-endian format. The
// encoded sizes are what the bandwidth benchmarks charge to the network, so
// encoding is explicit rather than compiler-dependent struct dumps.
//
// Readers never throw: a malformed buffer flips `ok()` to false and all
// subsequent reads return zero values. Decoders check `ok()` once at the
// end — mirroring how a defensive UDP daemon treats untrusted datagrams.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tamp::membership {

class WireWriter {
 public:
  WireWriter() = default;
  // Start from recycled scratch (cleared here) so steady-state encoding
  // reuses payload capacity instead of reallocating per message.
  explicit WireWriter(std::vector<uint8_t> scratch)
      : buffer_(std::move(scratch)) {
    buffer_.clear();
  }

  void u8(uint8_t v) { buffer_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void varint(uint64_t v);
  void str(std::string_view s);
  void bytes(const void* data, size_t size);

  // Append zero padding so the buffer reaches `target` bytes (no-op when
  // already larger). Used to normalize heartbeat sizes across protocols.
  void pad_to(size_t target);

  size_t size() const { return buffer_.size(); }
  std::vector<uint8_t> take() { return std::move(buffer_); }
  const std::vector<uint8_t>& view() const { return buffer_; }

 private:
  std::vector<uint8_t> buffer_;
};

class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& buffer)
      : WireReader(buffer.data(), buffer.size()) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  uint64_t varint();
  std::string str();

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool take(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Map/str helpers shared by codecs.
void write_string_map(WireWriter& w, const std::map<std::string, std::string>& m);
std::map<std::string, std::string> read_string_map(WireReader& r);

}  // namespace tamp::membership
