// The local yellow-page directory each node maintains.
//
// Soft state: entries are refreshed by heartbeats/updates and expire when
// their refresh source goes quiet (the protocol decides the timeout policy;
// the table just executes it). Incarnation numbers order information about
// a node across restarts, and a *time-bounded* tombstone set prevents a
// removed node from flapping back in when stale piggybacked joins are
// replayed. Tombstones expire (so a healed network partition can
// re-introduce nodes whose incarnation never changed), and a direct
// observation — hearing the node's own heartbeat — always overrides one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "membership/types.h"
#include "sim/time.h"

namespace tamp::membership {

enum class ApplyResult : uint8_t {
  kAdded,      // node was not in the directory
  kUpdated,    // contents changed (new incarnation or new data)
  kRefreshed,  // same data; last_heard bumped
  kStale,      // older incarnation than what we have (or tombstoned)
};

class MembershipTable {
 public:
  // Rows live in a flat sorted vector rather than a node-per-entry tree: the
  // hot consumers (digest hashing, refresh encoding, piggyback scans) walk
  // the whole directory every round, and a contiguous scan is what they pay
  // for. Fresh inserts buffer in a small sorted overlay and merge into the
  // main vector in one O(n + k) pass on the next read, so absorbing a batch
  // of k new rows does not shift the main vector k times.
  using Row = std::pair<NodeId, MembershipEntry>;

  explicit MembershipTable(sim::Duration tombstone_ttl = 30 * sim::kSecond)
      : tombstone_ttl_(tombstone_ttl) {}
  // Merge `data` into the directory. `liveness`/`relayed_by` describe how
  // this node learned it (paper: the SHM "local part" vs "external part").
  // A direct observation upgrades a relayed entry; a relayed record never
  // downgrades a direct one of the same incarnation. Direct observations
  // always clear a tombstone; a relayed record does so only when
  // `override_tombstone` is set (used for solicited bootstrap exchanges,
  // which are authoritative in a way replayed piggybacked joins are not).
  ApplyResult apply(const EntryData& data, Liveness liveness,
                    NodeId relayed_by, sim::Time now,
                    bool override_tombstone = false);

  // Remove if our info about `node` is not newer than `incarnation`.
  // Records a tombstone (valid for tombstone_ttl from `now`) so stale
  // relayed joins of that incarnation stay out.
  bool remove(NodeId node, Incarnation incarnation, sim::Time now);

  // Refresh the last-heard stamp without touching contents.
  void touch(NodeId node, sim::Time now);

  // Re-root a relayed entry's provenance at `relayed_by` and refresh its
  // stamp: the new relay vouched (via an anti-entropy digest) that it holds
  // this exact row, which is what absorbing a full re-announcement from it
  // would record. No-op for direct or missing entries, or when the entry is
  // the relay itself (a self-rooted relay would be a provenance cycle).
  void reconfirm_relay(NodeId node, NodeId relayed_by, sim::Time now);

  // Downgrade a direct entry to relayed (the protocol no longer hears the
  // node itself; its liveness is now second-hand). No-op otherwise.
  void demote_to_relayed(NodeId node, NodeId relayed_by);

  // Pointers returned by find()/lookup() stay valid until the next insert or
  // erase (collect-then-consume within one handler is fine; holding one
  // across a mutation is not — same contract callers already honor).
  const MembershipEntry* find(NodeId node) const;
  bool contains(NodeId node) const;
  size_t size() const { return entries_.size() + overlay_.size(); }
  std::vector<NodeId> node_ids() const;

  // All entries (sorted by node id, deterministic iteration).
  const std::vector<Row>& entries() const {
    flush();
    return entries_;
  }

  // Service lookup: `service_regex` is matched against the full service
  // name; `partition_spec` ("*", "2", "1-3", "0,2") selects nodes hosting at
  // least one listed partition. Returns matching entries sorted by node id.
  std::vector<const MembershipEntry*> lookup(
      const std::string& service_regex,
      const std::string& partition_spec) const;

  // Expire entries whose last_heard is older than the per-entry timeout the
  // policy callback returns. Expired entries are removed (no tombstone: an
  // expiry is a local timeout, not authoritative news of a newer state) and
  // their ids are returned.
  std::vector<NodeId> expire(
      sim::Time now,
      const std::function<sim::Duration(const MembershipEntry&)>& timeout_for);

  // Purge all entries relayed by `leader` (paper: information relayed by a
  // leader has the lifetime of that leader). Returns purged ids.
  std::vector<NodeId> purge_relayed_by(NodeId leader);

  void clear();

 private:
  struct Tombstone {
    Incarnation incarnation = 0;
    sim::Time expires = 0;
  };

  bool tombstoned(NodeId node, Incarnation incarnation, sim::Time now) const;

  // Merge the pending overlay into the main vector. Every public read path
  // flushes first, so exposed pointers/references always target entries_.
  void flush() const;
  // Internal lookup that may return a row still sitting in the overlay;
  // never exposed to callers.
  MembershipEntry* find_mutable(NodeId node);

  sim::Duration tombstone_ttl_;
  mutable std::vector<Row> entries_;  // sorted by node id
  mutable std::vector<Row> overlay_;  // sorted, keys disjoint from entries_
  std::map<NodeId, Tombstone> tombstones_;
};

}  // namespace tamp::membership
