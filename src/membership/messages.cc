#include "membership/messages.h"

#include <limits>

#include "membership/codec.h"
#include "net/buffer_pool.h"
#include "net/transport.h"

namespace tamp::membership {
namespace {

void encode_entries(WireWriter& w, const std::vector<EntryData>& entries) {
  w.varint(entries.size());
  for (const auto& entry : entries) encode_entry(w, entry);
}

bool decode_entries(WireReader& r, std::vector<EntryData>& out) {
  uint64_t n = r.varint();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    auto entry = decode_entry(r);
    if (!entry) return false;
    out.push_back(std::move(*entry));
  }
  return r.ok();
}

void encode_summary(WireWriter& w, const ServiceSummary& summary) {
  w.varint(summary.availability.size());
  for (const auto& [service, partitions] : summary.availability) {
    w.str(service);
    w.varint(partitions.size());
    for (const auto& [partition, count] : partitions) {
      w.varint(static_cast<uint64_t>(partition));
      w.varint(static_cast<uint64_t>(count));
    }
  }
}

ServiceSummary decode_summary(WireReader& r) {
  ServiceSummary summary;
  uint64_t services = r.varint();
  for (uint64_t i = 0; i < services && r.ok(); ++i) {
    std::string name = r.str();
    uint64_t partitions = r.varint();
    auto& slot = summary.availability[name];
    for (uint64_t p = 0; p < partitions && r.ok(); ++p) {
      int partition = static_cast<int>(r.varint());
      int count = static_cast<int>(r.varint());
      slot[partition] = count;
    }
  }
  return summary;
}

struct Encoder {
  WireWriter& w;

  void operator()(const HeartbeatMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kHeartbeat));
    encode_entry(w, m.entry);
    w.u8(m.level);
    w.u8(m.is_leader ? 1 : 0);
    w.u8(m.leaving ? 1 : 0);
    w.u32(m.backup);
    w.u64(m.seq);
    w.varint(m.epoch);
  }
  void operator()(const UpdateMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kUpdate));
    w.u32(m.origin);
    w.u64(m.origin_incarnation);
    w.varint(m.epoch);
    w.varint(m.window_base);
    w.varint(m.records.size());
    for (const auto& record : m.records) {
      w.u64(record.seq);
      w.u8(static_cast<uint8_t>(record.kind));
      w.u32(record.subject);
      w.u64(record.incarnation);
      w.varint(record.epoch);
      w.u8(record.entry.has_value() ? 1 : 0);
      if (record.entry) encode_entry(w, *record.entry);
    }
  }
  void operator()(const BootstrapRequestMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kBootstrapRequest));
    w.u32(m.requester);
    w.u8(m.level);
    w.varint(m.epoch);
    encode_entries(w, m.known);
  }
  void operator()(const BootstrapResponseMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kBootstrapResponse));
    w.u32(m.responder);
    w.u64(m.responder_incarnation);
    w.u8(m.level);
    w.varint(m.epoch);
    encode_entries(w, m.entries);
  }
  void operator()(const SyncRequestMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kSyncRequest));
    w.u32(m.requester);
    w.u8(m.level);
    w.u64(m.last_seq_seen);
    w.varint(m.epoch);
  }
  void operator()(const SyncResponseMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kSyncResponse));
    w.u32(m.responder);
    w.u64(m.responder_incarnation);
    w.u8(m.level);
    w.u64(m.stream_seq);
    w.varint(m.epoch);
    encode_entries(w, m.entries);
  }
  void operator()(const ElectionMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kElection));
    w.u32(m.candidate);
    w.u8(m.level);
  }
  void operator()(const ElectionAnswerMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kElectionAnswer));
    w.u32(m.responder);
    w.u8(m.level);
  }
  void operator()(const CoordinatorMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kCoordinator));
    w.u32(m.leader);
    w.u8(m.level);
    w.u32(m.backup);
    w.varint(m.epoch);
    w.u32(m.prev);
    w.u64(m.leader_incarnation);
    w.u64(m.prev_incarnation);
  }
  void operator()(const GossipMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kGossip));
    w.u32(m.sender);
    w.varint(m.records.size());
    for (const auto& record : m.records) {
      encode_entry(w, record.entry);
      w.u64(record.heartbeat_counter);
    }
  }
  void operator()(const ProxyHeartbeatMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kProxyHeartbeat));
    w.u16(m.dc);
    w.u32(m.sender);
    w.u64(m.seq);
    encode_summary(w, m.summary);
  }
  void operator()(const ProxyUpdateMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kProxyUpdate));
    w.u16(m.dc);
    w.u32(m.sender);
    w.u64(m.seq);
    encode_summary(w, m.summary);
  }
  void operator()(const BusyMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kBusy));
    w.u32(m.responder);
    w.u8(m.level);
    w.u8(static_cast<uint8_t>(m.kind));
    w.varint(static_cast<uint64_t>(m.retry_after));
  }
  void operator()(const RefreshDigestMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kRefreshDigest));
    w.u32(m.origin);
    w.u64(m.origin_incarnation);
    w.u8(m.level);
    w.varint(m.epoch);
    w.u8(m.subtree ? 1 : 0);
    w.varint(m.row_count);
    w.u64(m.view_hash);
    w.varint(m.buckets.size());
    for (uint64_t bucket : m.buckets) w.u64(bucket);
    // Delta-varint over the ascending subject list: dense id ranges cost
    // one byte per row.
    w.varint(m.subjects.size());
    NodeId prev = 0;
    for (NodeId id : m.subjects) {
      w.varint(id - prev);
      prev = id;
    }
  }
  void operator()(const RefreshPullMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kRefreshPull));
    w.u32(m.requester);
    w.u8(m.level);
    w.varint(m.epoch);
    w.u8(m.subtree ? 1 : 0);
    w.varint(m.bucket_indices.size());
    for (uint16_t index : m.bucket_indices) w.u16(index);
    w.varint(m.rows.size());
    for (const auto& row : m.rows) {
      w.u32(row.subject);
      w.u64(row.incarnation);
      w.u64(row.row_hash);
    }
  }
  void operator()(const RefreshDeltaMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kRefreshDelta));
    w.u32(m.responder);
    w.u64(m.responder_incarnation);
    w.u8(m.level);
    w.varint(m.epoch);
    w.u8(m.truncated ? 1 : 0);
    encode_entries(w, m.entries);
    w.varint(m.confirmed.size());
    for (NodeId id : m.confirmed) w.u32(id);
  }
};

}  // namespace

net::Payload encode_message(const Message& message, size_t pad_to) {
  WireWriter w(net::acquire_buffer());
  w.u8(kWireVersionByte);
  std::visit(Encoder{w}, message);
  if (pad_to > 0) w.pad_to(pad_to);
  return net::make_pooled_payload(w.take());
}

std::optional<Message> decode_message(const uint8_t* data, size_t size) {
  if (data == nullptr || size == 0) return std::nullopt;
  WireReader r(data, size);
  // Version gate: v1 frames began with a bare MessageType byte (1..12),
  // which can never equal the tagged version byte — old frames are rejected
  // here rather than misparsed further down.
  if (r.u8() != kWireVersionByte) return std::nullopt;
  auto type = static_cast<MessageType>(r.u8());
  switch (type) {
    case MessageType::kHeartbeat: {
      HeartbeatMsg m;
      auto entry = decode_entry(r);
      if (!entry) return std::nullopt;
      m.entry = std::move(*entry);
      m.level = r.u8();
      m.is_leader = r.u8() != 0;
      m.leaving = r.u8() != 0;
      m.backup = r.u32();
      m.seq = r.u64();
      m.epoch = r.varint();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kUpdate: {
      UpdateMsg m;
      m.origin = r.u32();
      m.origin_incarnation = r.u64();
      m.epoch = r.varint();
      m.window_base = r.varint();
      uint64_t n = r.varint();
      for (uint64_t i = 0; i < n && r.ok(); ++i) {
        UpdateRecord record;
        record.seq = r.u64();
        record.kind = static_cast<UpdateKind>(r.u8());
        if (record.kind != UpdateKind::kJoin &&
            record.kind != UpdateKind::kLeave) {
          return std::nullopt;
        }
        record.subject = r.u32();
        record.incarnation = r.u64();
        record.epoch = r.varint();
        if (r.u8() != 0) {
          auto entry = decode_entry(r);
          if (!entry) return std::nullopt;
          record.entry = std::move(*entry);
        }
        m.records.push_back(std::move(record));
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kBootstrapRequest: {
      BootstrapRequestMsg m;
      m.requester = r.u32();
      m.level = r.u8();
      m.epoch = r.varint();
      if (!decode_entries(r, m.known)) return std::nullopt;
      return m;
    }
    case MessageType::kBootstrapResponse: {
      BootstrapResponseMsg m;
      m.responder = r.u32();
      m.responder_incarnation = r.u64();
      m.level = r.u8();
      m.epoch = r.varint();
      if (!decode_entries(r, m.entries)) return std::nullopt;
      return m;
    }
    case MessageType::kSyncRequest: {
      SyncRequestMsg m;
      m.requester = r.u32();
      m.level = r.u8();
      m.last_seq_seen = r.u64();
      m.epoch = r.varint();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kSyncResponse: {
      SyncResponseMsg m;
      m.responder = r.u32();
      m.responder_incarnation = r.u64();
      m.level = r.u8();
      m.stream_seq = r.u64();
      m.epoch = r.varint();
      if (!decode_entries(r, m.entries)) return std::nullopt;
      return m;
    }
    case MessageType::kElection: {
      ElectionMsg m;
      m.candidate = r.u32();
      m.level = r.u8();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kElectionAnswer: {
      ElectionAnswerMsg m;
      m.responder = r.u32();
      m.level = r.u8();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kCoordinator: {
      CoordinatorMsg m;
      m.leader = r.u32();
      m.level = r.u8();
      m.backup = r.u32();
      m.epoch = r.varint();
      m.prev = r.u32();
      m.leader_incarnation = r.u64();
      m.prev_incarnation = r.u64();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kGossip: {
      GossipMsg m;
      m.sender = r.u32();
      uint64_t n = r.varint();
      for (uint64_t i = 0; i < n && r.ok(); ++i) {
        GossipRecord record;
        auto entry = decode_entry(r);
        if (!entry) return std::nullopt;
        record.entry = std::move(*entry);
        record.heartbeat_counter = r.u64();
        m.records.push_back(std::move(record));
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kProxyHeartbeat: {
      ProxyHeartbeatMsg m;
      m.dc = r.u16();
      m.sender = r.u32();
      m.seq = r.u64();
      m.summary = decode_summary(r);
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kProxyUpdate: {
      ProxyUpdateMsg m;
      m.dc = r.u16();
      m.sender = r.u32();
      m.seq = r.u64();
      m.summary = decode_summary(r);
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kBusy: {
      BusyMsg m;
      m.responder = r.u32();
      m.level = r.u8();
      uint8_t kind = r.u8();
      if (kind > static_cast<uint8_t>(BusyKind::kSync)) return std::nullopt;
      m.kind = static_cast<BusyKind>(kind);
      m.retry_after = static_cast<int64_t>(r.varint());
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kRefreshDigest: {
      RefreshDigestMsg m;
      m.origin = r.u32();
      m.origin_incarnation = r.u64();
      m.level = r.u8();
      m.epoch = r.varint();
      uint8_t subtree = r.u8();
      if (subtree > 1) return std::nullopt;
      m.subtree = subtree != 0;
      m.row_count = static_cast<uint32_t>(r.varint());
      m.view_hash = r.u64();
      uint64_t buckets = r.varint();
      // A digest never carries more buckets than rows could fill; cap the
      // count before reserving so a forged length can't balloon allocation.
      if (buckets > kMaxDigestBuckets) return std::nullopt;
      for (uint64_t i = 0; i < buckets && r.ok(); ++i) {
        m.buckets.push_back(r.u64());
      }
      uint64_t subjects = r.varint();
      if (subjects > kMaxDigestSubjects) return std::nullopt;
      // Scope list rules: only subtree digests carry one, it matches the
      // advertised row count, and ids ascend strictly (the delta coding
      // makes a duplicate or regression a zero delta past the first id).
      if (subjects > 0 && !m.subtree) return std::nullopt;
      if (m.subtree && subjects != m.row_count) return std::nullopt;
      NodeId prev = 0;
      for (uint64_t i = 0; i < subjects && r.ok(); ++i) {
        const uint64_t delta = r.varint();
        if (i > 0 && delta == 0) return std::nullopt;
        const uint64_t id = prev + delta;
        if (id > std::numeric_limits<NodeId>::max()) return std::nullopt;
        prev = static_cast<NodeId>(id);
        m.subjects.push_back(prev);
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kRefreshPull: {
      RefreshPullMsg m;
      m.requester = r.u32();
      m.level = r.u8();
      m.epoch = r.varint();
      uint8_t subtree = r.u8();
      if (subtree > 1) return std::nullopt;
      m.subtree = subtree != 0;
      uint64_t indices = r.varint();
      if (indices > kMaxDigestBuckets) return std::nullopt;
      for (uint64_t i = 0; i < indices && r.ok(); ++i) {
        m.bucket_indices.push_back(r.u16());
      }
      uint64_t rows = r.varint();
      for (uint64_t i = 0; i < rows && r.ok(); ++i) {
        DigestRowSummary row;
        row.subject = r.u32();
        row.incarnation = r.u64();
        row.row_hash = r.u64();
        m.rows.push_back(row);
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kRefreshDelta: {
      RefreshDeltaMsg m;
      m.responder = r.u32();
      m.responder_incarnation = r.u64();
      m.level = r.u8();
      m.epoch = r.varint();
      uint8_t truncated = r.u8();
      if (truncated > 1) return std::nullopt;
      m.truncated = truncated != 0;
      if (!decode_entries(r, m.entries)) return std::nullopt;
      uint64_t confirmed = r.varint();
      for (uint64_t i = 0; i < confirmed && r.ok(); ++i) {
        m.confirmed.push_back(r.u32());
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
  }
  return std::nullopt;
}

uint64_t digest_row_hash(const EntryData& entry) {
  WireWriter w;
  w.u32(entry.node);
  w.u64(entry.incarnation);
  encode_entry(w, entry);
  const auto bytes = w.take();
  // FNV-1a, 64-bit.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  // A zero hash would make a row invisible to the XOR bucket combine.
  return hash == 0 ? 0x9e3779b97f4a7c15ULL : hash;
}

size_t digest_bucket_of(NodeId node, size_t bucket_count) {
  // splitmix64 finalizer: consecutive node ids land in unrelated buckets.
  uint64_t x = node;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return bucket_count == 0 ? 0 : static_cast<size_t>(x % bucket_count);
}

const char* wire_kind_name(uint8_t kind) {
  switch (static_cast<MessageType>(kind)) {
    case MessageType::kHeartbeat:
      return "heartbeat";
    case MessageType::kUpdate:
      return "update";
    case MessageType::kBootstrapRequest:
      return "bootstrap_request";
    case MessageType::kBootstrapResponse:
      return "bootstrap_response";
    case MessageType::kSyncRequest:
      return "sync_request";
    case MessageType::kSyncResponse:
      return "sync_response";
    case MessageType::kElection:
      return "election";
    case MessageType::kElectionAnswer:
      return "election_answer";
    case MessageType::kCoordinator:
      return "coordinator";
    case MessageType::kGossip:
      return "gossip";
    case MessageType::kProxyHeartbeat:
      return "proxy_heartbeat";
    case MessageType::kProxyUpdate:
      return "proxy_update";
    case MessageType::kBusy:
      return "busy";
    case MessageType::kRefreshDigest:
      return "refresh_digest";
    case MessageType::kRefreshPull:
      return "refresh_pull";
    case MessageType::kRefreshDelta:
      return "refresh_delta";
  }
  return "unknown";
}

void install_wire_classifier(net::Network& net) {
  net::WireClassifier classifier;
  classifier.classify = [](const uint8_t* data, size_t size) {
    return classify_wire_kind(data, size);
  };
  classifier.name = [](uint8_t kind) { return std::string(wire_kind_name(kind)); };
  classifier.kind_count = kWireKindCount;
  net.set_wire_classifier(std::move(classifier));
}

}  // namespace tamp::membership
