#include "membership/messages.h"

#include "membership/codec.h"
#include "net/transport.h"

namespace tamp::membership {
namespace {

void encode_entries(WireWriter& w, const std::vector<EntryData>& entries) {
  w.varint(entries.size());
  for (const auto& entry : entries) encode_entry(w, entry);
}

bool decode_entries(WireReader& r, std::vector<EntryData>& out) {
  uint64_t n = r.varint();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    auto entry = decode_entry(r);
    if (!entry) return false;
    out.push_back(std::move(*entry));
  }
  return r.ok();
}

void encode_summary(WireWriter& w, const ServiceSummary& summary) {
  w.varint(summary.availability.size());
  for (const auto& [service, partitions] : summary.availability) {
    w.str(service);
    w.varint(partitions.size());
    for (const auto& [partition, count] : partitions) {
      w.varint(static_cast<uint64_t>(partition));
      w.varint(static_cast<uint64_t>(count));
    }
  }
}

ServiceSummary decode_summary(WireReader& r) {
  ServiceSummary summary;
  uint64_t services = r.varint();
  for (uint64_t i = 0; i < services && r.ok(); ++i) {
    std::string name = r.str();
    uint64_t partitions = r.varint();
    auto& slot = summary.availability[name];
    for (uint64_t p = 0; p < partitions && r.ok(); ++p) {
      int partition = static_cast<int>(r.varint());
      int count = static_cast<int>(r.varint());
      slot[partition] = count;
    }
  }
  return summary;
}

struct Encoder {
  WireWriter& w;

  void operator()(const HeartbeatMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kHeartbeat));
    encode_entry(w, m.entry);
    w.u8(m.level);
    w.u8(m.is_leader ? 1 : 0);
    w.u8(m.leaving ? 1 : 0);
    w.u32(m.backup);
    w.u64(m.seq);
    w.varint(m.epoch);
  }
  void operator()(const UpdateMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kUpdate));
    w.u32(m.origin);
    w.u64(m.origin_incarnation);
    w.varint(m.epoch);
    w.varint(m.window_base);
    w.varint(m.records.size());
    for (const auto& record : m.records) {
      w.u64(record.seq);
      w.u8(static_cast<uint8_t>(record.kind));
      w.u32(record.subject);
      w.u64(record.incarnation);
      w.varint(record.epoch);
      w.u8(record.entry.has_value() ? 1 : 0);
      if (record.entry) encode_entry(w, *record.entry);
    }
  }
  void operator()(const BootstrapRequestMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kBootstrapRequest));
    w.u32(m.requester);
    w.u8(m.level);
    w.varint(m.epoch);
    encode_entries(w, m.known);
  }
  void operator()(const BootstrapResponseMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kBootstrapResponse));
    w.u32(m.responder);
    w.u64(m.responder_incarnation);
    w.u8(m.level);
    w.varint(m.epoch);
    encode_entries(w, m.entries);
  }
  void operator()(const SyncRequestMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kSyncRequest));
    w.u32(m.requester);
    w.u8(m.level);
    w.u64(m.last_seq_seen);
    w.varint(m.epoch);
  }
  void operator()(const SyncResponseMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kSyncResponse));
    w.u32(m.responder);
    w.u64(m.responder_incarnation);
    w.u8(m.level);
    w.u64(m.stream_seq);
    w.varint(m.epoch);
    encode_entries(w, m.entries);
  }
  void operator()(const ElectionMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kElection));
    w.u32(m.candidate);
    w.u8(m.level);
  }
  void operator()(const ElectionAnswerMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kElectionAnswer));
    w.u32(m.responder);
    w.u8(m.level);
  }
  void operator()(const CoordinatorMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kCoordinator));
    w.u32(m.leader);
    w.u8(m.level);
    w.u32(m.backup);
    w.varint(m.epoch);
    w.u32(m.prev);
    w.u64(m.leader_incarnation);
    w.u64(m.prev_incarnation);
  }
  void operator()(const GossipMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kGossip));
    w.u32(m.sender);
    w.varint(m.records.size());
    for (const auto& record : m.records) {
      encode_entry(w, record.entry);
      w.u64(record.heartbeat_counter);
    }
  }
  void operator()(const ProxyHeartbeatMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kProxyHeartbeat));
    w.u16(m.dc);
    w.u32(m.sender);
    w.u64(m.seq);
    encode_summary(w, m.summary);
  }
  void operator()(const ProxyUpdateMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kProxyUpdate));
    w.u16(m.dc);
    w.u32(m.sender);
    w.u64(m.seq);
    encode_summary(w, m.summary);
  }
  void operator()(const BusyMsg& m) {
    w.u8(static_cast<uint8_t>(MessageType::kBusy));
    w.u32(m.responder);
    w.u8(m.level);
    w.u8(static_cast<uint8_t>(m.kind));
    w.varint(static_cast<uint64_t>(m.retry_after));
  }
};

}  // namespace

net::Payload encode_message(const Message& message, size_t pad_to) {
  WireWriter w;
  w.u8(kWireVersionByte);
  std::visit(Encoder{w}, message);
  if (pad_to > 0) w.pad_to(pad_to);
  return net::make_payload(w.take());
}

std::optional<Message> decode_message(const uint8_t* data, size_t size) {
  if (data == nullptr || size == 0) return std::nullopt;
  WireReader r(data, size);
  // Version gate: v1 frames began with a bare MessageType byte (1..12),
  // which can never equal the tagged version byte — old frames are rejected
  // here rather than misparsed further down.
  if (r.u8() != kWireVersionByte) return std::nullopt;
  auto type = static_cast<MessageType>(r.u8());
  switch (type) {
    case MessageType::kHeartbeat: {
      HeartbeatMsg m;
      auto entry = decode_entry(r);
      if (!entry) return std::nullopt;
      m.entry = std::move(*entry);
      m.level = r.u8();
      m.is_leader = r.u8() != 0;
      m.leaving = r.u8() != 0;
      m.backup = r.u32();
      m.seq = r.u64();
      m.epoch = r.varint();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kUpdate: {
      UpdateMsg m;
      m.origin = r.u32();
      m.origin_incarnation = r.u64();
      m.epoch = r.varint();
      m.window_base = r.varint();
      uint64_t n = r.varint();
      for (uint64_t i = 0; i < n && r.ok(); ++i) {
        UpdateRecord record;
        record.seq = r.u64();
        record.kind = static_cast<UpdateKind>(r.u8());
        if (record.kind != UpdateKind::kJoin &&
            record.kind != UpdateKind::kLeave) {
          return std::nullopt;
        }
        record.subject = r.u32();
        record.incarnation = r.u64();
        record.epoch = r.varint();
        if (r.u8() != 0) {
          auto entry = decode_entry(r);
          if (!entry) return std::nullopt;
          record.entry = std::move(*entry);
        }
        m.records.push_back(std::move(record));
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kBootstrapRequest: {
      BootstrapRequestMsg m;
      m.requester = r.u32();
      m.level = r.u8();
      m.epoch = r.varint();
      if (!decode_entries(r, m.known)) return std::nullopt;
      return m;
    }
    case MessageType::kBootstrapResponse: {
      BootstrapResponseMsg m;
      m.responder = r.u32();
      m.responder_incarnation = r.u64();
      m.level = r.u8();
      m.epoch = r.varint();
      if (!decode_entries(r, m.entries)) return std::nullopt;
      return m;
    }
    case MessageType::kSyncRequest: {
      SyncRequestMsg m;
      m.requester = r.u32();
      m.level = r.u8();
      m.last_seq_seen = r.u64();
      m.epoch = r.varint();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kSyncResponse: {
      SyncResponseMsg m;
      m.responder = r.u32();
      m.responder_incarnation = r.u64();
      m.level = r.u8();
      m.stream_seq = r.u64();
      m.epoch = r.varint();
      if (!decode_entries(r, m.entries)) return std::nullopt;
      return m;
    }
    case MessageType::kElection: {
      ElectionMsg m;
      m.candidate = r.u32();
      m.level = r.u8();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kElectionAnswer: {
      ElectionAnswerMsg m;
      m.responder = r.u32();
      m.level = r.u8();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kCoordinator: {
      CoordinatorMsg m;
      m.leader = r.u32();
      m.level = r.u8();
      m.backup = r.u32();
      m.epoch = r.varint();
      m.prev = r.u32();
      m.leader_incarnation = r.u64();
      m.prev_incarnation = r.u64();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kGossip: {
      GossipMsg m;
      m.sender = r.u32();
      uint64_t n = r.varint();
      for (uint64_t i = 0; i < n && r.ok(); ++i) {
        GossipRecord record;
        auto entry = decode_entry(r);
        if (!entry) return std::nullopt;
        record.entry = std::move(*entry);
        record.heartbeat_counter = r.u64();
        m.records.push_back(std::move(record));
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kProxyHeartbeat: {
      ProxyHeartbeatMsg m;
      m.dc = r.u16();
      m.sender = r.u32();
      m.seq = r.u64();
      m.summary = decode_summary(r);
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kProxyUpdate: {
      ProxyUpdateMsg m;
      m.dc = r.u16();
      m.sender = r.u32();
      m.seq = r.u64();
      m.summary = decode_summary(r);
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kBusy: {
      BusyMsg m;
      m.responder = r.u32();
      m.level = r.u8();
      uint8_t kind = r.u8();
      if (kind > static_cast<uint8_t>(BusyKind::kSync)) return std::nullopt;
      m.kind = static_cast<BusyKind>(kind);
      m.retry_after = static_cast<int64_t>(r.varint());
      if (!r.ok()) return std::nullopt;
      return m;
    }
  }
  return std::nullopt;
}

const char* wire_kind_name(uint8_t kind) {
  switch (static_cast<MessageType>(kind)) {
    case MessageType::kHeartbeat:
      return "heartbeat";
    case MessageType::kUpdate:
      return "update";
    case MessageType::kBootstrapRequest:
      return "bootstrap_request";
    case MessageType::kBootstrapResponse:
      return "bootstrap_response";
    case MessageType::kSyncRequest:
      return "sync_request";
    case MessageType::kSyncResponse:
      return "sync_response";
    case MessageType::kElection:
      return "election";
    case MessageType::kElectionAnswer:
      return "election_answer";
    case MessageType::kCoordinator:
      return "coordinator";
    case MessageType::kGossip:
      return "gossip";
    case MessageType::kProxyHeartbeat:
      return "proxy_heartbeat";
    case MessageType::kProxyUpdate:
      return "proxy_update";
    case MessageType::kBusy:
      return "busy";
  }
  return "unknown";
}

void install_wire_classifier(net::Network& net) {
  net::WireClassifier classifier;
  classifier.classify = [](const uint8_t* data, size_t size) {
    return classify_wire_kind(data, size);
  };
  classifier.name = [](uint8_t kind) { return std::string(wire_kind_name(kind)); };
  classifier.kind_count = kWireKindCount;
  net.set_wire_classifier(std::move(classifier));
}

}  // namespace tamp::membership
