#include "membership/wire.h"

namespace tamp::membership {

void WireWriter::u16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::varint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void WireWriter::str(std::string_view s) {
  varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void WireWriter::bytes(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

void WireWriter::pad_to(size_t target) {
  if (buffer_.size() < target) buffer_.resize(target, 0);
}

uint8_t WireReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

uint16_t WireReader::u16() {
  if (!take(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t WireReader::u32() {
  if (!take(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t WireReader::u64() {
  if (!take(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

uint64_t WireReader::varint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (!take(1)) return 0;
    uint8_t byte = data_[pos_++];
    if (shift >= 64) {  // overlong encoding
      ok_ = false;
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
}

std::string WireReader::str() {
  uint64_t size = varint();
  if (!take(size)) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), size);
  pos_ += size;
  return s;
}

void write_string_map(WireWriter& w,
                      const std::map<std::string, std::string>& m) {
  w.varint(m.size());
  for (const auto& [key, value] : m) {
    w.str(key);
    w.str(value);
  }
}

std::map<std::string, std::string> read_string_map(WireReader& r) {
  std::map<std::string, std::string> m;
  uint64_t n = r.varint();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    std::string key = r.str();
    std::string value = r.str();
    m.emplace(std::move(key), std::move(value));
  }
  return m;
}

}  // namespace tamp::membership
