// (De)serialization of EntryData — the per-node record every protocol ships.
#pragma once

#include <optional>

#include "membership/types.h"
#include "membership/wire.h"

namespace tamp::membership {

void encode_entry(WireWriter& w, const EntryData& entry);
std::optional<EntryData> decode_entry(WireReader& r);

// Encoded size of an entry (used by the analysis module for the paper's
// parameter `m`, the per-node information size).
size_t encoded_entry_size(const EntryData& entry);

// Builds a representative entry whose encoded size is close to the paper's
// measured 228 bytes per node (hostname-sized strings, one service with two
// partitions, a handful of attributes).
EntryData make_representative_entry(NodeId node, Incarnation incarnation = 1);

}  // namespace tamp::membership
