// Wire messages exchanged by the membership protocols.
//
// One envelope format (type byte + body) covers all three protocols and the
// proxy layer; a daemon only ever decodes the types it handles. Encoded
// sizes are real — they drive the bandwidth evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "membership/types.h"
#include "membership/wire.h"
#include "net/packet.h"

namespace tamp::net {
class Network;  // forward: the classifier installer takes one
}

namespace tamp::membership {

enum class MessageType : uint8_t {
  kHeartbeat = 1,
  kUpdate = 2,
  kBootstrapRequest = 3,
  kBootstrapResponse = 4,
  kSyncRequest = 5,
  kSyncResponse = 6,
  kElection = 7,
  kElectionAnswer = 8,
  kCoordinator = 9,
  kGossip = 10,
  kProxyHeartbeat = 11,
  kProxyUpdate = 12,
  kBusy = 13,
  kRefreshDigest = 14,
  kRefreshPull = 15,
  kRefreshDelta = 16,
};

// Wire format versioning. Every frame starts with a tagged version byte;
// the high nibble is a fixed magic so the byte can never collide with a
// bare v1 MessageType (1..12), which was the first byte of the epoch-less
// v1 format. A v1 frame therefore fails the version check outright — it is
// rejected, never misparsed as a v2 frame (and vice versa).
inline constexpr uint8_t kWireVersionTag = 0xA0;   // high-nibble magic
inline constexpr uint8_t kWireVersion = 3;         // current format revision
inline constexpr uint8_t kWireVersionByte = kWireVersionTag | kWireVersion;

// Periodic liveness + node description. The all-to-all protocol uses only
// `entry`; the hierarchical protocol adds group metadata: the sender's role
// on the channel the packet was multicast on, its backup designation, and
// the per-sender heartbeat sequence.
struct HeartbeatMsg {
  EntryData entry;
  uint8_t level = 0;        // tree level of the channel this was sent on
  bool is_leader = false;   // paper: "special flag in its heartbeat packets"
  bool leaving = false;     // goodbye: sender is leaving this channel (alive)
  NodeId backup = kInvalidNode;  // leader's designated backup (if leader)
  // The sender's update-stream sequence number on this channel. Receivers
  // compare it against their per-origin cursor, so an update lost during an
  // otherwise quiet period is noticed within one heartbeat period instead
  // of waiting for the next update to expose the gap.
  uint64_t seq = 0;
  // Highest leadership epoch the sender knows for this channel's group (its
  // own minted epoch when is_leader). A leader-flagged heartbeat with an
  // epoch older than the receiver's is a stale leadership claim.
  Epoch epoch = 0;
};

// One membership change. Joins carry the full entry; leaves carry the
// subject id + incarnation so stale joins can be rejected downstream.
enum class UpdateKind : uint8_t { kJoin = 1, kLeave = 2 };

struct UpdateRecord {
  uint64_t seq = 0;  // position in the origin's update stream
  UpdateKind kind = UpdateKind::kJoin;
  NodeId subject = kInvalidNode;
  Incarnation incarnation = 0;
  // Leadership epoch of the emitting channel at the time the record was
  // stamped into the origin's stream. A piggybacked leave stamped under a
  // superseded epoch is stale replay and must not purge anyone.
  Epoch epoch = 0;
  std::optional<EntryData> entry;  // present for joins
};

// Update message: the origin's newest records, newest first. The tail
// beyond the first record is the paper's piggyback of the previous three
// updates, letting receivers absorb up to three consecutive packet losses.
// `origin_incarnation` scopes the sequence numbers: a restarted origin
// starts a fresh stream, and receivers must not judge it by the old
// incarnation's cursor.
struct UpdateMsg {
  NodeId origin = kInvalidNode;
  Incarnation origin_incarnation = 0;
  // The origin's view of the target channel's leadership epoch at send
  // time; receivers reject the whole message when it is older than theirs.
  Epoch epoch = 0;
  // Every record with seq > window_base that still matters is present in
  // `records` (compaction may drop shadowed intermediates). A receiver
  // whose cursor is >= window_base can apply the carried records directly;
  // a cursor below it means real history was trimmed away and a full-image
  // sync is needed. Without compaction this equals oldest_carried_seq - 1,
  // reproducing the old contiguous-gap rule exactly.
  uint64_t window_base = 0;
  std::vector<UpdateRecord> records;
};

// New node -> group leader: "send me everything you know". The requester
// includes everything *it* knows, because it may itself be a lower-level
// leader bringing a whole subtree with it (paper Bootstrap protocol).
struct BootstrapRequestMsg {
  NodeId requester = kInvalidNode;
  uint8_t level = 0;   // channel the requester is bootstrapping on
  Epoch epoch = 0;     // requester's known leadership epoch for that level
  std::vector<EntryData> known;
};

struct BootstrapResponseMsg {
  NodeId responder = kInvalidNode;
  uint8_t level = 0;   // echoed from the request
  Epoch epoch = 0;     // responder's leadership epoch for that level
  std::vector<EntryData> entries;
  // Scopes the requester's stale-image fence to the responder's life: an
  // image from a restarted responder is fresh even if its old life's
  // leadership was superseded.
  Incarnation responder_incarnation = 0;
};

// Receiver detected an unrecoverable update-stream gap and asks the sender
// for a full image (paper Message Loss Detection). `level` names the
// channel whose stream has the gap, so the response can re-anchor the
// receiver's cursor for exactly that stream.
struct SyncRequestMsg {
  NodeId requester = kInvalidNode;
  uint8_t level = 0;
  uint64_t last_seq_seen = 0;
  Epoch epoch = 0;  // requester's known leadership epoch for `level`
};

struct SyncResponseMsg {
  NodeId responder = kInvalidNode;
  Incarnation responder_incarnation = 0;
  uint8_t level = 0;
  uint64_t stream_seq = 0;  // responder's current update seq on `level`
  // Responder's leadership epoch for `level`: a full image from a node with
  // superseded leadership knowledge must not drive reconciliation removals.
  Epoch epoch = 0;
  std::vector<EntryData> entries;
};

// Admission-control pushback: the responder's full-image serve budget for
// this period is spent, so instead of silently dropping the solicited
// request (which the requester cannot distinguish from loss and would
// retry into the same congestion) it names a deferral. `kind` echoes which
// exchange was refused so the requester re-arms the right pending slot.
enum class BusyKind : uint8_t { kBootstrap = 0, kSync = 1 };

struct BusyMsg {
  NodeId responder = kInvalidNode;
  uint8_t level = 0;
  BusyKind kind = BusyKind::kBootstrap;
  int64_t retry_after = 0;  // ns the requester should wait before resending
};

// Bully election, scoped to one (channel, level) group.
struct ElectionMsg {
  NodeId candidate = kInvalidNode;
  uint8_t level = 0;
};
struct ElectionAnswerMsg {
  NodeId responder = kInvalidNode;
  uint8_t level = 0;
};
struct CoordinatorMsg {
  NodeId leader = kInvalidNode;
  uint8_t level = 0;
  NodeId backup = kInvalidNode;
  // Epoch minted at become_leader(). Epochs are only comparable within one
  // leadership lineage (groups sharing a channel mint independently), so
  // receivers do not compare epochs across arbitrary senders; instead the
  // announcement names the leader it succeeded (`prev`), and receivers
  // record that prev's claims below this epoch are superseded — the fence
  // that stops a resumed stale leader from replaying its old leadership.
  Epoch epoch = 0;
  NodeId prev = kInvalidNode;  // leader this announcement supersedes
  // Incarnations scope the succession to the lives involved: `prev`'s
  // fenced life (a later restart of the same node is a new lineage and not
  // fenced), and the announcer's own (so its claim survives its restarts).
  Incarnation leader_incarnation = 0;
  Incarnation prev_incarnation = 0;
};

// Gossip: the sender's full local view (one record per known node), which is
// what makes gossip traffic O(n * m) per message — the paper's stated reason
// it scales poorly inside a datacenter.
struct GossipRecord {
  EntryData entry;
  uint64_t heartbeat_counter = 0;
};
struct GossipMsg {
  NodeId sender = kInvalidNode;
  std::vector<GossipRecord> records;
};

// --- incremental anti-entropy (v3 digest exchange) ----------------------
//
// A leader's periodic refresh in digest mode summarizes its view instead of
// resending it: rows are bucketed by hash(subject) and each bucket carries
// the XOR of its rows' content hashes (order-independent, so sender and
// receiver need not iterate identically). A receiver whose buckets all
// match just touches the covered rows' freshness; mismatched buckets cost
// one unicast pull (row summaries only) plus one delta carrying the rows
// that actually differ. The full-image sync path survives solely as the
// truncation backstop, behind the same admission budget as bootstrap.

// Upper bound a decoder accepts for bucket vectors / pull index lists; far
// above any sane config (HierConfig defaults to 16 buckets) but low enough
// that a forged length byte cannot drive a giant allocation.
inline constexpr size_t kMaxDigestBuckets = 1024;
// Upper bound on a subtree digest's explicit subject list (and on sync
// image row counts elsewhere): generous for 10k-node clusters, small
// enough to bound a forged length's allocation.
inline constexpr size_t kMaxDigestSubjects = size_t{1} << 20;

// Content hash of one row's replicated state (subject, incarnation, encoded
// EntryData), FNV-1a over the wire encoding. Local soft state (liveness,
// last_heard) is deliberately excluded — digests compare what refresh would
// have shipped, not local bookkeeping.
uint64_t digest_row_hash(const EntryData& entry);
// Bucket assignment: mixes the subject id so consecutive node ids spread
// across buckets instead of striping.
size_t digest_bucket_of(NodeId node, size_t bucket_count);

// Multicast digest: replaces the full-view refresh broadcast. `subtree`
// distinguishes the upward subtree summary (level L leader reporting its
// subtree into the L+1 group) from the downward full-view summary.
struct RefreshDigestMsg {
  NodeId origin = kInvalidNode;
  Incarnation origin_incarnation = 0;
  uint8_t level = 0;  // channel the digest is for
  Epoch epoch = 0;    // origin's leadership epoch for that level
  bool subtree = false;
  uint32_t row_count = 0;   // rows summarized in scope
  uint64_t view_hash = 0;   // XOR over all in-scope row hashes
  std::vector<uint64_t> buckets;  // per-bucket XOR of row hashes
  // Subtree digests enumerate their scope explicitly (ascending; wire form
  // is delta-varints, ~1-2 bytes per row). The receiver cannot reconstruct
  // the origin's subtree from local provenance — every digest or refresh
  // from a *higher* level re-roots relayed_by, so "rows relayed by the
  // origin" drifts away from the origin's actual scope and the two sides
  // would hash different row sets forever. Empty for downward full-view
  // digests, whose scope (the whole table) both sides already agree on.
  std::vector<NodeId> subjects;
};

// One row summary inside a pull: enough for the digest origin to decide
// whether its copy differs without shipping the entry itself.
struct DigestRowSummary {
  NodeId subject = kInvalidNode;
  Incarnation incarnation = 0;
  uint64_t row_hash = 0;
};

// Unicast receiver -> digest origin: "these buckets disagree; here is what
// I hold in them". The origin answers with a RefreshDeltaMsg.
struct RefreshPullMsg {
  NodeId requester = kInvalidNode;
  uint8_t level = 0;
  Epoch epoch = 0;     // requester's known leadership epoch for `level`
  bool subtree = false;  // echoed digest scope
  std::vector<uint16_t> bucket_indices;  // mismatched buckets, ascending
  std::vector<DigestRowSummary> rows;    // requester's rows in those buckets
};

// Unicast digest origin -> requester: full entries for rows that differ or
// are missing at the requester, plus the ids whose rows already agree (the
// requester touches those instead of receiving them — the suppressed
// bytes). `truncated` marks a delta clipped at digest_max_rows_per_delta;
// the requester escalates to a budget-gated full-image sync.
struct RefreshDeltaMsg {
  NodeId responder = kInvalidNode;
  Incarnation responder_incarnation = 0;
  uint8_t level = 0;
  Epoch epoch = 0;
  bool truncated = false;
  std::vector<EntryData> entries;
  std::vector<NodeId> confirmed;
};

// --- proxy (cross-datacenter) messages ---------------------------------

// Compact availability summary: per service, per partition, how many live
// providers a datacenter has. "Generally, the summary does not include the
// detailed machine information" (paper Section 3.2).
struct ServiceSummary {
  // service -> partition -> provider count
  std::map<std::string, std::map<int, int>> availability;

  bool operator==(const ServiceSummary&) const = default;
};

struct ProxyHeartbeatMsg {
  uint16_t dc = 0;
  NodeId sender = kInvalidNode;
  uint64_t seq = 0;
  ServiceSummary summary;
};

struct ProxyUpdateMsg {
  uint16_t dc = 0;
  NodeId sender = kInvalidNode;
  uint64_t seq = 0;
  ServiceSummary summary;  // summaries are small; updates resend the whole one
};

using Message =
    std::variant<HeartbeatMsg, UpdateMsg, BootstrapRequestMsg,
                 BootstrapResponseMsg, SyncRequestMsg, SyncResponseMsg,
                 ElectionMsg, ElectionAnswerMsg, CoordinatorMsg, GossipMsg,
                 ProxyHeartbeatMsg, ProxyUpdateMsg, BusyMsg, RefreshDigestMsg,
                 RefreshPullMsg, RefreshDeltaMsg>;

// Encode into a payload buffer. `pad_to` (when > 0) zero-pads the result to
// a fixed size — used to equalize heartbeat packet sizes across protocols,
// as in the paper's measurements (228-byte average).
net::Payload encode_message(const Message& message, size_t pad_to = 0);

// Decode; nullopt on any malformed input.
std::optional<Message> decode_message(const uint8_t* data, size_t size);
inline std::optional<Message> decode_message(const net::Packet& packet) {
  return decode_message(packet.data(), packet.size());
}

// --- wire-kind classification (per-kind transport accounting) -----------
//
// The transport attributes per-kind tx / egress-drop counters through an
// injected classifier (net/ cannot name these types). Kind ids are the
// MessageType values; 0 means "not a current-version envelope".
inline constexpr uint8_t kWireKindCount = 17;  // 0 (unknown) + types 1..16

// Peeks the version and type bytes only — cheap enough for the send path.
inline uint8_t classify_wire_kind(const uint8_t* data, size_t size) {
  if (data == nullptr || size < 2 || data[0] != kWireVersionByte) return 0;
  const uint8_t type = data[1];
  return type >= 1 && type < kWireKindCount ? type : 0;
}

// Metric-name suffix for a wire kind ("heartbeat", "update", ...).
const char* wire_kind_name(uint8_t kind);

// Installs the classifier pair on a Network (idempotent). Called by every
// component that owns both layers (Cluster, MService).
void install_wire_classifier(net::Network& net);

}  // namespace tamp::membership
