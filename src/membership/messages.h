// Wire messages exchanged by the membership protocols.
//
// One envelope format (type byte + body) covers all three protocols and the
// proxy layer; a daemon only ever decodes the types it handles. Encoded
// sizes are real — they drive the bandwidth evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "membership/types.h"
#include "membership/wire.h"
#include "net/packet.h"

namespace tamp::membership {

enum class MessageType : uint8_t {
  kHeartbeat = 1,
  kUpdate = 2,
  kBootstrapRequest = 3,
  kBootstrapResponse = 4,
  kSyncRequest = 5,
  kSyncResponse = 6,
  kElection = 7,
  kElectionAnswer = 8,
  kCoordinator = 9,
  kGossip = 10,
  kProxyHeartbeat = 11,
  kProxyUpdate = 12,
};

// Periodic liveness + node description. The all-to-all protocol uses only
// `entry`; the hierarchical protocol adds group metadata: the sender's role
// on the channel the packet was multicast on, its backup designation, and
// the per-sender heartbeat sequence.
struct HeartbeatMsg {
  EntryData entry;
  uint8_t level = 0;        // tree level of the channel this was sent on
  bool is_leader = false;   // paper: "special flag in its heartbeat packets"
  bool leaving = false;     // goodbye: sender is leaving this channel (alive)
  NodeId backup = kInvalidNode;  // leader's designated backup (if leader)
  // The sender's update-stream sequence number on this channel. Receivers
  // compare it against their per-origin cursor, so an update lost during an
  // otherwise quiet period is noticed within one heartbeat period instead
  // of waiting for the next update to expose the gap.
  uint64_t seq = 0;
};

// One membership change. Joins carry the full entry; leaves carry the
// subject id + incarnation so stale joins can be rejected downstream.
enum class UpdateKind : uint8_t { kJoin = 1, kLeave = 2 };

struct UpdateRecord {
  uint64_t seq = 0;  // position in the origin's update stream
  UpdateKind kind = UpdateKind::kJoin;
  NodeId subject = kInvalidNode;
  Incarnation incarnation = 0;
  std::optional<EntryData> entry;  // present for joins
};

// Update message: the origin's newest records, newest first. The tail
// beyond the first record is the paper's piggyback of the previous three
// updates, letting receivers absorb up to three consecutive packet losses.
// `origin_incarnation` scopes the sequence numbers: a restarted origin
// starts a fresh stream, and receivers must not judge it by the old
// incarnation's cursor.
struct UpdateMsg {
  NodeId origin = kInvalidNode;
  Incarnation origin_incarnation = 0;
  std::vector<UpdateRecord> records;
};

// New node -> group leader: "send me everything you know". The requester
// includes everything *it* knows, because it may itself be a lower-level
// leader bringing a whole subtree with it (paper Bootstrap protocol).
struct BootstrapRequestMsg {
  NodeId requester = kInvalidNode;
  std::vector<EntryData> known;
};

struct BootstrapResponseMsg {
  NodeId responder = kInvalidNode;
  std::vector<EntryData> entries;
};

// Receiver detected an unrecoverable update-stream gap and asks the sender
// for a full image (paper Message Loss Detection). `level` names the
// channel whose stream has the gap, so the response can re-anchor the
// receiver's cursor for exactly that stream.
struct SyncRequestMsg {
  NodeId requester = kInvalidNode;
  uint8_t level = 0;
  uint64_t last_seq_seen = 0;
};

struct SyncResponseMsg {
  NodeId responder = kInvalidNode;
  Incarnation responder_incarnation = 0;
  uint8_t level = 0;
  uint64_t stream_seq = 0;  // responder's current update seq on `level`
  std::vector<EntryData> entries;
};

// Bully election, scoped to one (channel, level) group.
struct ElectionMsg {
  NodeId candidate = kInvalidNode;
  uint8_t level = 0;
};
struct ElectionAnswerMsg {
  NodeId responder = kInvalidNode;
  uint8_t level = 0;
};
struct CoordinatorMsg {
  NodeId leader = kInvalidNode;
  uint8_t level = 0;
  NodeId backup = kInvalidNode;
};

// Gossip: the sender's full local view (one record per known node), which is
// what makes gossip traffic O(n * m) per message — the paper's stated reason
// it scales poorly inside a datacenter.
struct GossipRecord {
  EntryData entry;
  uint64_t heartbeat_counter = 0;
};
struct GossipMsg {
  NodeId sender = kInvalidNode;
  std::vector<GossipRecord> records;
};

// --- proxy (cross-datacenter) messages ---------------------------------

// Compact availability summary: per service, per partition, how many live
// providers a datacenter has. "Generally, the summary does not include the
// detailed machine information" (paper Section 3.2).
struct ServiceSummary {
  // service -> partition -> provider count
  std::map<std::string, std::map<int, int>> availability;

  bool operator==(const ServiceSummary&) const = default;
};

struct ProxyHeartbeatMsg {
  uint16_t dc = 0;
  NodeId sender = kInvalidNode;
  uint64_t seq = 0;
  ServiceSummary summary;
};

struct ProxyUpdateMsg {
  uint16_t dc = 0;
  NodeId sender = kInvalidNode;
  uint64_t seq = 0;
  ServiceSummary summary;  // summaries are small; updates resend the whole one
};

using Message =
    std::variant<HeartbeatMsg, UpdateMsg, BootstrapRequestMsg,
                 BootstrapResponseMsg, SyncRequestMsg, SyncResponseMsg,
                 ElectionMsg, ElectionAnswerMsg, CoordinatorMsg, GossipMsg,
                 ProxyHeartbeatMsg, ProxyUpdateMsg>;

// Encode into a payload buffer. `pad_to` (when > 0) zero-pads the result to
// a fixed size — used to equalize heartbeat packet sizes across protocols,
// as in the paper's measurements (228-byte average).
net::Payload encode_message(const Message& message, size_t pad_to = 0);

// Decode; nullopt on any malformed input.
std::optional<Message> decode_message(const uint8_t* data, size_t size);
inline std::optional<Message> decode_message(const net::Packet& packet) {
  return decode_message(packet.data(), packet.size());
}

}  // namespace tamp::membership
