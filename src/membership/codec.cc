#include "membership/codec.h"

#include "util/strings.h"

namespace tamp::membership {

void encode_entry(WireWriter& w, const EntryData& entry) {
  w.u32(entry.node);
  w.u64(entry.incarnation);
  w.u16(entry.machine.cpus);
  w.u32(entry.machine.memory_mb);
  w.str(entry.machine.os);
  w.varint(entry.services.size());
  for (const auto& service : entry.services) {
    w.str(service.name);
    w.varint(service.partitions.size());
    for (int partition : service.partitions) {
      w.varint(static_cast<uint64_t>(partition));
    }
    write_string_map(w, service.params);
  }
  write_string_map(w, entry.values);
}

std::optional<EntryData> decode_entry(WireReader& r) {
  EntryData entry;
  entry.node = r.u32();
  entry.incarnation = r.u64();
  entry.machine.cpus = r.u16();
  entry.machine.memory_mb = r.u32();
  entry.machine.os = r.str();
  uint64_t service_count = r.varint();
  for (uint64_t i = 0; i < service_count && r.ok(); ++i) {
    ServiceRegistration service;
    service.name = r.str();
    uint64_t partition_count = r.varint();
    for (uint64_t p = 0; p < partition_count && r.ok(); ++p) {
      service.partitions.push_back(static_cast<int>(r.varint()));
    }
    service.params = read_string_map(r);
    entry.services.push_back(std::move(service));
  }
  entry.values = read_string_map(r);
  if (!r.ok()) return std::nullopt;
  return entry;
}

size_t encoded_entry_size(const EntryData& entry) {
  WireWriter w;
  encode_entry(w, entry);
  return w.size();
}

EntryData make_representative_entry(NodeId node, Incarnation incarnation) {
  EntryData entry;
  entry.node = node;
  entry.incarnation = incarnation;
  entry.machine = MachineInfo{2, 2048, "linux-2.4.20-smp-i686"};
  ServiceRegistration service;
  service.name = "retriever";
  service.partitions = {static_cast<int>(node % 5),
                        static_cast<int>(node % 5) + 5};
  service.params = {{"Port", "8080"}, {"Proto", "tcp"}};
  entry.services.push_back(std::move(service));
  entry.values = {
      {"hostname", util::strformat("node-%04u.dc.example.com", node)},
      {"rack", util::strformat("rack-%02u", node / 20)},
      {"version", "neptune-2.1.3"},
      {"methods", "search,retrieve,status"},
      {"uptime", "86400"},
  };
  return entry;
}

}  // namespace tamp::membership
