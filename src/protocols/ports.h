// Well-known ports and channels used by the membership daemons.
#pragma once

#include "net/ids.h"

namespace tamp::protocols {

// Multicast data port: heartbeats, updates, election traffic (the paper's
// MCAST_PORT default).
inline constexpr net::Port kDataPort = 10050;
// Unicast control port: bootstrap, sync and election answers (the paper's
// Informer thread "listens on a well known UDP port").
inline constexpr net::Port kControlPort = 10051;
// Gossip protocol unicast port.
inline constexpr net::Port kGossipPort = 10052;
// Proxy WAN port (unicast to a datacenter's virtual IP).
inline constexpr net::Port kProxyWanPort = 10060;
// Service request/response ports (Neptune provider/consumer modules).
inline constexpr net::Port kServicePort = 10070;
inline constexpr net::Port kServiceReplyPort = 10071;

// Default base multicast channel (the paper's MCAST_ADDR); the hierarchical
// protocol uses base + level for tree level `level`.
inline constexpr net::ChannelId kBaseChannel = 1000;
// Channel reserved for the all-to-all protocol.
inline constexpr net::ChannelId kAllToAllChannel = 2000;
// Channel reserved for a datacenter's proxy group (paper Section 3.2).
inline constexpr net::ChannelId kProxyChannelBase = 3000;

}  // namespace tamp::protocols
