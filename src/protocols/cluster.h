// Fleet helper: builds and drives a whole cluster of membership daemons of
// one flavor over a topology. Used by integration tests, examples, and the
// evaluation harness (Figures 11-13).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "membership/codec.h"
#include "protocols/alltoall.h"
#include "protocols/gossip.h"
#include "protocols/hier.h"

namespace tamp::protocols {

enum class Scheme { kAllToAll, kGossip, kHierarchical };

const char* scheme_name(Scheme scheme);

// Owns one daemon per host. Construction does not start them.
class Cluster {
 public:
  struct Options {
    Scheme scheme = Scheme::kHierarchical;
    AllToAllConfig alltoall;
    GossipConfig gossip;
    HierConfig hier;
    // Pad per-node heartbeat info to this size (0 = natural). Applied to
    // the all-to-all and hierarchical heartbeat payloads; gossip messages
    // scale with view size by construction.
    size_t heartbeat_pad = 0;
    // Gossip bootstrap: how many seed peers each node starts with.
    int gossip_seeds = 3;
  };

  Cluster(sim::Simulation& sim, net::Network& net,
          const std::vector<net::HostId>& hosts, Options options);

  void start_all();
  void stop_all();

  size_t size() const { return daemons_.size(); }
  const Options& options() const { return options_; }
  MembershipDaemon& daemon(size_t index) { return *daemons_[index]; }
  // True if the daemon at `index` has not been kill()ed (restart revives).
  bool alive(size_t index) const { return alive_[index]; }
  membership::Incarnation incarnation(size_t index) const {
    return incarnations_[index];
  }
  MembershipDaemon* daemon_for(net::HostId host);
  HierDaemon* hier_daemon(size_t index);
  const std::vector<net::HostId>& hosts() const { return hosts_; }

  // Kill the daemon at `index` (stop + host down): the paper's failure
  // injection. `host_too` false models killing only the daemon process.
  void kill(size_t index, bool host_too = true);

  // Restart a previously killed node with a bumped incarnation.
  void restart(size_t index);

  // True when every *running* daemon's view contains exactly the running
  // node set.
  bool converged() const;
  // Number of running daemons whose view is exactly the running node set.
  size_t converged_count() const;
  // Ids of running daemons.
  std::vector<size_t> running_indices() const;

  void set_change_listener(MembershipDaemon::ChangeListener listener);

 private:
  std::unique_ptr<MembershipDaemon> make_daemon(net::HostId host);
  void seed_gossip(size_t index);

  sim::Simulation& sim_;
  net::Network& net_;
  std::vector<net::HostId> hosts_;
  Options options_;
  std::vector<std::unique_ptr<MembershipDaemon>> daemons_;
  std::vector<membership::Incarnation> incarnations_;
  std::vector<bool> alive_;
};

}  // namespace tamp::protocols
