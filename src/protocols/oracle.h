// The membership invariant oracle: continuous, automatic grading of a
// running cluster against the paper's correctness claims.
//
// The oracle owns the ground truth — which nodes are really alive, paused,
// or partitioned comes from the fault executor via the note_*() calls — and
// every virtual second compares it against what the protocol believes. The
// invariants checked (paper Sections 1, 3.1, 4):
//
//  1. No phantoms (always): no directory ever contains a node that was
//     never part of the cluster.
//  2. No false failure declarations (always): a node that stayed alive and
//     reachable from its observer for longer than the scheme's detection
//     bound is never declared dead. Declarations made while faults are
//     actively disturbing the network, or within one detection bound of
//     one, are excused — removing an unreachable node is *correct*.
//  3. Bounded detection (event-driven): after a clean crash, every running
//     observer that knew the victim must remove it within the Section-4
//     detection+convergence bound times a slack factor, unless another
//     fault intervened.
//  4. Eventual completeness (at quiescence): once the schedule has been
//     quiet long enough for the scheme's own repair horizon (timeouts,
//     tombstone expiry, anti-entropy), every running node's view equals
//     exactly the live node set — the paper's completeness + accuracy.
//  5. Leader uniqueness (at quiescence, hierarchical): no two level-L
//     leaders within TTL L+1 of each other — "a group leader cannot see
//     other leaders at the same level".
//  6. Provenance hygiene (at quiescence, hierarchical): every relayed
//     entry's relayed_by chain is acyclic and terminates at a directly
//     heard, actually-live relay (the Timeout protocol's purge chains stay
//     well-founded).
//  7. Epoch monotonicity (always, hierarchical): the leadership epoch a
//     daemon knows for a level never decreases within one daemon lifetime
//     (a restart starts a fresh observer).
//  8. No persistent stale leadership (always, hierarchical): a node
//     claiming leadership under an epoch older than a live leader within
//     earshot must stand down within the detection deadline — a stale
//     claim that persists is exactly the state from which stale-replay
//     purges propagate.
//  9. Bounded join propagation (event-driven): after a restart, every
//     running observer must (re)admit the revenant within the scheme's
//     full repair horizon — graded per join, so a storm of later faults
//     elsewhere cannot hide one node that never made it back in.
// 10. Bounded solicited traffic (always, hierarchical): the per-daemon
//     full-image serve rate stays within the admission-control budget and
//     the solicited-request rate stays within what dedup'd, backed-off
//     retries can produce. A breach means the recovery path is amplifying
//     load instead of shedding it — the overload death-spiral signature.
// 11. Scope reconvergence (at quiescence, hierarchical): every group
//     membership matches the *live* topology's TTL distances — observer o
//     tracks subject s in its level-L group iff s has joined level L, the
//     current ttl_required(o, s) is in (0, L+1], and the pair is mutually
//     reachable. Graded on every run; after runtime topology mutation
//     (router crash/recovery, added links, host migration) this is the
//     "groups reconverged to the new shape" guarantee, and on a run with
//     no mutation it degenerates to a static scope-consistency check.
//
// The first violation is captured with full context (invariant, observer,
// subject, virtual time, detail) so a failing chaos scenario is
// diagnosable from the test log alone.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "protocols/cluster.h"
#include "sim/timer.h"

namespace tamp::protocols {

class MembershipOracle {
 public:
  struct Config {
    sim::Duration check_interval = sim::kSecond;
    // Multiplier on the analytical detection/convergence bounds; >1 absorbs
    // scan-interval quantization and scheduling phase.
    double slack = 3.0;
    // Cold-start allowance before invariants 2-4 arm.
    sim::Duration formation_grace = 15 * sim::kSecond;
    // Quiet time after the last fault before the quiescent invariants
    // (completeness, leader uniqueness, provenance) are enforced.
    // 0 = derive from the scheme's timeout/tombstone/anti-entropy config.
    sim::Duration quiesce = 0;
    // Extra allowance, past quiescence, between the last topology mutation
    // and the first scope-reconvergence check (invariant 11). 0 = the
    // quiescence horizon alone is the reconvergence bound.
    sim::Duration reconvergence_bound = 0;
    // Floor on the hierarchy depth the checks size their bookkeeping for.
    // The level count is otherwise derived from the topology's *current*
    // max_ttl — set this when runtime mutation will deepen the hierarchy
    // past its build-time depth (e.g. a host migrated behind a new router),
    // so bounds and per-level state cover the final shape from the start.
    int min_levels = 0;
    size_t max_violations = 8;  // stop collecting after this many
  };

  struct Violation {
    std::string invariant;
    sim::Time when = 0;
    membership::NodeId observer = membership::kInvalidNode;
    membership::NodeId subject = membership::kInvalidNode;
    std::string detail;

    std::string to_string() const;
  };

  MembershipOracle(sim::Simulation& sim, net::Network& net,
                   net::Topology& topology, Cluster& cluster, Config config);
  MembershipOracle(sim::Simulation& sim, net::Network& net,
                   net::Topology& topology, Cluster& cluster);

  // Installs per-daemon change listeners (claiming the cluster's listener
  // slot) and starts the periodic check. Call after Cluster construction,
  // before or after start_all().
  void start();
  void stop();

  // --- ground truth (the fault executor reports every action) -----------
  void note_crash(size_t index);
  void note_restart(size_t index);
  void note_pause(size_t index);
  void note_resume(size_t index);
  // Any change to network conditions (partition start *or* heal, loss /
  // delay / duplication window edges, link state) — resets the quiescence
  // clock and opens an excuse window for failure declarations.
  void note_network_fault(bool any_active);
  // The topology itself changed shape (router crash/recovery, link added,
  // host migrated): starts invariant 11's reconvergence clock on top of the
  // usual quiescence reset. Callers still report the accompanying
  // reachability change through note_network_fault.
  void note_topology_mutation();

  // Reachability under the currently injected faults, direction-sensitive
  // (can packets from `a` reach `b`?). Defaults to topology reachability +
  // host up/down; the scenario runner overrides it to include injected
  // partitions.
  void set_reachability(std::function<bool(net::HostId, net::HostId)> fn) {
    reachable_ = std::move(fn);
  }

  // --- results -----------------------------------------------------------
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  // All captured violations, one per line (empty string when ok).
  std::string report() const;
  uint64_t checks_run() const { return checks_run_; }

  // Scheme-derived bounds (without slack); exposed for tests.
  sim::Duration detection_bound() const { return detection_bound_; }
  sim::Duration convergence_bound() const { return convergence_bound_; }
  sim::Duration quiesce_bound() const { return quiesce_; }
  // Bound × slack: the deadline actually enforced.
  sim::Duration detection_deadline() const;
  // Invariant 9's per-join deadline: the scheme's full repair horizon
  // (level-scaled for the hierarchical scheme via convergence + tombstone
  // expiry + anti-entropy). Deliberately = quiesce_bound(), so every probe
  // is graded before the scenario horizon runs out.
  sim::Duration join_deadline() const { return quiesce_; }

 private:
  struct NodeTruth {
    bool alive = true;
    bool paused = false;
    sim::Time last_disturbed = 0;  // crash/restart/pause/resume
  };
  // Outstanding obligation from a clean crash: every observer listed in
  // `pending` must drop the victim by `killed_at + detection_deadline()`.
  struct KillProbe {
    size_t victim_index = 0;
    membership::NodeId victim = membership::kInvalidNode;
    sim::Time killed_at = 0;
    std::vector<size_t> pending;
  };
  // Mirror obligation from a restart: every observer listed in `pending`
  // must (re)admit the revenant by `restarted_at + join_deadline()`.
  struct JoinProbe {
    size_t revenant_index = 0;
    membership::NodeId revenant = membership::kInvalidNode;
    sim::Time restarted_at = 0;
    std::vector<size_t> pending;
  };

  void derive_bounds();
  // Hierarchy depth the per-level checks cover: the live topology's
  // (clamped) max_ttl, floored by Config::min_levels. Per-level bookkeeping
  // is sized with this at first use, so min_levels must cover any depth the
  // run's mutations can reach.
  int hier_levels() const;
  void install_listener(size_t index);
  void on_change(size_t observer_index, membership::NodeId subject, bool alive,
                 sim::Time when);
  bool default_reachable(net::HostId from, net::HostId to) const;
  bool is_reachable(net::HostId from, net::HostId to) const;
  bool excused(size_t observer_index, membership::NodeId subject,
               sim::Time when) const;
  bool quiescent() const;
  void tick();
  void check_phantoms();
  void check_kill_probes();
  void check_join_probes();
  void check_epochs();
  void check_solicited_rate();
  void check_completeness();
  void check_leader_uniqueness();
  void check_provenance();
  void check_scope_reconvergence();
  void add_violation(const std::string& invariant, membership::NodeId observer,
                     membership::NodeId subject, const std::string& detail);

  sim::Simulation& sim_;
  net::Network& net_;
  net::Topology& topology_;
  Cluster& cluster_;
  Config config_;
  sim::PeriodicTimer check_timer_;

  std::vector<NodeTruth> truth_;
  std::vector<KillProbe> probes_;
  std::vector<JoinProbe> join_probes_;
  // Previous check tick's solicited-traffic counters, per daemon
  // (invariant 10; hierarchical only, sized lazily). A counter that went
  // backwards means the daemon restarted: resync without grading.
  std::vector<uint64_t> last_served_;
  std::vector<uint64_t> last_requested_;
  // Per (observer, level) epoch bookkeeping for invariants 7-8 (hierarchical
  // only; sized lazily on first check). epoch_seen_ is the highest epoch the
  // observer has reported this lifetime; stale_claim_since_ is when it was
  // first seen leading under an epoch older than a live leader in earshot
  // (0 = not currently).
  std::vector<std::vector<membership::Epoch>> epoch_seen_;
  std::vector<std::vector<sim::Time>> stale_claim_since_;
  sim::Time last_fault_ = 0;          // any note_*() call
  sim::Time last_network_change_ = 0; // network-condition edges only
  sim::Time last_topology_mutation_ = 0;  // shape changes only (invariant 11)
  bool network_fault_active_ = false;
  std::function<bool(net::HostId, net::HostId)> reachable_;

  sim::Duration detection_bound_ = 0;
  sim::Duration convergence_bound_ = 0;
  sim::Duration quiesce_ = 0;
  std::vector<Violation> violations_;
  uint64_t checks_run_ = 0;
  bool running_ = false;
};

}  // namespace tamp::protocols
