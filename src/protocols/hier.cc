#include "protocols/hier.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"
#include "util/logging.h"

namespace tamp::protocols {

using membership::ApplyResult;
using membership::decode_message;
using membership::encode_message;
using membership::BootstrapRequestMsg;
using membership::BootstrapResponseMsg;
using membership::BusyKind;
using membership::BusyMsg;
using membership::CoordinatorMsg;
using membership::DigestRowSummary;
using membership::ElectionAnswerMsg;
using membership::ElectionMsg;
using membership::EntryData;
using membership::HeartbeatMsg;
using membership::Incarnation;
using membership::Liveness;
using membership::MembershipEntry;
using membership::NodeId;
using membership::RefreshDeltaMsg;
using membership::RefreshDigestMsg;
using membership::RefreshPullMsg;
using membership::SyncRequestMsg;
using membership::SyncResponseMsg;
using membership::UpdateKind;
using membership::UpdateMsg;
using membership::UpdateRecord;

namespace {

sim::Duration configured_refresh_interval(const HierConfig& config) {
  if (config.anti_entropy_mode == AntiEntropyMode::kDigest &&
      config.digest_interval > 0) {
    return config.digest_interval;
  }
  return config.refresh_interval;
}

size_t configured_digest_buckets(const HierConfig& config) {
  const auto buckets = static_cast<size_t>(
      config.digest_buckets > 0 ? config.digest_buckets : 1);
  return std::min(buckets, membership::kMaxDigestBuckets);
}

}  // namespace

HierDaemon::HierDaemon(sim::Simulation& sim, net::Network& net, NodeId self,
                       EntryData own, HierConfig config)
    : MembershipDaemon(sim, net, self, std::move(own)),
      config_(config),
      heartbeat_timer_(sim, config.period, [this] { heartbeat_tick(); }),
      scan_timer_(sim, config.scan_interval, [this] { scan_tick(); }),
      refresh_timer_(sim,
                     configured_refresh_interval(config) > 0
                         ? configured_refresh_interval(config)
                         : sim::kSecond,
                     [this] { refresh_tick(); }),
      topo_poll_timer_(sim,
                       config.topology_poll_interval > 0
                           ? config.topology_poll_interval
                           : config.period,
                       [this] { topology_poll_tick(); }) {
  TAMP_CHECK(config_.max_ttl >= 1 && config_.max_ttl <= 250);
  table_ = membership::MembershipTable(config_.tombstone_ttl);
  levels_.reserve(static_cast<size_t>(config_.max_ttl));
  for (int level = 0; level < config_.max_ttl; ++level) {
    auto state = std::make_unique<LevelState>();
    state->level = level;
    state->listen_timer = std::make_unique<sim::OneShotTimer>(sim, [this, level] {
      if (level_state(level).leader == membership::kInvalidNode) {
        maybe_start_election(level);
      }
    });
    state->election_timer = std::make_unique<sim::OneShotTimer>(
        sim, [this, level] { election_deadline(level); });
    state->coordinator_timer =
        std::make_unique<sim::OneShotTimer>(sim, [this, level] {
          LevelState& ls = level_state(level);
          ls.electing = false;
          if (ls.leader == membership::kInvalidNode) maybe_start_election(level);
        });
    state->backup_grace_timer =
        std::make_unique<sim::OneShotTimer>(sim, [this, level] {
          if (level_state(level).leader == membership::kInvalidNode) {
            maybe_start_election(level);
          }
        });
    levels_.push_back(std::move(state));
  }
  resolve_metrics();
}

HierDaemon::~HierDaemon() { stop(); }

void HierDaemon::resolve_metrics() {
  obs::MetricsRegistry& m = net_.obs().metrics;
  auto c = [&](std::string_view name) {
    return m.counter(obs::Protocol::kHier, name, self_);
  };
  metrics_.heartbeats_sent = c("heartbeats_sent");
  metrics_.updates_sent = c("updates_sent");
  metrics_.update_records_applied = c("update_records_applied");
  metrics_.elections_started = c("elections_started");
  metrics_.coordinators_sent = c("coordinators_sent");
  metrics_.bootstraps_requested = c("bootstraps_requested");
  metrics_.bootstraps_served = c("bootstraps_served");
  metrics_.syncs_requested = c("syncs_requested");
  metrics_.syncs_served = c("syncs_served");
  metrics_.gaps_recovered_by_piggyback = c("gaps_recovered_by_piggyback");
  metrics_.relayed_purges = c("relayed_purges");
  metrics_.epochs_minted = c("epochs_minted");
  metrics_.stale_epoch_rejects = c("stale_epoch_rejects");
  metrics_.epochs_superseded = c("epochs_superseded");
  metrics_.deaf_backlogs_dropped = c("deaf_backlogs_dropped");
  metrics_.exchange_retries = c("exchange_retries");
  metrics_.exchange_budget_exhausted = c("exchange_budget_exhausted");
  metrics_.busy_sent = c("busy_sent");
  metrics_.busy_deferrals = c("busy_deferrals");
  metrics_.out_log_compacted = c("out_log_compacted");
  metrics_.digests_sent = c("digests_sent");
  metrics_.digest_pulls_sent = c("digest_pulls_sent");
  metrics_.digest_pulls_served = c("digest_pulls_served");
  metrics_.deltas_sent = c("deltas_sent");
  metrics_.delta_rows_shipped = c("delta_rows_shipped");
  metrics_.digest_rows_suppressed = c("digest_rows_suppressed");
  metrics_.digest_full_fallbacks = c("digest_full_fallbacks");
  metrics_.topology_rescopes = c("topology_rescopes");
  metrics_.image_serve_entries =
      m.histogram(obs::Protocol::kHier, "image_serve_entries", self_);
}

void HierDaemon::trace(obs::TraceKind kind, int level, uint64_t a,
                       uint64_t b) {
  net_.obs().tracer.record(kind, self_, sim_.now(), level, a, b);
}

sim::Duration HierDaemon::level_timeout(int level) const {
  double factor = std::pow(config_.level_timeout_factor, level);
  return static_cast<sim::Duration>(
      static_cast<double>(config_.max_losses) *
      static_cast<double>(config_.period) * factor);
}

int HierDaemon::level_of_channel(net::ChannelId channel) const {
  // Admin-specified channels take precedence over the derived mapping.
  for (size_t l = 0; l < config_.level_channels.size() &&
                     l < static_cast<size_t>(config_.max_ttl);
       ++l) {
    if (config_.level_channels[l] != 0 &&
        config_.level_channels[l] == channel) {
      return static_cast<int>(l);
    }
  }
  if (channel < config_.base_channel) return -1;
  auto level = static_cast<int64_t>(channel - config_.base_channel);
  if (level >= config_.max_ttl) return -1;
  if (static_cast<size_t>(level) < config_.level_channels.size() &&
      config_.level_channels[static_cast<size_t>(level)] != 0) {
    return -1;  // this level was remapped away from the derived channel
  }
  return static_cast<int>(level);
}

// --- lifecycle ------------------------------------------------------------

void HierDaemon::start() {
  if (running()) return;
  base_start();
  net_.bind(self_, config_.data_port,
            [this](const net::Packet& p) { on_data_packet(p); });
  net_.bind(self_, config_.control_port,
            [this](const net::Packet& p) { on_control_packet(p); });
  heartbeat_timer_.start_with_random_phase();
  scan_timer_.start_with_random_phase();
  if (anti_entropy_interval() > 0) refresh_timer_.start_with_random_phase();
  if (config_.topology_poll_interval > 0) {
    topo_epoch_seen_ = net_.topology().epoch();
    topo_poll_timer_.start_with_random_phase();
  }
  join_level(0);
}

void HierDaemon::stop() {
  if (!running()) return;
  heartbeat_timer_.stop();
  scan_timer_.stop();
  refresh_timer_.stop();
  topo_poll_timer_.stop();
  leave_levels_from(0);
  net_.unbind(self_, config_.data_port);
  net_.unbind(self_, config_.control_port);
  base_stop();
}

void HierDaemon::join_level(int level) {
  if (level >= config_.max_ttl) return;
  LevelState& ls = level_state(level);
  if (ls.joined) return;
  ls.joined = true;
  trace(obs::TraceKind::kGroupJoin, level);
  ls.last_received = sim_.now();  // deafness clock starts at (re)join
  net_.join_group(self_, channel_of(level));
  send_heartbeat(level);
  // Paper bootstrap: listen for a leader flag first; elect only if the
  // channel turns out to be leaderless.
  ls.listen_timer->restart(config_.join_listen);
}

void HierDaemon::leave_levels_from(int level, bool announce) {
  for (int l = config_.max_ttl - 1; l >= level; --l) {
    LevelState& ls = level_state(l);
    if (!ls.joined) continue;
    trace(obs::TraceKind::kGroupLeave, l, announce ? 1 : 0);
    if (announce) {
      // Graceful goodbye: we are alive, just leaving this channel — peers
      // must not mistake our silence here for a node failure.
      HeartbeatMsg goodbye;
      goodbye.entry = own_;
      goodbye.level = static_cast<uint8_t>(l);
      goodbye.is_leader = false;
      goodbye.leaving = true;
      goodbye.seq = ++hb_seq_;
      net_.send_multicast(self_, channel_of(l), ttl_of(l), config_.data_port,
                          encode_message(goodbye, config_.heartbeat_pad));
    }
    net_.leave_group(self_, channel_of(l));
    ls.joined = false;
    ls.bootstrapped = false;
    ls.members.clear();
    ls.leader = membership::kInvalidNode;
    ls.leader_backup = membership::kInvalidNode;
    ls.i_am_leader = false;
    ls.my_backup = membership::kInvalidNode;
    ls.electing = false;
    ls.answered = false;
    ls.prev_leader = membership::kInvalidNode;
    ls.prev_leader_incarnation = 0;
    ls.in_seq.clear();
    clear_out_log(ls);
    ls.pending_bootstrap.reset();
    ls.pending_syncs.clear();
    // `superseded` intentionally NOT reset: succession knowledge, like the
    // epoch itself, must never regress within one daemon lifetime.
    // out_seq intentionally NOT reset: receivers' per-origin cursors must
    // never observe a sequence regression.
    ls.listen_timer->cancel();
    ls.election_timer->cancel();
    ls.coordinator_timer->cancel();
    ls.backup_grace_timer->cancel();
  }
}

// --- introspection -----------------------------------------------------------

bool HierDaemon::joined(int level) const {
  return level >= 0 && level < config_.max_ttl && levels_[level]->joined;
}

bool HierDaemon::is_leader(int level) const {
  return joined(level) && levels_[level]->i_am_leader;
}

NodeId HierDaemon::leader_of(int level) const {
  if (!joined(level)) return membership::kInvalidNode;
  return levels_[level]->leader;
}

NodeId HierDaemon::backup_of(int level) const {
  if (!joined(level)) return membership::kInvalidNode;
  const LevelState& ls = *levels_[level];
  return ls.i_am_leader ? ls.my_backup : ls.leader_backup;
}

std::vector<int> HierDaemon::joined_levels() const {
  std::vector<int> out;
  for (int l = 0; l < config_.max_ttl; ++l) {
    if (levels_[l]->joined) out.push_back(l);
  }
  return out;
}

std::vector<NodeId> HierDaemon::group_members(int level) const {
  std::vector<NodeId> out;
  if (!joined(level)) return out;
  for (const auto& [node, info] : levels_[level]->members) out.push_back(node);
  return out;
}

membership::Epoch HierDaemon::epoch_of(int level) const {
  if (level < 0 || level >= config_.max_ttl) return 0;
  return levels_[level]->epoch;
}

size_t HierDaemon::pending_exchanges(int level) const {
  if (level < 0 || level >= config_.max_ttl) return 0;
  const LevelState& ls = *levels_[level];
  return ls.pending_syncs.size() + (ls.pending_bootstrap ? 1u : 0u);
}

// --- periodic work ------------------------------------------------------------

void HierDaemon::heartbeat_tick() {
  ++hb_seq_;
  for (int l = 0; l < config_.max_ttl; ++l) {
    if (levels_[l]->joined) send_heartbeat(l);
  }
  // The table-wide soft-state GC below is O(view size); its timeouts are
  // tens of seconds, so scanning every few periods loses nothing and keeps
  // thousand-node simulations fast.
  if (hb_seq_ % 5 != 0) return;
  // Direct entries we no longer actually hear (e.g. a lost goodbye from a
  // node that left a shared channel) decay to relayed status, entering the
  // normal second-hand lifecycle below.
  const sim::Time now = sim_.now();
  std::vector<NodeId> demote;
  for (const auto& [id, entry] : table_.entries()) {
    if (entry.liveness == Liveness::kDirect && id != self_ &&
        !heard_directly(id)) {
      demote.push_back(id);
    }
  }
  for (NodeId id : demote) {
    table_.demote_to_relayed(id, membership::kInvalidNode);
  }
  // Relayed entries are soft state refreshed by the relay chain's periodic
  // anti-entropy (refresh_tick): an entry nobody re-announces within the
  // refresh horizon is stale — drop it. This is what eventually clears
  // entries resurrected by packet reordering or late replays under loss.
  // In digest mode the "re-announcement" is the digest/delta touch, so the
  // horizon follows whichever anti-entropy interval is in effect.
  const sim::Duration refresh = anti_entropy_interval();
  sim::Duration orphan_timeout = 2 * level_timeout(config_.max_ttl - 1);
  if (refresh > 0) {
    orphan_timeout = std::max(
        orphan_timeout, 2 * refresh + level_timeout(config_.max_ttl - 1));
  }
  auto expired = table_.expire(now, [&](const membership::MembershipEntry& e) {
    if (e.data.node == self_ || e.liveness != Liveness::kRelayed) {
      return sim::Duration{-1};
    }
    return orphan_timeout;
  });
  for (NodeId node : expired) notify(node, false);
}

void HierDaemon::send_heartbeat(int level) {
  LevelState& ls = level_state(level);
  HeartbeatMsg heartbeat;
  heartbeat.entry = own_;
  heartbeat.level = static_cast<uint8_t>(level);
  heartbeat.is_leader = ls.i_am_leader;
  heartbeat.backup = ls.my_backup;
  heartbeat.seq = ls.out_seq;
  heartbeat.epoch = ls.epoch;
  net_.send_multicast(self_, channel_of(level), ttl_of(level),
                      config_.data_port,
                      encode_message(heartbeat, config_.heartbeat_pad));
  metrics_.heartbeats_sent->add();
}

void HierDaemon::scan_tick() {
  for (int l = 0; l < config_.max_ttl; ++l) {
    if (levels_[l]->joined) scan_level(l);
  }
}

void HierDaemon::scan_level(int level) {
  LevelState& ls = level_state(level);
  const sim::Time now = sim_.now();
  const sim::Duration timeout = level_timeout(level);
  std::vector<NodeId> dead;
  for (const auto& [node, info] : ls.members) {
    if (now - info.last_heard > timeout) dead.push_back(node);
  }
  for (NodeId node : dead) on_member_dead(level, node);
}

void HierDaemon::topology_poll_tick() {
  const uint64_t epoch = net_.topology().epoch();
  if (epoch == topo_epoch_seen_) return;
  topo_epoch_seen_ = epoch;
  on_topology_change(epoch);
}

void HierDaemon::on_topology_change(uint64_t epoch) {
  // The routing fabric changed shape under us. Re-probe every group
  // member's TTL distance against the new routes and shed the ones whose
  // distance no longer fits their level — waiting for their heartbeats to
  // time out would be both slow and wrong (it carries death semantics; a
  // migrated node is alive). Members that moved *into* scope announce
  // themselves on the next heartbeat they multicast.
  uint64_t dropped = 0;
  for (int level = 0; level < config_.max_ttl; ++level) {
    if (levels_[level]->joined) dropped += drop_out_of_scope(level);
  }
  trace(obs::TraceKind::kTopologyChange, -1, epoch, dropped);
  if (dropped > 0) metrics_.topology_rescopes->add(dropped);
  // Announce immediately on every joined channel: peers the new routes just
  // put within earshot hear us up to a full period early, and where two
  // established leaders suddenly share a scope the heartbeat's leader flag
  // starts the merge (lowest id keeps the role) right away.
  for (int level = 0; level < config_.max_ttl; ++level) {
    if (levels_[level]->joined) send_heartbeat(level);
  }
}

size_t HierDaemon::drop_out_of_scope(int level) {
  LevelState& ls = level_state(level);
  std::vector<NodeId> gone;
  for (const auto& [member, info] : ls.members) {
    const int ttl = net_.topology().ttl_required(self_, member);
    if (ttl == 0 || ttl > level + 1) gone.push_back(member);
  }
  for (NodeId member : gone) {
    // Mirror the voluntary-leave path (on_heartbeat's `leaving` branch):
    // the member is alive, merely out of earshot now, so no leave record is
    // relayed and no purge cascades — its entry just becomes second-hand.
    ls.members.erase(member);
    prune_pending(ls, member);
    if (ls.leader == member) {
      ls.leader = membership::kInvalidNode;
      ls.backup_grace_timer->restart(config_.backup_grace);
    }
    if (ls.i_am_leader && ls.my_backup == member) {
      ls.my_backup = pick_backup(level);
    }
    if (!heard_directly(member)) {
      table_.demote_to_relayed(member, membership::kInvalidNode);
    }
  }
  return gone.size();
}

bool HierDaemon::heard_directly(NodeId node) const {
  for (int l = 0; l < config_.max_ttl; ++l) {
    if (levels_[l]->joined && levels_[l]->members.contains(node)) return true;
  }
  return false;
}

void HierDaemon::on_member_dead(int level, NodeId member) {
  LevelState& ls = level_state(level);
  auto it = ls.members.find(member);
  if (it == ls.members.end()) return;
  const bool was_leader = it->second.is_leader || ls.leader == member;
  // Capture the dying life's incarnation before the table entry goes: the
  // succession fence must name the life that was lost, not a later restart.
  const auto* lost_entry = table_.find(member);
  const Incarnation lost_incarnation =
      lost_entry ? lost_entry->data.incarnation : 0;
  ls.members.erase(it);
  prune_pending(ls, member);

  TAMP_LOG(Info) << "hier node " << self_ << " detects member " << member
                 << " dead at level " << level;
  trace(obs::TraceKind::kTimeoutExpiry, level, member);

  if (ls.i_am_leader && ls.my_backup == member) {
    ls.my_backup = pick_backup(level);
  }

  if (!heard_directly(member)) {
    if (table_.remove(member, lost_incarnation, sim_.now())) {
      notify(member, false);
      relay_record(make_leave_record(member, lost_incarnation), level);
    }
    // Paper Timeout protocol: a dead node detected at level > 0 takes the
    // membership information it relayed with it (partition detection). A
    // dead *level-0* leader does not: the backup/new leader re-seeds the
    // group within the (larger) higher-level timeouts, so instant purging
    // would only cause view flapping; orphan expiry is the backstop.
    if (level > 0) purge_dependents(member, level, ls.epoch);
  }

  if (was_leader) handle_leader_loss(level, member, lost_incarnation);
}

void HierDaemon::purge_dependents(NodeId dead, int arrival_level,
                                  membership::Epoch trigger_epoch) {
  // A purge established under a leadership epoch that has since been
  // superseded is acting on stale knowledge: the new leadership's refresh
  // is re-seeding exactly the entries this purge would remove.
  if (trigger_epoch < level_state(arrival_level).epoch) {
    metrics_.stale_epoch_rejects->add();
    return;
  }
  // Worklist: purging one relay may orphan entries relayed by the purged
  // node in turn (multi-hop chains).
  std::vector<NodeId> worklist{dead};
  while (!worklist.empty()) {
    NodeId relay = worklist.back();
    worklist.pop_back();
    std::vector<std::pair<NodeId, Incarnation>> victims;
    // Entries announced by the dead relay went quiet when it did, so by the
    // time its death is detected (one level_timeout at this level) they are
    // at least that stale. Anything fresher is being re-announced by a
    // *live* relay (e.g. a new leader's refresh) and must survive the purge.
    const sim::Duration fresh_horizon = level_timeout(arrival_level);
    for (const auto& [id, entry] : table_.entries()) {
      if (entry.liveness != Liveness::kRelayed || entry.relayed_by != relay ||
          id == self_ || heard_directly(id)) {
        continue;
      }
      // Skip entries someone is actively re-announcing (a new leader's
      // refresh beat our purge): they have a live chain and will either be
      // re-tagged to it or expire as orphans.
      if (sim_.now() - entry.last_heard <= fresh_horizon) continue;
      victims.emplace_back(id, entry.data.incarnation);
    }
    for (const auto& [id, incarnation] : victims) {
      if (table_.remove(id, incarnation, sim_.now())) {
        metrics_.relayed_purges->add();
        notify(id, false);
        relay_record(make_leave_record(id, incarnation), arrival_level);
        worklist.push_back(id);
      }
    }
  }
}

// --- packet handling -----------------------------------------------------------

void HierDaemon::on_data_packet(const net::Packet& packet) {
  int level = level_of_channel(packet.channel);
  if (level < 0 || !levels_[level]->joined) return;
  auto message = decode_message(packet);
  if (!message) return;
  // Resurfacing check: a deafness gap exceeding this level's own failure
  // timeout means every peer has, by the same clock, timed us out and moved
  // on. Whatever we stamped into the out-log while cut off (chiefly the
  // leaves of nodes we could no longer hear) describes a world that no
  // longer exists — drop it rather than replay it through the piggyback.
  LevelState& arrival = *levels_[level];
  const sim::Time arrived = sim_.now();
  if (arrival.last_received > 0 && !arrival.out_log.empty() &&
      arrived - arrival.last_received > level_timeout(level)) {
    clear_out_log(arrival);
    metrics_.deaf_backlogs_dropped->add();
  }
  arrival.last_received = arrived;
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, HeartbeatMsg>) {
          on_heartbeat(level, msg);
        } else if constexpr (std::is_same_v<T, UpdateMsg>) {
          on_update(level, msg);
        } else if constexpr (std::is_same_v<T, ElectionMsg>) {
          on_election(level, msg);
        } else if constexpr (std::is_same_v<T, CoordinatorMsg>) {
          on_coordinator(level, msg);
        } else if constexpr (std::is_same_v<T, RefreshDigestMsg>) {
          on_refresh_digest(level, msg);
        }
      },
      *message);
}

void HierDaemon::on_control_packet(const net::Packet& packet) {
  auto message = decode_message(packet);
  if (!message) return;
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, BootstrapRequestMsg>) {
          const int req_level =
              msg.level < config_.max_ttl ? static_cast<int>(msg.level) : 0;
          // Symmetric exchange: absorb what the newcomer knows (it may be a
          // lower-level leader bringing a subtree) — cheap inbound work that
          // happens even when the O(N) image serve below is refused.
          absorb_entries(msg.known, msg.requester, 0);
          if (!admit_image_serve()) {
            send_busy(msg.requester, static_cast<uint8_t>(req_level),
                      BusyKind::kBootstrap);
            return;
          }
          metrics_.bootstraps_served->add();
          BootstrapResponseMsg response;
          response.responder = self_;
          response.responder_incarnation = own_.incarnation;
          response.level = static_cast<uint8_t>(req_level);
          response.epoch = levels_[req_level]->epoch;
          response.entries = full_view();
          metrics_.image_serve_entries->observe(
              static_cast<double>(response.entries.size()));
          net_.send_unicast(self_,
                            net::Address{msg.requester, config_.control_port},
                            encode_message(response));
        } else if constexpr (std::is_same_v<T, BootstrapResponseMsg>) {
          const int arrival =
              msg.level < config_.max_ttl ? static_cast<int>(msg.level) : 0;
          LevelState& ls = *levels_[arrival];
          // A full image from a responder whose leadership of this channel
          // was superseded is itself stale: don't absorb it, the live
          // leader's traffic is already re-seeding us.
          if (fenced_stale(ls, msg.responder, msg.epoch,
                           msg.responder_incarnation)) {
            metrics_.stale_epoch_rejects->add();
            return;
          }
          // The exchange completed: only now is the level bootstrapped. A
          // lost response leaves the flag down and the retry timer running.
          if (ls.joined) ls.bootstrapped = true;
          ls.pending_bootstrap.reset();
          absorb_entries(msg.entries, msg.responder, arrival);
        } else if constexpr (std::is_same_v<T, SyncRequestMsg>) {
          if (!admit_image_serve()) {
            send_busy(msg.requester, msg.level, BusyKind::kSync);
            return;
          }
          metrics_.syncs_served->add();
          SyncResponseMsg response;
          response.responder = self_;
          response.responder_incarnation = own_.incarnation;
          response.level = msg.level;
          if (msg.level < config_.max_ttl) {
            const int req_level = static_cast<int>(msg.level);
            if (levels_[req_level]->joined) {
              response.stream_seq = levels_[req_level]->out_seq;
            }
            response.epoch = levels_[req_level]->epoch;
          }
          response.entries = full_view();
          metrics_.image_serve_entries->observe(
              static_cast<double>(response.entries.size()));
          net_.send_unicast(self_,
                            net::Address{msg.requester, config_.control_port},
                            encode_message(response));
        } else if constexpr (std::is_same_v<T, SyncResponseMsg>) {
          int level = msg.level;
          if (level < config_.max_ttl && levels_[level]->joined) {
            // Reconciliation removes entries, so it must never run against
            // the image of a responder whose leadership of this channel was
            // superseded (a resumed stale leader serves a view missing most
            // of the cluster).
            if (fenced_stale(*levels_[level], msg.responder, msg.epoch,
                             msg.responder_incarnation)) {
              metrics_.stale_epoch_rejects->add();
              return;
            }
            // The poll was answered; stop the retry timer for it.
            levels_[level]->pending_syncs.erase(msg.responder);
            // The image covers everything up to the responder's current
            // stream position: re-anchor our cursor there.
            auto& in_seq = levels_[level]->in_seq;
            auto cursor = in_seq.find(msg.responder);
            if (cursor == in_seq.end() ||
                cursor->second.incarnation < msg.responder_incarnation ||
                (cursor->second.incarnation == msg.responder_incarnation &&
                 cursor->second.seq < msg.stream_seq)) {
              in_seq[msg.responder] = LevelState::InCursor{
                  msg.responder_incarnation, msg.stream_seq};
            }
            reconcile_with_image(msg.responder, msg.entries, level);
            absorb_entries(msg.entries, msg.responder, level);
          } else {
            reconcile_with_image(msg.responder, msg.entries, 0);
            absorb_entries(msg.entries, msg.responder, 0);
          }
        } else if constexpr (std::is_same_v<T, ElectionAnswerMsg>) {
          int level = msg.level;
          if (level >= 0 && level < config_.max_ttl &&
              levels_[level]->joined && levels_[level]->electing) {
            levels_[level]->answered = true;
          }
        } else if constexpr (std::is_same_v<T, BusyMsg>) {
          on_busy(msg);
        } else if constexpr (std::is_same_v<T, RefreshPullMsg>) {
          on_refresh_pull(msg);
        } else if constexpr (std::is_same_v<T, RefreshDeltaMsg>) {
          on_refresh_delta(msg);
        }
      },
      *message);
}

void HierDaemon::on_heartbeat(int level, const HeartbeatMsg& msg) {
  LevelState& ls = level_state(level);
  const NodeId sender = msg.entry.node;
  if (sender == self_) return;
  const sim::Time now = sim_.now();

  if (msg.leaving) {
    // Voluntary channel departure: the node is alive, just out of earshot
    // here. Drop the membership bookkeeping without any death semantics.
    ls.members.erase(sender);
    prune_pending(ls, sender);
    if (ls.leader == sender) {
      ls.leader = membership::kInvalidNode;
      ls.backup_grace_timer->restart(config_.backup_grace);
    }
    // Keep the entry's contents fresh, but record that our knowledge of it
    // is about to become second-hand.
    table_.apply(msg.entry, Liveness::kDirect, membership::kInvalidNode, now);
    if (!heard_directly(sender)) {
      table_.demote_to_relayed(sender, membership::kInvalidNode);
    }
    return;
  }

  // Epoch bookkeeping. Epochs are lineage-scoped — overlapping groups
  // sharing this channel mint independently, so a bigger number from an
  // arbitrary sender proves nothing by itself. A claim is stale only when
  // our succession record says this claimant's *current life* was already
  // superseded at that epoch (a restarted claimant is a fresh lineage);
  // supersession of *our own* leadership likewise requires a direct claim
  // (leader flag / COORDINATOR), never second-hand member gossip.
  const bool stale_claim =
      msg.is_leader &&
      fenced_stale(ls, sender, msg.epoch, msg.entry.incarnation);
  if (msg.is_leader && !stale_claim) {
    if (msg.epoch > ls.epoch) adopt_epoch(level, msg.epoch, sender);
  } else if (!msg.is_leader && !ls.i_am_leader && msg.epoch > ls.epoch) {
    // Member gossip raises the channel-history watermark (so a later mint
    // lands above it) but carries no supersession authority.
    ls.epoch = msg.epoch;
  }

  const bool added_member = !ls.members.contains(sender);
  // A stale claimant is still a live member; just don't record it as a
  // leader, or its presence would suppress a genuinely needed election.
  ls.members[sender] = MemberInfo{now, msg.is_leader && !stale_claim,
                                  msg.backup};

  ApplyResult result = table_.apply(msg.entry, Liveness::kDirect,
                                    membership::kInvalidNode, now);
  if (result == ApplyResult::kAdded) notify(sender, true);

  // The heartbeat advertises the sender's update-stream position: a cursor
  // behind it means we lost update packets with nothing since to expose the
  // gap — poll for a fresh image (paper Message Loss Detection).
  auto cursor = ls.in_seq.find(sender);
  if (cursor == ls.in_seq.end() ||
      cursor->second.incarnation < msg.entry.incarnation) {
    // First contact (or a restarted sender with a fresh stream): anchor;
    // the bootstrap exchange supplies the content.
    ls.in_seq[sender] =
        LevelState::InCursor{msg.entry.incarnation, msg.seq};
  } else if (cursor->second.incarnation == msg.entry.incarnation &&
             msg.seq > cursor->second.seq) {
    // Cursor only advances when the recovery actually lands (update or
    // sync response): a lost poll is retried by the exchange's own timer.
    request_sync(level, sender, msg.seq);
  }

  if (stale_claim) {
    // Reject the claim: don't adopt the sender as leader, don't yield to
    // it, don't pull its (stale) image. If we hold the live leadership,
    // repel it — assert the current epoch and re-seed the claimant's view
    // so it abdicates and recovers without operator action.
    metrics_.stale_epoch_rejects->add();
    if (ls.i_am_leader) {
      repel_stale_claim(level, sender, msg.epoch, msg.entry.incarnation);
    }
    if (ls.leader == sender) ls.leader = membership::kInvalidNode;
  } else if (msg.is_leader) {
    const bool leader_changed = ls.leader != sender;
    if (leader_changed) {
      ls.leader = sender;
      ls.prev_leader = membership::kInvalidNode;  // succession resolved
      ls.prev_leader_incarnation = 0;
      ls.backup_grace_timer->cancel();
      if (ls.electing) {
        ls.electing = false;
        ls.answered = false;
        ls.election_timer->cancel();
        ls.coordinator_timer->cancel();
      }
    }
    ls.leader_backup = msg.backup;
    if (ls.i_am_leader) {
      // Two leaders in mutual earshot: a newer-epoch claim was already
      // resolved by adopt_epoch above (we yielded), so what remains is an
      // equal-or-older claim from an independent lineage (healed merge,
      // overlap fringe): lowest id keeps the role (paper's election
      // invariant — a leader never tolerates seeing another).
      if (sender < self_) {
        ls.leader = sender;
        abdicate(level);
        // Merged groups (e.g. a healed partition): exchange views with the
        // surviving leader so both sides' subtrees propagate.
        request_bootstrap(level, sender);
      } else {
        send_coordinator(level);
        ls.leader = self_;
      }
    } else if (!ls.bootstrapped || leader_changed) {
      // First contact with a leader, or a leadership handoff: (re)pull the
      // full image from whoever now leads this channel.
      request_bootstrap(level, sender);
    }
  } else if (ls.leader == sender) {
    ls.leader = membership::kInvalidNode;  // it stepped down
  }

  // A fresh face (or fresh contents) in a group we participate in gets
  // propagated to the groups we lead; the relay rules no-op for followers.
  if (added_member || result == ApplyResult::kAdded ||
      result == ApplyResult::kUpdated) {
    relay_record(make_join_record(msg.entry), level);
  }
}

void HierDaemon::on_update(int level, const UpdateMsg& msg) {
  LevelState& ls = level_state(level);
  if (msg.origin == self_) return;
  auto member = ls.members.find(msg.origin);
  if (member != ls.members.end()) member->second.last_heard = sim_.now();
  // Stale-replay fence. An update stream from an origin whose leadership
  // claim on this channel was superseded — at or below the epoch the batch
  // is stamped with — is replay from before the re-election (a resumed
  // leader flushing its out-log): the records in it, chiefly the leaves it
  // stamped while detached, describe a world that no longer exists. Epochs
  // from other, overlapping lineages pass (not comparable numbers), and so
  // does a restarted origin's fresh stream (new life, new lineage).
  if (fenced_stale(ls, msg.origin, msg.epoch, msg.origin_incarnation)) {
    metrics_.stale_epoch_rejects->add();
    return;
  }
  if (msg.records.empty()) return;

  std::vector<const UpdateRecord*> ordered;
  ordered.reserve(msg.records.size());
  for (const auto& record : msg.records) ordered.push_back(&record);
  std::sort(ordered.begin(), ordered.end(),
            [](const UpdateRecord* a, const UpdateRecord* b) {
              return a->seq < b->seq;
            });

  const uint64_t newest = ordered.back()->seq;
  auto cursor = ls.in_seq.find(msg.origin);

  if (cursor == ls.in_seq.end() ||
      cursor->second.incarnation < msg.origin_incarnation) {
    // First contact with this origin's stream on this channel (or the
    // origin restarted and its sequence numbers start over): accept
    // everything and anchor the cursor — there is no history to have lost.
    for (const auto* record : ordered) process_record(*record, msg.origin, level);
    ls.in_seq[msg.origin] =
        LevelState::InCursor{msg.origin_incarnation, newest};
    return;
  }
  if (cursor->second.incarnation > msg.origin_incarnation) {
    return;  // stale message from a previous life of the origin
  }

  const uint64_t known = cursor->second.seq;
  if (newest <= known) return;  // stale duplicate
  if (msg.window_base > known) {
    // Records in (known, window_base] were trimmed out of the origin's
    // bounded log — unrecoverable from this message even with the
    // piggybacked history: poll the origin for a full image (paper Message
    // Loss Detection). Holes above window_base are compaction, not loss
    // (the shadowing record is in the message). The cursor stays put so
    // the gap keeps being visible until the poll succeeds; the present
    // records are still applied (idempotent).
    request_sync(level, msg.origin, newest);
    for (const auto* record : ordered) {
      if (record->seq > known) process_record(*record, msg.origin, level);
    }
    return;
  }
  if (known + 1 < newest) {
    metrics_.gaps_recovered_by_piggyback->add();
  }
  for (const auto* record : ordered) {
    if (record->seq > known) process_record(*record, msg.origin, level);
  }
  cursor->second.seq = newest;
}

void HierDaemon::on_election(int level, const ElectionMsg& msg) {
  LevelState& ls = level_state(level);
  if (msg.candidate == self_) return;
  if (ls.i_am_leader) {
    send_coordinator(level);
    return;
  }
  if (self_ < msg.candidate && can_participate(level)) {
    ElectionAnswerMsg answer;
    answer.responder = self_;
    answer.level = static_cast<uint8_t>(level);
    net_.send_unicast(self_, net::Address{msg.candidate, config_.control_port},
                      encode_message(answer));
    maybe_start_election(level);
  }
}

void HierDaemon::on_coordinator(int level, const CoordinatorMsg& msg) {
  LevelState& ls = level_state(level);
  if (msg.leader == self_) return;
  if (fenced_stale(ls, msg.leader, msg.epoch, msg.leader_incarnation)) {
    // Stale replay: an announcement of leadership the group has since
    // re-elected away (e.g. a resumed leader's deferred COORDINATOR).
    metrics_.stale_epoch_rejects->add();
    if (ls.i_am_leader) {
      repel_stale_claim(level, msg.leader, msg.epoch, msg.leader_incarnation);
    }
    return;
  }
  // Record the succession the announcement carries: claims by the named
  // predecessor's fenced life below this epoch are fenced from now on. This
  // is what lets a receiver that never directly hears the new leader still
  // reject the old one's replayed leadership.
  if (msg.prev != membership::kInvalidNode && msg.prev != msg.leader &&
      msg.prev != self_ && msg.epoch > 0) {
    raise_fence(ls, msg.prev, msg.epoch - 1, msg.prev_incarnation);
  }
  if (msg.epoch > ls.epoch) {
    adopt_epoch(level, msg.epoch, msg.leader);
    // adopt_epoch resolved any leadership we held; fall through as a
    // follower and record the announcer.
  }
  if (ls.i_am_leader) {
    if (msg.leader < self_) {
      ls.leader = msg.leader;
      ls.leader_backup = msg.backup;
      abdicate(level);
    }
    // Otherwise keep the role; the higher-id claimant will yield when it
    // hears our leader-flagged heartbeat.
    return;
  }
  ls.leader = msg.leader;
  ls.leader_backup = msg.backup;
  ls.prev_leader = membership::kInvalidNode;  // succession resolved
  ls.prev_leader_incarnation = 0;
  ls.electing = false;
  ls.answered = false;
  ls.election_timer->cancel();
  ls.coordinator_timer->cancel();
  ls.backup_grace_timer->cancel();
  ls.members[msg.leader] = MemberInfo{sim_.now(), true, msg.backup};
  if (!ls.bootstrapped) request_bootstrap(level, msg.leader);
}

// --- leadership -------------------------------------------------------------

bool HierDaemon::can_participate(int level) const {
  const LevelState& ls = *levels_[level];
  if (!ls.joined) return false;
  // Paper overlap rule: stay out of elections on a channel where we already
  // hear a leader (even one of a different, overlapping group).
  for (const auto& [node, info] : ls.members) {
    if (info.is_leader) return false;
  }
  return true;
}

void HierDaemon::maybe_start_election(int level) {
  LevelState& ls = level_state(level);
  if (!ls.joined || ls.electing || ls.i_am_leader || !can_participate(level)) {
    return;
  }
  metrics_.elections_started->add();
  trace(obs::TraceKind::kElectionStart, level, ls.epoch);
  ls.electing = true;
  ls.answered = false;
  ElectionMsg msg;
  msg.candidate = self_;
  msg.level = static_cast<uint8_t>(level);
  net_.send_multicast(self_, channel_of(level), ttl_of(level),
                      config_.data_port, encode_message(msg));
  ls.election_timer->restart(config_.election_timeout);
}

void HierDaemon::election_deadline(int level) {
  LevelState& ls = level_state(level);
  if (!ls.electing) return;
  if (!ls.answered) {
    become_leader(level);
  } else {
    // A lower-id node objected; give it time to announce itself.
    ls.coordinator_timer->restart(config_.coordinator_timeout);
  }
}

NodeId HierDaemon::pick_backup(int level) {
  LevelState& ls = level_state(level);
  std::vector<NodeId> candidates;
  for (const auto& [node, info] : ls.members) candidates.push_back(node);
  if (candidates.empty()) return membership::kInvalidNode;
  return sim_.rng().pick(candidates);
}

void HierDaemon::become_leader(int level) {
  LevelState& ls = level_state(level);
  ls.electing = false;
  ls.answered = false;
  ls.election_timer->cancel();
  ls.coordinator_timer->cancel();
  ls.backup_grace_timer->cancel();
  if (ls.i_am_leader) return;
  ls.i_am_leader = true;
  ls.leader = self_;
  ls.my_backup = pick_backup(level);
  // Our own view is now the group's authority; an outstanding bootstrap
  // poll (to a dead or demoted leader) is moot.
  ls.pending_bootstrap.reset();
  // Mint a new leadership epoch above everything heard on this channel, and
  // fence the predecessor we are succeeding: its claims (and replayed
  // updates) below the new epoch are stale from this moment on.
  ls.epoch += 1;
  metrics_.epochs_minted->add();
  trace(obs::TraceKind::kEpochMint, level, ls.epoch);
  if (ls.prev_leader != membership::kInvalidNode && ls.prev_leader != self_) {
    raise_fence(ls, ls.prev_leader, ls.epoch - 1, ls.prev_leader_incarnation);
  }

  TAMP_LOG(Info) << "hier node " << self_ << " becomes leader of level "
                 << level << " epoch " << ls.epoch;

  send_coordinator(level);

  send_heartbeat(level);
  // Re-seed the group with everything we know: after a leader death the
  // members purged the old relay's entries and need a fresh image.
  send_state_refresh(level);
  join_level(level + 1);
  // Announce our subtree upward before the higher group's (longer) timeout
  // purges everything the dead leader used to relay.
  if (joined(level + 1)) send_state_refresh(level + 1, /*subtree_only=*/true);
}

void HierDaemon::abdicate(int level) {
  LevelState& ls = level_state(level);
  if (!ls.i_am_leader) return;
  TAMP_LOG(Info) << "hier node " << self_ << " abdicates level " << level;
  ls.i_am_leader = false;
  ls.my_backup = membership::kInvalidNode;
  // Membership of level L+1 was contingent on leading level L. This is a
  // voluntary departure, so it is announced (we are not dead).
  leave_levels_from(level + 1, /*announce=*/true);
}

void HierDaemon::send_coordinator(int level) {
  LevelState& ls = level_state(level);
  CoordinatorMsg msg;
  msg.leader = self_;
  msg.level = static_cast<uint8_t>(level);
  msg.backup = ls.my_backup;
  msg.epoch = ls.epoch;
  // Name the leadership this one superseded (when it succeeded one), so
  // every receiver — including ones that will never hear us directly —
  // learns to fence the predecessor's replayed claims.
  msg.prev = ls.i_am_leader ? ls.prev_leader : membership::kInvalidNode;
  msg.leader_incarnation = own_.incarnation;
  msg.prev_incarnation = ls.i_am_leader ? ls.prev_leader_incarnation : 0;
  net_.send_multicast(self_, channel_of(level), ttl_of(level),
                      config_.data_port, encode_message(msg));
  metrics_.coordinators_sent->add();
  trace(obs::TraceKind::kCoordinator, level, ls.epoch);
}

void HierDaemon::adopt_epoch(int level, membership::Epoch epoch,
                             NodeId new_leader) {
  LevelState& ls = level_state(level);
  if (epoch <= ls.epoch) return;
  ls.epoch = epoch;
  ls.prev_leader = membership::kInvalidNode;
  ls.prev_leader_incarnation = 0;
  if (!ls.i_am_leader) return;
  // A direct claim outranks our leadership: either we were superseded while
  // out of earshot (pause, partition) and the group elected past us, or a
  // merge brought a longer-lived leadership into earshot. Step down
  // silently. The out-log is dropped, not replayed — it holds leaves
  // stamped while detached, which would purge live nodes — and the old
  // subtree's entries are the new leadership's to curate, so no purge
  // either. Then re-enter as a plain member and pull a fresh image.
  metrics_.epochs_superseded->add();
  trace(obs::TraceKind::kEpochSupersede, level, epoch, new_leader);
  TAMP_LOG(Info) << "hier node " << self_ << " superseded at level " << level
                 << " (epoch " << epoch << "), abdicating";
  clear_out_log(ls);
  ls.leader = new_leader;
  abdicate(level);
  ls.bootstrapped = false;
  ls.pending_bootstrap.reset();  // any in-flight poll aimed at old leadership
  if (new_leader != membership::kInvalidNode) {
    request_bootstrap(level, new_leader);
  }
  // Else: leader unknown yet — re-pull from whoever we next hear claiming
  // the channel with a live epoch.
}

void HierDaemon::raise_fence(LevelState& ls, NodeId node,
                             membership::Epoch epoch,
                             membership::Incarnation incarnation) {
  // Fences are per-life: a record for a newer incarnation replaces the old
  // life's record wholesale (the old life can never claim again anyway),
  // while within one life the fence only ever rises.
  LevelState::Fence& fence = ls.superseded[node];
  if (incarnation > fence.incarnation) {
    fence.incarnation = incarnation;
    fence.epoch = epoch;
  } else if (incarnation == fence.incarnation) {
    fence.epoch = std::max(fence.epoch, epoch);
  }
}

bool HierDaemon::fenced_stale(const LevelState& ls, NodeId node,
                              membership::Epoch epoch,
                              membership::Incarnation incarnation) {
  // Stale only when the claimant's *current life* was superseded at or
  // below this epoch: a higher incarnation is a restart — a fresh lineage
  // the old succession record says nothing about.
  auto it = ls.superseded.find(node);
  return it != ls.superseded.end() && incarnation <= it->second.incarnation &&
         epoch <= it->second.epoch;
}

void HierDaemon::repel_stale_claim(int level, NodeId claimant,
                                   membership::Epoch claim_epoch,
                                   membership::Incarnation claim_incarnation) {
  LevelState& ls = level_state(level);
  // Pin the claimant's current life in the succession fence (it may predate
  // our own knowledge — e.g. the fence was learned from a COORDINATOR) and
  // name it in the re-assertion so followers that missed the original
  // announcement learn the succession too.
  raise_fence(ls, claimant, claim_epoch, claim_incarnation);
  trace(obs::TraceKind::kStaleReject, level, claimant, claim_epoch);
  ls.prev_leader = claimant;
  ls.prev_leader_incarnation = claim_incarnation;
  send_coordinator(level);
  // Re-seed the claimant's stale view (and repair anything its replayed
  // leaves knocked out elsewhere). A full-view burst, so rate-limited: the
  // claimant keeps heartbeating until the COORDINATOR lands.
  const sim::Time now = sim_.now();
  if (now - ls.last_stale_reseed < config_.period) return;
  ls.last_stale_reseed = now;
  send_state_refresh(level);
  // The resumed subtree hangs off this channel; re-announce upward too so
  // the parent group re-admits whatever the stale episode purged there.
  if (level + 1 < config_.max_ttl && levels_[level + 1]->joined) {
    send_state_refresh(level + 1, /*subtree_only=*/true);
  }
}

void HierDaemon::handle_leader_loss(int level, NodeId old_leader,
                                    membership::Incarnation old_incarnation) {
  LevelState& ls = level_state(level);
  // Leadership may already have been resolved (a backup's COORDINATOR beat
  // our own detection scan): do not contest it.
  if (ls.leader != membership::kInvalidNode && ls.leader != old_leader) {
    return;
  }
  if (ls.leader == old_leader) ls.leader = membership::kInvalidNode;
  // Whoever wins the succession (backup takeover or election) names the
  // lost leader's life as superseded in its COORDINATOR.
  ls.prev_leader = old_leader;
  ls.prev_leader_incarnation = old_incarnation;
  const NodeId backup = ls.leader_backup;
  ls.leader_backup = membership::kInvalidNode;
  if (backup == self_ && ls.joined && !ls.i_am_leader) {
    become_leader(level);  // designated backup takes over immediately
    return;
  }
  if (backup != membership::kInvalidNode && ls.members.contains(backup)) {
    ls.backup_grace_timer->restart(config_.backup_grace);
  } else {
    maybe_start_election(level);
  }
}

// --- update propagation ------------------------------------------------------

UpdateRecord HierDaemon::make_join_record(const EntryData& entry) {
  UpdateRecord record;
  record.kind = UpdateKind::kJoin;
  record.subject = entry.node;
  record.incarnation = entry.incarnation;
  record.entry = entry;
  return record;
}

UpdateRecord HierDaemon::make_leave_record(NodeId subject, Incarnation inc) {
  UpdateRecord record;
  record.kind = UpdateKind::kLeave;
  record.subject = subject;
  record.incarnation = inc;
  return record;
}

bool HierDaemon::process_record(const UpdateRecord& record, NodeId relayed_by,
                                int arrival_level) {
  metrics_.update_records_applied->add();
  trace(obs::TraceKind::kDeltaApply, arrival_level, record.subject, record.seq);
  if (record.subject == self_) return false;
  const sim::Time now = sim_.now();

  if (record.kind == UpdateKind::kJoin) {
    if (!record.entry) return false;
    ApplyResult result = table_.apply(*record.entry, Liveness::kRelayed,
                                      provenance_tag(record.subject, relayed_by),
                                      now);
    const bool fresh =
        result == ApplyResult::kAdded || result == ApplyResult::kUpdated;
    if (result == ApplyResult::kAdded) notify(record.subject, true);
    if (fresh) relay_record(record, arrival_level);
    return fresh;
  }

  // kLeave. Stale leaves are fenced upstream: the per-origin succession
  // fence drops whole messages from superseded claimants, and the deafness
  // guard stops a resurfacing node from ever emitting its cut-off backlog.
  // record.epoch stays on the wire as provenance (which leadership stamped
  // the record) — it is not compared numerically here, because relayed
  // records cross channels whose lineages mint independently.
  // Our own ears beat second-hand news: if we currently hear the subject's
  // heartbeats, the leave is stale (or an overlap artifact).
  if (heard_directly(record.subject)) return false;
  if (!table_.remove(record.subject, record.incarnation, now)) return false;
  notify(record.subject, false);
  relay_record(record, arrival_level);
  purge_dependents(record.subject, arrival_level,
                   levels_[arrival_level]->epoch);
  return true;
}

void HierDaemon::relay_record(const UpdateRecord& record, int arrival_level) {
  std::vector<bool> emit(static_cast<size_t>(config_.max_ttl), false);
  // Downward/lateral: into every group this node leads (includes the
  // arrival channel itself when we lead it — needed for overlapping groups,
  // where same-channel peers may be outside the original sender's TTL).
  for (int l = 0; l < config_.max_ttl; ++l) {
    if (levels_[l]->joined && levels_[l]->i_am_leader) emit[l] = true;
  }
  // Upward cascade: the leader of level L forwards into L+1; when it is the
  // (possibly sole) member-and-leader there too, the record must keep
  // climbing — a node cannot receive its own multicast, so the cascade is
  // computed here rather than re-entering through the socket.
  for (int l = arrival_level;
       l + 1 < config_.max_ttl && levels_[l]->i_am_leader &&
       levels_[l + 1]->joined;
       ++l) {
    emit[l + 1] = true;
  }
  for (int l = 0; l < config_.max_ttl; ++l) {
    if (emit[l]) emit_update(l, record);
  }
}

void HierDaemon::emit_update(int level, const UpdateRecord& record) {
  std::vector<UpdateRecord> batch{record};
  emit_batch(level, batch);
}

void HierDaemon::emit_batch(int level,
                            const std::vector<UpdateRecord>& batch) {
  LevelState& ls = level_state(level);
  if (!ls.joined || batch.empty()) return;

  // Deafness guard, mirrored from on_data_packet for timer-driven emissions
  // (a refresh can fire after a resume before any packet has arrived): a
  // backlog stamped while cut off must not ride out on the piggyback.
  if (ls.last_received > 0 && !ls.out_log.empty() &&
      sim_.now() - ls.last_received > level_timeout(level)) {
    clear_out_log(ls);
    metrics_.deaf_backlogs_dropped->add();
  }

  UpdateMsg msg;
  msg.origin = self_;
  msg.origin_incarnation = own_.incarnation;
  msg.epoch = ls.epoch;
  // Piggyback the previous records (newest first) after the new batch.
  const size_t prior =
      std::min<size_t>(static_cast<size_t>(config_.piggyback), ls.out_log.size());
  for (const auto& record : batch) {
    UpdateRecord stamped = record;
    stamped.seq = ++ls.out_seq;
    stamped.epoch = ls.epoch;
    ls.out_log.push_front(stamped);
  }
  // Compaction: a record shadowed by a newer record for the same subject at
  // an incarnation at least as new is dead weight — the shadower alone
  // produces the same final table state at every receiver. Coalescing lets
  // the bounded log cover a longer seq window, so fewer losses escalate to
  // full-image syncs. The holes this opens are safe for window_base: the
  // shadower sits at a higher seq in the same log, so any compacted seq
  // inside a sent window is covered by a record in that window.
  {
    std::map<NodeId, Incarnation> newest;
    for (auto it = ls.out_log.begin(); it != ls.out_log.end();) {
      auto seen = newest.find(it->subject);
      if (seen != newest.end() && it->incarnation <= seen->second) {
        it = ls.out_log.erase(it);
        metrics_.out_log_compacted->add();
      } else {
        auto& inc = newest[it->subject];
        inc = std::max(inc, it->incarnation);
        ++it;
      }
    }
  }
  const size_t send = std::min(batch.size() + prior, ls.out_log.size());
  for (size_t i = 0; i < send; ++i) msg.records.push_back(ls.out_log[i]);
  // Everything above window_base that still matters rides in this message:
  // either the next retained-but-unsent record's seq, or the trim watermark
  // when the whole log fits.
  msg.window_base =
      send < ls.out_log.size() ? ls.out_log[send].seq : ls.out_log_base;
  while (ls.out_log.size() >
         static_cast<size_t>(std::max(config_.piggyback + 1, 8))) {
    ls.out_log_base = std::max(ls.out_log_base, ls.out_log.back().seq);
    ls.out_log.pop_back();
  }
  net_.send_multicast(self_, channel_of(level), ttl_of(level),
                      config_.data_port, encode_message(msg));
  metrics_.updates_sent->add();
  trace(obs::TraceKind::kDeltaEmit, level, msg.records.size(), ls.epoch);
}

void HierDaemon::clear_out_log(LevelState& ls) {
  ls.out_log.clear();
  ls.out_log_base = ls.out_seq;
}

std::vector<const MembershipEntry*> HierDaemon::refresh_scope(
    int level, bool subtree_only) const {
  const LevelState& ls = *levels_[level];
  std::vector<const MembershipEntry*> rows;
  for (const auto& [id, entry] : table_.entries()) {
    if (subtree_only && id != self_) {
      // Upward refreshes announce only the subtree this node represents:
      // re-announcing what we learned *from* this very group would keep a
      // departed peer's stale entries alive through mutual refresh.
      if (ls.members.contains(id)) continue;
      if (entry.liveness == Liveness::kRelayed &&
          entry.relayed_by != membership::kInvalidNode &&
          ls.members.contains(entry.relayed_by)) {
        continue;
      }
    }
    rows.push_back(&entry);
  }
  return rows;
}

void HierDaemon::send_state_refresh(int level, bool subtree_only) {
  std::vector<UpdateRecord> batch;
  for (const MembershipEntry* row : refresh_scope(level, subtree_only)) {
    batch.push_back(make_join_record(row->data));
  }
  emit_batch(level, batch);
}

// --- incremental anti-entropy (digest mode) ---------------------------------

sim::Duration HierDaemon::anti_entropy_interval() const {
  return configured_refresh_interval(config_);
}

void HierDaemon::send_refresh_digest(int level, bool subtree) {
  LevelState& ls = level_state(level);
  if (!ls.joined) return;
  const auto rows = refresh_scope(level, subtree);
  const size_t bucket_count = configured_digest_buckets(config_);
  RefreshDigestMsg msg;
  msg.origin = self_;
  msg.origin_incarnation = own_.incarnation;
  msg.level = static_cast<uint8_t>(level);
  msg.epoch = ls.epoch;
  msg.subtree = subtree;
  msg.row_count = static_cast<uint32_t>(rows.size());
  msg.buckets.assign(bucket_count, 0);
  if (subtree) msg.subjects.reserve(rows.size());
  for (const MembershipEntry* row : rows) {
    const uint64_t hash = membership::digest_row_hash(row->data);
    msg.view_hash ^= hash;
    msg.buckets[membership::digest_bucket_of(row->data.node, bucket_count)] ^=
        hash;
    // Table iteration is id-ascending, which is exactly the order the
    // delta-varint scope coding wants.
    if (subtree) msg.subjects.push_back(row->data.node);
  }
  net_.send_multicast(self_, channel_of(level), ttl_of(level),
                      config_.data_port, encode_message(msg));
  metrics_.digests_sent->add();
}

std::vector<const MembershipEntry*> HierDaemon::digest_receiver_scope(
    const RefreshDigestMsg& msg) const {
  std::vector<const MembershipEntry*> rows;
  if (msg.subtree) {
    // The digest names its scope; hash our copies of exactly those rows.
    // A listed row we don't hold leaves its hash out of our bucket — the
    // mismatch is how the pull discovers it. Rows we hold that the origin
    // stopped listing simply go unrefreshed and age into orphan expiry.
    for (NodeId id : msg.subjects) {
      const MembershipEntry* entry = table_.find(id);
      if (entry != nullptr) rows.push_back(entry);
    }
    return rows;
  }
  for (const auto& [id, entry] : table_.entries()) {
    rows.push_back(&entry);
  }
  return rows;
}

void HierDaemon::on_refresh_digest(int level, const RefreshDigestMsg& msg) {
  LevelState& ls = level_state(level);
  if (msg.origin == self_) return;
  auto member = ls.members.find(msg.origin);
  if (member != ls.members.end()) member->second.last_heard = sim_.now();
  // Same stale-replay fence as update streams: a digest from a superseded
  // leadership life describes a pre-re-election world; comparing against it
  // (and worse, pulling rows from it) would resurrect that world.
  if (fenced_stale(ls, msg.origin, msg.epoch, msg.origin_incarnation)) {
    metrics_.stale_epoch_rejects->add();
    return;
  }
  const size_t bucket_count = msg.buckets.size();
  if (bucket_count == 0 || bucket_count > membership::kMaxDigestBuckets) {
    return;
  }

  const auto rows = digest_receiver_scope(msg);
  std::vector<uint64_t> buckets(bucket_count, 0);
  for (const MembershipEntry* row : rows) {
    buckets[membership::digest_bucket_of(row->data.node, bucket_count)] ^=
        membership::digest_row_hash(row->data);
  }
  std::vector<bool> mismatched(bucket_count, false);
  bool any_mismatch = false;
  for (size_t b = 0; b < bucket_count; ++b) {
    if (buckets[b] != msg.buckets[b]) {
      mismatched[b] = true;
      any_mismatch = true;
    }
  }

  // Rows in agreeing buckets are still being announced by the origin:
  // refresh them exactly as absorbing a full re-announcement would, minus
  // the bytes — re-rooting their provenance at the origin, the relay that
  // just vouched for them. Rows in mismatched buckets wait for the delta —
  // the ones the origin stopped announcing must keep aging toward orphan
  // expiry, or a lost LEAVE would never be repaired.
  const sim::Time now = sim_.now();
  for (const MembershipEntry* row : rows) {
    const NodeId id = row->data.node;
    if (id == self_ || row->liveness != Liveness::kRelayed) continue;
    if (mismatched[membership::digest_bucket_of(id, bucket_count)]) continue;
    table_.reconfirm_relay(id, msg.origin, now);
  }
  if (!any_mismatch) return;

  RefreshPullMsg pull;
  pull.requester = self_;
  pull.level = static_cast<uint8_t>(level);
  pull.epoch = ls.epoch;
  pull.subtree = msg.subtree;
  for (size_t b = 0; b < bucket_count; ++b) {
    if (mismatched[b]) pull.bucket_indices.push_back(static_cast<uint16_t>(b));
  }
  for (const MembershipEntry* row : rows) {
    if (!mismatched[membership::digest_bucket_of(row->data.node,
                                                 bucket_count)]) {
      continue;
    }
    pull.rows.push_back(DigestRowSummary{
        row->data.node, row->data.incarnation,
        membership::digest_row_hash(row->data)});
  }
  net_.send_unicast(self_, net::Address{msg.origin, config_.control_port},
                    encode_message(pull));
  metrics_.digest_pulls_sent->add();
}

void HierDaemon::on_refresh_pull(const RefreshPullMsg& msg) {
  if (msg.requester == self_) return;
  const int level =
      msg.level < config_.max_ttl ? static_cast<int>(msg.level) : 0;
  LevelState& ls = *levels_[level];
  if (!ls.joined) return;
  metrics_.digest_pulls_served->add();

  // Bucket geometry is ours (the pull answers our digest); indices outside
  // it are from a digest we did not send this configuration for — ignore
  // them rather than guess.
  const size_t bucket_count = configured_digest_buckets(config_);
  std::vector<bool> wanted(bucket_count, false);
  for (uint16_t b : msg.bucket_indices) {
    if (b < bucket_count) wanted[b] = true;
  }
  std::map<NodeId, const DigestRowSummary*> theirs;
  for (const auto& row : msg.rows) theirs[row.subject] = &row;

  RefreshDeltaMsg delta;
  delta.responder = self_;
  delta.responder_incarnation = own_.incarnation;
  delta.level = msg.level;
  delta.epoch = ls.epoch;
  const size_t cap = config_.digest_max_rows_per_delta > 0
                         ? static_cast<size_t>(config_.digest_max_rows_per_delta)
                         : table_.size();
  for (const MembershipEntry* row : refresh_scope(level, msg.subtree)) {
    if (!wanted[membership::digest_bucket_of(row->data.node, bucket_count)]) {
      continue;
    }
    auto it = theirs.find(row->data.node);
    if (it != theirs.end() &&
        it->second->row_hash == membership::digest_row_hash(row->data)) {
      delta.confirmed.push_back(row->data.node);
      continue;
    }
    if (delta.entries.size() >= cap) {
      // Divergence beyond the delta budget: stop here and let the requester
      // escalate to the full-image path (which admission control guards).
      delta.truncated = true;
      break;
    }
    delta.entries.push_back(row->data);
  }
  // Rows the requester listed that we do not hold in scope are deliberately
  // neither shipped nor confirmed: unrefreshed, they age into orphan expiry
  // at the requester — the digest-mode form of lost-LEAVE repair.
  metrics_.delta_rows_shipped->add(delta.entries.size());
  metrics_.digest_rows_suppressed->add(delta.confirmed.size());
  metrics_.deltas_sent->add();
  net_.send_unicast(self_, net::Address{msg.requester, config_.control_port},
                    encode_message(delta));
}

void HierDaemon::on_refresh_delta(const RefreshDeltaMsg& msg) {
  if (msg.responder == self_) return;
  const int level =
      msg.level < config_.max_ttl ? static_cast<int>(msg.level) : 0;
  LevelState& ls = *levels_[level];
  if (!ls.joined) return;
  if (fenced_stale(ls, msg.responder, msg.epoch, msg.responder_incarnation)) {
    metrics_.stale_epoch_rejects->add();
    return;
  }
  absorb_entries(msg.entries, msg.responder, level);
  const sim::Time now = sim_.now();
  for (NodeId id : msg.confirmed) {
    if (id == self_) continue;
    table_.reconfirm_relay(id, msg.responder, now);
  }
  if (msg.truncated) {
    // The backstop demotion: only a delta that could not carry the whole
    // divergence escalates to an O(N) image, and that path sits behind the
    // responder's image_serve_budget like any other full-image exchange.
    metrics_.digest_full_fallbacks->add();
    request_sync(level, msg.responder, 0);
  }
}

// --- bootstrap / sync -------------------------------------------------------

void HierDaemon::request_sync(int level, NodeId origin, uint64_t observed_seq) {
  LevelState& ls = level_state(level);
  auto it = ls.pending_syncs.find(origin);
  if (it != ls.pending_syncs.end()) {
    if (!it->second->exhausted) return;  // a poll is already in flight
    // The attempt budget on this origin is spent and it is still ahead of
    // us: stop polling and anchor the cursor past the gap instead. The
    // anti-entropy refresh re-announces whatever the lost stretch carried,
    // and orphan expiry removes what it should have removed.
    auto cursor = ls.in_seq.find(origin);
    if (cursor != ls.in_seq.end() && observed_seq > cursor->second.seq) {
      cursor->second.seq = observed_seq;
    }
    ls.pending_syncs.erase(it);
    return;
  }
  auto pending = std::make_unique<LevelState::PendingExchange>();
  pending->target = origin;
  pending->timer = std::make_unique<sim::OneShotTimer>(
      sim_, [this, level, origin] { sync_retry(level, origin); });
  ls.pending_syncs.emplace(origin, std::move(pending));
  send_sync_request(level, origin);
}

void HierDaemon::send_sync_request(int level, NodeId origin) {
  LevelState& ls = level_state(level);
  auto it = ls.pending_syncs.find(origin);
  if (it == ls.pending_syncs.end()) return;
  metrics_.syncs_requested->add();
  trace(obs::TraceKind::kSyncRequest, level, origin);
  SyncRequestMsg request;
  request.requester = self_;
  request.level = static_cast<uint8_t>(level);
  // The live cursor, not the one captured when the exchange opened: an
  // intervening update may have advanced it.
  auto cursor = ls.in_seq.find(origin);
  request.last_seq_seen = cursor != ls.in_seq.end() ? cursor->second.seq : 0;
  request.epoch = ls.epoch;
  net_.send_unicast(self_, net::Address{origin, config_.control_port},
                    encode_message(request));
  it->second->timer->restart(
      config_.exchange_retry.delay(it->second->attempts, sim_.rng()));
  ++it->second->attempts;
}

void HierDaemon::sync_retry(int level, NodeId origin) {
  LevelState& ls = level_state(level);
  auto it = ls.pending_syncs.find(origin);
  if (it == ls.pending_syncs.end() || it->second->exhausted) return;
  if (config_.exchange_retry.exhausted(it->second->attempts)) {
    // The slot stays (marking the origin as hopeless for now) until the
    // next gap sighting anchors past it; it must not be destroyed here,
    // inside its own timer's callback.
    it->second->exhausted = true;
    metrics_.exchange_budget_exhausted->add();
    trace(obs::TraceKind::kBudgetExhausted, level, origin);
    return;
  }
  metrics_.exchange_retries->add();
  trace(obs::TraceKind::kRetry, level, origin, it->second->attempts);
  send_sync_request(level, origin);
}

void HierDaemon::request_bootstrap(int level, NodeId leader) {
  LevelState& ls = level_state(level);
  if (ls.pending_bootstrap && !ls.pending_bootstrap->exhausted &&
      ls.pending_bootstrap->target == leader) {
    return;  // a poll to this leader is already in flight
  }
  if (!ls.pending_bootstrap) {
    ls.pending_bootstrap = std::make_unique<LevelState::PendingExchange>();
    ls.pending_bootstrap->timer = std::make_unique<sim::OneShotTimer>(
        sim_, [this, level] { bootstrap_retry(level); });
  }
  // Retarget (leadership moved) or restart after exhaustion: the attempt
  // budget is per-exchange, and a fresh leader claim opens a fresh one.
  ls.pending_bootstrap->target = leader;
  ls.pending_bootstrap->attempts = 0;
  ls.pending_bootstrap->exhausted = false;
  send_bootstrap_request(level);
}

void HierDaemon::send_bootstrap_request(int level) {
  LevelState& ls = level_state(level);
  LevelState::PendingExchange& pending = *ls.pending_bootstrap;
  metrics_.bootstraps_requested->add();
  trace(obs::TraceKind::kBootstrapRequest, level, pending.target);
  BootstrapRequestMsg request;
  request.requester = self_;
  request.level = static_cast<uint8_t>(level);
  request.epoch = ls.epoch;
  request.known = full_view();
  net_.send_unicast(self_, net::Address{pending.target, config_.control_port},
                    encode_message(request));
  pending.timer->restart(
      config_.exchange_retry.delay(pending.attempts, sim_.rng()));
  ++pending.attempts;
}

void HierDaemon::bootstrap_retry(int level) {
  LevelState& ls = level_state(level);
  if (!ls.pending_bootstrap || ls.pending_bootstrap->exhausted) return;
  if (config_.exchange_retry.exhausted(ls.pending_bootstrap->attempts)) {
    // Budget spent on this leader: stop hammering it. `bootstrapped` stays
    // false, so the next leader claim (heartbeat flag or COORDINATOR)
    // re-opens the exchange — leader re-discovery is the escalation. The
    // slot survives until then: destroying it here would free the timer
    // whose callback this is.
    ls.pending_bootstrap->exhausted = true;
    metrics_.exchange_budget_exhausted->add();
    trace(obs::TraceKind::kBudgetExhausted, level, ls.pending_bootstrap->target);
    return;
  }
  metrics_.exchange_retries->add();
  trace(obs::TraceKind::kRetry, level, ls.pending_bootstrap->target,
        ls.pending_bootstrap->attempts);
  send_bootstrap_request(level);
}

void HierDaemon::prune_pending(LevelState& ls, NodeId member) {
  ls.pending_syncs.erase(member);
  if (ls.pending_bootstrap && ls.pending_bootstrap->target == member) {
    ls.pending_bootstrap.reset();
  }
}

bool HierDaemon::admit_image_serve() {
  if (config_.image_serve_budget == 0) return true;
  const sim::Time now = sim_.now();
  if (now - serve_window_start_ >= config_.period) {
    serve_window_start_ = now;
    serves_window_ = 0;
    deferrals_window_ = 0;
  }
  if (serves_window_ < config_.image_serve_budget) {
    ++serves_window_;
    return true;
  }
  return false;
}

sim::Duration HierDaemon::busy_retry_after() {
  // Deterministic stagger: successive refusals within one window are
  // pointed at successively later windows, so a backlog of B requesters
  // drains at `image_serve_budget` serves per period instead of all B
  // re-colliding at the window rollover.
  const sim::Duration until_next =
      serve_window_start_ + config_.period - sim_.now();
  const auto windows_ahead = static_cast<sim::Duration>(
      deferrals_window_++ / config_.image_serve_budget);
  return until_next + windows_ahead * config_.period;
}

void HierDaemon::send_busy(NodeId requester, uint8_t level, BusyKind kind) {
  metrics_.busy_sent->add();
  BusyMsg busy;
  busy.responder = self_;
  busy.level = level;
  busy.kind = kind;
  busy.retry_after = busy_retry_after();
  trace(obs::TraceKind::kBusyPushback, level, requester,
        static_cast<uint64_t>(busy.retry_after));
  net_.send_unicast(self_, net::Address{requester, config_.control_port},
                    encode_message(busy));
}

void HierDaemon::on_busy(const BusyMsg& msg) {
  const int level =
      msg.level < config_.max_ttl ? static_cast<int>(msg.level) : 0;
  LevelState& ls = *levels_[level];
  LevelState::PendingExchange* pending = nullptr;
  if (msg.kind == BusyKind::kBootstrap) {
    if (ls.pending_bootstrap && ls.pending_bootstrap->target == msg.responder) {
      pending = ls.pending_bootstrap.get();
    }
  } else {
    auto it = ls.pending_syncs.find(msg.responder);
    if (it != ls.pending_syncs.end()) pending = it->second.get();
  }
  if (pending == nullptr || pending->exhausted) return;
  metrics_.busy_deferrals->add();
  trace(obs::TraceKind::kBusyDeferral, level, msg.responder,
        static_cast<uint64_t>(msg.retry_after));
  // Honor the deferral without consuming a retry attempt; the jitter
  // spreads requesters that were handed the same retry_after.
  const auto jitter = static_cast<sim::Duration>(sim_.rng().uniform_u64(
      static_cast<uint64_t>(config_.period / 2) + 1));
  pending->timer->restart(std::max<sim::Duration>(msg.retry_after, 1) +
                          jitter);
}

std::vector<EntryData> HierDaemon::full_view() const {
  std::vector<EntryData> entries;
  entries.reserve(table_.size());
  for (const auto& [id, entry] : table_.entries()) entries.push_back(entry.data);
  return entries;
}

// relayed_by is the provenance chain the Timeout protocol purges by, so it
// must track the canonical relay: the neighbor on the path toward the
// subject. Any peer may mention any entry (bootstrap copies, anti-entropy
// refreshes), so the tag is sticky — it moves to a new relayer only once
// the current one is no longer heard (leader handover, healed partition).
NodeId HierDaemon::provenance_tag(NodeId subject, NodeId proposed) const {
  const auto* existing = table_.find(subject);
  if (existing != nullptr && existing->liveness == Liveness::kRelayed &&
      existing->relayed_by != membership::kInvalidNode &&
      heard_directly(existing->relayed_by)) {
    return existing->relayed_by;
  }
  return proposed;
}

// A solicited full image *synchronizes* the directory: adding what the
// responder knows, and — for entries whose provenance chain runs through
// the responder — removing what it no longer lists (a lost LEAVE shows up
// as an absence in the relay's image).
void HierDaemon::reconcile_with_image(NodeId responder,
                                      const std::vector<EntryData>& entries,
                                      int arrival_level) {
  std::set<NodeId> present;
  for (const auto& entry : entries) present.insert(entry.node);
  const sim::Time now = sim_.now();
  const sim::Duration fresh_horizon = level_timeout(arrival_level);
  std::vector<std::pair<NodeId, Incarnation>> stale;
  for (const auto& [id, entry] : table_.entries()) {
    if (entry.liveness != Liveness::kRelayed ||
        entry.relayed_by != responder || id == self_ || heard_directly(id) ||
        present.contains(id)) {
      continue;
    }
    // Only entries the responder has *stopped* announcing count as stale;
    // a recently-applied entry may simply be younger than the image
    // (formation-time races), so leave it to the normal lifecycle.
    if (now - entry.last_heard <= fresh_horizon) continue;
    stale.push_back({id, entry.data.incarnation});
  }
  for (const auto& [id, incarnation] : stale) {
    if (table_.remove(id, incarnation, now)) {
      notify(id, false);
      relay_record(make_leave_record(id, incarnation), arrival_level);
      purge_dependents(id, arrival_level,
                       level_state(arrival_level).epoch);
    }
  }
}

void HierDaemon::absorb_entries(const std::vector<EntryData>& entries,
                                NodeId relayed_by, int arrival_level) {
  const sim::Time now = sim_.now();
  for (const auto& entry : entries) {
    if (entry.node == self_) continue;
    // Tombstones are respected even in solicited exchanges: during a
    // failover race the responder may still list a node we just declared
    // dead, and overriding would flap the view. A healed partition's
    // mutual tombstones simply expire, after which the periodic
    // anti-entropy refresh re-merges the sides.
    ApplyResult result =
        table_.apply(entry, Liveness::kRelayed,
                     provenance_tag(entry.node, relayed_by), now,
                     /*override_tombstone=*/false);
    if (result == ApplyResult::kAdded) notify(entry.node, true);
    if (result == ApplyResult::kAdded || result == ApplyResult::kUpdated) {
      relay_record(make_join_record(entry), arrival_level);
    }
  }
}

void HierDaemon::refresh_tick() {
  const bool digest = config_.anti_entropy_mode == AntiEntropyMode::kDigest;
  for (int l = 0; l < config_.max_ttl; ++l) {
    if (!levels_[l]->joined || !levels_[l]->i_am_leader) continue;
    // Anti-entropy into the group this node leads, and upward into the
    // parent group it represents that subtree in: every relayed entry in
    // the cluster is re-announced along its chain once per interval, so
    // freshness genuinely means "still being relayed". Digest mode ships a
    // summary instead of the rows; event-driven re-seeds elsewhere
    // (become_leader, repel_stale_claim) stay on the full path, where the
    // receivers provably need the whole image.
    if (digest) {
      send_refresh_digest(l, /*subtree=*/false);
      if (l + 1 < config_.max_ttl && levels_[l + 1]->joined) {
        send_refresh_digest(l + 1, /*subtree=*/true);
      }
    } else {
      send_state_refresh(l);
      if (l + 1 < config_.max_ttl && levels_[l + 1]->joined) {
        send_state_refresh(l + 1, /*subtree_only=*/true);
      }
    }
  }
}

}  // namespace tamp::protocols
