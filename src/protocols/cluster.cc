#include "protocols/cluster.h"

#include <algorithm>

#include "membership/messages.h"
#include "util/check.h"

namespace tamp::protocols {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kAllToAll:
      return "all-to-all";
    case Scheme::kGossip:
      return "gossip";
    case Scheme::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

Cluster::Cluster(sim::Simulation& sim, net::Network& net,
                 const std::vector<net::HostId>& hosts, Options options)
    : sim_(sim), net_(net), hosts_(hosts), options_(options) {
  TAMP_CHECK(!hosts_.empty());
  // Per-wire-kind transport attribution (idempotent across clusters).
  membership::install_wire_classifier(net_);
  if (options_.heartbeat_pad > 0) {
    options_.alltoall.heartbeat_pad = options_.heartbeat_pad;
    options_.hier.heartbeat_pad = options_.heartbeat_pad;
  }
  incarnations_.assign(hosts_.size(), 1);
  alive_.assign(hosts_.size(), true);
  daemons_.reserve(hosts_.size());
  for (net::HostId host : hosts_) daemons_.push_back(make_daemon(host));

  if (options_.scheme == Scheme::kGossip && hosts_.size() > 1) {
    for (size_t i = 0; i < daemons_.size(); ++i) seed_gossip(i);
  }
}

void Cluster::seed_gossip(size_t index) {
  // Seed a gossip daemon with a few peers so views can fill in; a real
  // deployment would use a static bootstrap list the same way.
  auto* gossip = static_cast<GossipDaemon*>(daemons_[index].get());
  for (int s = 1; s <= options_.gossip_seeds; ++s) {
    size_t peer = (index + static_cast<size_t>(s)) % daemons_.size();
    if (peer == index) continue;
    gossip->add_seed(membership::make_representative_entry(hosts_[peer], 1));
  }
}

std::unique_ptr<MembershipDaemon> Cluster::make_daemon(net::HostId host) {
  auto entry = membership::make_representative_entry(host, 1);
  switch (options_.scheme) {
    case Scheme::kAllToAll:
      return std::make_unique<AllToAllDaemon>(sim_, net_, host, std::move(entry),
                                              options_.alltoall);
    case Scheme::kGossip:
      return std::make_unique<GossipDaemon>(sim_, net_, host, std::move(entry),
                                            options_.gossip);
    case Scheme::kHierarchical:
      return std::make_unique<HierDaemon>(sim_, net_, host, std::move(entry),
                                          options_.hier);
  }
  TAMP_CHECK_MSG(false, "unknown scheme");
  return nullptr;
}

void Cluster::start_all() {
  for (auto& daemon : daemons_) daemon->start();
}

void Cluster::stop_all() {
  for (auto& daemon : daemons_) daemon->stop();
}

MembershipDaemon* Cluster::daemon_for(net::HostId host) {
  auto it = std::find(hosts_.begin(), hosts_.end(), host);
  if (it == hosts_.end()) return nullptr;
  return daemons_[static_cast<size_t>(it - hosts_.begin())].get();
}

HierDaemon* Cluster::hier_daemon(size_t index) {
  if (options_.scheme != Scheme::kHierarchical) return nullptr;
  return static_cast<HierDaemon*>(daemons_[index].get());
}

void Cluster::kill(size_t index, bool host_too) {
  TAMP_CHECK(index < daemons_.size());
  daemons_[index]->stop();
  if (host_too) net_.set_host_up(hosts_[index], false);
  alive_[index] = false;
}

void Cluster::restart(size_t index) {
  TAMP_CHECK(index < daemons_.size());
  net_.set_host_up(hosts_[index], true);
  ++incarnations_[index];
  auto entry =
      membership::make_representative_entry(hosts_[index], incarnations_[index]);
  // Fresh daemon instance: a restarted process has no memory of its past.
  daemons_[index] = make_daemon(hosts_[index]);
  daemons_[index]->set_incarnation(incarnations_[index]);
  if (options_.scheme == Scheme::kGossip && hosts_.size() > 1) {
    seed_gossip(index);
  }
  alive_[index] = true;
  daemons_[index]->start();
}

std::vector<size_t> Cluster::running_indices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < daemons_.size(); ++i) {
    if (alive_[i]) out.push_back(i);
  }
  return out;
}

size_t Cluster::converged_count() const {
  std::vector<net::HostId> expected;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    if (alive_[i]) expected.push_back(hosts_[i]);
  }
  std::sort(expected.begin(), expected.end());

  size_t count = 0;
  for (size_t i = 0; i < daemons_.size(); ++i) {
    if (!alive_[i]) continue;
    auto view = daemons_[i]->table().node_ids();  // sorted (std::map)
    if (view.size() == expected.size() &&
        std::equal(view.begin(), view.end(), expected.begin())) {
      ++count;
    }
  }
  return count;
}

bool Cluster::converged() const {
  return converged_count() == running_indices().size();
}

void Cluster::set_change_listener(MembershipDaemon::ChangeListener listener) {
  for (auto& daemon : daemons_) daemon->set_change_listener(listener);
}

}  // namespace tamp::protocols
