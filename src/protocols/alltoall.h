// The all-to-all membership protocol (paper Section 2).
//
// Every node multicasts one heartbeat per period to a single cluster-wide
// channel and independently builds its directory from the heartbeats it
// receives. A node is declared dead after `max_losses` consecutive missed
// heartbeats. Simple, fully distributed, best failure isolation — and
// O(N^2) aggregate traffic, which is what Figure 2 demonstrates.
#pragma once

#include <memory>

#include "obs/obs.h"
#include "protocols/daemon.h"
#include "protocols/ports.h"
#include "sim/timer.h"

namespace tamp::protocols {

struct AllToAllConfig {
  net::ChannelId channel = kAllToAllChannel;
  net::Port port = kDataPort;
  uint8_t ttl = 32;  // must cover the whole cluster
  sim::Duration period = sim::kSecond;
  int max_losses = 5;
  sim::Duration scan_interval = 100 * sim::kMillisecond;
  size_t heartbeat_pad = 0;  // pad heartbeats to a fixed size (0 = off)
};

class AllToAllDaemon : public MembershipDaemon {
 public:
  AllToAllDaemon(sim::Simulation& sim, net::Network& net,
                 membership::NodeId self, membership::EntryData own,
                 AllToAllConfig config = {});
  ~AllToAllDaemon() override;

  void start() override;
  void stop() override;

  const AllToAllConfig& config() const { return config_; }
  uint64_t heartbeats_sent() const { return heartbeats_sent_->value; }

 private:
  void announce();
  void scan();
  void on_packet(const net::Packet& packet);

  AllToAllConfig config_;
  sim::PeriodicTimer announce_timer_;
  sim::PeriodicTimer scan_timer_;
  uint64_t seq_ = 0;
  // Registry-backed (obs::Protocol::kAllToAll, "heartbeats_sent", self).
  obs::Counter* heartbeats_sent_ = nullptr;
};

}  // namespace tamp::protocols
