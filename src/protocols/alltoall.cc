#include "protocols/alltoall.h"

#include "util/logging.h"

namespace tamp::protocols {

using membership::ApplyResult;
using membership::decode_message;
using membership::encode_message;
using membership::HeartbeatMsg;
using membership::Liveness;

AllToAllDaemon::AllToAllDaemon(sim::Simulation& sim, net::Network& net,
                               membership::NodeId self,
                               membership::EntryData own,
                               AllToAllConfig config)
    : MembershipDaemon(sim, net, self, std::move(own)),
      config_(config),
      announce_timer_(sim, config.period, [this] { announce(); }),
      scan_timer_(sim, config.scan_interval, [this] { scan(); }),
      heartbeats_sent_(net.obs().metrics.counter(obs::Protocol::kAllToAll,
                                                 "heartbeats_sent", self)) {}

AllToAllDaemon::~AllToAllDaemon() { stop(); }

void AllToAllDaemon::start() {
  if (running()) return;
  base_start();
  net_.join_group(self_, config_.channel);
  net_.bind(self_, config_.port, [this](const net::Packet& p) { on_packet(p); });
  // Random phase: real daemons don't tick in lockstep.
  announce_timer_.start_with_random_phase();
  scan_timer_.start_with_random_phase();
  announce();
}

void AllToAllDaemon::stop() {
  if (!running()) return;
  announce_timer_.stop();
  scan_timer_.stop();
  net_.unbind(self_, config_.port);
  net_.leave_group(self_, config_.channel);
  base_stop();
}

void AllToAllDaemon::announce() {
  HeartbeatMsg heartbeat;
  heartbeat.entry = own_;
  heartbeat.seq = ++seq_;
  net_.send_multicast(self_, config_.channel, config_.ttl, config_.port,
                      encode_message(heartbeat, config_.heartbeat_pad));
  heartbeats_sent_->add();
}

void AllToAllDaemon::scan() {
  const sim::Duration timeout =
      static_cast<sim::Duration>(config_.max_losses) * config_.period;
  auto expired = table_.expire(sim_.now(), [&](const auto& entry) {
    return entry.data.node == self_ ? sim::Duration{-1} : timeout;
  });
  for (auto node : expired) {
    TAMP_LOG(Info) << "a2a node " << self_ << " declares " << node << " dead";
    net_.obs().tracer.record(obs::TraceKind::kTimeoutExpiry, self_, sim_.now(),
                             -1, node);
    notify(node, false);
  }
}

void AllToAllDaemon::on_packet(const net::Packet& packet) {
  auto message = decode_message(packet);
  if (!message) return;
  auto* heartbeat = std::get_if<HeartbeatMsg>(&*message);
  if (heartbeat == nullptr) return;
  ApplyResult result = table_.apply(heartbeat->entry, Liveness::kDirect,
                                    membership::kInvalidNode, sim_.now());
  if (result == ApplyResult::kAdded) notify(heartbeat->entry.node, true);
}

}  // namespace tamp::protocols
