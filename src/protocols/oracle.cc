#include "protocols/oracle.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"
#include "util/logging.h"

namespace tamp::protocols {

using membership::Liveness;
using membership::NodeId;

std::string MembershipOracle::Violation::to_string() const {
  std::string out = "[" + sim::format_time(when) + "] " + invariant;
  if (observer != membership::kInvalidNode) {
    out += " observer=" + std::to_string(observer);
  }
  if (subject != membership::kInvalidNode) {
    out += " subject=" + std::to_string(subject);
  }
  if (!detail.empty()) out += ": " + detail;
  return out;
}

MembershipOracle::MembershipOracle(sim::Simulation& sim, net::Network& net,
                                   net::Topology& topology, Cluster& cluster,
                                   Config config)
    : sim_(sim),
      net_(net),
      topology_(topology),
      cluster_(cluster),
      config_(config),
      check_timer_(sim, config.check_interval, [this] { tick(); }) {
  truth_.resize(cluster_.size());
  derive_bounds();
}

MembershipOracle::MembershipOracle(sim::Simulation& sim, net::Network& net,
                                   net::Topology& topology, Cluster& cluster)
    : MembershipOracle(sim, net, topology, cluster, Config{}) {}

void MembershipOracle::derive_bounds() {
  const Cluster::Options& opts = cluster_.options();
  const double n = static_cast<double>(std::max<size_t>(cluster_.size(), 2));
  const double log_n = std::log2(n);
  switch (opts.scheme) {
    case Scheme::kAllToAll: {
      const auto& cfg = opts.alltoall;
      detection_bound_ =
          cfg.max_losses * cfg.period + cfg.scan_interval + cfg.period;
      convergence_bound_ = detection_bound_ + cfg.period;
      // Heals are heartbeat-fast: direct observations override tombstones.
      quiesce_ = convergence_bound_ + 3 * cfg.period;
      break;
    }
    case Scheme::kGossip: {
      const auto& cfg = opts.gossip;
      sim::Duration tfail =
          cfg.tfail > 0
              ? cfg.tfail
              : static_cast<sim::Duration>(
                    static_cast<double>(cfg.period) *
                    (cfg.tfail_c0 + cfg.tfail_c1 * log_n));
      // Dissemination spreads in O(log n) rounds.
      sim::Duration spread = static_cast<sim::Duration>(
          static_cast<double>(cfg.period) * (log_n + 2.0));
      detection_bound_ = tfail + spread;
      convergence_bound_ = detection_bound_ + spread;
      // Re-admission after a (correct) removal waits out the 2*tfail
      // quarantine before stale-counter records are believed again.
      quiesce_ = 2 * tfail + 2 * spread + 3 * cfg.period;
      break;
    }
    case Scheme::kHierarchical: {
      const auto& cfg = opts.hier;
      int levels = hier_levels();
      double worst_factor =
          std::pow(cfg.level_timeout_factor, static_cast<double>(levels - 1));
      sim::Duration worst_timeout = static_cast<sim::Duration>(
          static_cast<double>(cfg.max_losses * cfg.period) * worst_factor);
      detection_bound_ = worst_timeout + cfg.scan_interval + cfg.period;
      // LEAVE records relay one level per hop; elections may interleave.
      convergence_bound_ =
          detection_bound_ + (levels + 2) * cfg.period +
          cfg.election_timeout + cfg.coordinator_timeout + cfg.backup_grace;
      // Full repair after partitions needs tombstone expiry plus one
      // anti-entropy refresh cycle on top of detection + convergence.
      quiesce_ = convergence_bound_ + cfg.tombstone_ttl +
                 (cfg.refresh_interval > 0 ? cfg.refresh_interval
                                           : 5 * cfg.period) +
                 3 * cfg.period;
      break;
    }
  }
  if (config_.quiesce > 0) quiesce_ = config_.quiesce;
}

int MembershipOracle::hier_levels() const {
  return std::max(config_.min_levels,
                  std::max(1, std::min(cluster_.options().hier.max_ttl,
                                       topology_.max_ttl())));
}

sim::Duration MembershipOracle::detection_deadline() const {
  return static_cast<sim::Duration>(
      static_cast<double>(detection_bound_ + convergence_bound_) *
      config_.slack);
}

void MembershipOracle::start() {
  TAMP_CHECK(!running_);
  running_ = true;
  for (size_t i = 0; i < cluster_.size(); ++i) install_listener(i);
  check_timer_.start(config_.check_interval);
}

void MembershipOracle::stop() {
  running_ = false;
  check_timer_.stop();
}

void MembershipOracle::install_listener(size_t index) {
  cluster_.daemon(index).set_change_listener(
      [this, index](NodeId subject, bool alive, sim::Time when) {
        on_change(index, subject, alive, when);
      });
}

// --- ground truth -----------------------------------------------------------

void MembershipOracle::note_crash(size_t index) {
  TAMP_CHECK(index < truth_.size());
  truth_[index].alive = false;
  truth_[index].last_disturbed = sim_.now();
  last_fault_ = sim_.now();

  // A crashed node stops observing; drop it from every outstanding probe,
  // and retire probes for a victim that is now crashed again (re-crash).
  for (auto& probe : probes_) {
    std::erase(probe.pending, index);
  }
  for (auto& probe : join_probes_) {
    std::erase(probe.pending, index);
  }
  // A revenant that crashed again owes nobody a reappearance.
  std::erase_if(join_probes_, [&](const JoinProbe& probe) {
    return probe.revenant_index == index;
  });

  // New obligation: observers that knew the victim and can (still) be
  // reached from nothing-changed paths must detect within the bound.
  KillProbe probe;
  probe.victim_index = index;
  probe.victim = cluster_.hosts()[index];
  probe.killed_at = sim_.now();
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (i == index || !truth_[i].alive || truth_[i].paused) continue;
    if (!cluster_.daemon(i).table().contains(probe.victim)) continue;
    probe.pending.push_back(i);
  }
  if (!probe.pending.empty()) probes_.push_back(std::move(probe));
}

void MembershipOracle::note_restart(size_t index) {
  TAMP_CHECK(index < truth_.size());
  truth_[index].alive = true;
  truth_[index].paused = false;
  truth_[index].last_disturbed = sim_.now();
  last_fault_ = sim_.now();
  // The revenant is a new life: observers are no longer required to report
  // the old one's death.
  std::erase_if(probes_, [&](const KillProbe& probe) {
    return probe.victim_index == index;
  });
  // Invariant 9: open the mirror obligation — every currently running
  // observer must (re)admit the revenant within the repair horizon.
  std::erase_if(join_probes_, [&](const JoinProbe& probe) {
    return probe.revenant_index == index;
  });
  JoinProbe join_probe;
  join_probe.revenant_index = index;
  join_probe.revenant = cluster_.hosts()[index];
  join_probe.restarted_at = sim_.now();
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (i == index || !truth_[i].alive || truth_[i].paused) continue;
    join_probe.pending.push_back(i);
  }
  if (!join_probe.pending.empty()) {
    join_probes_.push_back(std::move(join_probe));
  }
  // Cluster::restart builds a fresh daemon; re-claim its listener slot and
  // forget the old lifetime's epoch history (a fresh daemon restarts at 0).
  if (index < epoch_seen_.size()) {
    std::fill(epoch_seen_[index].begin(), epoch_seen_[index].end(),
              membership::Epoch{0});
    std::fill(stale_claim_since_[index].begin(),
              stale_claim_since_[index].end(), sim::Time{0});
  }
  install_listener(index);
}

void MembershipOracle::note_pause(size_t index) {
  TAMP_CHECK(index < truth_.size());
  truth_[index].paused = true;
  truth_[index].last_disturbed = sim_.now();
  last_fault_ = sim_.now();
  for (auto& probe : probes_) std::erase(probe.pending, index);
  for (auto& probe : join_probes_) std::erase(probe.pending, index);
  // A paused revenant cannot announce itself; stop grading its rejoin.
  std::erase_if(join_probes_, [&](const JoinProbe& probe) {
    return probe.revenant_index == index;
  });
}

void MembershipOracle::note_resume(size_t index) {
  TAMP_CHECK(index < truth_.size());
  truth_[index].paused = false;
  truth_[index].last_disturbed = sim_.now();
  last_fault_ = sim_.now();
}

void MembershipOracle::note_network_fault(bool any_active) {
  network_fault_active_ = any_active;
  last_network_change_ = sim_.now();
  last_fault_ = sim_.now();
  // Detection probes cannot be graded across arbitrary network chaos; the
  // quiescent completeness check takes over from here.
  probes_.clear();
  join_probes_.clear();
}

void MembershipOracle::note_topology_mutation() {
  last_topology_mutation_ = sim_.now();
  last_network_change_ = sim_.now();
  last_fault_ = sim_.now();
  // Distances changed mid-probe: like any network-condition edge, the
  // event-driven obligations cannot be graded across it — the quiescent
  // checks (completeness + scope reconvergence) take over.
  probes_.clear();
  join_probes_.clear();
}

// --- reachability ------------------------------------------------------------

bool MembershipOracle::default_reachable(net::HostId from,
                                         net::HostId to) const {
  return net_.host_up(from) && net_.host_up(to) &&
         topology_.path(from, to).reachable;
}

bool MembershipOracle::is_reachable(net::HostId from, net::HostId to) const {
  if (reachable_) return reachable_(from, to);
  return default_reachable(from, to);
}

// --- event-driven checks -----------------------------------------------------

bool MembershipOracle::excused(size_t observer_index, NodeId subject,
                               sim::Time when) const {
  if (when < config_.formation_grace) return true;
  if (network_fault_active_) return true;
  const sim::Duration window = detection_deadline();
  if (last_network_change_ > 0 && when - last_network_change_ < window) {
    return true;
  }
  // Either endpoint recently crashed / restarted / paused / resumed.
  auto victim_it = std::find(cluster_.hosts().begin(), cluster_.hosts().end(),
                             subject);
  if (victim_it != cluster_.hosts().end()) {
    size_t subject_index =
        static_cast<size_t>(victim_it - cluster_.hosts().begin());
    const NodeTruth& subject_truth = truth_[subject_index];
    if (subject_truth.paused) return true;
    if (subject_truth.last_disturbed > 0 &&
        when - subject_truth.last_disturbed < window) {
      return true;
    }
    // The subject's heartbeats cannot reach this observer: removing it is
    // the correct response to a partition.
    if (!is_reachable(subject, cluster_.hosts()[observer_index])) return true;
  }
  const NodeTruth& observer_truth = truth_[observer_index];
  if (observer_truth.paused) return true;
  if (observer_truth.last_disturbed > 0 &&
      when - observer_truth.last_disturbed < window) {
    return true;
  }
  return false;
}

void MembershipOracle::on_change(size_t observer_index, NodeId subject,
                                 bool alive, sim::Time when) {
  if (!running_) return;
  if (alive) return;  // joins are graded by the completeness check

  // Settle detection obligations.
  for (auto& probe : probes_) {
    if (probe.victim == subject) std::erase(probe.pending, observer_index);
  }
  std::erase_if(probes_, [](const KillProbe& p) { return p.pending.empty(); });

  // Invariant 2: no false failure declarations.
  auto it =
      std::find(cluster_.hosts().begin(), cluster_.hosts().end(), subject);
  if (it == cluster_.hosts().end()) return;  // phantom check handles this
  size_t subject_index = static_cast<size_t>(it - cluster_.hosts().begin());
  if (!truth_[subject_index].alive) return;  // correct detection
  if (excused(observer_index, subject, when)) return;
  add_violation(
      "false-failure", cluster_.hosts()[observer_index], subject,
      "declared dead while alive, reachable, and undisturbed for longer "
      "than the detection deadline (" +
          sim::format_time(detection_deadline()) + ")");
}

// --- periodic checks --------------------------------------------------------

bool MembershipOracle::quiescent() const {
  if (network_fault_active_) return false;
  sim::Time now = sim_.now();
  if (now < config_.formation_grace) return false;
  if (last_fault_ == 0) return true;  // never disturbed: settled after grace
  return now - last_fault_ >= quiesce_;
}

void MembershipOracle::tick() {
  if (!running_) return;
  ++checks_run_;
  check_phantoms();
  check_kill_probes();
  check_join_probes();
  if (cluster_.options().scheme == Scheme::kHierarchical) {
    check_epochs();
    check_solicited_rate();
  }
  if (quiescent()) {
    check_completeness();
    if (cluster_.options().scheme == Scheme::kHierarchical) {
      check_leader_uniqueness();
      check_provenance();
      if (last_topology_mutation_ == 0 ||
          sim_.now() - last_topology_mutation_ >=
              config_.reconvergence_bound) {
        check_scope_reconvergence();
      }
    }
  }
}

void MembershipOracle::check_phantoms() {
  // Invariant 1: views only ever contain nodes that exist.
  std::set<NodeId> valid(cluster_.hosts().begin(), cluster_.hosts().end());
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (!truth_[i].alive) continue;
    for (NodeId id : cluster_.daemon(i).table().node_ids()) {
      if (!valid.contains(id)) {
        add_violation("phantom-member", cluster_.hosts()[i], id,
                      "directory lists a node that was never in the cluster");
      }
    }
  }
}

void MembershipOracle::check_kill_probes() {
  // Invariant 3: bounded detection after a clean crash.
  const sim::Duration deadline = detection_deadline();
  sim::Time now = sim_.now();
  for (auto& probe : probes_) {
    if (now - probe.killed_at <= deadline) continue;
    for (size_t observer : probe.pending) {
      if (!truth_[observer].alive || truth_[observer].paused) continue;
      // Re-verify against the table itself so a lost notification cannot
      // produce a spurious violation.
      if (!cluster_.daemon(observer).table().contains(probe.victim)) continue;
      if (truth_[observer].last_disturbed > probe.killed_at) continue;
      add_violation(
          "detection-bound", cluster_.hosts()[observer], probe.victim,
          "crash at " + sim::format_time(probe.killed_at) +
              " still undetected after " +
              sim::format_time(now - probe.killed_at) + " (deadline " +
              sim::format_time(deadline) + ")");
    }
    probe.pending.clear();
  }
  std::erase_if(probes_, [](const KillProbe& p) { return p.pending.empty(); });
}

void MembershipOracle::check_join_probes() {
  // Invariant 9: bounded join propagation after a restart. Observers are
  // released the moment their directory readmits the revenant; whoever is
  // still pending when the repair horizon expires has lost the join.
  const sim::Duration deadline = join_deadline();
  const sim::Time now = sim_.now();
  for (auto& probe : join_probes_) {
    std::erase_if(probe.pending, [&](size_t observer) {
      return truth_[observer].alive &&
             cluster_.daemon(observer).table().contains(probe.revenant);
    });
    if (now - probe.restarted_at <= deadline) continue;
    for (size_t observer : probe.pending) {
      if (!truth_[observer].alive || truth_[observer].paused) continue;
      // An observer disturbed after the restart restarts its own clock;
      // the quiescent completeness check covers it instead.
      if (truth_[observer].last_disturbed > probe.restarted_at) continue;
      const net::HostId self = cluster_.hosts()[observer];
      if (!is_reachable(probe.revenant, self) ||
          !is_reachable(self, probe.revenant)) {
        continue;  // cut off: nothing to grade
      }
      add_violation(
          "join-bound", self, probe.revenant,
          "restart at " + sim::format_time(probe.restarted_at) +
              " still missing from this view after " +
              sim::format_time(now - probe.restarted_at) + " (deadline " +
              sim::format_time(deadline) + ")");
    }
    probe.pending.clear();
  }
  std::erase_if(join_probes_,
                [](const JoinProbe& p) { return p.pending.empty(); });
}

namespace {

// Per-wire-kind egress-shed breakdown from the transport's registry totals,
// e.g. " [egress shed: update=12, sync_response=3]". Empty when nothing was
// shed (or per-kind attribution is not installed).
std::string egress_shed_breakdown(const obs::MetricsRegistry& metrics) {
  constexpr std::string_view kPrefix = "tx_egress_drop_kind_";
  std::string out;
  metrics.visit_counters([&](const obs::MetricsRegistry::CounterRow& row) {
    if (row.protocol != obs::Protocol::kNet || row.node != obs::kNoNode ||
        row.value == 0 || !row.name.starts_with(kPrefix)) {
      return;
    }
    out += out.empty() ? " [egress shed: " : ", ";
    out += std::string(row.name.substr(kPrefix.size())) + "=" +
           std::to_string(row.value);
  });
  if (!out.empty()) out += "]";
  return out;
}

}  // namespace

void MembershipOracle::check_solicited_rate() {
  // Invariant 10: solicited traffic stays bounded per daemon per check
  // window. The serve side is capped mechanically by admission control
  // (image_serve_budget full images per period); the request side by the
  // pending-exchange dedup and its backed-off retries. A breach means the
  // recovery path is amplifying load — the overload death-spiral
  // signature the storm plans exist to provoke.
  const HierConfig& cfg = cluster_.options().hier;
  if (last_served_.empty()) {
    last_served_.assign(cluster_.size(), 0);
    last_requested_.assign(cluster_.size(), 0);
  }
  const int levels = hier_levels();
  // A check window spans this many serve windows, plus one for phase.
  const uint64_t windows =
      static_cast<uint64_t>(config_.check_interval /
                            std::max<sim::Duration>(cfg.period, 1)) + 1;
  const uint64_t serve_limit = windows * cfg.image_serve_budget + 2;
  // At most one outstanding exchange per (level, peer), each sending at
  // most once per second of backoff; doubled for window phase, plus slop
  // for the burst when a heal exposes every peer's gap at once.
  const uint64_t request_limit =
      2 * static_cast<uint64_t>(levels) * cluster_.size() + 4;
  const bool armed = sim_.now() >= config_.formation_grace;
  for (size_t i = 0; i < cluster_.size(); ++i) {
    HierDaemon* daemon = cluster_.hier_daemon(i);
    if (daemon == nullptr) continue;
    const obs::MetricsRegistry& metrics = net_.obs().metrics;
    const membership::NodeId host = cluster_.hosts()[i];
    auto hier = [&](std::string_view name) {
      return metrics.counter_value(obs::Protocol::kHier, name, host);
    };
    const uint64_t served =
        hier("bootstraps_served") + hier("syncs_served");
    const uint64_t requested =
        hier("bootstraps_requested") + hier("syncs_requested");
    const bool reset =
        served < last_served_[i] || requested < last_requested_[i];
    const uint64_t served_delta = reset ? 0 : served - last_served_[i];
    const uint64_t requested_delta =
        reset ? 0 : requested - last_requested_[i];
    last_served_[i] = served;
    last_requested_[i] = requested;
    if (!armed || reset || !truth_[i].alive || truth_[i].paused) continue;
    if (cfg.image_serve_budget > 0 && served_delta > serve_limit) {
      add_violation(
          "solicited-rate", cluster_.hosts()[i], membership::kInvalidNode,
          "served " + std::to_string(served_delta) +
              " full images in one check window (cap " +
              std::to_string(serve_limit) + ")" +
              egress_shed_breakdown(net_.obs().metrics));
    }
    if (requested_delta > request_limit) {
      add_violation(
          "solicited-rate", cluster_.hosts()[i], membership::kInvalidNode,
          "sent " + std::to_string(requested_delta) +
              " solicited requests in one check window (cap " +
              std::to_string(request_limit) + ")" +
              egress_shed_breakdown(net_.obs().metrics));
    }
  }
}

void MembershipOracle::check_epochs() {
  // Invariants 7-8: leadership-epoch hygiene (hierarchical only).
  const int levels = hier_levels();
  if (epoch_seen_.empty()) {
    epoch_seen_.assign(cluster_.size(),
                       std::vector<membership::Epoch>(levels, 0));
    stale_claim_since_.assign(cluster_.size(),
                              std::vector<sim::Time>(levels, 0));
  }
  const sim::Time now = sim_.now();
  const sim::Duration deadline = detection_deadline();
  for (int level = 0; level < levels; ++level) {
    // Invariant 7: a daemon's known epoch never regresses in one lifetime.
    // Checked for every live daemon (a paused one keeps running, merely
    // detached) — there is no legitimate way for this number to shrink.
    for (size_t i = 0; i < cluster_.size(); ++i) {
      if (!truth_[i].alive) continue;
      HierDaemon* daemon = cluster_.hier_daemon(i);
      if (daemon == nullptr || !daemon->running()) continue;
      const membership::Epoch epoch = daemon->epoch_of(level);
      if (epoch < epoch_seen_[i][level]) {
        add_violation(
            "epoch-monotonicity", cluster_.hosts()[i], membership::kInvalidNode,
            "level-" + std::to_string(level) + " epoch went backwards (" +
                std::to_string(epoch_seen_[i][level]) + " -> " +
                std::to_string(epoch) + ") within one daemon lifetime");
      }
      epoch_seen_[i][level] = std::max(epoch_seen_[i][level], epoch);
    }
    // Invariant 8: stale-purge detection. A node leading under an epoch
    // older than a live leader within earshot is replaying superseded
    // leadership — the state that turns resumed out-logs and refreshes
    // into cross-rack purges. It must abdicate as soon as the live
    // leader's traffic reaches it; a claim outliving the detection
    // deadline means the fencing failed.
    for (size_t i = 0; i < cluster_.size(); ++i) {
      if (!truth_[i].alive || truth_[i].paused) continue;
      HierDaemon* daemon = cluster_.hier_daemon(i);
      if (daemon == nullptr || !daemon->running() ||
          !daemon->is_leader(level)) {
        stale_claim_since_[i][level] = 0;
        continue;
      }
      const net::HostId self = cluster_.hosts()[i];
      bool superseded = false;
      for (size_t j = 0; j < cluster_.size() && !superseded; ++j) {
        if (j == i || !truth_[j].alive || truth_[j].paused) continue;
        HierDaemon* peer = cluster_.hier_daemon(j);
        if (peer == nullptr || !peer->running() || !peer->is_leader(level)) {
          continue;
        }
        if (peer->epoch_of(level) <= daemon->epoch_of(level)) continue;
        const net::HostId other = cluster_.hosts()[j];
        int ttl = topology_.ttl_required(other, self);
        if (ttl == 0 || ttl > level + 1) continue;  // out of earshot
        if (!is_reachable(other, self)) continue;
        superseded = true;
      }
      if (!superseded) {
        stale_claim_since_[i][level] = 0;
        continue;
      }
      if (stale_claim_since_[i][level] == 0) {
        stale_claim_since_[i][level] = now;
      } else if (now - stale_claim_since_[i][level] > deadline) {
        add_violation(
            "stale-purge", self, membership::kInvalidNode,
            "level-" + std::to_string(level) +
                " leadership claim under a superseded epoch persisted " +
                sim::format_time(now - stale_claim_since_[i][level]) +
                " within earshot of the live leader");
        stale_claim_since_[i][level] = now;  // rate-limit repeats
      }
    }
  }
}

void MembershipOracle::check_completeness() {
  // Invariant 4: at quiescence every view is exactly the live node set.
  std::vector<NodeId> expected;
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (truth_[i].alive && !truth_[i].paused) {
      expected.push_back(cluster_.hosts()[i]);
    }
  }
  std::sort(expected.begin(), expected.end());

  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (!truth_[i].alive || truth_[i].paused) continue;
    std::vector<NodeId> view = cluster_.daemon(i).table().node_ids();
    if (view.size() == expected.size() &&
        std::equal(view.begin(), view.end(), expected.begin())) {
      continue;
    }
    // Name one concrete discrepancy for the report.
    std::string detail;
    NodeId culprit = membership::kInvalidNode;
    for (NodeId id : expected) {
      if (!std::binary_search(view.begin(), view.end(), id)) {
        culprit = id;
        detail = "live node missing from view at quiescence";
        break;
      }
    }
    if (culprit == membership::kInvalidNode) {
      for (NodeId id : view) {
        if (!std::binary_search(expected.begin(), expected.end(), id)) {
          culprit = id;
          detail = "dead node still present in view at quiescence";
          break;
        }
      }
    }
    add_violation("completeness", cluster_.hosts()[i], culprit,
                  detail + " (view " + std::to_string(view.size()) + "/" +
                      std::to_string(expected.size()) + " nodes)");
  }
}

void MembershipOracle::check_leader_uniqueness() {
  // Invariant 5: "a group leader cannot see other leaders at the same
  // level" — no two level-L leaders within TTL L+1 of each other.
  const int levels = hier_levels();
  for (int level = 0; level < levels; ++level) {
    std::vector<size_t> leaders;
    for (size_t i = 0; i < cluster_.size(); ++i) {
      if (!truth_[i].alive || truth_[i].paused) continue;
      HierDaemon* daemon = cluster_.hier_daemon(i);
      if (daemon != nullptr && daemon->running() && daemon->is_leader(level)) {
        leaders.push_back(i);
      }
    }
    for (size_t a = 0; a < leaders.size(); ++a) {
      for (size_t b = a + 1; b < leaders.size(); ++b) {
        net::HostId ha = cluster_.hosts()[leaders[a]];
        net::HostId hb = cluster_.hosts()[leaders[b]];
        int ttl = topology_.ttl_required(ha, hb);
        if (ttl == 0 || ttl > level + 1) continue;  // out of earshot
        if (!is_reachable(ha, hb) || !is_reachable(hb, ha)) continue;
        add_violation("leader-uniqueness", ha, hb,
                      "two level-" + std::to_string(level) +
                          " leaders within earshot (ttl " +
                          std::to_string(ttl) + ")");
      }
    }
  }
}

void MembershipOracle::check_provenance() {
  // Invariant 6: relayed_by chains are acyclic and rooted at a live,
  // directly-heard relay.
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (!truth_[i].alive || truth_[i].paused) continue;
    HierDaemon* daemon = cluster_.hier_daemon(i);
    if (daemon == nullptr || !daemon->running()) continue;
    const auto& table = daemon->table();
    for (const auto& [id, entry] : table.entries()) {
      if (entry.liveness != Liveness::kRelayed) continue;
      std::set<NodeId> visited{id};
      const membership::MembershipEntry* cursor = &entry;
      NodeId subject = id;
      while (true) {
        NodeId relay = cursor->relayed_by;
        if (relay == daemon->self()) break;  // self-rooted: fine
        if (relay == membership::kInvalidNode) {
          add_violation("provenance", daemon->self(), subject,
                        "relayed entry with no relay at quiescence");
          break;
        }
        auto relay_it =
            std::find(cluster_.hosts().begin(), cluster_.hosts().end(), relay);
        if (relay_it == cluster_.hosts().end() ||
            !truth_[static_cast<size_t>(relay_it - cluster_.hosts().begin())]
                 .alive) {
          add_violation("provenance", daemon->self(), subject,
                        "provenance chain rooted at dead relay " +
                            std::to_string(relay));
          break;
        }
        if (!visited.insert(relay).second) {
          add_violation("provenance", daemon->self(), subject,
                        "provenance cycle through relay " +
                            std::to_string(relay));
          break;
        }
        const membership::MembershipEntry* next = table.find(relay);
        if (next == nullptr) {
          add_violation("provenance", daemon->self(), subject,
                        "relay " + std::to_string(relay) +
                            " missing from the directory");
          break;
        }
        if (next->liveness == Liveness::kDirect) break;  // well-founded root
        cursor = next;
        subject = relay;
      }
    }
  }
}

void MembershipOracle::check_scope_reconvergence() {
  // Invariant 11: at quiescence every group membership is consistent with
  // the topology as it stands *now* — after any runtime mutation, the
  // hierarchy has re-formed around the new ttl_required() distances.
  // Observer o must track subject s in its level-L group iff s is up and
  // has joined level L, s currently sits within TTL L+1 of o, and the pair
  // is mutually reachable; any stale (or missing) membership past the
  // reconvergence bound is a wedged scope.
  const int levels = hier_levels();
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (!truth_[i].alive || truth_[i].paused) continue;
    HierDaemon* daemon = cluster_.hier_daemon(i);
    if (daemon == nullptr || !daemon->running()) continue;
    const net::HostId self = cluster_.hosts()[i];
    for (int level = 0; level < levels; ++level) {
      if (!daemon->joined(level)) continue;
      std::vector<NodeId> members = daemon->group_members(level);
      std::sort(members.begin(), members.end());
      for (size_t j = 0; j < cluster_.size(); ++j) {
        if (j == i) continue;
        const net::HostId subject = cluster_.hosts()[j];
        const bool tracked =
            std::binary_search(members.begin(), members.end(), subject);
        bool expected = false;
        if (truth_[j].alive && !truth_[j].paused) {
          HierDaemon* peer = cluster_.hier_daemon(j);
          if (peer != nullptr && peer->running() && peer->joined(level)) {
            const int ttl = topology_.ttl_required(self, subject);
            expected = ttl > 0 && ttl <= level + 1 &&
                       is_reachable(subject, self) &&
                       is_reachable(self, subject);
          }
        }
        if (tracked == expected) continue;
        const int ttl = topology_.ttl_required(self, subject);
        add_violation(
            "scope-reconvergence", self, subject,
            std::string(tracked ? "still tracked in" : "missing from") +
                " the level-" + std::to_string(level) +
                " group at quiescence (current ttl_required " +
                std::to_string(ttl) + ", scope " + std::to_string(level + 1) +
                ")");
      }
    }
  }
}

void MembershipOracle::add_violation(const std::string& invariant,
                                     NodeId observer, NodeId subject,
                                     const std::string& detail) {
  if (violations_.size() >= config_.max_violations) return;
  Violation violation;
  violation.invariant = invariant;
  violation.when = sim_.now();
  violation.observer = observer;
  violation.subject = subject;
  violation.detail = detail;
  TAMP_LOG(Warn) << "oracle violation: " << violation.to_string();
  violations_.push_back(std::move(violation));
}

std::string MembershipOracle::report() const {
  std::string out;
  for (const auto& violation : violations_) {
    if (!out.empty()) out += "\n";
    out += violation.to_string();
  }
  return out;
}

}  // namespace tamp::protocols
