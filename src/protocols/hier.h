// The topology-adaptive hierarchical membership protocol — the paper's
// contribution (Section 3.1).
//
// Group formation. Every node joins the base multicast channel with TTL 1;
// the hosts it hears there are its level-0 ("local") group — by TTL
// semantics, exactly the hosts on its L2 segment. Each group elects a
// leader (bully, lowest id wins); leaders join channel `base + 1` with TTL
// 2, forming level-1 groups, and so on until MAX_TTL. Groups at the same
// level share one channel: TTL scoping keeps disjoint groups from hearing
// each other, and where the topology makes TTL non-transitive the groups
// overlap (paper Fig. 4) — handled by the election suppression rule ("a
// node does not participate in an election on a channel where it already
// hears a leader") and by idempotent updates.
//
// Sub-protocols (Section 3.1.2), all implemented here:
//  * Bootstrap — a joining node listens for the leader flag, then pulls the
//    full directory from the leader; the leader symmetrically absorbs
//    whatever the newcomer knows (it may be a lower-level leader bringing a
//    subtree).
//  * Update — a group's leader turns locally detected joins/leaves into
//    update records and multicasts them to the next-higher group; every
//    member relays fresh records into the groups *it* leads. Records are
//    deduplicated by their effect on the local table, so overlapping groups
//    and redundant relays converge without loops.
//  * Timeout — soft-state expiry. Level-L members are declared dead after
//    max_losses * period * level_timeout_factor^L without a heartbeat
//    (higher levels get longer timeouts so a lower-level re-election wins
//    the race). Entries relayed by a leader live exactly as long as that
//    leader: its death purges them, and explicit LEAVE records propagate the
//    purge downstream — this is what detects a network partition quickly.
//  * Message-loss detection — per-(channel, origin) sequence numbers on
//    update messages; each message piggybacks the previous `piggyback`
//    records, so up to that many consecutive losses are absorbed; a larger
//    gap triggers a unicast resynchronization poll.
//
// Leadership. Each leader designates a random backup in its heartbeats; on
// leader death the backup takes over immediately, and a full bully election
// runs only when both are gone. A leader of level L joins level L+1 and
// answers bootstrap/sync polls; losing leadership cascades it back out of
// all higher levels.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "protocols/daemon.h"
#include "protocols/ports.h"
#include "sim/timer.h"
#include "util/retry.h"

namespace tamp::protocols {

// How leaders run their periodic anti-entropy refresh. kFull re-multicasts
// the whole view as join records (the original behavior); kDigest sends a
// compact bucketed summary first and ships only rows receivers actually
// disagree on, demoting the full-image path to a truncation backstop.
enum class AntiEntropyMode : uint8_t { kFull = 0, kDigest = 1 };

struct HierConfig {
  net::ChannelId base_channel = kBaseChannel;
  // "For maximum control flexibility, our implementation also allows
  // administrators to specify multicast channels at each level": when
  // non-empty, entry [l] (if non-zero) overrides `base_channel + l`.
  std::vector<net::ChannelId> level_channels;
  net::Port data_port = kDataPort;
  net::Port control_port = kControlPort;
  // Highest TTL value the formation process may use (paper MAX_TTL); level L
  // uses TTL L+1, so levels 0 .. max_ttl-1 exist.
  int max_ttl = 4;
  sim::Duration period = sim::kSecond;          // MCAST_FREQ
  int max_losses = 5;                           // MAX_LOSS
  double level_timeout_factor = 1.5;            // higher levels time out later
  sim::Duration scan_interval = 100 * sim::kMillisecond;
  sim::Duration join_listen = 2500 * sim::kMillisecond;
  sim::Duration election_timeout = 300 * sim::kMillisecond;
  sim::Duration coordinator_timeout = 800 * sim::kMillisecond;
  sim::Duration backup_grace = 600 * sim::kMillisecond;
  int piggyback = 3;          // previous updates carried by each update msg
  size_t heartbeat_pad = 0;   // fixed heartbeat size (0 = natural size)
  // Leaders periodically re-multicast their full view into the groups they
  // lead (anti-entropy backstop; repairs anything event-driven updates
  // missed, e.g. after a healed partition). 0 disables.
  sim::Duration refresh_interval = 30 * sim::kSecond;
  // How long a removed node's (node, incarnation) stays quarantined against
  // relayed re-joins. Must exceed the piggyback replay horizon and be short
  // enough that healed partitions re-merge promptly.
  sim::Duration tombstone_ttl = 15 * sim::kSecond;
  // Solicited request/response exchanges (bootstrap and sync polls) are
  // retried under this policy until answered; at budget exhaustion the
  // requester escalates instead (bootstrap: wait for the next leader claim;
  // sync: anchor past the gap and let the anti-entropy refresh repair it).
  util::RetryPolicy exchange_retry{sim::kSecond, 8 * sim::kSecond};
  // Full-image serves (bootstrap + sync responses) admitted per `period`;
  // overflow is answered with BusyMsg{retry_after} so a mass join or healed
  // partition cannot turn a leader into an O(joiners) response burst.
  // 0 = unlimited.
  size_t image_serve_budget = 8;
  // Incremental anti-entropy (see AntiEntropyMode). Event-driven re-seeds
  // (become_leader, repelled stale claims) always use the full path — only
  // the periodic refresh_tick switches on the mode.
  AntiEntropyMode anti_entropy_mode = AntiEntropyMode::kFull;
  // Period of the digest exchange; 0 means "same as refresh_interval".
  // Digest rounds are cheap enough to run more often than full refreshes —
  // the orphan-expiry horizon follows whichever interval is in effect.
  sim::Duration digest_interval = 0;
  // Divergent rows one RefreshDeltaMsg may carry. A delta clipped at this
  // cap is marked truncated and the receiver escalates to the full-image
  // sync path (which sits behind image_serve_budget).
  int digest_max_rows_per_delta = 64;
  // Buckets per digest; mismatches are repaired per-bucket, so more buckets
  // localize divergence better at ~8 bytes each on the wire.
  int digest_buckets = 16;
  // Self-healing across runtime topology mutation: how often to poll the
  // network's topology epoch (Topology::epoch()). On a change the daemon
  // re-probes every group member's TTL distance — modelling the ICMP probe
  // a real deployment would fire after a routing change — drops members
  // that fell out of the level's scope (alive, just moved: no death
  // semantics), and re-announces itself so newly in-scope peers merge a
  // full period early. 0 (the default) disables the poll; the protocol
  // then reconverges on its ordinary timeout/refresh machinery alone.
  sim::Duration topology_poll_interval = 0;
};

// Per-daemon counters live in the MetricsRegistry under
// {obs::Protocol::kHier, <name>, self}; query net.obs().metrics directly
// (the one-field-per-counter HierStats view is gone).

class HierDaemon : public MembershipDaemon {
 public:
  HierDaemon(sim::Simulation& sim, net::Network& net, membership::NodeId self,
             membership::EntryData own, HierConfig config = {});
  ~HierDaemon() override;

  void start() override;
  void stop() override;

  // --- introspection (tests / benches) -------------------------------------
  bool joined(int level) const;
  bool is_leader(int level) const;
  membership::NodeId leader_of(int level) const;    // kInvalidNode if unknown
  membership::NodeId backup_of(int level) const;
  std::vector<int> joined_levels() const;
  // Nodes currently heard directly on the given level's channel.
  std::vector<membership::NodeId> group_members(int level) const;
  // In-flight solicited exchange slots (bootstrap + sync, exhausted ones
  // included) tracked at `level` — bounded by the group size + 1.
  size_t pending_exchanges(int level) const;
  const HierConfig& config() const { return config_; }
  // Highest leadership epoch this node knows for `level` (its own minted
  // epoch while it leads). Persists across joins/leaves of the level —
  // epoch knowledge must never regress within one daemon lifetime.
  membership::Epoch epoch_of(int level) const;

  // Timeout used for members heard at `level`.
  sim::Duration level_timeout(int level) const;

 private:
  struct MemberInfo {
    sim::Time last_heard = 0;
    bool is_leader = false;
    membership::NodeId backup = membership::kInvalidNode;
  };

  struct LevelState {
    int level = 0;
    bool joined = false;
    bool bootstrapped = false;
    std::map<membership::NodeId, MemberInfo> members;  // excludes self

    membership::NodeId leader = membership::kInvalidNode;  // may be self
    membership::NodeId leader_backup = membership::kInvalidNode;
    bool i_am_leader = false;
    membership::NodeId my_backup = membership::kInvalidNode;

    bool electing = false;
    bool answered = false;  // saw an ANSWER for our candidacy

    // Highest leadership epoch observed on this channel (== our own minted
    // epoch while i_am_leader). Epochs are lineage-scoped: overlapping
    // groups sharing this channel mint independently, so this value is used
    // for minting above the channel's history and for claim-vs-claim
    // resolution — never as a blanket fence against arbitrary senders.
    // Survives leaving the level; reset only by a daemon restart, which the
    // oracle treats as a fresh observer.
    membership::Epoch epoch = 0;
    // Succession record: claimant -> highest (epoch, incarnation) at which
    // its leadership of a group on this channel is known superseded. A
    // claim (or update / image) from a listed node at or below that epoch
    // is stale replay — but only within the same life: a claimant that
    // restarted (higher incarnation) is a new lineage and passes the fence,
    // otherwise a node once superseded could never lead again after a
    // crash-restart. Populated from CoordinatorMsg::prev and repelled
    // claims.
    struct Fence {
      membership::Epoch epoch = 0;
      membership::Incarnation incarnation = 0;
    };
    std::map<membership::NodeId, Fence> superseded;
    // The leader whose loss triggered our pending/held leadership — named
    // as CoordinatorMsg::prev so the group learns the succession — plus the
    // incarnation its fenced life was living.
    membership::NodeId prev_leader = membership::kInvalidNode;
    membership::Incarnation prev_leader_incarnation = 0;
    // Last time any packet arrived on this channel. A gap exceeding the
    // level's own failure timeout means every peer has timed us out: the
    // out-log stamped during the gap is stale and must not be replayed.
    sim::Time last_received = 0;
    // Rate limit for the re-seed refresh triggered by stale leadership
    // claims (a resumed stale leader heartbeats until it learns better).
    sim::Time last_stale_reseed = 0;

    uint64_t out_seq = 0;
    std::deque<membership::UpdateRecord> out_log;      // newest at front
    // Highest seq ever trimmed (popped or cleared) out of the out-log.
    // Records compacted away as shadowed do NOT raise it: their shadower is
    // still in the log at a higher seq and covers them. Feeds
    // UpdateMsg::window_base so receivers can tell a compaction hole (fine)
    // from trimmed-away history (needs a full-image sync).
    uint64_t out_log_base = 0;
    // Per-origin receive cursor, scoped by the origin's incarnation: a
    // restarted origin starts a fresh stream at seq 0.
    struct InCursor {
      membership::Incarnation incarnation = 0;
      uint64_t seq = 0;
    };
    std::unordered_map<membership::NodeId, InCursor> in_seq;

    // One in-flight solicited exchange: the unanswered poll's target, how
    // many sends it has consumed, and the retry deadline. An `exhausted`
    // slot has spent its attempt budget; it stays (deduplicating further
    // triggers) until the escalation path or a pruning event clears it —
    // never from inside its own timer callback.
    struct PendingExchange {
      membership::NodeId target = membership::kInvalidNode;
      int attempts = 0;
      bool exhausted = false;
      std::unique_ptr<sim::OneShotTimer> timer;
    };
    std::unique_ptr<PendingExchange> pending_bootstrap;
    std::map<membership::NodeId, std::unique_ptr<PendingExchange>>
        pending_syncs;

    std::unique_ptr<sim::OneShotTimer> listen_timer;
    std::unique_ptr<sim::OneShotTimer> election_timer;
    std::unique_ptr<sim::OneShotTimer> coordinator_timer;
    std::unique_ptr<sim::OneShotTimer> backup_grace_timer;
  };

  // --- level / channel plumbing -----------------------------------------
  net::ChannelId channel_of(int level) const {
    if (static_cast<size_t>(level) < config_.level_channels.size() &&
        config_.level_channels[static_cast<size_t>(level)] != 0) {
      return config_.level_channels[static_cast<size_t>(level)];
    }
    return config_.base_channel + static_cast<net::ChannelId>(level);
  }
  uint8_t ttl_of(int level) const { return static_cast<uint8_t>(level + 1); }
  int level_of_channel(net::ChannelId channel) const;
  LevelState& level_state(int level) { return *levels_[level]; }

  void join_level(int level);
  // Leave `level` and everything above; `announce` multicasts a goodbye on
  // each channel first (voluntary departure vs. crash).
  void leave_levels_from(int level, bool announce = false);

  // --- periodic work -----------------------------------------------------
  void heartbeat_tick();
  void send_heartbeat(int level);
  void scan_tick();
  void scan_level(int level);
  // Topology-epoch watch (see HierConfig::topology_poll_interval).
  void topology_poll_tick();
  void on_topology_change(uint64_t epoch);
  // Drop this level's members whose live ttl_required() no longer fits the
  // level's scope, via the voluntary-leave path (they are alive). Returns
  // how many were dropped.
  size_t drop_out_of_scope(int level);
  void on_member_dead(int level, membership::NodeId member);
  bool heard_directly(membership::NodeId node) const;
  // Drop entries whose relay chain went through `dead` (paper Timeout
  // protocol: relayed information lives exactly as long as its relay).
  // `trigger_epoch` is the leadership epoch under which the death was
  // established; the purge aborts if the level's leadership has since moved
  // to a newer epoch (the new leader's refresh owns the truth then).
  void purge_dependents(membership::NodeId dead, int arrival_level,
                        membership::Epoch trigger_epoch);

  // --- packet handling ------------------------------------------------------
  void on_data_packet(const net::Packet& packet);
  void on_control_packet(const net::Packet& packet);
  void on_heartbeat(int level, const membership::HeartbeatMsg& msg);
  void on_update(int level, const membership::UpdateMsg& msg);
  void on_election(int level, const membership::ElectionMsg& msg);
  void on_coordinator(int level, const membership::CoordinatorMsg& msg);

  // --- leadership ----------------------------------------------------------
  bool can_participate(int level) const;
  void maybe_start_election(int level);
  void election_deadline(int level);
  membership::NodeId pick_backup(int level);
  void become_leader(int level);
  void abdicate(int level);
  void handle_leader_loss(int level, membership::NodeId old_leader,
                          membership::Incarnation old_incarnation);
  // Fence maintenance: a fence is keyed to the fenced life. Raising with a
  // newer incarnation replaces the record; raising with an older one is
  // stale knowledge and ignored.
  static void raise_fence(LevelState& ls, membership::NodeId node,
                          membership::Epoch epoch,
                          membership::Incarnation incarnation);
  static bool fenced_stale(const LevelState& ls, membership::NodeId node,
                           membership::Epoch epoch,
                           membership::Incarnation incarnation);
  // Multicast a COORDINATOR assertion carrying the level's current epoch
  // and the superseded predecessor (prev_leader) when there is one.
  void send_coordinator(int level);
  // Adopt a *directly claimed* newer epoch (leader-flagged heartbeat or
  // COORDINATOR — never second-hand gossip). If this node held the now
  // superseded leadership, it silently abdicates, drops its stale out-log
  // instead of replaying it, and re-bootstraps from `new_leader` rather
  // than purging its old subtree.
  void adopt_epoch(int level, membership::Epoch epoch,
                   membership::NodeId new_leader);
  // A leader observed a stale leadership claim on its channel: record the
  // claimant in the succession fence, re-assert the live leadership (naming
  // the claimant as superseded), and re-seed its stale view.
  void repel_stale_claim(int level, membership::NodeId claimant,
                         membership::Epoch claim_epoch,
                         membership::Incarnation claim_incarnation);

  // --- update propagation -----------------------------------------------
  // Applies one record, fires notifications, cascades purges, and relays
  // onward if it changed the local view. Returns whether it was fresh.
  bool process_record(const membership::UpdateRecord& record,
                      membership::NodeId relayed_by, int arrival_level);
  // Relays a fresh record that arrived (or was detected) on `arrival_level`
  // into every group this node leads, plus upward when it leads the arrival
  // group itself.
  void relay_record(const membership::UpdateRecord& record, int arrival_level);
  void emit_update(int level, const membership::UpdateRecord& record);
  void emit_batch(int level,
                  const std::vector<membership::UpdateRecord>& batch);
  void send_state_refresh(int level, bool subtree_only = false);

  // --- incremental anti-entropy (digest mode) -----------------------------
  // The interval the periodic refresh (and the orphan-expiry horizon)
  // actually runs at: digest_interval in digest mode when set, else
  // refresh_interval. 0 disables the periodic refresh entirely.
  sim::Duration anti_entropy_interval() const;
  // The rows a refresh of `level` covers — the same scope full refresh
  // ships: the whole view downward, the represented subtree upward.
  std::vector<const membership::MembershipEntry*> refresh_scope(
      int level, bool subtree_only) const;
  // Scope a digest *receiver* compares against. Downward digests cover the
  // origin's whole view (≈ ours, in steady state); upward subtree digests
  // are approximated as {origin} ∪ {rows relayed by origin} — a mismatch in
  // the approximation degrades to a cheap pull, never to wrong state.
  std::vector<const membership::MembershipEntry*> digest_receiver_scope(
      const membership::RefreshDigestMsg& msg) const;
  void send_refresh_digest(int level, bool subtree);
  void on_refresh_digest(int level, const membership::RefreshDigestMsg& msg);
  void on_refresh_pull(const membership::RefreshPullMsg& msg);
  void on_refresh_delta(const membership::RefreshDeltaMsg& msg);
  membership::UpdateRecord make_join_record(const membership::EntryData& entry);
  membership::UpdateRecord make_leave_record(membership::NodeId subject,
                                             membership::Incarnation inc);

  // --- bootstrap / sync ----------------------------------------------------
  // Open (or retarget) the level's bootstrap exchange towards `leader`.
  // No-ops while a poll to the same leader is in flight; a fresh target or
  // an exhausted slot starts over with a full attempt budget.
  void request_bootstrap(int level, membership::NodeId leader);
  void send_bootstrap_request(int level);
  void bootstrap_retry(int level);
  // Open a sync exchange towards `origin` for this level's stream.
  // `observed_seq` is the origin's advertised stream position that exposed
  // the gap; when the exchange's budget is already exhausted it becomes the
  // anchor: the cursor jumps past the gap and anti-entropy repairs the rest.
  void request_sync(int level, membership::NodeId origin,
                    uint64_t observed_seq);
  void send_sync_request(int level, membership::NodeId origin);
  void sync_retry(int level, membership::NodeId origin);
  // Drop exchange slots aimed at a member that died or left the channel.
  static void prune_pending(LevelState& ls, membership::NodeId member);
  // Admission control for O(N) full-image serves: a per-period budget,
  // refusals answered with BusyMsg naming a deterministic staggered
  // retry_after (each refusal in a window is pointed one budget-slot
  // further out, so the backlog drains at budget serves per period).
  bool admit_image_serve();
  sim::Duration busy_retry_after();
  void send_busy(membership::NodeId requester, uint8_t level,
                 membership::BusyKind kind);
  void on_busy(const membership::BusyMsg& msg);
  // Drop the out-log and advance the trim watermark so receivers behind
  // out_seq are forced onto the full-image path.
  void clear_out_log(LevelState& ls);
  std::vector<membership::EntryData> full_view() const;
  membership::NodeId provenance_tag(membership::NodeId subject,
                                    membership::NodeId proposed) const;
  void absorb_entries(const std::vector<membership::EntryData>& entries,
                      membership::NodeId relayed_by, int arrival_level);
  void reconcile_with_image(membership::NodeId responder,
                            const std::vector<membership::EntryData>& entries,
                            int arrival_level);
  void refresh_tick();

  // Registry handles, one per HierStats field, resolved once at
  // construction (keyed {kHier, name, self_}).
  struct Metrics {
    obs::Counter* heartbeats_sent = nullptr;
    obs::Counter* updates_sent = nullptr;
    obs::Counter* update_records_applied = nullptr;
    obs::Counter* elections_started = nullptr;
    obs::Counter* coordinators_sent = nullptr;
    obs::Counter* bootstraps_requested = nullptr;
    obs::Counter* bootstraps_served = nullptr;
    obs::Counter* syncs_requested = nullptr;
    obs::Counter* syncs_served = nullptr;
    obs::Counter* gaps_recovered_by_piggyback = nullptr;
    obs::Counter* relayed_purges = nullptr;
    obs::Counter* epochs_minted = nullptr;
    obs::Counter* stale_epoch_rejects = nullptr;
    obs::Counter* epochs_superseded = nullptr;
    obs::Counter* deaf_backlogs_dropped = nullptr;
    obs::Counter* exchange_retries = nullptr;
    obs::Counter* exchange_budget_exhausted = nullptr;
    obs::Counter* busy_sent = nullptr;
    obs::Counter* busy_deferrals = nullptr;
    obs::Counter* out_log_compacted = nullptr;
    // Digest anti-entropy. Sends (digests_sent / digest_pulls_sent /
    // deltas_sent) each have exactly one send site, so the chaos runner's
    // conservation identities can tie them to per-wire-kind tx counters.
    obs::Counter* digests_sent = nullptr;
    obs::Counter* digest_pulls_sent = nullptr;
    obs::Counter* digest_pulls_served = nullptr;
    obs::Counter* deltas_sent = nullptr;
    obs::Counter* delta_rows_shipped = nullptr;      // divergent rows shipped
    obs::Counter* digest_rows_suppressed = nullptr;  // agreeing rows confirmed
    obs::Counter* digest_full_fallbacks = nullptr;   // truncated → image sync
    obs::Counter* topology_rescopes = nullptr;       // members dropped as
                                                     // out-of-scope on an
                                                     // epoch change
    obs::Histogram* image_serve_entries = nullptr;
  };
  void resolve_metrics();
  // Structured event record: every call site documents its payload words.
  void trace(obs::TraceKind kind, int level, uint64_t a = 0, uint64_t b = 0);

  HierConfig config_;
  std::vector<std::unique_ptr<LevelState>> levels_;
  sim::PeriodicTimer heartbeat_timer_;
  sim::PeriodicTimer scan_timer_;
  sim::PeriodicTimer refresh_timer_;
  sim::PeriodicTimer topo_poll_timer_;
  // Topology::epoch() value already reacted to; re-anchored at start() so a
  // daemon booting after mutations does not replay history.
  uint64_t topo_epoch_seen_ = 0;
  Metrics metrics_;
  uint64_t hb_seq_ = 0;
  // Image-serve admission window (daemon-wide: the expensive part of a
  // serve is the same full_view() whatever level asked for it).
  sim::Time serve_window_start_ = 0;
  size_t serves_window_ = 0;
  uint64_t deferrals_window_ = 0;
};

}  // namespace tamp::protocols
