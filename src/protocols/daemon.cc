#include "protocols/daemon.h"

#include <algorithm>

namespace tamp::protocols {

MembershipDaemon::MembershipDaemon(sim::Simulation& sim, net::Network& net,
                                   membership::NodeId self,
                                   membership::EntryData own)
    : sim_(sim), net_(net), self_(self), own_(std::move(own)) {
  own_.node = self_;
}

void MembershipDaemon::base_start() {
  running_ = true;
  table_.apply(own_, membership::Liveness::kDirect, membership::kInvalidNode,
               sim_.now());
}

void MembershipDaemon::base_stop() { running_ = false; }

void MembershipDaemon::notify(membership::NodeId subject, bool alive) {
  if (subject == self_) return;
  if (listener_) listener_(subject, alive, sim_.now());
}

void MembershipDaemon::own_entry_changed() {
  table_.apply(own_, membership::Liveness::kDirect, membership::kInvalidNode,
               sim_.now());
}

void MembershipDaemon::register_service(const std::string& name,
                                        const std::vector<int>& partitions,
                                        std::map<std::string, std::string> params) {
  for (auto& service : own_.services) {
    if (service.name == name) {
      service.partitions = partitions;
      service.params = std::move(params);
      own_entry_changed();
      return;
    }
  }
  membership::ServiceRegistration registration;
  registration.name = name;
  registration.partitions = partitions;
  registration.params = std::move(params);
  own_.services.push_back(std::move(registration));
  own_entry_changed();
}

void MembershipDaemon::update_value(const std::string& key,
                                    const std::string& value) {
  own_.values[key] = value;
  own_entry_changed();
}

void MembershipDaemon::delete_value(const std::string& key) {
  own_.values.erase(key);
  own_entry_changed();
}

}  // namespace tamp::protocols
