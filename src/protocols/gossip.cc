#include "protocols/gossip.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace tamp::protocols {

using membership::ApplyResult;
using membership::decode_message;
using membership::encode_message;
using membership::GossipMsg;
using membership::GossipRecord;
using membership::Liveness;

GossipDaemon::GossipDaemon(sim::Simulation& sim, net::Network& net,
                           membership::NodeId self, membership::EntryData own,
                           GossipConfig config)
    : MembershipDaemon(sim, net, self, std::move(own)),
      config_(config),
      round_timer_(sim, config.period, [this] { round(); }),
      scan_timer_(sim, config.scan_interval, [this] { scan(); }),
      gossips_sent_(
          net.obs().metrics.counter(obs::Protocol::kGossip, "gossips_sent",
                                    self)) {}

GossipDaemon::~GossipDaemon() { stop(); }

void GossipDaemon::start() {
  if (running()) return;
  base_start();
  net_.bind(self_, config_.port, [this](const net::Packet& p) { on_packet(p); });
  round_timer_.start_with_random_phase();
  scan_timer_.start_with_random_phase();
}

void GossipDaemon::stop() {
  if (!running()) return;
  round_timer_.stop();
  scan_timer_.stop();
  net_.unbind(self_, config_.port);
  base_stop();
}

void GossipDaemon::add_seed(const membership::EntryData& entry) {
  if (entry.node == self_) return;
  if (table_.apply(entry, Liveness::kDirect, membership::kInvalidNode,
                   sim_.now()) == ApplyResult::kAdded) {
    peers_[entry.node] = PeerState{0, entry.incarnation, sim_.now()};
    notify(entry.node, true);
  }
}

sim::Duration GossipDaemon::effective_tfail() const {
  if (config_.tfail > 0) return config_.tfail;
  double n = std::max<double>(2.0, static_cast<double>(table_.size()));
  double periods = config_.tfail_c0 + config_.tfail_c1 * std::log2(n);
  return static_cast<sim::Duration>(periods *
                                    static_cast<double>(config_.period));
}

membership::GossipMsg GossipDaemon::build_view() {
  GossipMsg view;
  view.sender = self_;
  for (const auto& [node, entry] : table_.entries()) {
    GossipRecord record;
    record.entry = entry.data;
    record.heartbeat_counter = node == self_ ? own_counter_ : peers_[node].counter;
    view.records.push_back(std::move(record));
  }
  return view;
}

membership::NodeId GossipDaemon::next_target() {
  // Walk the shuffled cycle, skipping peers that have since been removed;
  // re-shuffle over the current view when the cycle is exhausted.
  for (int refill = 0; refill < 2; ++refill) {
    while (target_cursor_ < target_cycle_.size()) {
      membership::NodeId candidate = target_cycle_[target_cursor_++];
      if (candidate != self_ && table_.contains(candidate)) return candidate;
    }
    target_cycle_.clear();
    for (const auto& [node, entry] : table_.entries()) {
      if (node != self_) target_cycle_.push_back(node);
    }
    sim_.rng().shuffle(target_cycle_);
    target_cursor_ = 0;
    if (target_cycle_.empty()) break;
  }
  return membership::kInvalidNode;
}

void GossipDaemon::round() {
  ++own_counter_;
  net::Payload payload;
  for (int i = 0; i < config_.fanout; ++i) {
    membership::NodeId target = next_target();
    if (target == membership::kInvalidNode) return;
    if (!payload) payload = encode_message(build_view());
    net_.send_unicast(self_, net::Address{target, config_.port}, payload);
    gossips_sent_->add();
  }
}

void GossipDaemon::scan() {
  const sim::Time now = sim_.now();
  const sim::Duration tfail = effective_tfail();

  std::vector<membership::NodeId> failed;
  for (const auto& [node, peer] : peers_) {
    if (table_.contains(node) && now - peer.last_increase > tfail) {
      failed.push_back(node);
    }
  }
  for (auto node : failed) {
    const auto* entry = table_.find(node);
    uint64_t counter = peers_[node].counter;
    uint64_t incarnation = entry ? entry->data.incarnation : 0;
    table_.remove(node, incarnation, now);
    dead_[node] = DeadState{counter, incarnation, now + 2 * tfail};
    peers_.erase(node);
    TAMP_LOG(Info) << "gossip node " << self_ << " declares " << node
                   << " failed";
    net_.obs().tracer.record(obs::TraceKind::kTimeoutExpiry, self_, now, -1,
                             node);
    notify(node, false);
  }

  // Garbage-collect quarantine records.
  for (auto it = dead_.begin(); it != dead_.end();) {
    if (now >= it->second.until) {
      it = dead_.erase(it);
    } else {
      ++it;
    }
  }
}

void GossipDaemon::on_packet(const net::Packet& packet) {
  auto message = decode_message(packet);
  if (!message) return;
  auto* gossip = std::get_if<GossipMsg>(&*message);
  if (gossip == nullptr) return;

  const sim::Time now = sim_.now();
  for (const auto& record : gossip->records) {
    const auto node = record.entry.node;
    if (node == self_) continue;

    auto dead = dead_.find(node);
    if (dead != dead_.end()) {
      // Came back for real if the counter moved past its value at death, or
      // if this is a fresh incarnation (a restarted process begins counting
      // from zero, so the counter test alone would quarantine it).
      if (record.heartbeat_counter <= dead->second.counter &&
          record.entry.incarnation <= dead->second.incarnation) {
        continue;
      }
      dead_.erase(dead);
    }

    auto peer = peers_.find(node);
    if (peer == peers_.end()) {
      ApplyResult result = table_.apply(record.entry, Liveness::kDirect,
                                        membership::kInvalidNode, now);
      if (result != ApplyResult::kStale) {
        peers_[node] = PeerState{record.heartbeat_counter,
                                 record.entry.incarnation, now};
        notify(node, true);
      }
      continue;
    }
    if (record.entry.incarnation > peer->second.incarnation) {
      // New life: restart the counter cursor in the new counter-space.
      peer->second = PeerState{record.heartbeat_counter,
                               record.entry.incarnation, now};
      table_.apply(record.entry, Liveness::kDirect, membership::kInvalidNode,
                   now);
    } else if (record.entry.incarnation == peer->second.incarnation &&
               record.heartbeat_counter > peer->second.counter) {
      peer->second.counter = record.heartbeat_counter;
      peer->second.last_increase = now;
      table_.apply(record.entry, Liveness::kDirect, membership::kInvalidNode,
                   now);
    }
    // Lower incarnation: stale gossip about a previous life — ignore.
  }
}

}  // namespace tamp::protocols
