// Common base of the three membership daemons (all-to-all, gossip,
// hierarchical).
//
// A daemon is the per-node actor that maintains the local yellow-page
// directory. It owns the node's own EntryData (what gets announced), the
// MembershipTable (what is known about everyone), and exposes a change
// listener so tests and the evaluation harness can record exactly when a
// node learned of a join or a failure.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "membership/messages.h"
#include "membership/table.h"
#include "membership/types.h"
#include "net/transport.h"
#include "sim/simulation.h"

namespace tamp::protocols {

class MembershipDaemon {
 public:
  MembershipDaemon(sim::Simulation& sim, net::Network& net,
                   membership::NodeId self, membership::EntryData own);
  virtual ~MembershipDaemon() = default;

  MembershipDaemon(const MembershipDaemon&) = delete;
  MembershipDaemon& operator=(const MembershipDaemon&) = delete;

  // Begin participating (join channels, start timers). Idempotent.
  virtual void start() = 0;

  // Halt all activity (timers, sockets). Models killing the daemon process:
  // no goodbye is sent — peers must *detect* the departure (paper Sec 6.4).
  virtual void stop() = 0;

  bool running() const { return running_; }
  membership::NodeId self() const { return self_; }

  const membership::MembershipTable& table() const { return table_; }
  membership::MembershipTable& table() { return table_; }

  // --- what this node announces ------------------------------------------
  const membership::EntryData& own_entry() const { return own_; }
  // Set before start(); a restarted node announces a higher incarnation so
  // peers can tell the new life from the old one.
  void set_incarnation(membership::Incarnation incarnation) {
    own_.incarnation = incarnation;
    own_entry_changed();
  }
  void register_service(const std::string& name,
                        const std::vector<int>& partitions,
                        std::map<std::string, std::string> params = {});
  void update_value(const std::string& key, const std::string& value);
  void delete_value(const std::string& key);

  // --- observation hooks ---------------------------------------------------
  // Fired when the local view adds (alive=true) or removes (alive=false) a
  // node. `when` is virtual time. Self-transitions are not reported.
  using ChangeListener = std::function<void(membership::NodeId subject,
                                            bool alive, sim::Time when)>;
  void set_change_listener(ChangeListener listener) {
    listener_ = std::move(listener);
  }

  // Count of live nodes in this node's view (including itself).
  size_t view_size() const { return table_.size(); }

 protected:
  // Install own entry into the table (each directory includes the local
  // node) and flip running_. Subclasses call from start()/stop().
  void base_start();
  void base_stop();

  void notify(membership::NodeId subject, bool alive);
  // Re-apply own entry to the table after a local mutation.
  void own_entry_changed();

  sim::Simulation& sim_;
  net::Network& net_;
  membership::NodeId self_;
  membership::EntryData own_;
  membership::MembershipTable table_;
  bool running_ = false;

 private:
  ChangeListener listener_;
};

}  // namespace tamp::protocols
