// Gossip-style membership (van Renesse et al., Middleware '98) — the
// paper's second comparison point.
//
// Each round a node increments its own heartbeat counter and sends its full
// local view (every known member's record + counter) to one randomly chosen
// peer. A member whose counter hasn't increased for `tfail` is declared
// failed, and is quarantined for `2 * tfail` so stale gossip can't
// resurrect it (the classic cleanup rule).
//
// `tfail` defaults to the O(log n) mistake-probability bound: with one
// gossip per period, information about a node reaches everyone in O(log n)
// rounds, so the failure timeout must scale with log n to keep the mistake
// probability at the configured level. The default constants are calibrated
// so that P_mistake ~ 0.1% reproduces the paper's measured detection times
// (~13 s at 20 nodes, ~17-20 s at 100).
//
// Targets are chosen by cycling a shuffled permutation of the known peers
// (re-shuffled each cycle) rather than independently at random — the
// standard practical refinement: with i.i.d. choices a node goes
// un-gossiped-to for L seconds with probability e^-L, and such receive
// droughts combine with view staleness into correlated false failure
// detections; permutation selection bounds the gap.
#pragma once

#include <unordered_map>

#include "obs/obs.h"
#include "protocols/daemon.h"
#include "protocols/ports.h"
#include "sim/timer.h"

namespace tamp::protocols {

struct GossipConfig {
  net::Port port = kGossipPort;
  sim::Duration period = sim::kSecond;
  int fanout = 1;  // peers contacted per round
  // Fixed failure timeout; <= 0 means adaptive: period * (c0 + c1 * log2 n).
  sim::Duration tfail = 0;
  double tfail_c0 = 5.5;
  double tfail_c1 = 1.75;
  sim::Duration scan_interval = 200 * sim::kMillisecond;
};

class GossipDaemon : public MembershipDaemon {
 public:
  GossipDaemon(sim::Simulation& sim, net::Network& net, membership::NodeId self,
               membership::EntryData own, GossipConfig config = {});
  ~GossipDaemon() override;

  void start() override;
  void stop() override;

  // Pre-load knowledge of another node (bootstrap seed). Must be called
  // before or after start; seeds count as heard-now.
  void add_seed(const membership::EntryData& entry);

  // Effective failure timeout at the current view size.
  sim::Duration effective_tfail() const;

  uint64_t gossips_sent() const { return gossips_sent_->value; }
  const GossipConfig& config() const { return config_; }

 private:
  // Heartbeat-counter cursor for one peer, scoped to an incarnation: a
  // restarted peer begins a fresh counter-space at zero, so comparing its
  // counters against the old life's cursor would declare it silent forever
  // (and a stale relayed record of the old life must not drag the cursor
  // past the new life's counters).
  struct PeerState {
    uint64_t counter = 0;
    uint64_t incarnation = 0;
    sim::Time last_increase = 0;
  };

  void round();
  void scan();
  void on_packet(const net::Packet& packet);
  membership::GossipMsg build_view();
  // Next peer from the shuffled cycle; kInvalidNode when no peers exist.
  membership::NodeId next_target();

  GossipConfig config_;
  sim::PeriodicTimer round_timer_;
  sim::PeriodicTimer scan_timer_;
  uint64_t own_counter_ = 0;
  std::unordered_map<membership::NodeId, PeerState> peers_;
  // Failed nodes quarantined until the stored time; records with counters
  // <= .counter are ignored while quarantined — unless they carry a higher
  // incarnation, which proves a restarted process (fresh counters start at
  // zero) rather than stale gossip about the dead one.
  struct DeadState {
    uint64_t counter = 0;
    uint64_t incarnation = 0;
    sim::Time until = 0;
  };
  std::unordered_map<membership::NodeId, DeadState> dead_;
  std::vector<membership::NodeId> target_cycle_;
  size_t target_cursor_ = 0;
  // Registry-backed (obs::Protocol::kGossip, "gossips_sent", self).
  obs::Counter* gossips_sent_ = nullptr;
};

}  // namespace tamp::protocols
