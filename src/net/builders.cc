#include "net/builders.h"

#include "util/check.h"
#include "util/strings.h"

namespace tamp::net {

ClusterLayout build_single_segment(Topology& topology, int hosts,
                                   DatacenterId dc,
                                   const std::string& name_prefix) {
  TAMP_CHECK(hosts > 0);
  ClusterLayout layout;
  layout.dc = dc;
  DeviceId sw = topology.add_l2_switch(name_prefix + "-sw", dc);
  layout.rack_switches.push_back(sw);
  layout.racks.emplace_back();
  for (int i = 0; i < hosts; ++i) {
    HostId h = topology.add_host(
        util::strformat("%s-%d", name_prefix.c_str(), i), dc);
    topology.connect(h, sw);
    layout.hosts.push_back(h);
    layout.racks.back().push_back(h);
  }
  return layout;
}

ClusterLayout build_racked_cluster(Topology& topology,
                                   const RackedClusterParams& params) {
  TAMP_CHECK(params.racks > 0 && params.hosts_per_rack > 0);
  ClusterLayout layout;
  layout.dc = params.dc;
  layout.core_router = topology.add_router(
      util::strformat("%s-core", params.name_prefix.c_str()), params.dc);
  layout.routers.push_back(layout.core_router);
  for (int r = 0; r < params.racks; ++r) {
    DeviceId sw = topology.add_l2_switch(
        util::strformat("%s-rack%d", params.name_prefix.c_str(), r),
        params.dc);
    layout.rack_switches.push_back(sw);
    layout.rack_uplinks.push_back(
        topology.connect(sw, layout.core_router, params.uplink));
    layout.racks.emplace_back();
    for (int i = 0; i < params.hosts_per_rack; ++i) {
      HostId h = topology.add_host(
          util::strformat("%s-r%d-%d", params.name_prefix.c_str(), r, i),
          params.dc);
      topology.connect(h, sw, params.access_link);
      layout.hosts.push_back(h);
      layout.racks.back().push_back(h);
    }
  }
  return layout;
}

namespace {

// Recursively builds the router tree; returns the subtree root.
DeviceId build_router_subtree(Topology& topology, int branching, int depth,
                              int hosts_per_leaf, DatacenterId dc,
                              const std::string& prefix,
                              ClusterLayout& layout) {
  DeviceId router =
      topology.add_router(prefix + "-r", dc);
  layout.routers.push_back(router);
  if (depth == 0) {
    DeviceId sw = topology.add_l2_switch(prefix + "-sw", dc);
    topology.connect(sw, router, LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});
    layout.rack_switches.push_back(sw);
    layout.racks.emplace_back();
    for (int i = 0; i < hosts_per_leaf; ++i) {
      HostId h = topology.add_host(util::strformat("%s-%d", prefix.c_str(), i),
                                   dc);
      topology.connect(h, sw);
      layout.hosts.push_back(h);
      layout.racks.back().push_back(h);
    }
    return router;
  }
  for (int c = 0; c < branching; ++c) {
    DeviceId child = build_router_subtree(
        topology, branching, depth - 1, hosts_per_leaf, dc,
        util::strformat("%s%d", prefix.c_str(), c), layout);
    topology.connect(router, child,
                     LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});
  }
  return router;
}

}  // namespace

ClusterLayout build_router_tree(Topology& topology, int branching, int depth,
                                int hosts_per_leaf, DatacenterId dc,
                                const std::string& name_prefix) {
  TAMP_CHECK(branching > 0 && depth >= 0 && hosts_per_leaf > 0);
  ClusterLayout layout;
  layout.dc = dc;
  layout.core_router = build_router_subtree(
      topology, branching, depth, hosts_per_leaf, dc, name_prefix, layout);
  return layout;
}

ClusterLayout build_router_chain(Topology& topology, int segments,
                                 int hosts_per_segment, DatacenterId dc,
                                 const std::string& name_prefix) {
  TAMP_CHECK(segments > 0 && hosts_per_segment > 0);
  ClusterLayout layout;
  layout.dc = dc;
  DeviceId previous = kInvalidDevice;
  for (int s = 0; s < segments; ++s) {
    DeviceId router = topology.add_router(
        util::strformat("%s-r%d", name_prefix.c_str(), s), dc);
    layout.routers.push_back(router);
    if (previous != kInvalidDevice) {
      topology.connect(previous, router,
                       LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});
    }
    previous = router;
    DeviceId sw = topology.add_l2_switch(
        util::strformat("%s-sw%d", name_prefix.c_str(), s), dc);
    topology.connect(sw, router, LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});
    layout.rack_switches.push_back(sw);
    layout.racks.emplace_back();
    for (int i = 0; i < hosts_per_segment; ++i) {
      HostId h = topology.add_host(
          util::strformat("%s-s%d-%d", name_prefix.c_str(), s, i), dc);
      topology.connect(h, sw);
      layout.hosts.push_back(h);
      layout.racks.back().push_back(h);
    }
  }
  return layout;
}

Fig4Layout build_fig4_overlap(Topology& topology, int hosts_per_segment) {
  TAMP_CHECK(hosts_per_segment > 0);
  Fig4Layout layout;
  DeviceId ra = topology.add_router("fig4-ra");
  DeviceId rb = topology.add_router("fig4-rb");
  DeviceId rc = topology.add_router("fig4-rc");
  topology.connect(rb, ra, LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});
  topology.connect(ra, rc, LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});

  auto segment = [&](const char* name, DeviceId router,
                     std::vector<HostId>& out) {
    DeviceId sw = topology.add_l2_switch(std::string("fig4-s") + name);
    topology.connect(sw, router, LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});
    for (int i = 0; i < hosts_per_segment; ++i) {
      HostId h = topology.add_host(util::strformat("fig4-%s%d", name, i));
      topology.connect(h, sw);
      out.push_back(h);
      layout.all.push_back(h);
    }
  };
  // Intentional ordering: segment A hosts get the lowest ids, so A's nodes
  // win bully elections and the paper's "node A leads both overlapping
  // groups" case is reachable deterministically in tests.
  segment("a", ra, layout.segment_a);
  segment("b", rb, layout.segment_b);
  segment("c", rc, layout.segment_c);
  return layout;
}

MultiDcLayout build_multi_datacenter(
    Topology& topology, const std::vector<RackedClusterParams>& dcs,
    const WanParams& wan) {
  TAMP_CHECK(!dcs.empty());
  MultiDcLayout layout;
  for (const auto& params : dcs) {
    layout.clusters.push_back(build_racked_cluster(topology, params));
    DeviceId border = topology.add_router(
        util::strformat("%s-border", params.name_prefix.c_str()), params.dc);
    topology.connect(layout.clusters.back().core_router, border,
                     wan.border_link);
    layout.border_routers.push_back(border);
  }
  for (size_t i = 0; i < layout.border_routers.size(); ++i) {
    for (size_t j = i + 1; j < layout.border_routers.size(); ++j) {
      layout.wan_links.push_back(topology.connect(
          layout.border_routers[i], layout.border_routers[j], wan.wan_link));
    }
  }
  return layout;
}

}  // namespace tamp::net
