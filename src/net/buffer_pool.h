// Recycled encode buffers for the packet hot path.
//
// Every protocol message is encoded into a fresh std::vector and shipped as
// a shared immutable Payload; at 10k nodes that is one large allocation per
// send. The pool keeps released payload buffers (capacity intact) on a
// thread-local freelist so steady-state encoding reuses capacity instead of
// hitting the allocator.
//
// The freelist is thread_local on purpose: the chaos runner executes many
// independent sims on worker threads in one process, and a per-thread pool
// needs no locks and cannot leak buffers across sims in a way that affects
// behavior — pooling only recycles capacity, never bytes, so results stay
// byte-identical with or without it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace tamp::net {

// A cleared buffer, with capacity retained from a previously released
// payload when one is available.
std::vector<uint8_t> acquire_buffer();

// Return a buffer's capacity to the pool (bounded; excess is freed).
void release_buffer(std::vector<uint8_t> buffer);

// Wrap encoded bytes as a Payload whose buffer returns to the pool when the
// last receiver releases it.
Payload make_pooled_payload(std::vector<uint8_t> bytes);

// Current freelist depth on this thread (test hook).
size_t buffer_pool_depth();

}  // namespace tamp::net
