#include "net/buffer_pool.h"

#include <utility>

namespace tamp::net {

namespace {

// Deep enough to cover every in-flight payload of a busy sim tick; shallow
// enough that an idle worker thread pins at most a few MB.
constexpr size_t kMaxPooledBuffers = 256;

std::vector<std::vector<uint8_t>>& freelist() {
  thread_local std::vector<std::vector<uint8_t>> list;
  return list;
}

}  // namespace

std::vector<uint8_t> acquire_buffer() {
  auto& list = freelist();
  if (list.empty()) return {};
  std::vector<uint8_t> buffer = std::move(list.back());
  list.pop_back();
  buffer.clear();
  return buffer;
}

void release_buffer(std::vector<uint8_t> buffer) {
  if (buffer.capacity() == 0) return;
  auto& list = freelist();
  if (list.size() >= kMaxPooledBuffers) return;  // excess capacity is freed
  list.push_back(std::move(buffer));
}

Payload make_pooled_payload(std::vector<uint8_t> bytes) {
  auto* owned = new std::vector<uint8_t>(std::move(bytes));
  return Payload(owned, [](const std::vector<uint8_t>* p) {
    release_buffer(std::move(*const_cast<std::vector<uint8_t>*>(p)));
    delete p;
  });
}

size_t buffer_pool_depth() { return freelist().size(); }

}  // namespace tamp::net
