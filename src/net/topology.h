// Simulated physical network: hosts, L2 switches, and routers joined by
// links with latency / bandwidth / loss.
//
// The property the membership protocol exploits is IP TTL scoping: a packet
// sent with TTL value `t` is forwarded across at most `t - 1` routers (each
// router decrements the TTL and discards it at zero; L2 switches do not
// touch it). `ttl_required(a, b)` is therefore 1 + the number of routers on
// the a→b path: 1 for two hosts on the same L2 segment, 2 across one
// router, and so on — exactly the distance measure of Section 3.1.
//
// Constraint: every host has exactly one uplink (single-homed), which is
// how cluster hosts are racked in the paper's environment. This lets us do
// all-pairs routing among the (few) infrastructure devices only and answer
// host-pair queries in O(1), which keeps 4000-host simulations fast.
// The invariant is enforced loudly (fatal, naming the host) at connect()
// time; host migration rewires the existing uplink instead of adding one.
//
// The topology is mutable at runtime: devices can be added, links added or
// flapped, whole routers/switches crashed and recovered (all incident links
// down/up atomically), and hosts migrated between segments. Every mutation
// bumps epoch() and invalidates the compiled routing state, which is
// rebuilt lazily on the next query — callers that cache ttl_required() or
// max_ttl() answers watch the epoch to learn they went stale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ids.h"
#include "sim/time.h"

namespace tamp::net {

enum class DeviceKind : uint8_t { kHost, kL2Switch, kRouter };

struct Device {
  DeviceId id = kInvalidDevice;
  DeviceKind kind = DeviceKind::kHost;
  std::string name;
  DatacenterId dc = 0;
  // Infrastructure power state (routers/switches; see set_device_up). Host
  // up/down lives in the Network, not here: a host with its daemon stopped
  // still occupies its port.
  bool up = true;
};

struct LinkParams {
  sim::Duration latency = 50 * sim::kMicrosecond;  // one-way propagation
  double bandwidth_bps = 100e6;                    // Fast Ethernet default
  double loss = 0.0;                               // per-packet loss prob
};

struct Link {
  LinkId id = 0;
  DeviceId a = kInvalidDevice;
  DeviceId b = kInvalidDevice;
  LinkParams params;
  bool up = true;
};

// Aggregate properties of the routed path between two hosts.
struct PathInfo {
  bool reachable = false;
  int router_hops = 0;          // routers traversed
  sim::Duration latency = 0;    // sum of link latencies
  double min_bandwidth_bps = 0; // bottleneck link
  double survival = 1.0;        // prod(1 - loss) over links
};

class Topology {
 public:
  // --- construction ---------------------------------------------------
  HostId add_host(const std::string& name, DatacenterId dc = 0);
  DeviceId add_l2_switch(const std::string& name, DatacenterId dc = 0);
  DeviceId add_router(const std::string& name, DatacenterId dc = 0);
  LinkId connect(DeviceId a, DeviceId b, const LinkParams& params = {});

  // Take a link administratively down/up (switch failure, WAN cut). Routing
  // is recomputed lazily on the next query.
  void set_link_up(LinkId link, bool up);

  // --- runtime mutation -------------------------------------------------
  // Crash / recover an infrastructure device (router or switch): all its
  // incident links go down/up *atomically* — no query can observe a
  // half-crashed router, because routing recompiles only after the flag
  // flips. Links keep their own administrative state: a link that was
  // admin-down before the crash stays down after recovery. Fatal on hosts.
  void set_device_up(DeviceId device, bool up);
  bool device_up(DeviceId device) const;

  // Re-home `host` onto a different access device (rack move / VLAN
  // renumbering). The existing uplink is rewired in place — its LinkId and
  // administrative state survive, so fault plans holding uplink_of(host)
  // stay valid — preserving the single-homed invariant by construction.
  // `params`, when non-null, replaces the link's latency/bandwidth/loss.
  void migrate_host(HostId host, DeviceId new_attach,
                    const LinkParams* params = nullptr);

  // Monotone counter bumped by every mutation that can change routing
  // answers (device/link addition, link or device state, migration).
  // Callers that derive state from ttl_required()/max_ttl() — the
  // hierarchical daemons' group scopes above all — poll this to detect
  // that their cached distance structure went stale.
  uint64_t epoch() const { return epoch_; }

  // --- queries ----------------------------------------------------------
  size_t device_count() const { return devices_.size(); }
  size_t host_count() const { return hosts_.size(); }
  const std::vector<HostId>& hosts() const { return hosts_; }
  const Device& device(DeviceId id) const;
  const Link& link(LinkId id) const;
  bool is_host(DeviceId id) const;
  DatacenterId datacenter_of(HostId host) const;

  // Hosts belonging to one datacenter.
  std::vector<HostId> hosts_in_datacenter(DatacenterId dc) const;

  // Path between two *hosts* (a == b gives a zero-length reachable path).
  PathInfo path(HostId a, HostId b) const;

  // TTL value needed for a packet from `a` to reach `b`
  // (= router_hops + 1); 0 if unreachable or a == b.
  int ttl_required(HostId a, HostId b) const;

  // Largest ttl_required over all reachable host pairs — the natural
  // MAX_TTL setting for the hierarchical protocol on this topology.
  int max_ttl() const;

  // The (single) access link attaching `host` to the infrastructure — the
  // hook fault plans use to unplug one machine's NIC cable. The single-homed
  // invariant is mutable at runtime (migration rewires it, connect() could
  // violate it), so a host found with != 1 uplink is a documented fatal
  // that names the offending host rather than a silent assumption.
  LinkId uplink_of(HostId host) const;

  // All links incident to a device (e.g. a rack switch, to model the whole
  // switch losing power). Order matches the order connect() was called.
  std::vector<LinkId> links_of(DeviceId device) const;

 private:
  struct InfraPath {
    bool reachable = false;
    int router_hops = 0;
    sim::Duration latency = 0;
    double min_bandwidth_bps = 0;
    double survival = 1.0;
  };

  void compile() const;  // (re)build routing state; const because lazy
  const InfraPath& infra_path(DeviceId a, DeviceId b) const;
  static void accumulate(InfraPath& acc, const LinkParams& link);
  // A link carries traffic iff it is admin-up and both endpoint devices are
  // powered — this is what makes a device crash take every incident link
  // down atomically.
  bool link_live(const Link& link) const {
    return link.up && devices_[link.a].up && devices_[link.b].up;
  }
  void mutated() {
    compiled_ = false;
    ++epoch_;
  }

  std::vector<Device> devices_;
  std::vector<Link> links_;
  std::vector<HostId> hosts_;
  std::vector<std::vector<LinkId>> adjacency_;  // per device
  uint64_t epoch_ = 0;

  // Compiled routing state (lazy).
  mutable bool compiled_ = false;
  mutable std::vector<LinkId> host_uplink_;          // per device (hosts only)
  mutable std::vector<DeviceId> host_attach_;        // access device per host
  mutable std::vector<DeviceId> infra_index_;        // device -> dense index
  mutable std::vector<DeviceId> infra_devices_;      // dense index -> device
  mutable std::vector<InfraPath> infra_matrix_;      // dense n x n
};

}  // namespace tamp::net
