#include "net/transport.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace tamp::net {

Network::Network(sim::Simulation& sim, Topology& topology,
                 NetworkConfig config)
    : sim_(sim), topology_(topology), config_(config) {
  hosts_.resize(topology_.device_count());
  total_ = resolve_counters(obs::kNoNode);
  for (HostId host = 0; host < hosts_.size(); ++host) {
    if (topology_.is_host(host)) {
      hosts_[host].counters = resolve_counters(host);
    }
  }
  // Kind 0 ("unknown") exists even before a classifier is installed, so the
  // per-kind sums are total from the first packet.
  set_wire_classifier(WireClassifier{});
}

Network::TrafficCounters Network::resolve_counters(obs::NodeId node) {
  obs::MetricsRegistry& m = obs_.metrics;
  TrafficCounters c;
  c.tx_messages = m.counter(obs::Protocol::kNet, "tx_messages", node);
  c.tx_wire_bytes = m.counter(obs::Protocol::kNet, "tx_wire_bytes", node);
  c.rx_messages = m.counter(obs::Protocol::kNet, "rx_messages", node);
  c.rx_wire_bytes = m.counter(obs::Protocol::kNet, "rx_wire_bytes", node);
  c.rx_multicast_messages =
      m.counter(obs::Protocol::kNet, "rx_multicast_messages", node);
  c.dropped_messages =
      m.counter(obs::Protocol::kNet, "dropped_messages", node);
  c.tx_dropped_egress =
      m.counter(obs::Protocol::kNet, "tx_dropped_egress", node);
  return c;
}

void Network::set_wire_classifier(WireClassifier classifier) {
  classifier_ = std::move(classifier);
  if (classifier_.kind_count == 0) classifier_.kind_count = 1;
  obs::MetricsRegistry& m = obs_.metrics;
  tx_kind_.clear();
  tx_bytes_kind_.clear();
  egress_drop_kind_.clear();
  tx_down_kind_.clear();
  for (uint8_t kind = 0; kind < classifier_.kind_count; ++kind) {
    const std::string suffix =
        classifier_.name ? classifier_.name(kind) : "unknown";
    tx_kind_.push_back(m.counter(obs::Protocol::kNet, "tx_kind_" + suffix));
    tx_bytes_kind_.push_back(
        m.counter(obs::Protocol::kNet, "tx_bytes_kind_" + suffix));
    egress_drop_kind_.push_back(
        m.counter(obs::Protocol::kNet, "tx_egress_drop_kind_" + suffix));
    tx_down_kind_.push_back(
        m.counter(obs::Protocol::kNet, "tx_down_kind_" + suffix));
  }
}

uint8_t Network::classify(const Payload& payload) const {
  if (!classifier_.classify || !payload) return 0;
  uint8_t kind = classifier_.classify(payload->data(), payload->size());
  return kind < classifier_.kind_count ? kind : 0;
}

void Network::bind(HostId host, Port port, RecvCallback callback) {
  TAMP_CHECK(topology_.is_host(host));
  TAMP_CHECK(host < hosts_.size());
  auto [it, inserted] =
      hosts_[host].sockets.emplace(port, std::move(callback));
  TAMP_CHECK_MSG(inserted, "port already bound");
  (void)it;
}

void Network::unbind(HostId host, Port port) {
  TAMP_CHECK(host < hosts_.size());
  hosts_[host].sockets.erase(port);
}

void Network::join_group(HostId host, ChannelId channel) {
  TAMP_CHECK(host < hosts_.size());
  if (hosts_[host].groups.insert(channel).second) {
    channel_members_[channel].push_back(host);
  }
}

void Network::leave_group(HostId host, ChannelId channel) {
  TAMP_CHECK(host < hosts_.size());
  if (hosts_[host].groups.erase(channel) > 0) {
    auto& members = channel_members_[channel];
    members.erase(std::find(members.begin(), members.end(), host));
  }
}

bool Network::in_group(HostId host, ChannelId channel) const {
  TAMP_CHECK(host < hosts_.size());
  return hosts_[host].groups.contains(channel);
}

size_t Network::fragments_for(size_t payload_size) const {
  if (payload_size == 0) return 1;
  return (payload_size + config_.mtu - 1) / config_.mtu;
}

size_t Network::wire_bytes_for(size_t payload_size) const {
  return payload_size + fragments_for(payload_size) *
                            config_.per_fragment_overhead;
}

bool Network::survives(const PathInfo& path, size_t fragments,
                       double injected_loss) {
  for (size_t i = 0; i < fragments; ++i) {
    if (!sim_.rng().bernoulli(path.survival)) return false;
    if (config_.extra_loss > 0.0 && sim_.rng().bernoulli(config_.extra_loss)) {
      return false;
    }
    if (injected_loss > 0.0 && sim_.rng().bernoulli(injected_loss)) {
      return false;
    }
  }
  return true;
}

bool Network::egress_admit(HostId from, size_t wire, sim::Duration& delay) {
  if (config_.egress_bytes_per_sec <= 0.0) return true;
  HostState& sender = hosts_[from];
  const sim::Time now = sim_.now();
  const sim::Time free_at = std::max(sender.egress_free_at, now);
  if (config_.egress_queue_bytes > 0) {
    const double backlog_bytes =
        sim::to_seconds(free_at - now) * config_.egress_bytes_per_sec;
    if (backlog_bytes + static_cast<double>(wire) >
        static_cast<double>(config_.egress_queue_bytes)) {
      return false;
    }
  }
  const auto serialization = static_cast<sim::Duration>(
      static_cast<double>(wire) / config_.egress_bytes_per_sec * 1e9);
  sender.egress_free_at = free_at + serialization;
  delay = sender.egress_free_at - now;
  return true;
}

void Network::dispatch(Packet packet, const PathInfo& path, size_t fragments,
                       sim::Duration egress_delay) {
  FaultInjector::Verdict verdict;
  if (injector_ != nullptr) {
    verdict = injector_->verdict(packet);
  }
  if (verdict.cut || !survives(path, fragments, verdict.extra_loss)) {
    hosts_[packet.to.host].counters.dropped_messages->add();
    total_.dropped_messages->add();
    return;
  }

  sim::Duration base_delay =
      config_.min_delivery_delay + path.latency + egress_delay;
  if (path.min_bandwidth_bps > 0) {
    base_delay += static_cast<sim::Duration>(
        static_cast<double>(packet.wire_bytes) * 8.0 /
        path.min_bandwidth_bps * 1e9);
  }
  base_delay += verdict.extra_delay;

  const int copies = 1 + std::max(0, verdict.duplicates);
  for (int copy = 0; copy < copies; ++copy) {
    sim::Duration delay = base_delay;
    if (verdict.jitter > 0) {
      delay += static_cast<sim::Duration>(
          sim_.rng().uniform_u64(static_cast<uint64_t>(verdict.jitter)));
    }
    sim_.schedule_after(delay, [this, packet] { deliver(packet); });
  }
}

bool Network::send_unicast(HostId from, Address to, Payload payload) {
  TAMP_CHECK(from < hosts_.size() && to.host < hosts_.size());
  const uint8_t kind = classify(payload);
  if (!hosts_[from].up) {
    tx_down_kind_[kind]->add();
    return false;
  }

  const size_t wire = wire_bytes_for(payload ? payload->size() : 0);
  sim::Duration egress_delay = 0;
  if (!egress_admit(from, wire, egress_delay)) {
    hosts_[from].counters.tx_dropped_egress->add();
    total_.tx_dropped_egress->add();
    egress_drop_kind_[kind]->add();
    obs_.tracer.record(obs::TraceKind::kEgressDrop, from, sim_.now(), -1,
                       kind, wire);
    return true;  // accepted by the socket, dropped at the full NIC queue
  }
  hosts_[from].counters.tx_messages->add();
  hosts_[from].counters.tx_wire_bytes->add(wire);
  total_.tx_messages->add();
  total_.tx_wire_bytes->add(wire);
  tx_kind_[kind]->add();
  tx_bytes_kind_[kind]->add(wire);

  PathInfo path = topology_.path(from, to.host);
  if (!path.reachable) return true;  // sent into the void, UDP-style

  Packet packet;
  packet.from = Address{from, 0};
  packet.to = to;
  packet.kind = DeliveryKind::kUnicast;
  packet.payload = std::move(payload);
  packet.wire_bytes = wire;
  packet.sent_at = sim_.now();

  const size_t fragments = fragments_for(packet.size());
  dispatch(std::move(packet), path, fragments, egress_delay);
  return true;
}

bool Network::send_multicast(HostId from, ChannelId channel, uint8_t ttl,
                             Port port, Payload payload) {
  TAMP_CHECK(from < hosts_.size());
  TAMP_CHECK_MSG(ttl > 0, "multicast needs ttl >= 1");
  const uint8_t kind = classify(payload);
  if (!hosts_[from].up) {
    tx_down_kind_[kind]->add();
    return false;
  }

  const size_t wire = wire_bytes_for(payload ? payload->size() : 0);
  sim::Duration egress_delay = 0;
  if (!egress_admit(from, wire, egress_delay)) {
    hosts_[from].counters.tx_dropped_egress->add();
    total_.tx_dropped_egress->add();
    egress_drop_kind_[kind]->add();
    obs_.tracer.record(obs::TraceKind::kEgressDrop, from, sim_.now(), -1,
                       kind, wire);
    return true;  // one NIC send: the whole fan-out is dropped together
  }
  hosts_[from].counters.tx_messages->add();
  hosts_[from].counters.tx_wire_bytes->add(wire);
  total_.tx_messages->add();
  total_.tx_wire_bytes->add(wire);
  tx_kind_[kind]->add();
  tx_bytes_kind_[kind]->add(wire);

  const size_t fragments = fragments_for(payload ? payload->size() : 0);
  auto members = channel_members_.find(channel);
  if (members == channel_members_.end()) return true;

  // Fan-out batching: receivers on identical paths (the common case — a
  // whole rack behind one switch) land at the same delivery time, so their
  // deliveries share one scheduled event instead of one closure per
  // receiver. Loss/jitter/duplicate draws stay per-receiver in member
  // order, exactly as an unbatched fan-out would draw them.
  struct DeliveryGroup {
    sim::Duration delay;
    std::vector<Packet> packets;
  };
  std::vector<DeliveryGroup> groups;  // first-seen delay order
  for (HostId receiver : members->second) {
    if (receiver == from) continue;
    PathInfo path = topology_.path(from, receiver);
    if (!path.reachable || path.router_hops + 1 > static_cast<int>(ttl)) {
      continue;  // out of TTL scope: routers discarded the packet
    }
    Packet packet;
    packet.from = Address{from, 0};
    packet.to = Address{receiver, port};
    packet.kind = DeliveryKind::kMulticast;
    packet.channel = channel;
    packet.ttl = ttl;
    packet.payload = payload;
    packet.wire_bytes = wire;
    packet.sent_at = sim_.now();

    FaultInjector::Verdict verdict;
    if (injector_ != nullptr) {
      verdict = injector_->verdict(packet);
    }
    if (verdict.cut || !survives(path, fragments, verdict.extra_loss)) {
      hosts_[receiver].counters.dropped_messages->add();
      total_.dropped_messages->add();
      continue;
    }

    sim::Duration base_delay =
        config_.min_delivery_delay + path.latency + egress_delay;
    if (path.min_bandwidth_bps > 0) {
      base_delay += static_cast<sim::Duration>(
          static_cast<double>(wire) * 8.0 / path.min_bandwidth_bps * 1e9);
    }
    base_delay += verdict.extra_delay;

    const int copies = 1 + std::max(0, verdict.duplicates);
    for (int copy = 0; copy < copies; ++copy) {
      sim::Duration delay = base_delay;
      if (verdict.jitter > 0) {
        delay += static_cast<sim::Duration>(
            sim_.rng().uniform_u64(static_cast<uint64_t>(verdict.jitter)));
      }
      DeliveryGroup* group = nullptr;
      for (auto& g : groups) {
        if (g.delay == delay) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(DeliveryGroup{delay, {}});
        group = &groups.back();
      }
      group->packets.push_back(packet);
    }
  }
  for (auto& group : groups) {
    auto batch = std::make_shared<std::vector<Packet>>(
        std::move(group.packets));
    sim_.schedule_after(group.delay, [this, batch] {
      for (Packet& packet : *batch) deliver(std::move(packet));
    });
  }
  return true;
}

VirtualIpId Network::allocate_virtual_ip() {
  virtual_ips_.push_back(kInvalidHost);
  return static_cast<VirtualIpId>(virtual_ips_.size() - 1);
}

void Network::assign_virtual_ip(VirtualIpId vip, HostId owner) {
  TAMP_CHECK(vip < virtual_ips_.size());
  virtual_ips_[vip] = owner;
}

HostId Network::virtual_ip_owner(VirtualIpId vip) const {
  TAMP_CHECK(vip < virtual_ips_.size());
  return virtual_ips_[vip];
}

bool Network::send_to_virtual(HostId from, VirtualIpId vip, Port port,
                              Payload payload) {
  HostId owner = virtual_ip_owner(vip);
  if (owner == kInvalidHost) return true;  // unowned VIP: packet vanishes
  return send_unicast(from, Address{owner, port}, std::move(payload));
}

void Network::set_host_up(HostId host, bool up) {
  TAMP_CHECK(host < hosts_.size());
  hosts_[host].up = up;
}

bool Network::host_up(HostId host) const {
  TAMP_CHECK(host < hosts_.size());
  return hosts_[host].up;
}

void Network::deliver(Packet packet) {
  HostState& receiver = hosts_[packet.to.host];
  if (!receiver.up) return;
  if (packet.kind == DeliveryKind::kMulticast &&
      !receiver.groups.contains(packet.channel)) {
    return;  // left the group while the packet was in flight
  }

  receiver.counters.rx_messages->add();
  receiver.counters.rx_wire_bytes->add(packet.wire_bytes);
  total_.rx_messages->add();
  total_.rx_wire_bytes->add(packet.wire_bytes);
  if (packet.kind == DeliveryKind::kMulticast) {
    receiver.counters.rx_multicast_messages->add();
    total_.rx_multicast_messages->add();
  }

  auto socket = receiver.sockets.find(packet.to.port);
  if (socket == receiver.sockets.end()) return;
  socket->second(packet);
}

}  // namespace tamp::net
