// The unit of delivery on the simulated network.
//
// Payload bytes are shared (not copied) across the receivers of a multicast
// fan-out. `wire_bytes` is what the bandwidth accounting charges: payload
// plus per-fragment UDP/IP/Ethernet overhead, matching how the paper counts
// heartbeat bandwidth on real links.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/ids.h"
#include "sim/time.h"

namespace tamp::net {

using Payload = std::shared_ptr<const std::vector<uint8_t>>;

inline Payload make_payload(std::vector<uint8_t> bytes) {
  return std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
}

enum class DeliveryKind : uint8_t { kUnicast, kMulticast };

struct Packet {
  Address from;
  Address to;               // for multicast: to.host is the receiver
  DeliveryKind kind = DeliveryKind::kUnicast;
  ChannelId channel = 0;    // multicast only
  uint8_t ttl = 0;          // TTL the sender used (multicast only)
  Payload payload;
  size_t wire_bytes = 0;    // payload + header overhead, all fragments
  sim::Time sent_at = 0;

  size_t size() const { return payload ? payload->size() : 0; }
  const uint8_t* data() const { return payload ? payload->data() : nullptr; }
};

}  // namespace tamp::net
