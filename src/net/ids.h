// Identifier types for the simulated network.
//
// Strong typedefs (enum-class-over-int style structs) would be heavier than
// needed here; we use distinct integer aliases plus a few wrapper structs
// where confusion is actually possible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace tamp::net {

// Index of a device (host, L2 switch, or router) in the Topology.
using DeviceId = uint32_t;
inline constexpr DeviceId kInvalidDevice = UINT32_MAX;

// Hosts are devices, but protocol code deals only in HostIds. A HostId is
// the DeviceId of a host device (the topology validates this).
using HostId = uint32_t;
inline constexpr HostId kInvalidHost = UINT32_MAX;

using LinkId = uint32_t;

// Multicast channel ("group address"). The hierarchical protocol derives one
// channel per tree level from a base channel: channel = base + level.
using ChannelId = uint32_t;

using Port = uint16_t;

// Datacenter label; hosts in different datacenters are joined by WAN links.
using DatacenterId = uint16_t;

// Virtual IPs support the proxy protocol's IP-failover: a stable address
// whose current owner can be reassigned (Section 3.2 of the paper).
using VirtualIpId = uint32_t;
inline constexpr VirtualIpId kInvalidVirtualIp = UINT32_MAX;

// (host, port) pair — the unicast address of a bound socket.
struct Address {
  HostId host = kInvalidHost;
  Port port = 0;

  bool operator==(const Address&) const = default;
};

}  // namespace tamp::net

template <>
struct std::hash<tamp::net::Address> {
  size_t operator()(const tamp::net::Address& a) const noexcept {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(a.host) << 16) |
                                 a.port);
  }
};
