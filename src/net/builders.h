// Canned topology builders used by tests, examples, and the evaluation
// harness.
//
// The paper's testbed is a rack-mounted cluster: hosts on 100 Mb L2 access
// switches, racks joined through an L3 core on gigabit uplinks, and (for the
// proxy experiments) two such clusters joined by a high-latency WAN path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.h"

namespace tamp::net {

struct ClusterLayout {
  DatacenterId dc = 0;
  std::vector<HostId> hosts;
  std::vector<std::vector<HostId>> racks;  // hosts grouped by rack
  std::vector<DeviceId> rack_switches;
  std::vector<LinkId> rack_uplinks;        // rack switch -> core, per rack
  DeviceId core_router = kInvalidDevice;
  // Every router the builder created, in creation order (chain: r0..rk-1;
  // racked: just the core; tree: preorder). Fault plans use this to pick
  // crash victims without knowing the shape.
  std::vector<DeviceId> routers;
};

struct RackedClusterParams {
  int racks = 5;
  int hosts_per_rack = 20;
  DatacenterId dc = 0;
  std::string name_prefix = "node";
  LinkParams access_link{50 * sim::kMicrosecond, 100e6, 0.0};   // host-switch
  LinkParams uplink{20 * sim::kMicrosecond, 1e9, 0.0};          // switch-core
};

// All hosts on one L2 switch: every pair is TTL 1 (a single level-0 group).
ClusterLayout build_single_segment(Topology& topology, int hosts,
                                   DatacenterId dc = 0,
                                   const std::string& name_prefix = "node");

// `racks` L2 switches under one L3 core router. Same rack: TTL 1; across
// racks: TTL 2. This reproduces the paper's evaluation layout (five networks
// of twenty nodes forming a second-level network).
ClusterLayout build_racked_cluster(Topology& topology,
                                   const RackedClusterParams& params);

// A deeper hierarchy: a complete `branching`-ary tree of routers of the
// given `depth`, with one leaf L2 switch + `hosts_per_leaf` hosts under each
// leaf router. Exercises >2 membership levels.
ClusterLayout build_router_tree(Topology& topology, int branching, int depth,
                                int hosts_per_leaf, DatacenterId dc = 0,
                                const std::string& name_prefix = "node");

// The general (non-tree-transitive) example of paper Figure 4: three
// segments A, B, C on a router chain Rb — Ra — Rc, so
// ttl(A,B) = ttl(A,C) = 3 but ttl(B,C) = 4, making level-2 groups overlap.
struct Fig4Layout {
  std::vector<HostId> segment_a;
  std::vector<HostId> segment_b;
  std::vector<HostId> segment_c;
  std::vector<HostId> all;
};
Fig4Layout build_fig4_overlap(Topology& topology, int hosts_per_segment = 2);

// A chain of routers R0 - R1 - ... - R(k-1), each with one L2 segment of
// hosts: the harshest overlap stress for TTL group formation, because
// ttl(i, j) = |i - j| + 2 makes every intermediate level's groups overlap
// (the general-topology case of paper Sec. 3.1.1, scaled up from Fig. 4).
ClusterLayout build_router_chain(Topology& topology, int segments,
                                 int hosts_per_segment, DatacenterId dc = 0,
                                 const std::string& name_prefix = "chain");

// Multiple racked clusters joined over a WAN: each cluster's core router
// attaches to a border router, and border routers are fully meshed with
// high-latency links (the paper's VPN-over-Internet, ~90 ms RTT coast to
// coast). Cross-DC host pairs need TTL >= 5, so an intra-DC MAX_TTL keeps
// the membership trees per-datacenter.
struct WanParams {
  LinkParams wan_link{45 * sim::kMillisecond, 100e6, 0.0};
  LinkParams border_link{100 * sim::kMicrosecond, 1e9, 0.0};
};
struct MultiDcLayout {
  std::vector<ClusterLayout> clusters;
  std::vector<DeviceId> border_routers;
  std::vector<LinkId> wan_links;
};
MultiDcLayout build_multi_datacenter(Topology& topology,
                                     const std::vector<RackedClusterParams>& dcs,
                                     const WanParams& wan = {});

}  // namespace tamp::net
