// Datagram transport over a Topology: lossy unreliable unicast (UDP-like)
// and TTL-scoped multicast, plus virtual-IP indirection for the proxy
// protocol's IP failover.
//
// Delivery semantics:
//  * A multicast packet sent on (channel, ttl) reaches every live host that
//    joined `channel` and is within `ttl` router-hops of the sender — the
//    scoping trick the whole hierarchical protocol is built on.
//  * Messages larger than the MTU fragment; the message is lost if any
//    fragment is lost (IP fragmentation semantics), and bandwidth is charged
//    per fragment.
//  * Per-host and global byte/packet counters feed the bandwidth figures.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ids.h"
#include "net/packet.h"
#include "net/topology.h"
#include "obs/obs.h"
#include "sim/simulation.h"

namespace tamp::net {

struct NetworkConfig {
  size_t mtu = 1500;                    // bytes of payload per fragment (IP)
  size_t per_fragment_overhead = 46;    // Ethernet(18) + IP(20) + UDP(8)
  double extra_loss = 0.0;              // loss injected on top of link loss
  sim::Duration min_delivery_delay = 5 * sim::kMicrosecond;
  // Per-host egress capacity model. A host's NIC serializes packets at
  // `egress_bytes_per_sec`; packets queue behind earlier ones (virtual-time
  // token accounting, no per-packet RNG) and a packet that would push the
  // queued backlog past `egress_queue_bytes` is dropped deterministically
  // at the sender — the saturation behavior recovery storms run into on
  // real NICs. 0 disables the rate (and with it the whole model); 0 for the
  // queue bound means rate-limited but never dropped.
  double egress_bytes_per_sec = 0.0;
  size_t egress_queue_bytes = 0;
};

// Fault-injection hook, consulted once for every datagram towards every
// receiver. The full packet is exposed so injectors can target by endpoint
// pair (directional by construction — a verdict for (a, b) says nothing
// about (b, a), which is what lets a FaultPlan express asymmetric
// partitions) or by content (e.g. drop exactly the first SyncResponse, for
// deterministic protocol-level loss tests). All randomness implied by a
// verdict (loss, jitter) is drawn from the simulation RNG, so injected
// chaos stays deterministic per seed.
class FaultInjector {
 public:
  struct Verdict {
    bool cut = false;               // directional blackhole: drop outright
    double extra_loss = 0.0;        // additional per-fragment loss prob
    sim::Duration extra_delay = 0;  // fixed added delivery latency
    sim::Duration jitter = 0;       // uniform extra delay in [0, jitter)
    int duplicates = 0;             // extra copies delivered (dup storm)
  };
  virtual ~FaultInjector() = default;
  virtual Verdict verdict(const Packet& packet) = 0;
};

// Attribution hook for per-wire-kind accounting: net/ cannot name the
// membership layer's message types, so whoever owns both layers (Cluster,
// MService) injects a payload classifier. Kind 0 is "unknown"; kinds must
// be dense in [0, kind_count).
struct WireClassifier {
  std::function<uint8_t(const uint8_t* data, size_t size)> classify;
  std::function<std::string(uint8_t kind)> name;  // metric-name suffix
  uint8_t kind_count = 1;
};

class Network {
 public:
  using RecvCallback = std::function<void(const Packet&)>;

  Network(sim::Simulation& sim, Topology& topology, NetworkConfig config = {});

  sim::Simulation& sim() { return sim_; }
  Topology& topology() { return topology_; }
  const NetworkConfig& config() const { return config_; }
  void set_extra_loss(double p) { config_.extra_loss = p; }

  // --- sockets ---------------------------------------------------------
  void bind(HostId host, Port port, RecvCallback callback);
  void unbind(HostId host, Port port);

  // --- multicast membership ---------------------------------------------
  void join_group(HostId host, ChannelId channel);
  void leave_group(HostId host, ChannelId channel);
  bool in_group(HostId host, ChannelId channel) const;

  // --- sending -----------------------------------------------------------
  // Returns false if the sender is down (nothing sent).
  bool send_unicast(HostId from, Address to, Payload payload);
  bool send_multicast(HostId from, ChannelId channel, uint8_t ttl, Port port,
                      Payload payload);

  // --- virtual IPs ---------------------------------------------------------
  VirtualIpId allocate_virtual_ip();
  // Reassign ownership (kInvalidHost releases it).
  void assign_virtual_ip(VirtualIpId vip, HostId owner);
  HostId virtual_ip_owner(VirtualIpId vip) const;
  bool send_to_virtual(HostId from, VirtualIpId vip, Port port,
                       Payload payload);

  // --- failure injection ----------------------------------------------------
  // A down host neither sends nor receives; its sockets and group
  // memberships are preserved and resume when it comes back up.
  void set_host_up(HostId host, bool up);
  bool host_up(HostId host) const;

  // Install a fault injector consulted on every (sender, receiver) delivery
  // attempt. Not owned; nullptr clears. With no injector installed the send
  // paths draw exactly the same RNG sequence as before the hook existed.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // --- observability ----------------------------------------------------
  // The network owns the process-wide observability pair: every daemon,
  // bench, and test already holds a Network&, so this is the one place the
  // registry and tracer can live without threading them through every
  // constructor in the tree.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  // Install the payload classifier used for per-kind tx / egress-drop
  // attribution. Idempotent; replacing an installed classifier with one
  // that produces the same kinds is a no-op in effect.
  void set_wire_classifier(WireClassifier classifier);

 private:
  // Cached registry handles for one accounting scope (a host, or the
  // network-wide totals under obs::kNoNode).
  struct TrafficCounters {
    obs::Counter* tx_messages = nullptr;
    obs::Counter* tx_wire_bytes = nullptr;
    obs::Counter* rx_messages = nullptr;
    obs::Counter* rx_wire_bytes = nullptr;
    obs::Counter* rx_multicast_messages = nullptr;
    obs::Counter* dropped_messages = nullptr;
    obs::Counter* tx_dropped_egress = nullptr;
  };

  struct HostState {
    bool up = true;
    std::unordered_map<Port, RecvCallback> sockets;
    std::unordered_set<ChannelId> groups;
    TrafficCounters counters;
    // Virtual time at which this host's NIC finishes serializing everything
    // already accepted for egress; the queue backlog is (free_at - now) in
    // bytes at the configured rate.
    sim::Time egress_free_at = 0;
  };

  // Per-channel membership index so multicast fan-out touches only the
  // subscribed hosts (a 4000-node cluster has thousands of hosts but each
  // hierarchical channel only ~20 members).
  std::unordered_map<ChannelId, std::vector<HostId>> channel_members_;

  size_t wire_bytes_for(size_t payload_size) const;
  size_t fragments_for(size_t payload_size) const;
  TrafficCounters resolve_counters(obs::NodeId node);
  uint8_t classify(const Payload& payload) const;
  // Applies path loss (per fragment) + configured extra loss + any
  // injector-imposed loss; true if delivered.
  bool survives(const PathInfo& path, size_t fragments, double injected_loss);
  // Egress admission: false means the packet exceeds the sender's NIC
  // queue and is dropped (deterministically — no RNG draw). On success,
  // `delay` is the serialization/queueing delay to add to every receiver's
  // delivery. Charged once per transmission (multicast is one NIC send).
  bool egress_admit(HostId from, size_t wire, sim::Duration& delay);
  // Queues the packet towards one receiver, applying the injector verdict
  // (cut / loss / delay / jitter / duplication). Shared by unicast and the
  // per-receiver multicast fan-out.
  void dispatch(Packet packet, const PathInfo& path, size_t fragments,
                sim::Duration egress_delay);
  void deliver(Packet packet);

  sim::Simulation& sim_;
  Topology& topology_;
  NetworkConfig config_;
  obs::Observability obs_;
  std::vector<HostState> hosts_;
  std::vector<HostId> virtual_ips_;
  FaultInjector* injector_ = nullptr;
  TrafficCounters total_;
  WireClassifier classifier_;
  // Per-kind totals, indexed by classifier kind (satellite attribution for
  // the egress capacity model: *what* was shed, not just how much).
  // tx_bytes_kind_ decomposes tx_wire_bytes the way tx_kind_ decomposes
  // tx_messages — named with a distinct prefix so counter_prefix_sum over
  // "tx_kind_" keeps summing message counts only.
  std::vector<obs::Counter*> tx_kind_;
  std::vector<obs::Counter*> tx_bytes_kind_;
  std::vector<obs::Counter*> egress_drop_kind_;
  std::vector<obs::Counter*> tx_down_kind_;
};

}  // namespace tamp::net
