#include "net/topology.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"

namespace tamp::net {

HostId Topology::add_host(const std::string& name, DatacenterId dc) {
  DeviceId id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{id, DeviceKind::kHost, name, dc});
  adjacency_.emplace_back();
  hosts_.push_back(id);
  mutated();
  return id;
}

DeviceId Topology::add_l2_switch(const std::string& name, DatacenterId dc) {
  DeviceId id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{id, DeviceKind::kL2Switch, name, dc});
  adjacency_.emplace_back();
  mutated();
  return id;
}

DeviceId Topology::add_router(const std::string& name, DatacenterId dc) {
  DeviceId id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{id, DeviceKind::kRouter, name, dc});
  adjacency_.emplace_back();
  mutated();
  return id;
}

LinkId Topology::connect(DeviceId a, DeviceId b, const LinkParams& params) {
  TAMP_CHECK(a < devices_.size() && b < devices_.size() && a != b);
  TAMP_CHECK_MSG(
      !(devices_[a].kind == DeviceKind::kHost &&
        devices_[b].kind == DeviceKind::kHost),
      "hosts must attach to a switch or router, not to each other");
  // Enforce single-homing at the mutation site, loudly: runtime rewiring
  // made the invariant mutable, so a violation must name its victim instead
  // of surfacing later as a silent routing assumption.
  for (DeviceId end : {a, b}) {
    if (devices_[end].kind == DeviceKind::kHost) {
      TAMP_CHECK_MSG(adjacency_[end].empty(),
                     "host '%s' already has an uplink: hosts must be "
                     "single-homed (use migrate_host to re-home it)",
                     devices_[end].name.c_str());
    }
  }
  LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b, params, true});
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  mutated();
  return id;
}

void Topology::set_link_up(LinkId link, bool up) {
  TAMP_CHECK(link < links_.size());
  if (links_[link].up != up) {
    links_[link].up = up;
    mutated();
  }
}

void Topology::set_device_up(DeviceId device, bool up) {
  TAMP_CHECK(device < devices_.size());
  TAMP_CHECK_MSG(devices_[device].kind != DeviceKind::kHost,
                 "set_device_up models infrastructure power state; host "
                 "'%s' up/down belongs to the Network",
                 devices_[device].name.c_str());
  if (devices_[device].up != up) {
    devices_[device].up = up;
    mutated();
  }
}

bool Topology::device_up(DeviceId device) const {
  TAMP_CHECK(device < devices_.size());
  return devices_[device].up;
}

void Topology::migrate_host(HostId host, DeviceId new_attach,
                            const LinkParams* params) {
  TAMP_CHECK(is_host(host));
  TAMP_CHECK(new_attach < devices_.size());
  TAMP_CHECK_MSG(devices_[new_attach].kind != DeviceKind::kHost,
                 "cannot migrate host '%s' onto host '%s': hosts attach to "
                 "a switch or router",
                 devices_[host].name.c_str(),
                 devices_[new_attach].name.c_str());
  const LinkId uplink = uplink_of(host);  // fatal (with name) if not single-homed
  Link& link = links_[uplink];
  const DeviceId old_attach = link.a == host ? link.b : link.a;
  if (old_attach != new_attach) {
    std::erase(adjacency_[old_attach], uplink);
    adjacency_[new_attach].push_back(uplink);
    link.a = host;
    link.b = new_attach;
  }
  if (params != nullptr) link.params = *params;
  mutated();
}

LinkId Topology::uplink_of(HostId host) const {
  TAMP_CHECK(is_host(host));
  // The physical cable, up or not (an unplugged host still has one) — the
  // compiled host_uplink_ only tracks *live* links.
  TAMP_CHECK_MSG(adjacency_[host].size() == 1,
                 "host '%s' has %zu uplinks: hosts must be single-homed",
                 devices_[host].name.c_str(), adjacency_[host].size());
  return adjacency_[host][0];
}

std::vector<LinkId> Topology::links_of(DeviceId device) const {
  TAMP_CHECK(device < devices_.size());
  return adjacency_[device];
}

const Device& Topology::device(DeviceId id) const {
  TAMP_CHECK(id < devices_.size());
  return devices_[id];
}

const Link& Topology::link(LinkId id) const {
  TAMP_CHECK(id < links_.size());
  return links_[id];
}

bool Topology::is_host(DeviceId id) const {
  return id < devices_.size() && devices_[id].kind == DeviceKind::kHost;
}

DatacenterId Topology::datacenter_of(HostId host) const {
  return device(host).dc;
}

std::vector<HostId> Topology::hosts_in_datacenter(DatacenterId dc) const {
  std::vector<HostId> out;
  for (HostId h : hosts_) {
    if (devices_[h].dc == dc) out.push_back(h);
  }
  return out;
}

void Topology::accumulate(InfraPath& acc, const LinkParams& link) {
  acc.latency += link.latency;
  acc.min_bandwidth_bps = acc.min_bandwidth_bps == 0
                              ? link.bandwidth_bps
                              : std::min(acc.min_bandwidth_bps,
                                         link.bandwidth_bps);
  acc.survival *= (1.0 - link.loss);
}

void Topology::compile() const {
  if (compiled_) return;

  // Host access links.
  host_uplink_.assign(devices_.size(), UINT32_MAX);
  host_attach_.assign(devices_.size(), kInvalidDevice);
  for (HostId h : hosts_) {
    int uplinks = 0;
    for (LinkId l : adjacency_[h]) {
      TAMP_CHECK_MSG(++uplinks <= 1,
                     "host '%s' has multiple uplinks: hosts must be "
                     "single-homed",
                     devices_[h].name.c_str());
      if (!link_live(links_[l])) continue;
      host_uplink_[h] = l;
      host_attach_[h] = links_[l].a == h ? links_[l].b : links_[l].a;
    }
  }

  // Dense index over infrastructure devices.
  infra_index_.assign(devices_.size(), kInvalidDevice);
  infra_devices_.clear();
  for (const Device& d : devices_) {
    if (d.kind != DeviceKind::kHost) {
      infra_index_[d.id] = static_cast<DeviceId>(infra_devices_.size());
      infra_devices_.push_back(d.id);
    }
  }

  // All-pairs shortest paths among infrastructure devices (Dijkstra on
  // latency with deterministic tie-breaking). `router_hops` counts router
  // devices on the path *including both endpoints*.
  const size_t n = infra_devices_.size();
  infra_matrix_.assign(n * n, InfraPath{});
  constexpr sim::Duration kInf = std::numeric_limits<sim::Duration>::max();
  for (size_t si = 0; si < n; ++si) {
    DeviceId source = infra_devices_[si];
    std::vector<sim::Duration> dist(n, kInf);
    std::vector<bool> done(n, false);
    auto& row = infra_matrix_;
    auto at = [&](size_t j) -> InfraPath& { return row[si * n + j]; };

    dist[si] = 0;
    at(si).reachable = true;
    at(si).router_hops =
        devices_[source].kind == DeviceKind::kRouter ? 1 : 0;
    at(si).survival = 1.0;

    using QueueEntry = std::pair<sim::Duration, size_t>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        frontier;
    frontier.push({0, si});
    while (!frontier.empty()) {
      auto [d, u] = frontier.top();
      frontier.pop();
      if (done[u] || d > dist[u]) continue;
      done[u] = true;
      for (LinkId l : adjacency_[infra_devices_[u]]) {
        const Link& link = links_[l];
        if (!link_live(link)) continue;
        DeviceId other = link.a == infra_devices_[u] ? link.b : link.a;
        if (devices_[other].kind == DeviceKind::kHost) continue;
        size_t v = infra_index_[other];
        sim::Duration nd = dist[u] + link.params.latency;
        if (nd < dist[v]) {
          dist[v] = nd;
          InfraPath next = at(u);
          accumulate(next, link.params);
          next.router_hops +=
              devices_[other].kind == DeviceKind::kRouter ? 1 : 0;
          next.reachable = true;
          at(v) = next;
          frontier.push({nd, v});
        }
      }
    }
  }
  compiled_ = true;
}

const Topology::InfraPath& Topology::infra_path(DeviceId a, DeviceId b) const {
  const size_t n = infra_devices_.size();
  return infra_matrix_[infra_index_[a] * n + infra_index_[b]];
}

PathInfo Topology::path(HostId a, HostId b) const {
  TAMP_CHECK(is_host(a) && is_host(b));
  PathInfo out;
  if (a == b) {
    out.reachable = true;
    return out;
  }
  compile();
  if (host_attach_[a] == kInvalidDevice || host_attach_[b] == kInvalidDevice) {
    return out;  // detached host
  }
  InfraPath acc{};
  acc.reachable = true;
  accumulate(acc, links_[host_uplink_[a]].params);
  if (host_attach_[a] == host_attach_[b]) {
    acc.router_hops =
        devices_[host_attach_[a]].kind == DeviceKind::kRouter ? 1 : 0;
  } else {
    const InfraPath& mid = infra_path(host_attach_[a], host_attach_[b]);
    if (!mid.reachable) return out;
    acc.latency += mid.latency;
    acc.survival *= mid.survival;
    acc.min_bandwidth_bps =
        acc.min_bandwidth_bps == 0
            ? mid.min_bandwidth_bps
            : (mid.min_bandwidth_bps == 0
                   ? acc.min_bandwidth_bps
                   : std::min(acc.min_bandwidth_bps, mid.min_bandwidth_bps));
    acc.router_hops = mid.router_hops;
  }
  accumulate(acc, links_[host_uplink_[b]].params);

  out.reachable = true;
  out.router_hops = acc.router_hops;
  out.latency = acc.latency;
  out.min_bandwidth_bps = acc.min_bandwidth_bps;
  out.survival = acc.survival;
  return out;
}

int Topology::ttl_required(HostId a, HostId b) const {
  if (a == b) return 0;
  PathInfo p = path(a, b);
  if (!p.reachable) return 0;
  return p.router_hops + 1;
}

int Topology::max_ttl() const {
  int best = 1;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    for (size_t j = i + 1; j < hosts_.size(); ++j) {
      best = std::max(best, ttl_required(hosts_[i], hosts_[j]));
    }
  }
  return best;
}

}  // namespace tamp::net
