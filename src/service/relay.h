// Cross-datacenter service invocation relay — the service-plane half of the
// membership proxy (paper Fig. 6):
//
//   (1) a consumer that found no local provider sends the request to a
//       local proxy;  (2) the proxy consults its remote availability
//   summaries and opens a connection to the chosen remote DC's virtual IP
//   (SYN/ACK handshake over the WAN, as a 2005 TCP stack would);  (3) the
//   remote proxy invokes the service through its own local consumer;
//   (4, 5) the response retraces the proxy pair;  (6) back to the caller.
//
// A request arriving with relay_hops == 0 must be served locally — stale
// summaries can never cause requests to ping-pong between datacenters.
#pragma once

#include <map>

#include "proxy/proxy.h"
#include "service/consumer.h"

namespace tamp::service {

struct RelayConfig {
  net::Port relay_port = kProxyRelayPort;
  sim::Duration handshake_timeout = 500 * sim::kMillisecond;
};

struct RelayStats {
  uint64_t relayed_out = 0;       // requests forwarded to a remote DC
  uint64_t served_for_remote = 0; // requests executed on behalf of remote DCs
  uint64_t rejected_no_remote = 0;
};

class ProxyRelay {
 public:
  // `proxy` supplies remote availability; `consumer` executes requests
  // locally on behalf of remote datacenters. Neither is owned.
  ProxyRelay(sim::Simulation& sim, net::Network& net, proxy::ProxyDaemon& proxy,
             ServiceConsumer& consumer, RelayConfig config = {});
  ~ProxyRelay();

  ProxyRelay(const ProxyRelay&) = delete;
  ProxyRelay& operator=(const ProxyRelay&) = delete;

  void start();
  void stop();

  net::HostId self() const { return proxy_.self(); }
  const RelayStats& stats() const { return stats_; }

 private:
  struct OutboundRelay {
    RequestMsg original;           // as received from the local consumer
    net::VirtualIpId remote_vip = net::kInvalidVirtualIp;
    sim::EventId handshake_timer = sim::kInvalidEventId;
  };

  void on_packet(const net::Packet& packet);
  void handle_local_request(const RequestMsg& request);
  void handle_remote_request(const RequestMsg& request);
  void reject(const RequestMsg& request, ResponseStatus status);

  sim::Simulation& sim_;
  net::Network& net_;
  proxy::ProxyDaemon& proxy_;
  ServiceConsumer& consumer_;
  RelayConfig config_;
  bool running_ = false;
  // conn_id (== request id) -> half-open outbound relay awaiting RelayAck.
  std::map<uint64_t, OutboundRelay> handshakes_;
  // request id -> reply address of the original requester.
  std::map<uint64_t, net::Address> forwarded_;
  RelayStats stats_;
};

}  // namespace tamp::service
