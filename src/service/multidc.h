// Assembles the full two-(or more-)datacenter stack of the paper's proxy
// experiment: per-DC racked clusters joined by a WAN, a hierarchical
// membership cluster per DC, redundant membership proxies with a virtual IP
// each, and the cross-DC invocation relays. Used by the integration tests,
// the fig14 benchmark, and the multi_datacenter example.
#pragma once

#include <memory>
#include <vector>

#include "net/builders.h"
#include "protocols/cluster.h"
#include "proxy/proxy.h"
#include "service/relay.h"

namespace tamp::service {

struct MultiDcParams {
  std::vector<net::RackedClusterParams> dcs;  // one entry per datacenter
  int proxies_per_dc = 2;
  protocols::HierConfig hier;        // hier.max_ttl must stay intra-DC
  sim::Duration proxy_period = sim::kSecond;
  net::WanParams wan;
};

// Reasonable two-DC default: east + west, 2 racks x 8 hosts each, 90 ms
// coast-to-coast RTT.
MultiDcParams default_two_dc_params();

class MultiDcHarness {
 public:
  MultiDcHarness(sim::Simulation& sim, MultiDcParams params);

  void start();
  void stop();

  size_t dc_count() const { return clusters_.size(); }
  net::Topology& topology() { return topology_; }
  net::Network& network() { return *network_; }
  const net::MultiDcLayout& layout() const { return layout_; }
  protocols::Cluster& cluster(size_t dc) { return *clusters_[dc]; }
  net::VirtualIpId vip(size_t dc) const { return vips_[dc]; }
  proxy::ProxyDaemon& proxy(size_t dc, int index) {
    return *proxies_[dc][static_cast<size_t>(index)];
  }
  int proxies_per_dc() const { return params_.proxies_per_dc; }

  // The current proxy leader of a DC (nullptr when none claims the role).
  proxy::ProxyDaemon* proxy_leader(size_t dc);

  // Cluster index (within dc's cluster) of the i-th proxy host.
  size_t proxy_cluster_index(size_t dc, int index) const;

 private:
  sim::Simulation& sim_;
  MultiDcParams params_;
  net::Topology topology_;
  net::MultiDcLayout layout_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<protocols::Cluster>> clusters_;
  std::vector<net::VirtualIpId> vips_;
  std::vector<std::vector<std::unique_ptr<proxy::ProxyDaemon>>> proxies_;
  std::vector<std::vector<std::unique_ptr<ServiceConsumer>>> relay_consumers_;
  std::vector<std::vector<std::unique_ptr<ProxyRelay>>> relays_;
};

}  // namespace tamp::service
