#include "service/provider.h"

#include <algorithm>

namespace tamp::service {

ServiceProvider::ServiceProvider(sim::Simulation& sim, net::Network& net,
                                 protocols::MembershipDaemon& membership,
                                 ProviderConfig config)
    : sim_(sim), net_(net), membership_(membership), config_(config) {}

ServiceProvider::~ServiceProvider() { stop(); }

void ServiceProvider::host_service(const std::string& name,
                                   const std::vector<int>& partitions,
                                   std::map<std::string, std::string> params) {
  hosted_[name] = partitions;
  membership_.register_service(name, partitions, std::move(params));
}

void ServiceProvider::start() {
  if (running_) return;
  running_ = true;
  alive_ = std::make_shared<bool>(true);
  net_.bind(self(), config_.port,
            [this](const net::Packet& p) { on_packet(p); });
}

void ServiceProvider::stop() {
  if (!running_) return;
  net_.unbind(self(), config_.port);
  alive_.reset();  // orphans in-service finish() events
  queue_.clear();
  active_ = 0;
  running_ = false;
}

bool ServiceProvider::hosts(const std::string& service, int partition) const {
  auto it = hosted_.find(service);
  if (it == hosted_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), partition) !=
         it->second.end();
}

void ServiceProvider::on_packet(const net::Packet& packet) {
  auto message = decode_service_message(packet);
  if (!message) return;

  if (auto* poll = std::get_if<LoadPollMsg>(&*message)) {
    LoadReplyMsg reply;
    reply.poll_id = poll->poll_id;
    reply.from = self();
    reply.load = current_load();
    net_.send_unicast(self(), net::Address{poll->from, poll->reply_port},
                      encode_service_message(reply));
    return;
  }

  auto* request = std::get_if<RequestMsg>(&*message);
  if (request == nullptr) return;

  if (!hosts(request->service, request->partition)) {
    ResponseMsg response;
    response.request_id = request->request_id;
    response.from = self();
    response.status = ResponseStatus::kNotHosted;
    net_.send_unicast(self(),
                      net::Address{request->reply_host, request->reply_port},
                      encode_service_message(response));
    return;
  }
  if (queue_.size() >= config_.max_queue) {
    ++rejected_;
    ResponseMsg response;
    response.request_id = request->request_id;
    response.from = self();
    response.status = ResponseStatus::kOverloaded;
    net_.send_unicast(self(),
                      net::Address{request->reply_host, request->reply_port},
                      encode_service_message(response));
    return;
  }
  queue_.push_back(*request);
  maybe_dispatch();
}

void ServiceProvider::maybe_dispatch() {
  while (active_ < config_.concurrency && !queue_.empty()) {
    RequestMsg request = queue_.front();
    queue_.pop_front();
    ++active_;
    sim::Duration service_time = static_cast<sim::Duration>(
        sim_.rng().exponential(
            static_cast<double>(config_.mean_service_time)));
    sim_.schedule_after(service_time,
                        [this, request,
                         alive = std::weak_ptr<bool>(alive_)] {
                          if (alive.expired()) return;
                          finish(request);
                        });
  }
}

void ServiceProvider::finish(const RequestMsg& request) {
  --active_;
  if (running_) {
    ++served_;
    ResponseMsg response;
    response.request_id = request.request_id;
    response.from = self();
    response.status = ResponseStatus::kOk;
    response.payload_bytes = request.response_bytes;
    net_.send_unicast(self(),
                      net::Address{request.reply_host, request.reply_port},
                      encode_service_message(response));
  }
  maybe_dispatch();
}

}  // namespace tamp::service
