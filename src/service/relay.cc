#include "service/relay.h"

#include "util/check.h"
#include "util/logging.h"

namespace tamp::service {

ProxyRelay::ProxyRelay(sim::Simulation& sim, net::Network& net,
                       proxy::ProxyDaemon& proxy, ServiceConsumer& consumer,
                       RelayConfig config)
    : sim_(sim),
      net_(net),
      proxy_(proxy),
      consumer_(consumer),
      config_(config) {
  // The relay's local consumer must never fall back to the proxy itself,
  // or a stale summary could bounce a request between datacenters forever.
  TAMP_CHECK(!consumer_.config().proxy_fallback);
}

ProxyRelay::~ProxyRelay() { stop(); }

void ProxyRelay::start() {
  if (running_) return;
  running_ = true;
  net_.bind(self(), config_.relay_port,
            [this](const net::Packet& p) { on_packet(p); });
}

void ProxyRelay::stop() {
  if (!running_) return;
  for (auto& [id, relay] : handshakes_) sim_.cancel(relay.handshake_timer);
  handshakes_.clear();
  forwarded_.clear();
  net_.unbind(self(), config_.relay_port);
  running_ = false;
}

void ProxyRelay::reject(const RequestMsg& request, ResponseStatus status) {
  ResponseMsg response;
  response.request_id = request.request_id;
  response.from = self();
  response.status = status;
  net_.send_unicast(self(),
                    net::Address{request.reply_host, request.reply_port},
                    encode_service_message(response));
}

void ProxyRelay::on_packet(const net::Packet& packet) {
  auto message = decode_service_message(packet);
  if (!message) return;

  if (auto* request = std::get_if<RequestMsg>(&*message)) {
    if (request->relay_hops > 0) {
      handle_local_request(*request);
    } else {
      handle_remote_request(*request);
    }
    return;
  }

  if (auto* syn = std::get_if<RelaySynMsg>(&*message)) {
    RelayAckMsg ack;
    ack.conn_id = syn->conn_id;
    ack.from = self();
    net_.send_unicast(self(), net::Address{syn->from, config_.relay_port},
                      encode_service_message(ack));
    return;
  }

  if (auto* ack = std::get_if<RelayAckMsg>(&*message)) {
    auto it = handshakes_.find(ack->conn_id);
    if (it == handshakes_.end()) return;
    OutboundRelay relay = std::move(it->second);
    sim_.cancel(relay.handshake_timer);
    handshakes_.erase(it);

    // Connection is up: ship the request with ourselves as the reply hop.
    RequestMsg forwarded = relay.original;
    forwarded.relay_hops = relay.original.relay_hops - 1;
    forwarded.reply_host = self();
    forwarded.reply_port = config_.relay_port;
    forwarded_[forwarded.request_id] =
        net::Address{relay.original.reply_host, relay.original.reply_port};
    net_.send_to_virtual(self(), relay.remote_vip, config_.relay_port,
                         encode_service_message(forwarded));
    ++stats_.relayed_out;
    return;
  }

  if (auto* response = std::get_if<ResponseMsg>(&*message)) {
    // A remote datacenter finished a request we forwarded: relay the
    // result to the original caller (Fig. 6 steps 5-6).
    auto it = forwarded_.find(response->request_id);
    if (it == forwarded_.end()) return;
    net::Address original = it->second;
    forwarded_.erase(it);
    net_.send_unicast(self(), original, encode_service_message(*response));
    return;
  }
}

void ProxyRelay::handle_local_request(const RequestMsg& request) {
  auto remote_dcs =
      proxy_.lookup_remote(request.service, request.partition);
  if (remote_dcs.empty()) {
    ++stats_.rejected_no_remote;
    reject(request, ResponseStatus::kUnavailable);
    return;
  }
  net::DatacenterId dc =
      remote_dcs[sim_.rng().uniform_u64(remote_dcs.size())];
  auto vip = proxy_.config().remote_vips.find(dc);
  if (vip == proxy_.config().remote_vips.end()) {
    ++stats_.rejected_no_remote;
    reject(request, ResponseStatus::kUnavailable);
    return;
  }

  OutboundRelay relay;
  relay.original = request;
  relay.remote_vip = vip->second;
  uint64_t conn_id = request.request_id;
  relay.handshake_timer =
      sim_.schedule_after(config_.handshake_timeout, [this, conn_id] {
        auto it = handshakes_.find(conn_id);
        if (it == handshakes_.end()) return;
        RequestMsg original = it->second.original;
        handshakes_.erase(it);
        reject(original, ResponseStatus::kUnavailable);
      });
  handshakes_.emplace(conn_id, std::move(relay));

  RelaySynMsg syn;
  syn.conn_id = conn_id;
  syn.from = self();
  net_.send_to_virtual(self(), vip->second, config_.relay_port,
                       encode_service_message(syn));
}

void ProxyRelay::handle_remote_request(const RequestMsg& request) {
  ++stats_.served_for_remote;
  net::Address reply{request.reply_host, request.reply_port};
  uint64_t id = request.request_id;
  uint32_t response_bytes = request.response_bytes;
  consumer_.invoke(
      request.service, request.partition, request.request_bytes,
      request.response_bytes,
      [this, id, reply, response_bytes](const InvokeResult& result) {
        ResponseMsg response;
        response.request_id = id;
        response.from = self();
        response.status = to_response_status(result.cause);
        response.payload_bytes = result.ok() ? response_bytes : 0;
        net_.send_unicast(self(), reply, encode_service_message(response));
      });
}

}  // namespace tamp::service
