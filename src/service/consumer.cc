#include "service/consumer.h"

#include <algorithm>

#include "proxy/proxy.h"
#include "util/strings.h"

namespace tamp::service {

ConsumerConfigBuilder& ConsumerConfigBuilder::replace(ConsumerConfig config) {
  config_ = config;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::reply_port(net::Port port) {
  config_.reply_port = port;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::provider_port(net::Port port) {
  config_.provider_port = port;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::relay_port(net::Port port) {
  config_.relay_port = port;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::poll_candidates(int candidates) {
  config_.poll_candidates = candidates;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::poll_timeout(
    sim::Duration timeout) {
  config_.poll_timeout = timeout;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::request_timeout(
    sim::Duration timeout) {
  config_.request_timeout = timeout;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::relay_timeout(
    sim::Duration timeout) {
  config_.relay_timeout = timeout;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::max_attempts(int attempts) {
  config_.max_attempts = attempts;
  return *this;
}

ConsumerConfigBuilder& ConsumerConfigBuilder::proxy_fallback(bool enabled) {
  config_.proxy_fallback = enabled;
  return *this;
}

api::Status ConsumerConfigBuilder::Build(ConsumerConfig* out) const {
  if (config_.poll_candidates < 1 || config_.poll_candidates > 16) {
    return api::Status::Error("poll_candidates must be in [1, 16], got " +
                              std::to_string(config_.poll_candidates));
  }
  if (config_.max_attempts < 1 || config_.max_attempts > 16) {
    return api::Status::Error("max_attempts must be in [1, 16], got " +
                              std::to_string(config_.max_attempts));
  }
  if (config_.poll_timeout <= 0) {
    return api::Status::Error("poll_timeout must be positive");
  }
  if (config_.request_timeout <= 0) {
    return api::Status::Error("request_timeout must be positive");
  }
  if (config_.relay_timeout <= 0) {
    return api::Status::Error("relay_timeout must be positive");
  }
  if (config_.reply_port == config_.provider_port) {
    return api::Status::Error(
        "reply_port must differ from provider_port (both " +
        std::to_string(config_.reply_port) + ")");
  }
  if (config_.reply_port == config_.relay_port) {
    return api::Status::Error("reply_port must differ from relay_port (both " +
                              std::to_string(config_.reply_port) + ")");
  }
  *out = config_;
  return api::Status::Ok();
}

const char* failure_cause_name(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone:
      return "ok";
    case FailureCause::kStaleDirectory:
      return "stale_directory";
    case FailureCause::kProviderDead:
      return "provider_dead";
    case FailureCause::kOverloaded:
      return "overloaded";
    case FailureCause::kNoProvider:
      return "no_provider";
    case FailureCause::kTimeout:
      return "timeout";
    case FailureCause::kProxyRelay:
      return "proxy_relay";
    case FailureCause::kCount:
      break;
  }
  return "?";
}

ResponseStatus to_response_status(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone:
      return ResponseStatus::kOk;
    case FailureCause::kStaleDirectory:
      return ResponseStatus::kNotHosted;
    case FailureCause::kOverloaded:
      return ResponseStatus::kOverloaded;
    default:
      return ResponseStatus::kUnavailable;
  }
}

ServiceConsumer::ServiceConsumer(sim::Simulation& sim, net::Network& net,
                                 protocols::MembershipDaemon& membership,
                                 ConsumerConfig config)
    : sim_(sim), net_(net), membership_(membership), config_(config) {}

ServiceConsumer::~ServiceConsumer() { stop(); }

void ServiceConsumer::start() {
  if (running_) return;
  running_ = true;
  net_.bind(self(), config_.reply_port,
            [this](const net::Packet& p) { on_packet(p); });
}

void ServiceConsumer::stop() {
  if (!running_) return;
  for (auto& [id, pending] : pending_) {
    sim_.cancel(pending.poll_timer);
    sim_.cancel(pending.request_timer);
  }
  pending_.clear();
  poll_to_request_.clear();
  net_.unbind(self(), config_.reply_port);
  running_ = false;
}

uint64_t ServiceConsumer::next_id() {
  // Globally unique across consumers: high bits carry the node id, so a
  // proxy relaying many consumers' requests never sees a collision.
  return (static_cast<uint64_t>(self()) << 32) | ++next_id_counter_;
}

void ServiceConsumer::invoke(const std::string& service, int partition,
                             uint32_t request_bytes, uint32_t response_bytes,
                             Callback callback) {
  Pending pending;
  pending.id = next_id();
  pending.service = service;
  pending.partition = partition;
  pending.request_bytes = request_bytes;
  pending.response_bytes = response_bytes;
  pending.callback = std::move(callback);
  pending.started = sim_.now();
  uint64_t id = pending.id;
  pending_.emplace(id, std::move(pending));
  attempt(id);
}

std::vector<net::HostId> ServiceConsumer::live_candidates(
    const Pending& pending) const {
  std::vector<net::HostId> candidates;
  auto matches = membership_.table().lookup(
      pending.service, std::to_string(pending.partition));
  for (const auto* entry : matches) {
    net::HostId host = entry->data.node;
    if (host == self()) continue;  // self-dispatch is not modeled
    if (std::find(pending.tried.begin(), pending.tried.end(), host) !=
        pending.tried.end()) {
      continue;
    }
    candidates.push_back(host);
  }
  return candidates;
}

void ServiceConsumer::attempt(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;

  if (pending.attempts >= config_.max_attempts) {
    attempt_proxy(pending);
    return;
  }
  ++pending.attempts;

  auto candidates = live_candidates(pending);
  if (candidates.empty()) {
    attempt_proxy(pending);
    return;
  }
  pending.saw_candidates = true;
  if (candidates.size() == 1) {
    dispatch(pending, candidates[0]);
    return;
  }
  sim_.rng().shuffle(candidates);
  candidates.resize(std::min<size_t>(
      candidates.size(), static_cast<size_t>(config_.poll_candidates)));
  start_poll(pending, std::move(candidates));
}

void ServiceConsumer::start_poll(Pending& pending,
                                 std::vector<net::HostId> candidates) {
  pending.poll_id = next_id();
  pending.poll_replies.clear();
  pending.polls_outstanding = static_cast<int>(candidates.size());
  poll_to_request_[pending.poll_id] = pending.id;

  LoadPollMsg poll;
  poll.poll_id = pending.poll_id;
  poll.from = self();
  poll.reply_port = config_.reply_port;
  auto payload = encode_service_message(poll);
  for (net::HostId host : candidates) {
    net_.send_unicast(self(), net::Address{host, config_.provider_port},
                      payload);
  }
  uint64_t id = pending.id;
  pending.poll_timer =
      sim_.schedule_after(config_.poll_timeout, [this, id] {
        poll_deadline(id);
      });
}

void ServiceConsumer::poll_deadline(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  pending.poll_timer = sim::kInvalidEventId;
  poll_to_request_.erase(pending.poll_id);

  // Every silent probe target is a directory row that pointed at a replica
  // no longer answering — the misroute cost of a stale view.
  pending.misroutes += pending.polls_outstanding -
                       static_cast<int>(pending.poll_replies.size());
  if (pending.poll_replies.empty()) {
    // Every probed replica is silent — likely dead. Retry with others.
    attempt(id);
    return;
  }
  auto best = std::min_element(
      pending.poll_replies.begin(), pending.poll_replies.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  dispatch(pending, best->first);
}

void ServiceConsumer::dispatch(Pending& pending, net::HostId target) {
  pending.target = target;
  pending.tried.push_back(target);

  RequestMsg request;
  request.request_id = pending.id;
  request.reply_host = self();
  request.reply_port = config_.reply_port;
  request.service = pending.service;
  request.partition = pending.partition;
  request.request_bytes = pending.request_bytes;
  request.response_bytes = pending.response_bytes;
  net_.send_unicast(self(), net::Address{target, config_.provider_port},
                    encode_service_message(request));

  uint64_t id = pending.id;
  sim_.cancel(pending.request_timer);
  pending.request_timer =
      sim_.schedule_after(config_.request_timeout, [this, id] {
        request_deadline(id);
      });
}

void ServiceConsumer::request_deadline(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.request_timer = sim::kInvalidEventId;
  ++it->second.misroutes;  // dispatched to a silent (dead) target
  attempt(id);  // target silent: try the next replica
}

FailureCause ServiceConsumer::classify_failure(const Pending& pending) {
  // Explicit protocol evidence first, then inference from silence.
  if (pending.saw_not_hosted) return FailureCause::kStaleDirectory;
  if (pending.misroutes > 0) return FailureCause::kProviderDead;
  if (pending.saw_overload) return FailureCause::kOverloaded;
  if (!pending.saw_candidates) return FailureCause::kNoProvider;
  return FailureCause::kTimeout;
}

void ServiceConsumer::attempt_proxy(Pending& pending) {
  if (!config_.proxy_fallback || pending.via_proxy) {
    InvokeResult result;
    result.cause = pending.via_proxy ? FailureCause::kProxyRelay
                                     : classify_failure(pending);
    result.attempts = pending.attempts;
    result.via_proxy = pending.via_proxy;
    result.misroutes = pending.misroutes;
    finish(pending.id, result);
    return;
  }
  auto proxies = membership_.table().lookup(proxy::kProxyServiceName, "*");
  std::vector<net::HostId> hosts;
  for (const auto* entry : proxies) {
    if (entry->data.node != self()) hosts.push_back(entry->data.node);
  }
  if (hosts.empty()) {
    InvokeResult result;
    result.cause = classify_failure(pending);
    result.attempts = pending.attempts;
    result.misroutes = pending.misroutes;
    finish(pending.id, result);
    return;
  }
  pending.via_proxy = true;
  net::HostId proxy_host = sim_.rng().pick(hosts);

  RequestMsg request;
  request.request_id = pending.id;
  request.reply_host = self();
  request.reply_port = config_.reply_port;
  request.service = pending.service;
  request.partition = pending.partition;
  request.request_bytes = pending.request_bytes;
  request.response_bytes = pending.response_bytes;
  request.relay_hops = 1;
  net_.send_unicast(self(), net::Address{proxy_host, config_.relay_port},
                    encode_service_message(request));

  uint64_t id = pending.id;
  sim_.cancel(pending.request_timer);
  pending.request_timer =
      sim_.schedule_after(config_.relay_timeout, [this, id] {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        InvokeResult result;
        result.cause = FailureCause::kProxyRelay;
        result.attempts = it->second.attempts;
        result.via_proxy = true;
        result.misroutes = it->second.misroutes;
        finish(id, result);
      });
}

void ServiceConsumer::finish(uint64_t id, const InvokeResult& result) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  sim_.cancel(pending.poll_timer);
  sim_.cancel(pending.request_timer);
  poll_to_request_.erase(pending.poll_id);
  pending_.erase(it);

  InvokeResult final_result = result;
  final_result.latency = sim_.now() - pending.started;
  pending.callback(final_result);
}

void ServiceConsumer::on_packet(const net::Packet& packet) {
  auto message = decode_service_message(packet);
  if (!message) return;

  if (auto* reply = std::get_if<LoadReplyMsg>(&*message)) {
    auto mapping = poll_to_request_.find(reply->poll_id);
    if (mapping == poll_to_request_.end()) return;
    auto it = pending_.find(mapping->second);
    if (it == pending_.end()) return;
    Pending& pending = it->second;
    pending.poll_replies.emplace_back(reply->from, reply->load);
    if (static_cast<int>(pending.poll_replies.size()) >=
        pending.polls_outstanding) {
      sim_.cancel(pending.poll_timer);
      pending.poll_timer = sim::kInvalidEventId;
      poll_to_request_.erase(pending.poll_id);
      auto best = std::min_element(
          pending.poll_replies.begin(), pending.poll_replies.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      dispatch(pending, best->first);
    }
    return;
  }

  if (auto* response = std::get_if<ResponseMsg>(&*message)) {
    auto it = pending_.find(response->request_id);
    if (it == pending_.end()) return;
    Pending& pending = it->second;
    switch (response->status) {
      case ResponseStatus::kOk: {
        InvokeResult result;
        result.cause = FailureCause::kNone;
        result.server = response->from;
        result.attempts = pending.attempts;
        result.via_proxy = pending.via_proxy;
        result.misroutes = pending.misroutes;
        finish(response->request_id, result);
        return;
      }
      case ResponseStatus::kNotHosted:
      case ResponseStatus::kOverloaded: {
        if (response->status == ResponseStatus::kNotHosted) {
          // The provider is alive but never (or no longer) hosts this
          // partition: the directory row that routed us here was stale.
          pending.saw_not_hosted = true;
          ++pending.misroutes;
        } else {
          pending.saw_overload = true;
        }
        if (pending.via_proxy) {
          InvokeResult result;
          result.cause = FailureCause::kProxyRelay;
          result.attempts = pending.attempts;
          result.via_proxy = true;
          result.misroutes = pending.misroutes;
          finish(response->request_id, result);
          return;
        }
        sim_.cancel(pending.request_timer);
        pending.request_timer = sim::kInvalidEventId;
        attempt(response->request_id);
        return;
      }
      case ResponseStatus::kUnavailable: {
        InvokeResult result;
        result.cause = pending.via_proxy ? FailureCause::kProxyRelay
                                         : FailureCause::kProviderDead;
        result.attempts = pending.attempts;
        result.via_proxy = pending.via_proxy;
        result.misroutes = pending.misroutes;
        finish(response->request_id, result);
        return;
      }
    }
  }
}

}  // namespace tamp::service
