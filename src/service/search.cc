#include "service/search.h"

#include "util/check.h"

namespace tamp::service {

SearchGateway::SearchGateway(sim::Simulation& sim, net::Network& net,
                             protocols::MembershipDaemon& membership,
                             const SearchParams& params)
    : sim_(sim),
      params_(params),
      consumer_(sim, net, membership, params.consumer) {}

void SearchGateway::query(Callback callback) {
  auto state = std::make_shared<QueryState>();
  state->callback = std::move(callback);
  state->started = sim_.now();
  state->outstanding = params_.index_partitions;

  // Phase 1 (Fig. 1 step 2): all index partitions in parallel.
  for (int partition = 0; partition < params_.index_partitions; ++partition) {
    consumer_.invoke(
        kIndexService, partition, params_.query_bytes,
        params_.index_response_bytes,
        [this, state](const InvokeResult& result) {
          if (!result.ok()) state->failed = true;
          if (result.via_proxy) state->used_proxy = true;
          if (--state->outstanding > 0) return;
          if (state->failed) {
            QueryResult out;
            out.latency = sim_.now() - state->started;
            out.used_proxy = state->used_proxy;
            state->callback(out);
            return;
          }
          start_doc_phase(state);
        });
  }
}

void SearchGateway::start_doc_phase(std::shared_ptr<QueryState> state) {
  // Phase 2 (Fig. 1 step 3): translate document ids on all doc partitions.
  state->outstanding = params_.doc_partitions;
  for (int partition = 0; partition < params_.doc_partitions; ++partition) {
    consumer_.invoke(
        kDocService, partition, params_.doc_request_bytes,
        params_.doc_response_bytes,
        [this, state](const InvokeResult& result) {
          if (!result.ok()) state->failed = true;
          if (result.via_proxy) state->used_proxy = true;
          if (--state->outstanding > 0) return;
          QueryResult out;
          out.ok = !state->failed;
          out.latency = sim_.now() - state->started;
          out.used_proxy = state->used_proxy;
          state->callback(out);
        });
  }
}

SearchDeployment::SearchDeployment(sim::Simulation& sim, net::Network& net,
                                   protocols::Cluster& cluster,
                                   SearchParams params)
    : sim_(sim), net_(net), cluster_(cluster), params_(params) {
  const size_t hosts = cluster_.size();
  TAMP_CHECK(hosts > static_cast<size_t>(params_.gateways) + 1);

  for (int g = 0; g < params_.gateways; ++g) {
    gateways_.push_back(std::make_unique<SearchGateway>(
        sim_, net_, cluster_.daemon(static_cast<size_t>(g)), params_));
  }

  // Round-robin partition replicas over the non-gateway hosts.
  size_t cursor = static_cast<size_t>(params_.gateways);
  auto next_host = [&] {
    size_t host = cursor;
    cursor = cursor + 1 < hosts ? cursor + 1
                                : static_cast<size_t>(params_.gateways);
    return host;
  };
  for (int partition = 0; partition < params_.index_partitions; ++partition) {
    for (int replica = 0; replica < params_.replicas; ++replica) {
      size_t host = next_host();
      placements_.push_back(
          {host, kIndexService, partition, params_.index_service_time});
      index_nodes_.push_back(host);
    }
  }
  for (int partition = 0; partition < params_.doc_partitions; ++partition) {
    for (int replica = 0; replica < params_.replicas; ++replica) {
      size_t host = next_host();
      placements_.push_back(
          {host, kDocService, partition, params_.doc_service_time});
      doc_nodes_.push_back(host);
    }
  }
}

void SearchDeployment::start() {
  // A host can appear in several placements (small clusters): merge them
  // into one provider per host so the port binds once.
  std::map<size_t, std::vector<const Placement*>> by_host;
  for (const auto& placement : placements_) {
    by_host[placement.cluster_index].push_back(&placement);
  }
  for (const auto& [host, list] : by_host) {
    (void)list;
    restart_providers_on(host);
  }
  for (auto& gateway : gateways_) gateway->start();
}

void SearchDeployment::stop() {
  for (auto& gateway : gateways_) gateway->stop();
  for (auto& [host, provider] : providers_) provider->stop();
}

std::vector<SearchGateway*> SearchDeployment::gateways() {
  std::vector<SearchGateway*> out;
  for (auto& gateway : gateways_) out.push_back(gateway.get());
  return out;
}

void SearchDeployment::restart_providers_on(size_t cluster_index) {
  std::map<std::string, std::vector<int>> merged;
  sim::Duration service_time = 0;
  for (const auto& placement : placements_) {
    if (placement.cluster_index == cluster_index) {
      merged[placement.service].push_back(placement.partition);
      service_time = placement.service_time;
    }
  }
  if (merged.empty()) return;
  // Tear down the previous incarnation's provider (releases the port).
  auto existing = providers_.find(cluster_index);
  if (existing != providers_.end()) {
    existing->second->stop();
    providers_.erase(existing);
  }
  ProviderConfig config;
  config.mean_service_time = service_time;
  auto provider = std::make_unique<ServiceProvider>(
      sim_, net_, cluster_.daemon(cluster_index), config);
  for (const auto& [service, partitions] : merged) {
    provider->host_service(service, partitions);
  }
  provider->start();
  providers_.emplace(cluster_index, std::move(provider));
}

SearchWorkload::SearchWorkload(sim::Simulation& sim,
                               std::vector<SearchGateway*> gateways,
                               double rate_qps)
    : sim_(sim),
      gateways_(std::move(gateways)),
      rate_qps_(rate_qps),
      arrival_timer_(sim, [this] { schedule_next(); }) {
  TAMP_CHECK(!gateways_.empty() && rate_qps_ > 0);
}

SearchWorkload::Bucket& SearchWorkload::bucket_at(sim::Time t) {
  size_t second = static_cast<size_t>(t / sim::kSecond);
  if (buckets_.size() <= second) buckets_.resize(second + 1);
  return buckets_[second];
}

void SearchWorkload::run_for(sim::Duration duration) {
  end_ = sim_.now() + duration;
  schedule_next();
}

void SearchWorkload::schedule_next() {
  if (sim_.now() >= end_) return;
  // Fire one arrival now, then draw the next inter-arrival gap.
  bucket_at(sim_.now()).arrived += 1;
  SearchGateway* gateway =
      gateways_[sim_.rng().uniform_u64(gateways_.size())];
  gateway->query([this](const QueryResult& result) {
    Bucket& bucket = bucket_at(sim_.now());
    if (result.ok) {
      bucket.completed += 1;
      bucket.latency_ms_sum += sim::to_millis(result.latency);
      latencies_.add(sim::to_millis(result.latency));
      ++completed_;
    } else {
      bucket.failed += 1;
      ++failed_;
    }
  });
  auto gap = static_cast<sim::Duration>(
      sim_.rng().exponential(1e9 / rate_qps_));
  arrival_timer_.restart(gap);
}

}  // namespace tamp::service
