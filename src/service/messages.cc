#include "service/messages.h"

#include "net/buffer_pool.h"

namespace tamp::service {

using membership::WireReader;
using membership::WireWriter;

namespace {

struct Encoder {
  WireWriter& w;
  size_t pad = 0;

  void operator()(const LoadPollMsg& m) {
    w.u8(static_cast<uint8_t>(ServiceMsgType::kLoadPoll));
    w.u64(m.poll_id);
    w.u32(m.from);
    w.u16(m.reply_port);
  }
  void operator()(const LoadReplyMsg& m) {
    w.u8(static_cast<uint8_t>(ServiceMsgType::kLoadReply));
    w.u64(m.poll_id);
    w.u32(m.from);
    w.u32(m.load);
  }
  void operator()(const RequestMsg& m) {
    w.u8(static_cast<uint8_t>(ServiceMsgType::kRequest));
    w.u64(m.request_id);
    w.u32(m.reply_host);
    w.u16(m.reply_port);
    w.str(m.service);
    w.varint(static_cast<uint64_t>(m.partition));
    w.u32(m.request_bytes);
    w.u32(m.response_bytes);
    w.u8(m.relay_hops);
    pad = m.request_bytes;  // body is simulated as padding
  }
  void operator()(const ResponseMsg& m) {
    w.u8(static_cast<uint8_t>(ServiceMsgType::kResponse));
    w.u64(m.request_id);
    w.u32(m.from);
    w.u8(static_cast<uint8_t>(m.status));
    w.u32(m.payload_bytes);
    pad = m.payload_bytes;
  }
  void operator()(const RelaySynMsg& m) {
    w.u8(static_cast<uint8_t>(ServiceMsgType::kRelaySyn));
    w.u64(m.conn_id);
    w.u32(m.from);
  }
  void operator()(const RelayAckMsg& m) {
    w.u8(static_cast<uint8_t>(ServiceMsgType::kRelayAck));
    w.u64(m.conn_id);
    w.u32(m.from);
  }
};

}  // namespace

net::Payload encode_service_message(const ServiceMessage& message) {
  WireWriter w(net::acquire_buffer());
  Encoder encoder{w};
  std::visit(encoder, message);
  if (encoder.pad > 0) w.pad_to(w.size() + encoder.pad);
  return net::make_pooled_payload(w.take());
}

std::optional<ServiceMessage> decode_service_message(const uint8_t* data,
                                                     size_t size) {
  if (data == nullptr || size == 0) return std::nullopt;
  WireReader r(data, size);
  auto type = static_cast<ServiceMsgType>(r.u8());
  switch (type) {
    case ServiceMsgType::kLoadPoll: {
      LoadPollMsg m;
      m.poll_id = r.u64();
      m.from = r.u32();
      m.reply_port = r.u16();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case ServiceMsgType::kLoadReply: {
      LoadReplyMsg m;
      m.poll_id = r.u64();
      m.from = r.u32();
      m.load = r.u32();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case ServiceMsgType::kRequest: {
      RequestMsg m;
      m.request_id = r.u64();
      m.reply_host = r.u32();
      m.reply_port = r.u16();
      m.service = r.str();
      m.partition = static_cast<int32_t>(r.varint());
      m.request_bytes = r.u32();
      m.response_bytes = r.u32();
      m.relay_hops = r.u8();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case ServiceMsgType::kResponse: {
      ResponseMsg m;
      m.request_id = r.u64();
      m.from = r.u32();
      m.status = static_cast<ResponseStatus>(r.u8());
      m.payload_bytes = r.u32();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case ServiceMsgType::kRelaySyn: {
      RelaySynMsg m;
      m.conn_id = r.u64();
      m.from = r.u32();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case ServiceMsgType::kRelayAck: {
      RelayAckMsg m;
      m.conn_id = r.u64();
      m.from = r.u32();
      if (!r.ok()) return std::nullopt;
      return m;
    }
  }
  return std::nullopt;
}

}  // namespace tamp::service
