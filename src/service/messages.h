// Wire messages of the service invocation plane (the Neptune consumer /
// provider modules and the cross-DC proxy relay). These run on their own
// ports, separate from the membership plane.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "membership/wire.h"
#include "net/packet.h"

namespace tamp::service {

enum class ServiceMsgType : uint8_t {
  kLoadPoll = 1,    // random-polling load balancing probe
  kLoadReply = 2,
  kRequest = 3,
  kResponse = 4,
  kRelaySyn = 5,    // proxy relay connection setup over the WAN
  kRelayAck = 6,
};

struct LoadPollMsg {
  uint64_t poll_id = 0;
  net::HostId from = net::kInvalidHost;
  net::Port reply_port = 0;
};

struct LoadReplyMsg {
  uint64_t poll_id = 0;
  net::HostId from = net::kInvalidHost;
  uint32_t load = 0;  // queued + in-flight requests at the provider
};

enum class ResponseStatus : uint8_t {
  kOk = 0,
  kNotHosted = 1,     // provider does not host (service, partition)
  kUnavailable = 2,   // no provider found anywhere
  kOverloaded = 3,
};

struct RequestMsg {
  uint64_t request_id = 0;
  net::HostId reply_host = net::kInvalidHost;
  net::Port reply_port = 0;
  std::string service;
  int32_t partition = 0;
  uint32_t request_bytes = 0;   // simulated request body (padded on wire)
  uint32_t response_bytes = 0;  // size the provider should respond with
  // Remaining relay hops: a request arriving at a proxy with hops == 0 must
  // be served locally or rejected — never re-relayed (prevents ping-pong on
  // stale cross-DC summaries).
  uint8_t relay_hops = 1;
};

struct ResponseMsg {
  uint64_t request_id = 0;
  net::HostId from = net::kInvalidHost;
  ResponseStatus status = ResponseStatus::kOk;
  uint32_t payload_bytes = 0;  // padded on wire
};

struct RelaySynMsg {
  uint64_t conn_id = 0;
  net::HostId from = net::kInvalidHost;
};

struct RelayAckMsg {
  uint64_t conn_id = 0;
  net::HostId from = net::kInvalidHost;
};

using ServiceMessage = std::variant<LoadPollMsg, LoadReplyMsg, RequestMsg,
                                    ResponseMsg, RelaySynMsg, RelayAckMsg>;

net::Payload encode_service_message(const ServiceMessage& message);
std::optional<ServiceMessage> decode_service_message(const uint8_t* data,
                                                     size_t size);
inline std::optional<ServiceMessage> decode_service_message(
    const net::Packet& packet) {
  return decode_service_message(packet.data(), packet.size());
}

}  // namespace tamp::service
