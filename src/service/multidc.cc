#include "service/multidc.h"

#include "util/check.h"

namespace tamp::service {

MultiDcParams default_two_dc_params() {
  MultiDcParams params;
  net::RackedClusterParams east;
  east.racks = 2;
  east.hosts_per_rack = 8;
  east.dc = 0;
  east.name_prefix = "east";
  net::RackedClusterParams west = east;
  west.dc = 1;
  west.name_prefix = "west";
  params.dcs = {east, west};
  return params;
}

MultiDcHarness::MultiDcHarness(sim::Simulation& sim, MultiDcParams params)
    : sim_(sim), params_(std::move(params)) {
  TAMP_CHECK(!params_.dcs.empty());
  layout_ = net::build_multi_datacenter(topology_, params_.dcs, params_.wan);
  network_ = std::make_unique<net::Network>(sim_, topology_);

  for (size_t dc = 0; dc < params_.dcs.size(); ++dc) {
    vips_.push_back(network_->allocate_virtual_ip());
  }

  for (size_t dc = 0; dc < params_.dcs.size(); ++dc) {
    protocols::Cluster::Options opts;
    opts.scheme = protocols::Scheme::kHierarchical;
    opts.hier = params_.hier;
    clusters_.push_back(std::make_unique<protocols::Cluster>(
        sim_, *network_, layout_.clusters[dc].hosts, opts));

    proxy::ProxyConfig proxy_config;
    proxy_config.dc = params_.dcs[dc].dc;
    proxy_config.local_vip = vips_[dc];
    proxy_config.period = params_.proxy_period;
    proxy_config.proxy_channel =
        protocols::kProxyChannelBase + static_cast<net::ChannelId>(dc);
    for (size_t other = 0; other < params_.dcs.size(); ++other) {
      if (other != dc) {
        proxy_config.remote_vips[params_.dcs[other].dc] = vips_[other];
      }
    }

    proxies_.emplace_back();
    relay_consumers_.emplace_back();
    relays_.emplace_back();
    for (int i = 0; i < params_.proxies_per_dc; ++i) {
      size_t index = proxy_cluster_index(dc, i);
      auto* hier = clusters_[dc]->hier_daemon(index);
      TAMP_CHECK(hier != nullptr);
      proxies_[dc].push_back(std::make_unique<proxy::ProxyDaemon>(
          sim_, *network_, *hier, proxy_config));

      // The relay's consumer shares the node with the proxy; give it its
      // own reply port so they don't collide with gateway consumers.
      ConsumerConfig relay_consumer_config;
      api::Status built =
          ConsumerConfigBuilder()
              .proxy_fallback(false)
              .reply_port(
                  static_cast<net::Port>(protocols::kServiceReplyPort + 10))
              .Build(&relay_consumer_config);
      TAMP_CHECK_MSG(built.ok(), "relay consumer config: %s",
                     built.message().c_str());
      relay_consumers_[dc].push_back(std::make_unique<ServiceConsumer>(
          sim_, *network_, *hier, relay_consumer_config));
      relays_[dc].push_back(std::make_unique<ProxyRelay>(
          sim_, *network_, *proxies_[dc].back(),
          *relay_consumers_[dc].back()));
    }
  }
}

size_t MultiDcHarness::proxy_cluster_index(size_t dc, int index) const {
  const size_t hosts = layout_.clusters[dc].hosts.size();
  TAMP_CHECK(static_cast<size_t>(params_.proxies_per_dc) < hosts);
  return hosts - 1 - static_cast<size_t>(index);
}

void MultiDcHarness::start() {
  for (auto& cluster : clusters_) cluster->start_all();
  for (size_t dc = 0; dc < proxies_.size(); ++dc) {
    for (size_t i = 0; i < proxies_[dc].size(); ++i) {
      proxies_[dc][i]->start();
      relay_consumers_[dc][i]->start();
      relays_[dc][i]->start();
    }
  }
}

void MultiDcHarness::stop() {
  for (size_t dc = 0; dc < proxies_.size(); ++dc) {
    for (size_t i = 0; i < proxies_[dc].size(); ++i) {
      relays_[dc][i]->stop();
      relay_consumers_[dc][i]->stop();
      proxies_[dc][i]->stop();
    }
  }
  for (auto& cluster : clusters_) cluster->stop_all();
}

proxy::ProxyDaemon* MultiDcHarness::proxy_leader(size_t dc) {
  for (auto& proxy : proxies_[dc]) {
    if (proxy->is_leader()) return proxy.get();
  }
  return nullptr;
}

}  // namespace tamp::service
