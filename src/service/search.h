// The prototype search engine of paper Figure 1, built on the service
// plane: protocol gateways fan a query out to index-server partitions, then
// translate the matching document ids through doc-server partitions, and
// compile the final result. Used by the search-engine example and by the
// Figure 14 (proxy failover) experiment.
#pragma once

#include <memory>
#include <vector>

#include "protocols/cluster.h"
#include "service/consumer.h"
#include "service/provider.h"
#include "sim/timer.h"
#include "util/stats.h"

namespace tamp::service {

inline constexpr char kIndexService[] = "index";
inline constexpr char kDocService[] = "doc";

struct SearchParams {
  int gateways = 3;
  int index_partitions = 2;
  int doc_partitions = 3;
  int replicas = 3;
  sim::Duration index_service_time = 8 * sim::kMillisecond;
  sim::Duration doc_service_time = 5 * sim::kMillisecond;
  uint32_t query_bytes = 300;
  uint32_t index_response_bytes = 1500;
  uint32_t doc_request_bytes = 400;
  uint32_t doc_response_bytes = 3000;
  ConsumerConfig consumer;  // gateway consumer tuning
};

struct QueryResult {
  bool ok = false;
  sim::Duration latency = 0;
  bool used_proxy = false;  // any leg crossed a datacenter
};

// One protocol gateway: owns a consumer and runs the two-phase query flow.
class SearchGateway {
 public:
  using Callback = std::function<void(const QueryResult&)>;

  SearchGateway(sim::Simulation& sim, net::Network& net,
                protocols::MembershipDaemon& membership,
                const SearchParams& params);

  void start() { consumer_.start(); }
  void stop() { consumer_.stop(); }
  void query(Callback callback);

  ServiceConsumer& consumer() { return consumer_; }

 private:
  struct QueryState {
    Callback callback;
    sim::Time started = 0;
    int outstanding = 0;
    bool failed = false;
    bool used_proxy = false;
  };

  void start_doc_phase(std::shared_ptr<QueryState> state);

  sim::Simulation& sim_;
  const SearchParams& params_;
  ServiceConsumer consumer_;
};

// Places the whole search service onto a cluster's hosts: the first
// `gateways` hosts become gateways; index and doc partition replicas are
// assigned round-robin over the remaining hosts (a host may serve several
// partitions when the cluster is small).
class SearchDeployment {
 public:
  SearchDeployment(sim::Simulation& sim, net::Network& net,
                   protocols::Cluster& cluster, SearchParams params);

  void start();
  void stop();

  const SearchParams& params() const { return params_; }
  std::vector<SearchGateway*> gateways();

  // Cluster indices of the nodes hosting the given service (for failure
  // injection: kill/restart these through the Cluster).
  const std::vector<size_t>& index_nodes() const { return index_nodes_; }
  const std::vector<size_t>& doc_nodes() const { return doc_nodes_; }

  // Re-create and start the provider on a restarted node. The Cluster must
  // have been restart()ed first (the provider binds to the fresh daemon).
  void restart_providers_on(size_t cluster_index);

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  protocols::Cluster& cluster_;
  SearchParams params_;
  std::vector<std::unique_ptr<SearchGateway>> gateways_;
  std::map<size_t, std::unique_ptr<ServiceProvider>> providers_;
  std::vector<size_t> index_nodes_;
  std::vector<size_t> doc_nodes_;
  // (cluster index, service, partition, service time) for rebuilds.
  struct Placement {
    size_t cluster_index;
    std::string service;
    int partition;
    sim::Duration service_time;
  };
  std::vector<Placement> placements_;
};

// Open-loop Poisson query workload over a set of gateways, with per-second
// throughput / latency buckets — what Figure 14 plots.
class SearchWorkload {
 public:
  struct Bucket {
    int arrived = 0;
    int completed = 0;
    int failed = 0;
    double latency_ms_sum = 0;

    double mean_latency_ms() const {
      return completed > 0 ? latency_ms_sum / completed : 0.0;
    }
  };

  SearchWorkload(sim::Simulation& sim, std::vector<SearchGateway*> gateways,
                 double rate_qps);

  void run_for(sim::Duration duration);
  void stop() { arrival_timer_.cancel(); }

  const std::vector<Bucket>& buckets() const { return buckets_; }
  util::Percentiles& latencies() { return latencies_; }
  uint64_t total_completed() const { return completed_; }
  uint64_t total_failed() const { return failed_; }

 private:
  void schedule_next();
  Bucket& bucket_at(sim::Time t);

  sim::Simulation& sim_;
  std::vector<SearchGateway*> gateways_;
  double rate_qps_;
  sim::Time end_ = 0;
  sim::OneShotTimer arrival_timer_;
  std::vector<Bucket> buckets_;
  util::Percentiles latencies_;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
};

}  // namespace tamp::service
