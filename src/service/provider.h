// Service provider (the Neptune provider module): hosts one or more
// (service, partitions) instances on a node, registers them with the
// membership daemon, answers load polls, and processes requests with a
// configurable concurrency + service-time model.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "protocols/daemon.h"
#include "protocols/ports.h"
#include "service/messages.h"
#include "sim/simulation.h"

namespace tamp::service {

struct ProviderConfig {
  net::Port port = protocols::kServicePort;
  int concurrency = 2;         // parallel request slots (cpus)
  size_t max_queue = 256;      // beyond this, respond kOverloaded
  // Mean service time; each request draws an exponential around it.
  sim::Duration mean_service_time = 10 * sim::kMillisecond;
};

class ServiceProvider {
 public:
  // `membership` is the node's membership daemon (used for registration and
  // identity). Not owned.
  ServiceProvider(sim::Simulation& sim, net::Network& net,
                  protocols::MembershipDaemon& membership,
                  ProviderConfig config = {});
  ~ServiceProvider();

  ServiceProvider(const ServiceProvider&) = delete;
  ServiceProvider& operator=(const ServiceProvider&) = delete;

  // Host (service, partitions); announced through the membership protocol.
  void host_service(const std::string& name, const std::vector<int>& partitions,
                    std::map<std::string, std::string> params = {});

  void start();
  void stop();
  bool running() const { return running_; }

  net::HostId self() const { return membership_.self(); }
  uint32_t current_load() const {
    return static_cast<uint32_t>(active_ + queue_.size());
  }
  uint64_t requests_served() const { return served_; }
  uint64_t requests_rejected() const { return rejected_; }

 private:
  bool hosts(const std::string& service, int partition) const;
  void on_packet(const net::Packet& packet);
  void maybe_dispatch();
  void finish(const RequestMsg& request);

  sim::Simulation& sim_;
  net::Network& net_;
  protocols::MembershipDaemon& membership_;
  ProviderConfig config_;
  std::map<std::string, std::vector<int>> hosted_;
  // In-service completion events capture a weak ref to this token; stop()
  // drops it so completions scheduled before a crash cannot touch a dead
  // (or destroyed) provider.
  std::shared_ptr<bool> alive_;
  std::deque<RequestMsg> queue_;
  int active_ = 0;
  bool running_ = false;
  uint64_t served_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace tamp::service
