// Service consumer (the Neptune consumer module).
//
// Location-transparent invocation: the caller names (service, partition);
// the consumer resolves live providers through the local membership
// directory, balances load with the paper's random-polling scheme (probe d
// random replicas for their queue length, dispatch to the lightest), and
// fails over — first to other local replicas, then, when the service has no
// local provider at all, through the membership proxy to a remote
// datacenter (paper Fig. 6).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "protocols/daemon.h"
#include "protocols/ports.h"
#include "service/messages.h"
#include "sim/simulation.h"

namespace tamp::service {

inline constexpr net::Port kProxyRelayPort = 10072;

struct ConsumerConfig {
  net::Port reply_port = protocols::kServiceReplyPort;
  net::Port provider_port = protocols::kServicePort;
  net::Port relay_port = kProxyRelayPort;
  int poll_candidates = 2;  // paper: random polling over d replicas
  sim::Duration poll_timeout = 20 * sim::kMillisecond;
  sim::Duration request_timeout = 400 * sim::kMillisecond;
  sim::Duration relay_timeout = 2 * sim::kSecond;  // WAN path is slower
  int max_attempts = 3;
  bool proxy_fallback = true;
};

struct InvokeResult {
  bool ok = false;
  ResponseStatus status = ResponseStatus::kUnavailable;
  sim::Duration latency = 0;
  net::HostId server = net::kInvalidHost;
  bool via_proxy = false;
  int attempts = 0;
};

class ServiceConsumer {
 public:
  using Callback = std::function<void(const InvokeResult&)>;

  ServiceConsumer(sim::Simulation& sim, net::Network& net,
                  protocols::MembershipDaemon& membership,
                  ConsumerConfig config = {});
  ~ServiceConsumer();

  ServiceConsumer(const ServiceConsumer&) = delete;
  ServiceConsumer& operator=(const ServiceConsumer&) = delete;

  void start();
  void stop();

  // Asynchronously invoke (service, partition). The callback fires exactly
  // once, on completion or final failure.
  void invoke(const std::string& service, int partition,
              uint32_t request_bytes, uint32_t response_bytes,
              Callback callback);

  net::HostId self() const { return membership_.self(); }
  uint64_t invocations() const { return next_id_counter_; }
  const ConsumerConfig& config() const { return config_; }

 private:
  struct Pending {
    uint64_t id = 0;
    std::string service;
    int partition = 0;
    uint32_t request_bytes = 0;
    uint32_t response_bytes = 0;
    Callback callback;
    sim::Time started = 0;
    int attempts = 0;
    bool via_proxy = false;
    std::vector<net::HostId> tried;
    // Poll phase.
    uint64_t poll_id = 0;
    int polls_outstanding = 0;
    std::vector<std::pair<net::HostId, uint32_t>> poll_replies;
    sim::EventId poll_timer = sim::kInvalidEventId;
    // Request phase.
    net::HostId target = net::kInvalidHost;
    sim::EventId request_timer = sim::kInvalidEventId;
  };

  uint64_t next_id();
  void attempt(uint64_t id);
  void start_poll(Pending& pending, std::vector<net::HostId> candidates);
  void poll_deadline(uint64_t id);
  void dispatch(Pending& pending, net::HostId target);
  void request_deadline(uint64_t id);
  void attempt_proxy(Pending& pending);
  void finish(uint64_t id, const InvokeResult& result);
  void on_packet(const net::Packet& packet);
  std::vector<net::HostId> live_candidates(const Pending& pending) const;

  sim::Simulation& sim_;
  net::Network& net_;
  protocols::MembershipDaemon& membership_;
  ConsumerConfig config_;
  bool running_ = false;
  uint64_t next_id_counter_ = 0;
  std::map<uint64_t, Pending> pending_;
  std::map<uint64_t, uint64_t> poll_to_request_;
};

}  // namespace tamp::service
