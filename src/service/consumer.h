// Service consumer (the Neptune consumer module).
//
// Location-transparent invocation: the caller names (service, partition);
// the consumer resolves live providers through the local membership
// directory, balances load with the paper's random-polling scheme (probe d
// random replicas for their queue length, dispatch to the lightest), and
// fails over — first to other local replicas, then, when the service has no
// local provider at all, through the membership proxy to a remote
// datacenter (paper Fig. 6).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/status.h"
#include "protocols/daemon.h"
#include "protocols/ports.h"
#include "service/messages.h"
#include "sim/simulation.h"

namespace tamp::service {

inline constexpr net::Port kProxyRelayPort = 10072;

struct ConsumerConfig {
  net::Port reply_port = protocols::kServiceReplyPort;
  net::Port provider_port = protocols::kServicePort;
  net::Port relay_port = kProxyRelayPort;
  int poll_candidates = 2;  // paper: random polling over d replicas
  sim::Duration poll_timeout = 20 * sim::kMillisecond;
  sim::Duration request_timeout = 400 * sim::kMillisecond;
  sim::Duration relay_timeout = 2 * sim::kSecond;  // WAN path is slower
  int max_attempts = 3;
  bool proxy_fallback = true;
};

// Validated construction for ConsumerConfig, same idiom as
// MembershipConfigBuilder: fluent setters, `Build()` returns a Status and
// leaves `out` untouched on rejection. Bare aggregate construction still
// compiles (the struct stays public) but call sites should come through
// here so bad timeouts/ports are caught at setup, not as silent hangs.
class ConsumerConfigBuilder {
 public:
  ConsumerConfigBuilder() = default;

  // Seed from an already-assembled configuration (e.g. re-validating after
  // a programmatic tweak).
  ConsumerConfigBuilder& replace(ConsumerConfig config);

  ConsumerConfigBuilder& reply_port(net::Port port);
  ConsumerConfigBuilder& provider_port(net::Port port);
  ConsumerConfigBuilder& relay_port(net::Port port);
  ConsumerConfigBuilder& poll_candidates(int candidates);
  ConsumerConfigBuilder& poll_timeout(sim::Duration timeout);
  ConsumerConfigBuilder& request_timeout(sim::Duration timeout);
  ConsumerConfigBuilder& relay_timeout(sim::Duration timeout);
  ConsumerConfigBuilder& max_attempts(int attempts);
  ConsumerConfigBuilder& proxy_fallback(bool enabled);

  // Validates ranges and port distinctness; writes to `out` on success.
  // `out` is untouched on error.
  api::Status Build(ConsumerConfig* out) const;

 private:
  ConsumerConfig config_;
};

// Why an invocation ended the way it did. Replaces the lossy
// `ok` + ResponseStatus pair: a false `ok` used to collapse "the directory
// pointed us at dead replicas", "a provider said it never hosted this", and
// "the WAN relay went dark" into one kUnavailable — exactly the distinctions
// churn-time SLO grading needs.
enum class FailureCause : uint8_t {
  kNone = 0,         // success
  kStaleDirectory,   // a provider answered kNotHosted: the directory row
                     //   outlived the registration it described
  kProviderDead,     // the attempt budget was consumed by silent targets the
                     //   directory still advertised (misroutes to dead
                     //   replicas)
  kOverloaded,       // every reachable replica pushed back kOverloaded
  kNoProvider,       // the directory never produced a candidate (and no
                     //   proxy path was available)
  kTimeout,          // budget exhausted without a classifiable reply
  kProxyRelay,       // the WAN relay path failed or timed out
  kCount,
};
inline constexpr int kFailureCauseCount =
    static_cast<int>(FailureCause::kCount);

const char* failure_cause_name(FailureCause cause);

// The wire-level status a cause collapses to — the relay answers remote
// consumers over the v1 service wire format, which only speaks
// ResponseStatus.
ResponseStatus to_response_status(FailureCause cause);

struct InvokeResult {
  FailureCause cause = FailureCause::kTimeout;
  sim::Duration latency = 0;
  net::HostId server = net::kInvalidHost;
  bool via_proxy = false;
  int attempts = 0;
  // Directory rows acted on that pointed at a non-serving replica: silent
  // probed/dispatched targets plus kNotHosted replies. Nonzero on success
  // too — a misroute the retry path absorbed still cost the user latency.
  int misroutes = 0;

  bool ok() const { return cause == FailureCause::kNone; }
};

class ServiceConsumer {
 public:
  using Callback = std::function<void(const InvokeResult&)>;

  ServiceConsumer(sim::Simulation& sim, net::Network& net,
                  protocols::MembershipDaemon& membership,
                  ConsumerConfig config = {});
  ~ServiceConsumer();

  ServiceConsumer(const ServiceConsumer&) = delete;
  ServiceConsumer& operator=(const ServiceConsumer&) = delete;

  void start();
  void stop();

  // Asynchronously invoke (service, partition). The callback fires exactly
  // once, on completion or final failure.
  void invoke(const std::string& service, int partition,
              uint32_t request_bytes, uint32_t response_bytes,
              Callback callback);

  net::HostId self() const { return membership_.self(); }
  uint64_t invocations() const { return next_id_counter_; }
  const ConsumerConfig& config() const { return config_; }

 private:
  struct Pending {
    uint64_t id = 0;
    std::string service;
    int partition = 0;
    uint32_t request_bytes = 0;
    uint32_t response_bytes = 0;
    Callback callback;
    sim::Time started = 0;
    int attempts = 0;
    bool via_proxy = false;
    std::vector<net::HostId> tried;
    // Failure-attribution evidence, accumulated across attempts.
    int misroutes = 0;
    bool saw_not_hosted = false;
    bool saw_overload = false;
    bool saw_candidates = false;
    // Poll phase.
    uint64_t poll_id = 0;
    int polls_outstanding = 0;
    std::vector<std::pair<net::HostId, uint32_t>> poll_replies;
    sim::EventId poll_timer = sim::kInvalidEventId;
    // Request phase.
    net::HostId target = net::kInvalidHost;
    sim::EventId request_timer = sim::kInvalidEventId;
  };

  uint64_t next_id();
  static FailureCause classify_failure(const Pending& pending);
  void attempt(uint64_t id);
  void start_poll(Pending& pending, std::vector<net::HostId> candidates);
  void poll_deadline(uint64_t id);
  void dispatch(Pending& pending, net::HostId target);
  void request_deadline(uint64_t id);
  void attempt_proxy(Pending& pending);
  void finish(uint64_t id, const InvokeResult& result);
  void on_packet(const net::Packet& packet);
  std::vector<net::HostId> live_candidates(const Pending& pending) const;

  sim::Simulation& sim_;
  net::Network& net_;
  protocols::MembershipDaemon& membership_;
  ConsumerConfig config_;
  bool running_ = false;
  uint64_t next_id_counter_ = 0;
  std::map<uint64_t, Pending> pending_;
  std::map<uint64_t, uint64_t> poll_to_request_;
};

}  // namespace tamp::service
