#include "analysis/models.h"

#include <algorithm>
#include <cmath>

namespace tamp::analysis {
namespace {

// Bytes received cluster-wide per heartbeat round, per scheme. The
// hierarchical figure walks the actual tree (level sizes shrink by the
// group bound g), so it is exact rather than the loose n*g upper bound.
double a2a_round_bytes(double n, double m) { return n * (n - 1) * m; }

double gossip_round_bytes(double n, double m) {
  // Each node ships its whole view (n records of m bytes) to one peer.
  return n * (n * m);
}

double hier_round_bytes(double n, double m, double g) {
  double total = 0;
  double level_population = n;
  while (level_population > 1) {
    double groups = std::ceil(level_population / g);
    double group_size = level_population / groups;
    total += level_population * std::max(0.0, group_size - 1) * m;
    level_population = groups;
  }
  return total;
}

double gossip_detection_periods(const ModelParams& p) {
  double n = std::max(2.0, p.n);
  return p.gossip_c0 + p.gossip_c1 * std::log2(n);
}

}  // namespace

double tree_height(double n, double g) {
  if (n <= g) return 1.0;
  return std::ceil(std::log(n) / std::log(g));
}

double group_count(double n, double g) {
  // Paper: sum over levels of n/g^l  ~  (n-1)/(g-1).
  return (n - 1) / (g - 1);
}

// --- fixed-frequency regime ------------------------------------------------

double a2a_bandwidth(const ModelParams& p) {
  return a2a_round_bytes(p.n, p.m) * p.freq;
}
double gossip_bandwidth(const ModelParams& p) {
  return gossip_round_bytes(p.n, p.m) * p.freq;
}
double hier_bandwidth(const ModelParams& p) {
  return hier_round_bytes(p.n, p.m, p.g) * p.freq;
}

double a2a_detection(const ModelParams& p) { return p.k / p.freq; }
double gossip_detection(const ModelParams& p) {
  return gossip_detection_periods(p) / p.freq;
}
double hier_detection(const ModelParams& p) { return p.k / p.freq; }

double a2a_convergence(const ModelParams& p) {
  // Every node detects independently from the same heartbeat stream.
  return a2a_detection(p);
}
double gossip_convergence(const ModelParams& p) { return gossip_detection(p); }
double hier_convergence(const ModelParams& p) {
  // Detection plus the update's trip up and down the tree (paper: 2h tau).
  return hier_detection(p) + 2.0 * tree_height(p.n, p.g) * p.tau;
}

// --- fixed-bandwidth regime --------------------------------------------------

double a2a_detection_at_budget(const ModelParams& p) {
  return p.k * a2a_round_bytes(p.n, p.m) / p.bandwidth;
}
double gossip_detection_at_budget(const ModelParams& p) {
  return gossip_detection_periods(p) * gossip_round_bytes(p.n, p.m) /
         p.bandwidth;
}
double hier_detection_at_budget(const ModelParams& p) {
  return p.k * hier_round_bytes(p.n, p.m, p.g) / p.bandwidth;
}

double a2a_bdp(const ModelParams& p) {
  return p.bandwidth * a2a_detection_at_budget(p);
}
double gossip_bdp(const ModelParams& p) {
  return p.bandwidth * gossip_detection_at_budget(p);
}
double hier_bdp(const ModelParams& p) {
  return p.bandwidth * hier_detection_at_budget(p);
}

double a2a_bcp(const ModelParams& p) { return a2a_bdp(p); }
double gossip_bcp(const ModelParams& p) { return gossip_bdp(p); }
double hier_bcp(const ModelParams& p) {
  return hier_bdp(p) +
         p.bandwidth * 2.0 * tree_height(p.n, p.g) * p.tau;
}

std::vector<SchemeRow> compare_schemes(const ModelParams& p) {
  return {
      SchemeRow{"all-to-all", a2a_bandwidth(p), a2a_detection(p),
                a2a_convergence(p), a2a_detection_at_budget(p), a2a_bdp(p),
                a2a_bcp(p)},
      SchemeRow{"gossip", gossip_bandwidth(p), gossip_detection(p),
                gossip_convergence(p), gossip_detection_at_budget(p),
                gossip_bdp(p), gossip_bcp(p)},
      SchemeRow{"hierarchical", hier_bandwidth(p), hier_detection(p),
                hier_convergence(p), hier_detection_at_budget(p), hier_bdp(p),
                hier_bcp(p)},
  };
}

}  // namespace tamp::analysis
