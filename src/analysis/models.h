// Closed-form scalability models from paper Section 4.
//
// Notation (paper): n nodes, m bytes of per-node membership information,
// k consecutive missed heartbeats before a node is declared dead, g the
// hierarchical group-size bound, B a total bandwidth budget, tau the
// one-hop transmission time of an update message.
//
// Two regimes per scheme:
//  * fixed-frequency — every node multicasts/gossips once per period
//    (what the implementation and the measurements do); bandwidth grows
//    with n and detection time is the scheme's natural constant/log/const.
//  * fixed-bandwidth — the cluster is given a budget B and the frequency
//    is throttled to fit; detection time then scales as the paper's
//    formulas: all-to-all k·n²·m/B, gossip O(n²·m·log n/B), hierarchical
//    k·n·m·(effectively)/B — giving the bandwidth-detection-time product
//    (BDP) and bandwidth-convergence-time product (BCP) comparisons.
#pragma once

#include <string>
#include <vector>

namespace tamp::analysis {

struct ModelParams {
  double n = 100;        // cluster size
  double m = 228;        // bytes of membership info per node
  double k = 5;          // missed heartbeats before declared dead
  double g = 20;         // hierarchical group size bound
  double freq = 1.0;     // heartbeats (or gossips) per second per node
  double bandwidth = 4e6;  // budget B for the fixed-bandwidth regime, B/s
  double tau = 0.5e-3;   // one-hop update transmission time, seconds
  // Gossip detection constants (periods = c0 + c1*log2 n), calibrated to
  // the paper's measured curve at Pmistake = 0.1%.
  double gossip_c0 = 5.5;
  double gossip_c1 = 1.75;
};

// Tree height for group bound g: ceil(log_g n), at least 1.
double tree_height(double n, double g);
// Total number of groups: (n-1)/(g-1) approximately (paper's sum).
double group_count(double n, double g);

// --- fixed-frequency regime ------------------------------------------------

// Aggregate *received* bytes per second across the cluster (what the
// Figure 11 measurement sums over nodes).
double a2a_bandwidth(const ModelParams& p);
double gossip_bandwidth(const ModelParams& p);
double hier_bandwidth(const ModelParams& p);

// Failure detection time, seconds (Figure 12).
double a2a_detection(const ModelParams& p);
double gossip_detection(const ModelParams& p);
double hier_detection(const ModelParams& p);

// View convergence time, seconds (Figure 13): detection plus dissemination.
double a2a_convergence(const ModelParams& p);
double gossip_convergence(const ModelParams& p);
double hier_convergence(const ModelParams& p);

// --- fixed-bandwidth regime --------------------------------------------------

// Detection time when the scheme must fit in budget p.bandwidth.
double a2a_detection_at_budget(const ModelParams& p);
double gossip_detection_at_budget(const ModelParams& p);
double hier_detection_at_budget(const ModelParams& p);

// Bandwidth-detection-time product (paper's BDP metric; lower is better)
// and bandwidth-convergence-time product (BCP).
double a2a_bdp(const ModelParams& p);
double gossip_bdp(const ModelParams& p);
double hier_bdp(const ModelParams& p);
double a2a_bcp(const ModelParams& p);
double gossip_bcp(const ModelParams& p);
double hier_bcp(const ModelParams& p);

// One row of the Section-4 comparison table.
struct SchemeRow {
  std::string scheme;
  double bandwidth_fixed_freq;  // B/s
  double detection_fixed_freq;  // s
  double convergence_fixed_freq;
  double detection_at_budget;   // s
  double bdp;
  double bcp;
};

std::vector<SchemeRow> compare_schemes(const ModelParams& p);

}  // namespace tamp::analysis
