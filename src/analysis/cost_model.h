// Per-packet processing cost model used for the Figure 2 reproduction.
//
// Figure 2 was measured on a dual 1.4 GHz Pentium III: receiving and
// processing all-to-all heartbeats at 1 pkt/s/node costs ~1% of a CPU per
// ~800 packets/s and ~1 KB of Fast-Ethernet bandwidth per packet (1024-byte
// heartbeats). We reproduce the *shape* (linear growth in both CPU and
// packet rate, saturating a Fast Ethernet link around 4000 nodes) by
// charging each received packet a fixed CPU cost calibrated against the
// paper's end point (~4.5% CPU at 4000 nodes).
#pragma once

#include <cstdint>

namespace tamp::analysis {

struct CpuCostModel {
  // Seconds of CPU consumed per received heartbeat packet. Calibrated:
  // 4000 pkt/s -> ~4.5% of one CPU  =>  ~11.25 us per packet.
  double seconds_per_packet = 11.25e-6;

  double cpu_percent(double packets_per_second) const {
    return packets_per_second * seconds_per_packet * 100.0;
  }
};

struct LinkModel {
  double bandwidth_bps = 100e6;  // Fast Ethernet

  double utilization_percent(double bytes_per_second) const {
    return bytes_per_second * 8.0 / bandwidth_bps * 100.0;
  }
};

}  // namespace tamp::analysis
