#include "api/mclient.h"

#include <sstream>

#include "util/strings.h"

namespace tamp::api {

MClient::MClient(const DirectoryStore& store, net::HostId self, int shm_key)
    : store_(store), self_(self), shm_key_(shm_key) {}

bool MClient::attached() const {
  return store_.attach(self_, shm_key_) != nullptr;
}

Machine machine_from_entry(const membership::MembershipEntry& entry) {
  Machine machine;
  machine.emplace_back("node", std::to_string(entry.data.node));
  machine.emplace_back("incarnation", std::to_string(entry.data.incarnation));
  machine.emplace_back("cpus", std::to_string(entry.data.machine.cpus));
  machine.emplace_back("memory_mb",
                       std::to_string(entry.data.machine.memory_mb));
  machine.emplace_back("os", entry.data.machine.os);
  for (const auto& service : entry.data.services) {
    std::ostringstream partitions;
    for (size_t i = 0; i < service.partitions.size(); ++i) {
      if (i > 0) partitions << ',';
      partitions << service.partitions[i];
    }
    machine.emplace_back("service." + service.name, partitions.str());
    for (const auto& [key, value] : service.params) {
      machine.emplace_back("service." + service.name + "." + key, value);
    }
  }
  for (const auto& [key, value] : entry.data.values) {
    machine.emplace_back(key, value);
  }
  return machine;
}

int MClient::lookup_service(const std::string& service_regex,
                            const std::string& partition_spec,
                            MachineList* machines) const {
  const membership::MembershipTable* table = store_.attach(self_, shm_key_);
  if (table == nullptr) return -1;
  if (machines != nullptr) machines->clear();

  auto matches = table->lookup(service_regex, partition_spec);
  if (machines != nullptr) {
    for (const auto* entry : matches) {
      machines->push_back(machine_from_entry(*entry));
    }
  }
  return static_cast<int>(matches.size());
}

}  // namespace tamp::api
