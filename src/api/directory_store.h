// Emulation of the shared-memory yellow-page segment.
//
// In the paper, the membership daemon writes the directory into a SysV
// shared-memory block keyed by SHM_KEY, and client processes on the same
// machine attach read-only through MClient. In the simulation, "the same
// machine" is a HostId, so the store maps (host, shm_key) to the live
// MembershipTable the daemon maintains. Clients get const access only.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "membership/table.h"
#include "net/ids.h"

namespace tamp::api {

class DirectoryStore {
 public:
  // Publish the daemon's table under (host, shm_key); overwrites any prior
  // segment with the same key (a restarted daemon re-publishes).
  void publish(net::HostId host, int shm_key,
               const membership::MembershipTable* table);

  void withdraw(net::HostId host, int shm_key);

  // nullptr when nothing is published under this key.
  const membership::MembershipTable* attach(net::HostId host,
                                            int shm_key) const;

  size_t segment_count() const { return segments_.size(); }

 private:
  std::map<std::pair<net::HostId, int>, const membership::MembershipTable*>
      segments_;
};

}  // namespace tamp::api
