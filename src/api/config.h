// Parser for the membership configuration file format of paper Figure 7:
//
//   *SYSTEM
//   SHM_KEY = 999
//   MAX_TTL = 4
//   MCAST_ADDR = 239.255.0.2
//   MCAST_PORT = 10050
//   MCAST_FREQ = 1
//   MAX_LOSS = 5
//
//   *SERVICE
//   [HTTP]
//       PARTITION = 0
//       Port = 8080
//   [Cache]
//       PARTITION = 2
//
// All nodes share one file; per-service sections declare what this node
// hosts plus free-form service parameters.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "net/ids.h"
#include "obs/obs.h"

namespace tamp::api {

// Upper bound on the trace ring a service may configure (2^22 events ≈
// 160 MiB of TraceEvent) — large enough for any soak, small enough that a
// typo'd capacity cannot exhaust memory.
inline constexpr size_t kMaxTraceCapacity = size_t{1} << 22;

struct SystemConfig {
  int shm_key = 999;
  int max_ttl = 4;
  std::string mcast_addr = "239.255.0.2";
  int mcast_port = 10050;
  double mcast_freq = 1.0;  // heartbeats per second
  int max_loss = 5;
  // Observability (applied to the Network's registry/tracer by
  // MService::run(), before the daemon resolves its counter handles).
  bool metrics_enabled = true;
  size_t trace_capacity = size_t{1} << 16;
  uint64_t trace_kinds_mask = obs::kAllTraceKinds;
  // Anti-entropy surface (control API v4). "full" re-announces the whole
  // refresh scope every interval; "digest" ships per-subtree digests first
  // and only the divergent rows. DIGEST_INTERVAL seconds (0 = reuse the
  // refresh cadence) and DIGEST_MAX_ROWS_PER_DELTA bound one delta before
  // the full-image backstop takes over.
  std::string anti_entropy_mode = "full";
  double digest_interval = 0.0;
  int digest_max_rows_per_delta = 64;
};

struct ServiceConfig {
  std::string name;
  std::string partition_spec = "0";
  std::map<std::string, std::string> params;  // e.g. Port = 8080
};

struct MembershipConfig {
  SystemConfig system;
  std::vector<ServiceConfig> services;
};

// Parses the Figure-7 format. On malformed input returns nullopt and, when
// `error` is non-null, stores a human-readable reason with a line number.
std::optional<MembershipConfig> parse_config(std::string_view text,
                                             std::string* error = nullptr);

// The single validated construction path for MService/MClient configuration.
// Seeds from defaults or a Figure-7 file, layers fluent overrides on top,
// and validates everything once in Build() — replacing the previous split
// where file parsing, control() asserts, and silent fallbacks each enforced
// (different subsets of) the rules.
//
//   MembershipConfig config;
//   Status status = MembershipConfigBuilder()
//                       .mcast_addr("239.255.0.2")
//                       .mcast_freq(2.0)
//                       .max_ttl(4)
//                       .add_service("HTTP", "0", {{"Port", "8080"}})
//                       .Build(&config);
class MembershipConfigBuilder {
 public:
  MembershipConfigBuilder() = default;

  // Seed the builder from a Figure-7 configuration file. A parse failure is
  // remembered and surfaces as the Build() status (fluent overrides applied
  // after a failed parse still land on the defaults, matching the paper's
  // "if the configuration file is not available, default values are used").
  static MembershipConfigBuilder FromText(std::string_view text);

  // Seed from an already-assembled configuration (e.g. re-validating after
  // a programmatic tweak). Clears any remembered parse failure.
  MembershipConfigBuilder& replace(MembershipConfig config);

  MembershipConfigBuilder& shm_key(int key);
  MembershipConfigBuilder& max_ttl(int ttl);
  MembershipConfigBuilder& mcast_addr(std::string addr);
  MembershipConfigBuilder& mcast_port(int port);
  MembershipConfigBuilder& mcast_freq(double heartbeats_per_second);
  MembershipConfigBuilder& max_loss(int consecutive_losses);
  MembershipConfigBuilder& metrics_enabled(bool enabled);
  MembershipConfigBuilder& trace_capacity(size_t capacity);
  MembershipConfigBuilder& trace_kinds_mask(uint64_t mask);
  MembershipConfigBuilder& anti_entropy_mode(std::string mode);
  MembershipConfigBuilder& digest_interval(double seconds);
  MembershipConfigBuilder& digest_max_rows_per_delta(int rows);
  MembershipConfigBuilder& add_service(
      std::string name, std::string partition_spec = "0",
      std::map<std::string, std::string> params = {});

  // Validates the assembled configuration (ranges, partition specs, parse
  // status) and writes it to `out` on success. `out` is untouched on error.
  Status Build(MembershipConfig* out) const;

 private:
  MembershipConfig config_;
  std::string parse_error_;  // non-empty when FromText failed
};

// Maps a dotted-quad multicast address to a simulator channel id (stable
// hash), so configuration files keep their familiar 239.x.y.z syntax.
net::ChannelId channel_for_mcast_addr(std::string_view addr);

}  // namespace tamp::api
