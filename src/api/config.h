// Parser for the membership configuration file format of paper Figure 7:
//
//   *SYSTEM
//   SHM_KEY = 999
//   MAX_TTL = 4
//   MCAST_ADDR = 239.255.0.2
//   MCAST_PORT = 10050
//   MCAST_FREQ = 1
//   MAX_LOSS = 5
//
//   *SERVICE
//   [HTTP]
//       PARTITION = 0
//       Port = 8080
//   [Cache]
//       PARTITION = 2
//
// All nodes share one file; per-service sections declare what this node
// hosts plus free-form service parameters.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ids.h"

namespace tamp::api {

struct SystemConfig {
  int shm_key = 999;
  int max_ttl = 4;
  std::string mcast_addr = "239.255.0.2";
  int mcast_port = 10050;
  double mcast_freq = 1.0;  // heartbeats per second
  int max_loss = 5;
};

struct ServiceConfig {
  std::string name;
  std::string partition_spec = "0";
  std::map<std::string, std::string> params;  // e.g. Port = 8080
};

struct MembershipConfig {
  SystemConfig system;
  std::vector<ServiceConfig> services;
};

// Parses the Figure-7 format. On malformed input returns nullopt and, when
// `error` is non-null, stores a human-readable reason with a line number.
std::optional<MembershipConfig> parse_config(std::string_view text,
                                             std::string* error = nullptr);

// Maps a dotted-quad multicast address to a simulator channel id (stable
// hash), so configuration files keep their familiar 239.x.y.z syntax.
net::ChannelId channel_for_mcast_addr(std::string_view addr);

}  // namespace tamp::api
