#include "api/mservice.h"

#include "membership/codec.h"
#include "membership/messages.h"
#include "util/check.h"
#include "util/strings.h"

namespace tamp::api {

MService::MService(sim::Simulation& sim, net::Network& net,
                   DirectoryStore& store, net::HostId self,
                   MembershipConfig config)
    : sim_(sim),
      net_(net),
      store_(store),
      self_(self),
      config_(std::move(config)) {}

MService::MService(sim::Simulation& sim, net::Network& net,
                   DirectoryStore& store, net::HostId self,
                   const std::string& configuration)
    : sim_(sim), net_(net), store_(store), self_(self) {
  auto parsed = parse_config(configuration, &config_error_);
  if (parsed) {
    config_ = std::move(*parsed);
  }  // else: defaults, with the reason kept in config_error_
}

MService::~MService() { shutdown(); }

ControlResponse MService::control(const ControlRequest& request) {
  ControlResponse response;
  // Parameter changes re-validate the whole configuration through the
  // builder, so control() can never push the daemon somewhere the
  // construction path would have refused.
  auto apply = [&](MembershipConfig candidate) {
    if (daemon_ != nullptr) {
      response.status =
          Status::Error("parameter changes must precede run()");
      return;
    }
    MembershipConfigBuilder builder;
    builder.replace(std::move(candidate));
    MembershipConfig validated;
    response.status = builder.Build(&validated);
    if (response.status.ok()) config_ = std::move(validated);
  };

  if (const auto* metrics = std::get_if<MetricsQuery>(&request)) {
    if (metrics->version != kControlApiVersion) {
      response.status = Status::Error(
          "MetricsQuery version " + std::to_string(metrics->version) +
          " not supported (this service speaks v" +
          std::to_string(kControlApiVersion) + ")");
      return response;
    }
    if (metrics->name_filter.size() > 256) {
      response.status = Status::Error("name_filter exceeds 256 characters");
      return response;
    }
    if (metrics->max_results < 1 || metrics->max_results > 4096) {
      response.status =
          Status::Error("max_results must be in [1, 4096], got " +
                        std::to_string(metrics->max_results));
      return response;
    }
    if (daemon_ == nullptr || !daemon_->running()) {
      response.status = Status::Error("metrics query requires run()");
      return response;
    }
    net_.obs().metrics.visit_counters(
        [&](const obs::MetricsRegistry::CounterRow& row) {
          if (row.protocol != obs::Protocol::kHier || row.node != self_) {
            return;
          }
          if (!metrics->name_filter.empty() &&
              row.name.find(metrics->name_filter) == std::string_view::npos) {
            return;
          }
          if (response.metrics.size() >= metrics->max_results) return;
          response.metrics.push_back(
              MetricValue{std::string(row.name), row.value});
        });
    return response;
  }
  if (const auto* anti = std::get_if<AntiEntropyQuery>(&request)) {
    if (anti->version != kControlApiVersion) {
      response.status = Status::Error(
          "AntiEntropyQuery version " + std::to_string(anti->version) +
          " not supported (this service speaks v" +
          std::to_string(kControlApiVersion) + ")");
      return response;
    }
    if (daemon_ == nullptr || !daemon_->running()) {
      response.status = Status::Error("anti-entropy query requires run()");
      return response;
    }
    const obs::MetricsRegistry& metrics = net_.obs().metrics;
    auto counter = [&](std::string_view name) {
      return metrics.counter_value(obs::Protocol::kHier, name, self_);
    };
    AntiEntropyStats& stats = response.anti_entropy;
    stats.mode = config_.system.anti_entropy_mode;
    stats.digests_sent = counter("digests_sent");
    stats.digest_pulls_sent = counter("digest_pulls_sent");
    stats.digest_pulls_served = counter("digest_pulls_served");
    stats.deltas_sent = counter("deltas_sent");
    stats.delta_rows_shipped = counter("delta_rows_shipped");
    stats.digest_rows_suppressed = counter("digest_rows_suppressed");
    stats.digest_full_fallbacks = counter("digest_full_fallbacks");
    return response;
  }
  // Shared reader for the two application-traffic queries: both start from
  // the node's workload counters.
  auto read_workload = [&](int version, const char* what) -> bool {
    if (version != kControlApiVersion) {
      response.status = Status::Error(
          std::string(what) + " version " + std::to_string(version) +
          " not supported (this service speaks v" +
          std::to_string(kControlApiVersion) + ")");
      return false;
    }
    if (daemon_ == nullptr || !daemon_->running()) {
      response.status =
          Status::Error(std::string(what) + " requires run()");
      return false;
    }
    const obs::MetricsRegistry& metrics = net_.obs().metrics;
    auto counter = [&](std::string_view name) {
      return metrics.counter_value(obs::Protocol::kWorkload, name, self_);
    };
    WorkloadStats& stats = response.workload;
    stats.requests_issued = counter("requests_issued");
    stats.requests_ok = counter("requests_ok");
    stats.requests_failed = counter("requests_failed");
    stats.request_attempts = counter("request_attempts");
    stats.misroutes = counter("misroutes");
    stats.proxy_fallbacks = counter("proxy_fallbacks");
    return true;
  };
  if (const auto* wl = std::get_if<WorkloadQuery>(&request)) {
    read_workload(wl->version, "WorkloadQuery");
    return response;
  }
  if (const auto* slo = std::get_if<SloQuery>(&request)) {
    if (!read_workload(slo->version, "SloQuery")) return response;
    const obs::Histogram* hist = net_.obs().metrics.find_histogram(
        obs::Protocol::kWorkload, "latency_ns", self_);
    if (hist != nullptr && hist->tail.count() > 0) {
      // Percentile queries sort lazily; work on a copy so the registry
      // cell stays untouched.
      util::Percentiles tail = hist->tail;
      SloStats& stats = response.slo;
      stats.latency_samples = tail.count();
      stats.p50_ns = static_cast<int64_t>(tail.median());
      stats.p99_ns = static_cast<int64_t>(tail.p99());
      stats.p999_ns = static_cast<int64_t>(tail.p999());
      stats.max_ns = static_cast<int64_t>(tail.max());
    }
    return response;
  }
  if (const auto* trace = std::get_if<TraceControl>(&request)) {
    if (trace->version != kControlApiVersion) {
      response.status = Status::Error(
          "TraceControl version " + std::to_string(trace->version) +
          " not supported (this service speaks v" +
          std::to_string(kControlApiVersion) + ")");
      return response;
    }
    if (trace->capacity < 1 || trace->capacity > kMaxTraceCapacity) {
      response.status =
          Status::Error("trace capacity must be in [1, " +
                        std::to_string(kMaxTraceCapacity) + "], got " +
                        std::to_string(trace->capacity));
      return response;
    }
    if ((trace->kinds_mask & ~obs::kAllTraceKinds) != 0) {
      response.status = Status::Error("kinds_mask names unknown trace kinds");
      return response;
    }
    obs::Tracer& tracer = net_.obs().tracer;
    tracer.set_capacity(trace->capacity);
    tracer.set_kinds_mask(trace->kinds_mask);
    tracer.set_enabled(trace->enable);
    trace_overridden_ = true;  // run() must not stomp an explicit control
    return response;
  }

  if (const auto* freq = std::get_if<SetFrequencyRequest>(&request)) {
    MembershipConfig candidate = config_;
    candidate.system.mcast_freq = freq->heartbeats_per_second;
    apply(std::move(candidate));
  } else if (const auto* loss = std::get_if<SetMaxLossRequest>(&request)) {
    MembershipConfig candidate = config_;
    candidate.system.max_loss = loss->consecutive_losses;
    apply(std::move(candidate));
  } else if (const auto* ttl = std::get_if<SetMaxTtlRequest>(&request)) {
    MembershipConfig candidate = config_;
    candidate.system.max_ttl = ttl->max_ttl;
    apply(std::move(candidate));
  } else {  // LeadershipQuery
    if (daemon_ == nullptr || !daemon_->running()) {
      response.status = Status::Error("leadership query requires run()");
      return response;
    }
    response.incarnation = daemon_->own_entry().incarnation;
    for (int level = 0; level < config_.system.max_ttl; ++level) {
      LeadershipInfo info;
      info.level = level;
      info.joined = daemon_->joined(level);
      info.is_leader = daemon_->is_leader(level);
      info.leader = daemon_->leader_of(level);
      info.backup = daemon_->backup_of(level);
      info.epoch = daemon_->epoch_of(level);
      response.leadership.push_back(info);
    }
  }
  return response;
}

int MService::run() {
  if (daemon_ != nullptr) return -1;

  // Observability first: the daemon resolves its registry handles at
  // construction, so a disabled registry must be disabled before then. A
  // TraceControl issued before run() wins over the static configuration.
  net_.obs().metrics.set_enabled(config_.system.metrics_enabled);
  if (!trace_overridden_) {
    net_.obs().tracer.set_capacity(config_.system.trace_capacity);
    net_.obs().tracer.set_kinds_mask(config_.system.trace_kinds_mask);
  }
  membership::install_wire_classifier(net_);

  protocols::HierConfig hier;
  hier.base_channel = channel_for_mcast_addr(config_.system.mcast_addr);
  hier.data_port = static_cast<net::Port>(config_.system.mcast_port);
  hier.control_port = static_cast<net::Port>(config_.system.mcast_port + 1);
  hier.max_ttl = config_.system.max_ttl;
  hier.period = static_cast<sim::Duration>(1e9 / config_.system.mcast_freq);
  hier.max_losses = config_.system.max_loss;
  hier.anti_entropy_mode = config_.system.anti_entropy_mode == "digest"
                               ? protocols::AntiEntropyMode::kDigest
                               : protocols::AntiEntropyMode::kFull;
  hier.digest_interval =
      static_cast<sim::Duration>(config_.system.digest_interval * 1e9);
  hier.digest_max_rows_per_delta = config_.system.digest_max_rows_per_delta;

  membership::EntryData own = membership::make_representative_entry(self_, 1);
  own.services.clear();

  daemon_ = std::make_unique<protocols::HierDaemon>(sim_, net_, self_,
                                                    std::move(own), hier);
  for (const auto& service : config_.services) {
    auto partitions = util::expand_partition_spec(service.partition_spec);
    daemon_->register_service(
        service.name, partitions.value_or(std::vector<int>{0}),
        service.params);
  }
  daemon_->start();
  store_.publish(self_, config_.system.shm_key, &daemon_->table());
  return 0;
}

void MService::shutdown() {
  if (daemon_ == nullptr) return;
  store_.withdraw(self_, config_.system.shm_key);
  daemon_->stop();
  daemon_.reset();
}

int MService::register_service(const std::string& name,
                               const std::string& partition_spec) {
  if (daemon_ == nullptr) return -1;
  auto partitions = util::expand_partition_spec(partition_spec);
  daemon_->register_service(name, partitions.value_or(std::vector<int>{0}));
  return 0;
}

int MService::update_value(const std::string& key, const std::string& value) {
  if (daemon_ == nullptr) return -1;
  daemon_->update_value(key, value);
  return 0;
}

int MService::delete_value(const std::string& key) {
  if (daemon_ == nullptr) return -1;
  daemon_->delete_value(key);
  return 0;
}

protocols::HierDaemon& MService::daemon() {
  TAMP_CHECK_MSG(daemon_ != nullptr, "run() first");
  return *daemon_;
}

}  // namespace tamp::api
