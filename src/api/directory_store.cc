#include "api/directory_store.h"

namespace tamp::api {

void DirectoryStore::publish(net::HostId host, int shm_key,
                             const membership::MembershipTable* table) {
  segments_[{host, shm_key}] = table;
}

void DirectoryStore::withdraw(net::HostId host, int shm_key) {
  segments_.erase({host, shm_key});
}

const membership::MembershipTable* DirectoryStore::attach(net::HostId host,
                                                          int shm_key) const {
  auto it = segments_.find({host, shm_key});
  return it == segments_.end() ? nullptr : it->second;
}

}  // namespace tamp::api
