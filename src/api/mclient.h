// MClient — the membership client library API of paper Figure 9:
//
//   typedef pair<char *key, void *value> Attribute;
//   typedef vector<Attribute>* Machine;
//   typedef vector<Machine> MachineList;
//   class MClient {
//     MClient(const char *shm_key);
//     int lookup_service(const char *service, const char *partition,
//                        MachineList *machines);
//   };
//
// A client attaches read-only to the daemon's directory segment and looks
// up providers by service-name regex + partition spec. Each matched machine
// is rendered as a flat attribute list (machine configuration, service
// registration, and published key/values), as the paper describes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "api/directory_store.h"

namespace tamp::api {

using Attribute = std::pair<std::string, std::string>;
using Machine = std::vector<Attribute>;
using MachineList = std::vector<Machine>;

class MClient {
 public:
  MClient(const DirectoryStore& store, net::HostId self, int shm_key);

  // True when the daemon's segment exists (daemon has run()).
  bool attached() const;

  // Fills `machines` with the matching providers; returns the match count,
  // or -1 when no directory segment is published under the shm key.
  int lookup_service(const std::string& service_regex,
                     const std::string& partition_spec,
                     MachineList* machines) const;

 private:
  const DirectoryStore& store_;
  net::HostId self_;
  int shm_key_;
};

// Renders one directory entry as the flat attribute list MClient returns.
Machine machine_from_entry(const membership::MembershipEntry& entry);

}  // namespace tamp::api
