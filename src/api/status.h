// Status — the error-reporting currency of the public API surface.
//
// Construction paths that used to assert or silently fall back (config
// parsing, builder validation, control requests) return a Status instead,
// so library callers can distinguish "applied" from "rejected, and why"
// without a crash or a side-channel string.
#pragma once

#include <string>
#include <utility>

namespace tamp::api {

class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

  explicit operator bool() const { return ok_; }

 private:
  bool ok_ = true;
  std::string message_;  // empty when ok
};

}  // namespace tamp::api
