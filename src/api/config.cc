#include "api/config.h"

#include "util/strings.h"

namespace tamp::api {

using util::parse_double;
using util::parse_int;
using util::strformat;
using util::to_lower;
using util::trim;

namespace {

enum class Section { kNone, kSystem, kService };

bool set_error(std::string* error, int line, const std::string& message) {
  if (error != nullptr) {
    *error = strformat("line %d: %s", line, message.c_str());
  }
  return false;
}

bool apply_system_key(SystemConfig& system, const std::string& key,
                      const std::string& value, int line,
                      std::string* error) {
  std::string upper = key;
  for (auto& c : upper) c = static_cast<char>(std::toupper(c));
  auto need_int = [&](int& slot) {
    auto v = parse_int(value);
    if (!v) return set_error(error, line, "expected integer for " + key);
    slot = static_cast<int>(*v);
    return true;
  };
  if (upper == "SHM_KEY") return need_int(system.shm_key);
  if (upper == "MAX_TTL") return need_int(system.max_ttl);
  if (upper == "MCAST_PORT") return need_int(system.mcast_port);
  if (upper == "MAX_LOSS") return need_int(system.max_loss);
  if (upper == "MCAST_ADDR") {
    system.mcast_addr = value;
    return true;
  }
  if (upper == "MCAST_FREQ") {
    auto v = parse_double(value);
    if (!v || *v <= 0) {
      return set_error(error, line, "expected positive number for " + key);
    }
    system.mcast_freq = *v;
    return true;
  }
  if (upper == "ANTI_ENTROPY_MODE") {
    system.anti_entropy_mode = to_lower(value);
    return true;  // vocabulary enforced once, in Build()
  }
  if (upper == "DIGEST_INTERVAL") {
    auto v = parse_double(value);
    if (!v || *v < 0) {
      return set_error(error, line, "expected non-negative number for " + key);
    }
    system.digest_interval = *v;
    return true;
  }
  if (upper == "DIGEST_MAX_ROWS_PER_DELTA") {
    return need_int(system.digest_max_rows_per_delta);
  }
  return set_error(error, line, "unknown *SYSTEM key " + key);
}

}  // namespace

std::optional<MembershipConfig> parse_config(std::string_view text,
                                             std::string* error) {
  MembershipConfig config;
  Section section = Section::kNone;
  ServiceConfig* current_service = nullptr;

  int line_number = 0;
  for (const auto& raw_line : util::split(text, '\n')) {
    ++line_number;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;

    if (line.front() == '*') {
      std::string name = to_lower(line.substr(1));
      if (name == "system") {
        section = Section::kSystem;
      } else if (name == "service") {
        section = Section::kService;
      } else {
        set_error(error, line_number, "unknown section " + std::string(line));
        return std::nullopt;
      }
      current_service = nullptr;
      continue;
    }

    if (line.front() == '[') {
      if (section != Section::kService) {
        set_error(error, line_number, "service block outside *SERVICE");
        return std::nullopt;
      }
      if (line.back() != ']' || line.size() < 3) {
        set_error(error, line_number, "malformed service header");
        return std::nullopt;
      }
      ServiceConfig service;
      service.name = std::string(trim(line.substr(1, line.size() - 2)));
      config.services.push_back(std::move(service));
      current_service = &config.services.back();
      continue;
    }

    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      set_error(error, line_number, "expected KEY = VALUE");
      return std::nullopt;
    }
    std::string key(trim(line.substr(0, eq)));
    std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      set_error(error, line_number, "empty key");
      return std::nullopt;
    }

    switch (section) {
      case Section::kNone:
        set_error(error, line_number, "key outside any section");
        return std::nullopt;
      case Section::kSystem:
        if (!apply_system_key(config.system, key, value, line_number, error)) {
          return std::nullopt;
        }
        break;
      case Section::kService: {
        if (current_service == nullptr) {
          set_error(error, line_number, "key before any [service] header");
          return std::nullopt;
        }
        std::string upper = key;
        for (auto& c : upper) c = static_cast<char>(std::toupper(c));
        if (upper == "PARTITION") {
          current_service->partition_spec = value;
        } else {
          current_service->params[key] = value;
        }
        break;
      }
    }
  }
  return config;
}

MembershipConfigBuilder MembershipConfigBuilder::FromText(
    std::string_view text) {
  MembershipConfigBuilder builder;
  auto parsed = parse_config(text, &builder.parse_error_);
  if (parsed) builder.config_ = std::move(*parsed);
  return builder;
}

MembershipConfigBuilder& MembershipConfigBuilder::replace(
    MembershipConfig config) {
  config_ = std::move(config);
  parse_error_.clear();
  return *this;
}

MembershipConfigBuilder& MembershipConfigBuilder::shm_key(int key) {
  config_.system.shm_key = key;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::max_ttl(int ttl) {
  config_.system.max_ttl = ttl;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::mcast_addr(std::string addr) {
  config_.system.mcast_addr = std::move(addr);
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::mcast_port(int port) {
  config_.system.mcast_port = port;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::mcast_freq(
    double heartbeats_per_second) {
  config_.system.mcast_freq = heartbeats_per_second;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::max_loss(
    int consecutive_losses) {
  config_.system.max_loss = consecutive_losses;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::metrics_enabled(
    bool enabled) {
  config_.system.metrics_enabled = enabled;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::trace_capacity(
    size_t capacity) {
  config_.system.trace_capacity = capacity;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::trace_kinds_mask(
    uint64_t mask) {
  config_.system.trace_kinds_mask = mask;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::anti_entropy_mode(
    std::string mode) {
  config_.system.anti_entropy_mode = std::move(mode);
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::digest_interval(
    double seconds) {
  config_.system.digest_interval = seconds;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::digest_max_rows_per_delta(
    int rows) {
  config_.system.digest_max_rows_per_delta = rows;
  return *this;
}
MembershipConfigBuilder& MembershipConfigBuilder::add_service(
    std::string name, std::string partition_spec,
    std::map<std::string, std::string> params) {
  ServiceConfig service;
  service.name = std::move(name);
  service.partition_spec = std::move(partition_spec);
  service.params = std::move(params);
  config_.services.push_back(std::move(service));
  return *this;
}

Status MembershipConfigBuilder::Build(MembershipConfig* out) const {
  if (!parse_error_.empty()) {
    return Status::Error("configuration file: " + parse_error_);
  }
  const SystemConfig& sys = config_.system;
  if (sys.max_ttl < 1 || sys.max_ttl > 250) {
    return Status::Error(
        strformat("MAX_TTL must be in [1, 250], got %d", sys.max_ttl));
  }
  if (sys.mcast_freq <= 0) {
    return Status::Error("MCAST_FREQ must be positive");
  }
  if (sys.max_loss < 1) {
    return Status::Error(
        strformat("MAX_LOSS must be >= 1, got %d", sys.max_loss));
  }
  if (sys.mcast_port < 1 || sys.mcast_port > 65534) {
    // +1 is the daemon's control port, so 65535 is excluded too.
    return Status::Error(
        strformat("MCAST_PORT must be in [1, 65534], got %d", sys.mcast_port));
  }
  if (sys.mcast_addr.empty()) {
    return Status::Error("MCAST_ADDR must not be empty");
  }
  if (sys.trace_capacity < 1 || sys.trace_capacity > kMaxTraceCapacity) {
    return Status::Error(strformat("trace_capacity must be in [1, %zu], got %zu",
                                   kMaxTraceCapacity, sys.trace_capacity));
  }
  if ((sys.trace_kinds_mask & ~obs::kAllTraceKinds) != 0) {
    return Status::Error("trace_kinds_mask names unknown trace kinds");
  }
  if (sys.anti_entropy_mode != "full" && sys.anti_entropy_mode != "digest") {
    return Status::Error("ANTI_ENTROPY_MODE must be 'full' or 'digest', got '" +
                         sys.anti_entropy_mode + "'");
  }
  if (sys.digest_interval < 0 || sys.digest_interval > 3600) {
    return Status::Error(
        strformat("DIGEST_INTERVAL must be in [0, 3600] seconds, got %g",
                  sys.digest_interval));
  }
  if (sys.digest_max_rows_per_delta < 1 ||
      sys.digest_max_rows_per_delta > 65536) {
    return Status::Error(
        strformat("DIGEST_MAX_ROWS_PER_DELTA must be in [1, 65536], got %d",
                  sys.digest_max_rows_per_delta));
  }
  for (const auto& service : config_.services) {
    if (service.name.empty()) {
      return Status::Error("service name must not be empty");
    }
    // expand_partition_spec yields nullopt for "*"/empty (meaning "default")
    // and an empty vector for a spec that failed to parse.
    auto partitions = util::expand_partition_spec(service.partition_spec);
    if (partitions && partitions->empty()) {
      return Status::Error("service " + service.name +
                           ": malformed PARTITION spec '" +
                           service.partition_spec + "'");
    }
  }
  *out = config_;
  return Status::Ok();
}

net::ChannelId channel_for_mcast_addr(std::string_view addr) {
  // FNV-1a over the address text, folded into a private channel range well
  // away from the small literal ids used elsewhere.
  uint32_t hash = 2166136261u;
  for (char c : addr) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 16777619u;
  }
  return 0x10000u + (hash % 0x10000u);
}

}  // namespace tamp::api
