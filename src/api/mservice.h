// MService — the membership service library API of paper Figure 8:
//
//   class MService {
//     MService(const char *configuration);
//     void control(int cmd, void *arg);
//     int run(void);
//     int register_service(const char *name, const char *partition);
//     int update_value(const char *key, const void *value, int size);
//     int delete_value(const char *key);
//   };
//
// The simulated variant keeps those five operations with the same meaning,
// adding only what the simulation needs instead of the OS: the Simulation,
// Network, host identity, and the DirectoryStore that stands in for shared
// memory. `run()` spins up the hierarchical daemon (the paper's
// Announcer / Receiver / StatusTracker / Informer / Contender threads are
// the daemon's timers and handlers in the event-driven world).
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "api/config.h"
#include "api/directory_store.h"
#include "api/status.h"
#include "protocols/hier.h"

namespace tamp::api {

// --- control surface (v4) --------------------------------------------------
//
// The paper's `control(int cmd, void *arg)` became an enum + double in v1;
// v2 replaced it with typed, versioned request/response structs. v3 added
// the observability requests: MetricsQuery reads this node's registry
// counters, TraceControl drives the network's structured tracer. v4 added
// AntiEntropyQuery, reporting the configured anti-entropy mode and the
// digest-round economics (rows shipped vs. suppressed, full-image
// fallbacks). v5 adds the application-traffic queries: WorkloadQuery reads
// this node's workload counters (requests issued/ok/failed, attempts,
// misroutes, proxy fallbacks) and SloQuery additionally reports the node's
// success-latency distribution. The versioned requests carry their wire
// version explicitly and are rejected on mismatch — an older client
// sending a newer-only request (or a struct stamped with the old version)
// gets a Status error, never silent misinterpretation. Parameter changes
// are requests validated before run(); queries work on the live daemon.
inline constexpr int kControlApiVersion = 5;

struct SetFrequencyRequest {
  double heartbeats_per_second = 1.0;  // MCAST_FREQ
};
struct SetMaxLossRequest {
  int consecutive_losses = 5;  // MAX_LOSS
};
struct SetMaxTtlRequest {
  int max_ttl = 4;  // formation TTL ceiling
};
// Snapshot the daemon's per-level leadership view (requires run()).
struct LeadershipQuery {};

// Read this node's hierarchical-protocol counters from the registry
// (requires run()). Versioned: a request stamped with an older API version
// is rejected, because older clients do not know these semantics. Bounded:
// an oversized filter or result cap is rejected, not truncated silently.
struct MetricsQuery {
  int version = kControlApiVersion;
  std::string name_filter;     // substring match; empty = all (<= 256 chars)
  size_t max_results = 64;     // in [1, 4096]
};

// Reconfigure the network's structured tracer. Works before or after
// run() (the tracer lives on the Network, not the daemon). Versioned and
// bounds-checked like MetricsQuery.
struct TraceControl {
  int version = kControlApiVersion;
  bool enable = true;
  size_t capacity = size_t{1} << 16;           // in [1, kMaxTraceCapacity]
  uint64_t kinds_mask = obs::kAllTraceKinds;   // subset of kAllTraceKinds
};

// Report the anti-entropy configuration and digest-round statistics
// (requires run()). Versioned like MetricsQuery: a request stamped with an
// older API version is rejected — pre-v4 clients do not know digest mode
// exists and would misread the stats.
struct AntiEntropyQuery {
  int version = kControlApiVersion;
};

// Read this node's application-workload counters (requires run()).
// Versioned like the other queries: pre-v5 clients do not know the
// workload layer exists.
struct WorkloadQuery {
  int version = kControlApiVersion;
};

// WorkloadQuery plus the node's success-latency distribution (requires
// run()). Percentiles are exact ranks over the recorded samples.
struct SloQuery {
  int version = kControlApiVersion;
};

using ControlRequest =
    std::variant<SetFrequencyRequest, SetMaxLossRequest, SetMaxTtlRequest,
                 LeadershipQuery, MetricsQuery, TraceControl,
                 AntiEntropyQuery, WorkloadQuery, SloQuery>;

// One level of the hierarchy as the local daemon sees it.
struct LeadershipInfo {
  int level = 0;
  bool joined = false;
  bool is_leader = false;
  membership::NodeId leader = membership::kInvalidNode;
  membership::NodeId backup = membership::kInvalidNode;
  // Highest leadership epoch known for the level (the node's own minted
  // epoch where is_leader).
  membership::Epoch epoch = 0;
};

// One named counter value from a MetricsQuery.
struct MetricValue {
  std::string name;
  uint64_t value = 0;
};

// The digest-round economics this node has observed, from an
// AntiEntropyQuery. Shipped/suppressed count rows this node *served* (as a
// delta responder); pulls/deltas/fallbacks cover both roles.
struct AntiEntropyStats {
  std::string mode;  // "full" | "digest"
  uint64_t digests_sent = 0;
  uint64_t digest_pulls_sent = 0;
  uint64_t digest_pulls_served = 0;
  uint64_t deltas_sent = 0;
  uint64_t delta_rows_shipped = 0;
  uint64_t digest_rows_suppressed = 0;
  uint64_t digest_full_fallbacks = 0;
};

// This node's workload counters, from a WorkloadQuery or SloQuery. All
// zero when the node runs no workload (the counters simply don't exist).
struct WorkloadStats {
  uint64_t requests_issued = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_failed = 0;
  uint64_t request_attempts = 0;
  uint64_t misroutes = 0;
  uint64_t proxy_fallbacks = 0;
};

// The node's success-latency distribution, from an SloQuery. Nanosecond
// percentiles are -1 when no sample has been recorded.
struct SloStats {
  uint64_t latency_samples = 0;
  int64_t p50_ns = -1;
  int64_t p99_ns = -1;
  int64_t p999_ns = -1;
  int64_t max_ns = -1;
};

struct ControlResponse {
  int version = kControlApiVersion;
  Status status;
  // Filled for LeadershipQuery (empty otherwise):
  membership::Incarnation incarnation = 0;  // the node's own incarnation
  std::vector<LeadershipInfo> leadership;   // one entry per level
  // Filled for MetricsQuery (empty otherwise), sorted by name.
  std::vector<MetricValue> metrics;
  // Filled for AntiEntropyQuery (defaults otherwise).
  AntiEntropyStats anti_entropy;
  // Filled for WorkloadQuery and SloQuery (defaults otherwise).
  WorkloadStats workload;
  // Filled for SloQuery (defaults otherwise).
  SloStats slo;
};

class MService {
 public:
  // The validated construction path: build the configuration with
  // MembershipConfigBuilder (or take a parsed one) and hand it over.
  MService(sim::Simulation& sim, net::Network& net, DirectoryStore& store,
           net::HostId self, MembershipConfig config);
  // Figure-7 fidelity path: parses `configuration`. A malformed file falls
  // back to defaults, like the paper's implementation ("if the
  // configuration file is not available, default values will be used");
  // `config_error()` reports what went wrong.
  MService(sim::Simulation& sim, net::Network& net, DirectoryStore& store,
           net::HostId self, const std::string& configuration);
  ~MService();

  MService(const MService&) = delete;
  MService& operator=(const MService&) = delete;

  // Typed control: parameter requests must precede run() and are validated
  // through the same rules as MembershipConfigBuilder::Build; queries
  // require a running daemon. Never asserts — rejections come back in
  // `status`.
  ControlResponse control(const ControlRequest& request);

  // Start the membership daemon, publish the directory segment, and
  // register the services from the configuration file. Returns 0 on
  // success (paper-style), -1 if already running.
  int run();
  void shutdown();

  int register_service(const std::string& name,
                       const std::string& partition_spec);
  int update_value(const std::string& key, const std::string& value);
  int delete_value(const std::string& key);

  bool running() const { return daemon_ != nullptr && daemon_->running(); }
  const std::string& config_error() const { return config_error_; }
  const MembershipConfig& config() const { return config_; }
  int shm_key() const { return config_.system.shm_key; }

  // Escape hatch for tests and composition with the proxy/service layers.
  protocols::HierDaemon& daemon();

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  DirectoryStore& store_;
  net::HostId self_;
  MembershipConfig config_;
  std::string config_error_;
  // A successful TraceControl outlives run(): the static configuration's
  // trace settings are only applied when no explicit control preceded them.
  bool trace_overridden_ = false;
  std::unique_ptr<protocols::HierDaemon> daemon_;
};

}  // namespace tamp::api
