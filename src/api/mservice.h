// MService — the membership service library API of paper Figure 8:
//
//   class MService {
//     MService(const char *configuration);
//     void control(int cmd, void *arg);
//     int run(void);
//     int register_service(const char *name, const char *partition);
//     int update_value(const char *key, const void *value, int size);
//     int delete_value(const char *key);
//   };
//
// The simulated variant keeps those five operations with the same meaning,
// adding only what the simulation needs instead of the OS: the Simulation,
// Network, host identity, and the DirectoryStore that stands in for shared
// memory. `run()` spins up the hierarchical daemon (the paper's
// Announcer / Receiver / StatusTracker / Informer / Contender threads are
// the daemon's timers and handlers in the event-driven world).
#pragma once

#include <memory>
#include <string>

#include "api/config.h"
#include "api/directory_store.h"
#include "protocols/hier.h"

namespace tamp::api {

enum class ControlCommand {
  kSetFrequency,   // arg: heartbeats per second (double)
  kSetMaxLoss,     // arg: consecutive losses before death (int)
  kSetMaxTtl,      // arg: formation TTL ceiling (int)
};

class MService {
 public:
  // Parses `configuration` (Figure-7 format). A malformed file falls back
  // to defaults, like the paper's implementation ("if the configuration
  // file is not available, default values will be used"); `config_error()`
  // reports what went wrong.
  MService(sim::Simulation& sim, net::Network& net, DirectoryStore& store,
           net::HostId self, const std::string& configuration);
  ~MService();

  MService(const MService&) = delete;
  MService& operator=(const MService&) = delete;

  // Adjust parameters before run(); mirrors the paper's `control`.
  void control(ControlCommand cmd, double arg);

  // Start the membership daemon, publish the directory segment, and
  // register the services from the configuration file. Returns 0 on
  // success (paper-style), -1 if already running.
  int run();
  void shutdown();

  int register_service(const std::string& name,
                       const std::string& partition_spec);
  int update_value(const std::string& key, const std::string& value);
  int delete_value(const std::string& key);

  bool running() const { return daemon_ != nullptr && daemon_->running(); }
  const std::string& config_error() const { return config_error_; }
  const MembershipConfig& config() const { return config_; }
  int shm_key() const { return config_.system.shm_key; }

  // Escape hatch for tests and composition with the proxy/service layers.
  protocols::HierDaemon& daemon();

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  DirectoryStore& store_;
  net::HostId self_;
  MembershipConfig config_;
  std::string config_error_;
  std::unique_ptr<protocols::HierDaemon> daemon_;
};

}  // namespace tamp::api
