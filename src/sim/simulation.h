// The discrete-event simulation driver.
//
// Single-threaded and deterministic: all randomness flows from the seed
// given at construction, and simultaneous events execute in scheduling
// order. Protocol daemons, the network, and workload generators all
// schedule against one Simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/rng.h"

namespace tamp::sim {

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }
  util::Rng& rng() { return rng_; }

  // Schedule `fn` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  // Schedule `fn` after a delay (clamped to >= 0).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  // Cancel a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Run until the queue drains or `deadline` passes, whichever first. Events
  // scheduled exactly at the deadline still run. Returns the number of
  // events executed.
  uint64_t run_until(Time deadline);

  // Run until the queue is empty.
  uint64_t run() { return run_until(std::numeric_limits<Time>::max()); }

  // Advance virtual time to `t` (>= now) even if no event is pending there.
  void advance_to(Time t);

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  // Install/remove a per-event hook (used by tests to trace execution).
  void set_trace_hook(std::function<void(Time, EventId)> hook) {
    trace_hook_ = std::move(hook);
  }

 private:
  Time now_ = 0;
  EventQueue queue_;
  util::Rng rng_;
  uint64_t events_executed_ = 0;
  std::function<void(Time, EventId)> trace_hook_;
};

}  // namespace tamp::sim
