#include "sim/event_queue.h"

#include "util/check.h"

namespace tamp::sim {

EventId EventQueue::push(Time t, std::function<void()> fn) {
  EventId id = next_seq_++;
  heap_.push(HeapEntry{t, id});
  pending_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  skip_cancelled();
  TAMP_CHECK(!heap_.empty());
  return heap_.top().t;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  TAMP_CHECK(!heap_.empty());
  HeapEntry top = heap_.top();
  heap_.pop();
  auto it = pending_.find(top.seq);
  TAMP_CHECK(it != pending_.end());
  Fired fired{top.t, top.seq, std::move(it->second)};
  pending_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace tamp::sim
