#include "sim/fault_plan.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace tamp::chaos {

sim::Time FaultPlan::last_event_time() const {
  sim::Time last = 0;
  for (const auto& event : events) last = std::max(last, event.at);
  return last;
}

namespace {

std::string index_list(const std::vector<NodeIndex>& indices) {
  std::string out = "{";
  for (size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(indices[i]);
  }
  return out + "}";
}

}  // namespace

std::string describe(const FaultAction& action) {
  struct Visitor {
    std::string operator()(const CrashFault& f) {
      return "crash node " + std::to_string(f.node);
    }
    std::string operator()(const RestartFault& f) {
      return "restart node " + std::to_string(f.node);
    }
    std::string operator()(const PauseFault& f) {
      return "pause node " + std::to_string(f.node);
    }
    std::string operator()(const ResumeFault& f) {
      return "resume node " + std::to_string(f.node);
    }
    std::string operator()(const LeaderCrashFault&) { return "crash leader"; }
    std::string operator()(const LeaderRestartFault&) {
      return "restart crashed leader";
    }
    std::string operator()(const LeaderPauseFault&) {
      return "pause leader across election";
    }
    std::string operator()(const LeaderResumeFault&) {
      return "resume paused leader";
    }
    std::string operator()(const PartitionStartFault& f) {
      return "partition start id=" + std::to_string(f.id) + " island=" +
             index_list(f.island) + (f.symmetric ? "" : " asym");
    }
    std::string operator()(const PartitionEndFault& f) {
      return "partition heal id=" + std::to_string(f.id);
    }
    std::string operator()(const UplinkDownFault& f) {
      return "uplink down segment " + std::to_string(f.segment);
    }
    std::string operator()(const UplinkUpFault& f) {
      return "uplink up segment " + std::to_string(f.segment);
    }
    std::string operator()(const LossStartFault& f) {
      return "loss spike start p=" + std::to_string(f.loss);
    }
    std::string operator()(const LossEndFault&) { return "loss spike end"; }
    std::string operator()(const DelayStartFault& f) {
      return "delay spike start +" + std::to_string(sim::to_millis(f.extra)) +
             "ms jitter " + std::to_string(sim::to_millis(f.jitter)) + "ms";
    }
    std::string operator()(const DelayEndFault&) { return "delay spike end"; }
    std::string operator()(const DuplicateStartFault& f) {
      return "duplication start x" + std::to_string(1 + f.copies);
    }
    std::string operator()(const DuplicateEndFault&) {
      return "duplication end";
    }
    std::string operator()(const RouterCrashFault& f) {
      return "router crash " + std::to_string(f.router);
    }
    std::string operator()(const RouterRestartFault& f) {
      return "router restart " + std::to_string(f.router);
    }
    std::string operator()(const LinkAddFault& f) {
      return "link add segment " + std::to_string(f.segment_a) + " <-> " +
             std::to_string(f.segment_b);
    }
    std::string operator()(const HostMigrateFault& f) {
      return "migrate node " + std::to_string(f.node) + " to segment " +
             std::to_string(f.segment);
    }
  };
  return std::visit(Visitor{}, action);
}

const char* plan_name(PlanKind kind) {
  switch (kind) {
    case PlanKind::kCrashRestart:
      return "crash-restart";
    case PlanKind::kPartitionHeal:
      return "partition-heal";
    case PlanKind::kAsymmetricCut:
      return "asymmetric-cut";
    case PlanKind::kLossStorm:
      return "loss-storm";
    case PlanKind::kLeaderKill:
      return "leader-kill";
    case PlanKind::kPauseResume:
      return "pause-resume";
    case PlanKind::kUplinkFlap:
      return "uplink-flap";
    case PlanKind::kJoinStorm:
      return "join-storm";
    case PlanKind::kRestartStorm:
      return "restart-storm";
    case PlanKind::kHealStorm:
      return "heal-storm";
    case PlanKind::kRouterFlap:
      return "router-flap";
    case PlanKind::kRewireHeal:
      return "rewire-heal";
    case PlanKind::kCount:
      break;
  }
  return "?";
}

FaultPlan make_fault_plan(PlanKind kind, size_t nodes, size_t segment_size,
                          sim::Time start, uint64_t seed) {
  TAMP_CHECK(nodes >= 4);
  TAMP_CHECK(segment_size >= 1 && segment_size <= nodes);
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(kind));
  FaultPlan plan;
  plan.name = plan_name(kind);

  // Victims are drawn from [1, nodes): index 0 is the lowest id — the bully
  // winner — which the leader-targeted plans kill on purpose and the
  // random-victim plans leave alone so the two cases stay distinguishable.
  auto victim = [&] {
    return static_cast<NodeIndex>(1 + rng.uniform_u64(nodes - 1));
  };
  // The first segment of the layout (or the first quarter on a single
  // segment), as a partition island.
  auto island = [&] {
    size_t count = segment_size < nodes ? segment_size
                                        : std::max<size_t>(2, nodes / 4);
    std::vector<NodeIndex> out(count);
    for (size_t i = 0; i < count; ++i) out[i] = i;
    return out;
  };
  auto at = [&](double seconds, FaultAction action) {
    plan.events.push_back(
        FaultEvent{start + sim::from_seconds(seconds), std::move(action)});
  };

  switch (kind) {
    case PlanKind::kCrashRestart: {
      NodeIndex a = victim();
      NodeIndex b = victim();
      if (b == a) b = (a % (nodes - 1)) + 1;  // distinct second victim
      at(0, CrashFault{a});
      at(20, RestartFault{a});  // comes back with a new incarnation
      at(30, CrashFault{b});
      break;
    }
    case PlanKind::kPartitionHeal:
      at(0, PartitionStartFault{1, island(), /*symmetric=*/true});
      at(25, PartitionEndFault{1});
      break;
    case PlanKind::kAsymmetricCut:
      // Island packets die on the way out; the return path stays up. The
      // rest of the cluster must (correctly) declare the island dead while
      // the island keeps a complete view, and the views must re-merge on
      // heal.
      at(0, PartitionStartFault{1, island(), /*symmetric=*/false});
      at(22, PartitionEndFault{1});
      break;
    case PlanKind::kLossStorm:
      at(0, LossStartFault{0.25});
      at(2, DelayStartFault{20 * sim::kMillisecond, 15 * sim::kMillisecond});
      at(4, DuplicateStartFault{1});
      at(14, LossEndFault{});
      at(14, DelayEndFault{});
      at(14, DuplicateEndFault{});
      break;
    case PlanKind::kLeaderKill:
      at(0, LeaderCrashFault{});
      at(14, LeaderCrashFault{});  // the successor, mid-recovery
      at(26, LeaderRestartFault{});
      break;
    case PlanKind::kPauseResume: {
      NodeIndex a = victim();
      // Pause the current top leader across a leadership change: peers time
      // it out and elect a successor while the victim keeps running on
      // stale state (it timed *them* out, too). On resume it replays that
      // state as a stale COORDINATOR and the directory must re-merge
      // without purging the live subtree.
      at(0, LeaderPauseFault{});
      at(20, LeaderResumeFault{});
      // Short blip on a follower, well under every scheme's detection
      // bound: nobody may declare the node dead for it.
      at(34, PauseFault{a});
      at(36, ResumeFault{a});
      break;
    }
    case PlanKind::kUplinkFlap:
      at(0, UplinkDownFault{0});
      at(24, UplinkUpFault{0});
      break;
    case PlanKind::kJoinStorm: {
      // Take half the cluster down, let the survivors settle into a small
      // stable tree, then bring every downed node back at the same instant:
      // a bootstrap burst aimed squarely at the surviving leaders. Index 0
      // stays up so the storm hits an established leadership.
      const size_t joiners = nodes / 2;
      for (size_t i = 0; i < joiners; ++i) at(0, CrashFault{1 + i});
      for (size_t i = 0; i < joiners; ++i) at(25, RestartFault{1 + i});
      break;
    }
    case PlanKind::kRestartStorm: {
      // Two overlapping crash+restart waves over disjoint halves of
      // [1, nodes): wave B goes down while wave A's recovery is still in
      // flight, so the recovery paths churn against each other.
      const size_t pool = nodes - 1;
      const size_t wave_a = pool / 2;
      for (size_t i = 0; i < wave_a; ++i) at(0, CrashFault{1 + i});
      for (size_t i = 0; i < wave_a; ++i) at(6, RestartFault{1 + i});
      for (size_t i = wave_a; i < pool; ++i) at(14, CrashFault{1 + i});
      for (size_t i = wave_a; i < pool; ++i) at(20, RestartFault{1 + i});
      break;
    }
    case PlanKind::kHealStorm: {
      // Two islands cut at staggered times and healed together: the heal
      // instant floods the survivors' leaders with merge traffic (mutual
      // bootstraps, syncs, refreshes) from two directions at once.
      std::vector<NodeIndex> island_a = island();
      const size_t a_end = island_a.back() + 1;
      size_t b_count = std::min(island_a.size(), nodes - a_end);
      if (a_end + b_count >= nodes) {
        b_count = nodes - a_end - 1;  // keep at least one mainland node
      }
      std::vector<NodeIndex> island_b;
      for (size_t i = 0; i < b_count; ++i) island_b.push_back(a_end + i);
      at(0, PartitionStartFault{1, island_a, /*symmetric=*/true});
      if (!island_b.empty()) {
        at(2, PartitionStartFault{2, island_b, /*symmetric=*/true});
        at(24, PartitionEndFault{2});
      }
      at(24, PartitionEndFault{1});
      break;
    }
    case PlanKind::kRouterFlap:
      // Power-cycle router 1 (the middle of a chain; resolved modulo the
      // router count, so the core on a racked cluster). Every group whose
      // scope spanned it must re-form while it is dark, then re-merge when
      // the old distances return.
      at(0, RouterCrashFault{1});
      at(24, RouterRestartFault{1});
      break;
    case PlanKind::kRewireHeal: {
      // Crash a router, then heal the network into a *different* shape
      // before it comes back: a new switch-switch link shortcuts segments
      // 0 and 2 to TTL 1, and one random host is re-homed onto segment 1.
      // ttl_required() changes three separate times; the hierarchy must
      // track all three, and the oracle grades the final shape.
      NodeIndex migrant = victim();
      at(0, RouterCrashFault{1});
      at(10, LinkAddFault{0, 2});
      at(16, HostMigrateFault{migrant, 1});
      at(28, RouterRestartFault{1});
      break;
    }
    case PlanKind::kCount:
      TAMP_CHECK_MSG(false, "kCount is a sentinel, not a plan");
      break;
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace tamp::chaos
