// Virtual time. All simulation timestamps are int64 nanoseconds from the
// start of the run; helpers build durations readably at call sites:
//
//   sim.schedule_after(2 * sim::kSecond, ...);
#pragma once

#include <cstdint>
#include <string>

namespace tamp::sim {

using Time = int64_t;       // absolute virtual time, ns
using Duration = int64_t;   // virtual duration, ns

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

inline constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e9;
}
inline constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / 1e6;
}
inline constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9);
}
inline constexpr Duration from_millis(double ms) {
  return static_cast<Duration>(ms * 1e6);
}

// "12.345s" rendering for logs.
std::string format_time(Time t);

}  // namespace tamp::sim
