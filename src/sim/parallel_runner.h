// Parallel chaos scenario runner.
//
// Scenarios are pure functions of their ScenarioSpec: every byte of a
// ScenarioResult (trace JSONL, metrics snapshot, oracle verdict) derives
// from the seeded simulation, and run_scenario() builds a private
// Simulation / Topology / Network / Cluster / Oracle stack per call. That
// makes the chaos matrix embarrassingly parallel — run_scenarios() exploits
// it with N worker threads pulling specs from a shared work queue, while
// guaranteeing results that are **byte-identical to the serial runner** for
// every seed.
//
// Determinism contract:
//  * results[i] corresponds to specs[i] (input order), regardless of which
//    worker ran it or when it finished.
//  * options.on_result fires on the *calling* thread, strictly in input
//    order (result i is emitted only after 0..i-1), so streaming consumers
//    (chaos_soak's stdout, trace/metrics files) produce identical bytes at
//    --jobs=1 and --jobs=8.
//  * A scenario that throws is converted into a failed ScenarioResult for
//    its own slot; sibling scenarios are unaffected (result isolation).
//
// The only process-global state a scenario touches is the util::Logger
// singleton, which is thread-safe and write-only from the scenario's point
// of view (see util/logging.h); everything else — RNG, event queue, metrics
// registry, tracer — is owned by the per-scenario Network/Simulation pair.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/scenario.h"

namespace tamp::chaos {

struct ParallelRunOptions {
  // Worker thread count. 0 picks std::thread::hardware_concurrency()
  // (minimum 1). 1 runs inline on the calling thread — the serial baseline.
  // More threads than scenarios is fine: surplus workers find the queue
  // empty and exit.
  size_t jobs = 0;

  // The scenario function. Defaults to run_scenario(); tests substitute
  // fakes to exercise runner edge cases (exceptions, slow completions)
  // without paying for real simulations.
  std::function<ScenarioResult(const ScenarioSpec&)> run;

  // Streaming observer, called as (input_index, result) on the calling
  // thread, in input order. Optional.
  std::function<void(size_t index, const ScenarioResult& result)> on_result;
};

// Resolve the worker count actually used for `requested` jobs over
// `scenarios` specs (0 → hardware concurrency; never 0, never more workers
// than scenarios).
size_t effective_jobs(size_t requested, size_t scenarios);

// Run every spec and return the results in input order. See the determinism
// contract above.
std::vector<ScenarioResult> run_scenarios(
    const std::vector<ScenarioSpec>& specs,
    const ParallelRunOptions& options = {});

}  // namespace tamp::chaos
